"""Shared helpers for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper at the
``bench`` scale (override with ``REPRO_BENCH_SCALE``).  Results are
printed, saved as JSON under the results dir (``REPRO_RESULTS_DIR`` /
``<cache root>/results``) and appended to ``BENCH_REPORT.txt`` there, so
the regenerated rows survive pytest's output capture.

Experiments share in-process caches (trained foundations, simulated
datasets), so the first benchmark of a session pays the training cost and
the rest reuse it — run the whole directory in one pytest invocation.
Trace simulations fan out across ``REPRO_BENCH_JOBS`` worker processes
(default: all cores; set 1 to force serial).
"""

from __future__ import annotations

import os
import threading
import time

from repro.cache import results_dir
from repro.experiments import run_experiment
from repro.experiments.common import ExperimentResult

SCALE = os.environ.get("REPRO_BENCH_SCALE", "bench")
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "0"))  # 0 = all cores


# -- timing / percentile helpers -----------------------------------------
def percentile(values, q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    Kept dependency-free (no numpy) so latency math is trivially
    auditable: sort, find the fractional rank, interpolate neighbours.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile out of range: {q}")
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile of an empty sequence")
    rank = (len(ordered) - 1) * q / 100.0
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def latency_summary(latencies_s) -> dict:
    """p50/p95/p99/mean/max (milliseconds) over per-request latencies."""
    latencies_s = list(latencies_s)
    ms = [1e3 * lat for lat in latencies_s]
    return {
        "count": len(ms),
        "p50_ms": percentile(ms, 50),
        "p95_ms": percentile(ms, 95),
        "p99_ms": percentile(ms, 99),
        "mean_ms": sum(ms) / len(ms),
        "max_ms": max(ms),
    }


def time_each(fn, items) -> list[float]:
    """Run ``fn(item)`` for every item, returning per-call seconds.

    The per-request analogue of best-of-N block timing: percentiles need
    the full latency distribution, not one wall-clock total.
    """
    latencies = []
    for item in items:
        start = time.perf_counter()
        fn(item)
        latencies.append(time.perf_counter() - start)
    return latencies


def open_loop(submit, requests, rate_rps: float, timeout_s: float = 120.0):
    """Drive ``submit`` with open-loop arrivals at a fixed rate.

    Request ``i`` is issued at ``start + i/rate_rps`` regardless of how
    earlier requests are doing — arrivals never slow down because the
    server is struggling, so queueing delay shows up in the latencies
    instead of being silently absorbed (no coordinated omission).  Each
    latency runs from the request's *intended* arrival to its
    completion, stamped by a done-callback at resolution time.

    ``submit`` returns a ``concurrent.futures.Future``; a submit-time
    exception (load-shed rejection) counts as an error.  Returns a dict:
    ``latencies_s`` (successes only), ``errors``, ``offered``,
    ``completed`` and ``elapsed_s`` (first arrival to last completion).
    """
    requests = list(requests)
    lock = threading.Lock()
    latencies: list[float] = []
    errors = [0]
    futures = []
    start = time.perf_counter()
    for i, request in enumerate(requests):
        target = start + i / rate_rps
        delay = target - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        try:
            future = submit(request)
        except Exception:
            with lock:
                errors[0] += 1
            continue

        def _done(f, t=target):
            now = time.perf_counter()
            with lock:
                if f.cancelled() or f.exception() is not None:
                    errors[0] += 1
                else:
                    latencies.append(now - t)

        future.add_done_callback(_done)
        futures.append(future)
    for future in futures:
        try:
            future.result(timeout=timeout_s)
        except Exception:
            pass  # already counted by the done-callback
    elapsed = time.perf_counter() - start
    return {
        "latencies_s": latencies,
        "errors": errors[0],
        "offered": len(requests),
        "completed": len(latencies),
        "elapsed_s": elapsed,
    }


def metrics_block() -> dict:
    """The obs registry compacted for a ``BENCH_*.json`` report.

    Counters/gauges flatten to ``{series: value}``; histograms keep only
    their p50/p95/p99 summary — enough to answer "what did the serving/
    cache/jit machinery do during this run" without the full buckets.
    """
    from repro import obs
    from repro.obs.metrics import _fmt_labels

    block: dict = {}
    for name, family in obs.metrics_snapshot().items():
        for row in family["series"]:
            series = f"{name}{_fmt_labels(row['labels'])}"
            if family["kind"] == "histogram":
                block[series] = row["summary"]
            else:
                block[series] = row["value"]
    return block


def run_and_record(name: str) -> ExperimentResult:
    """Run one experiment, persist and report its rows."""
    result = run_experiment(name, scale=SCALE, jobs=JOBS)
    text = result.render()
    print(text)
    result.save()
    report_dir = results_dir()
    os.makedirs(report_dir, exist_ok=True)
    with open(os.path.join(report_dir, "BENCH_REPORT.txt"), "a") as fh:
        fh.write(text + "\n\n")
    return result


def bench_experiment(benchmark, name: str) -> ExperimentResult:
    """pytest-benchmark wrapper: one timed round (experiments are heavy)."""
    return benchmark.pedantic(
        run_and_record, args=(name,), rounds=1, iterations=1
    )
