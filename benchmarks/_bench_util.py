"""Shared helpers for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper at the
``bench`` scale (override with ``REPRO_BENCH_SCALE``).  Results are
printed, saved as JSON under the results dir (``REPRO_RESULTS_DIR`` /
``<cache root>/results``) and appended to ``BENCH_REPORT.txt`` there, so
the regenerated rows survive pytest's output capture.

Experiments share in-process caches (trained foundations, simulated
datasets), so the first benchmark of a session pays the training cost and
the rest reuse it — run the whole directory in one pytest invocation.
Trace simulations fan out across ``REPRO_BENCH_JOBS`` worker processes
(default: all cores; set 1 to force serial).
"""

from __future__ import annotations

import os

from repro.cache import results_dir
from repro.experiments import run_experiment
from repro.experiments.common import ExperimentResult

SCALE = os.environ.get("REPRO_BENCH_SCALE", "bench")
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "0"))  # 0 = all cores


def run_and_record(name: str) -> ExperimentResult:
    """Run one experiment, persist and report its rows."""
    result = run_experiment(name, scale=SCALE, jobs=JOBS)
    text = result.render()
    print(text)
    result.save()
    report_dir = results_dir()
    os.makedirs(report_dir, exist_ok=True)
    with open(os.path.join(report_dir, "BENCH_REPORT.txt"), "a") as fh:
        fh.write(text + "\n\n")
    return result


def bench_experiment(benchmark, name: str) -> ExperimentResult:
    """pytest-benchmark wrapper: one timed round (experiments are heavy)."""
    return benchmark.pedantic(
        run_and_record, args=(name,), rounds=1, iterations=1
    )
