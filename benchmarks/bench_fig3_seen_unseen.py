"""Bench: regenerate Fig. 3 — seen/unseen program accuracy on seen uarchs."""

from benchmarks._bench_util import bench_experiment


def test_fig3_seen_unseen(benchmark):
    result = bench_experiment(benchmark, "fig3_seen_unseen")
    assert len(result.rows) == 17
    # the paper's shape: seen programs predict better than unseen ones
    assert result.metrics["avg_seen_error"] < result.metrics["avg_unseen_error"]
