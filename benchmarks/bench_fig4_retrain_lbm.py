"""Bench: regenerate Fig. 4 — effect of moving 519.lbm into training."""

from benchmarks._bench_util import bench_experiment


def test_fig4_retrain_lbm(benchmark):
    result = bench_experiment(benchmark, "fig4_retrain_lbm")
    # the paper's shape: once lbm is seen, its error drops
    assert result.metrics["lbm_error_after"] < result.metrics["lbm_error_before"]
