"""Bench: regenerate Fig. 5 — accuracy on unseen microarchitectures."""

from benchmarks._bench_util import bench_experiment


def test_fig5_unseen_uarch(benchmark):
    result = bench_experiment(benchmark, "fig5_unseen_uarch")
    # errors on unseen microarchitectures stay in the same regime as the
    # seen-uarch case (paper: 4.2% seen / 7.1% unseen programs)
    assert result.metrics["avg_seen_error"] < 1.0
    assert result.metrics["avg_unseen_error"] < 1.5
