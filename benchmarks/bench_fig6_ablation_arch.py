"""Bench: regenerate Fig. 6 — foundation architecture ablation."""

from benchmarks._bench_util import bench_experiment


def test_fig6_ablation_arch(benchmark):
    result = bench_experiment(benchmark, "fig6_ablation_arch")
    # the paper's shape: the context-free linear model cannot match the
    # recurrent default
    assert result.metrics["default_lstm_error"] < result.metrics["linear_error"]
