"""Bench: regenerate Fig. 7 + Sec. VI-A — cache-size DSE surfaces/ranks."""

from benchmarks._bench_util import bench_experiment


def test_fig7_cache_dse(benchmark):
    result = bench_experiment(benchmark, "fig7_cache_dse")
    m = result.metrics
    # rank metrics are internally consistent and cover all 17 programs
    assert m["optimal_count"] <= m["top5_count"] <= m["programs"] == 17
    # the tuning budget is a half-grid on three programs, not 17 x 36
    assert m["tuning_simulations"] < 17 * 36
