"""Bench: regenerate Fig. 8 — matrix-multiply loop-tiling analysis."""

from benchmarks._bench_util import bench_experiment


def test_fig8_loop_tiling(benchmark):
    result = bench_experiment(benchmark, "fig8_loop_tiling")
    # PerfVec's tile ranking must track the simulator's
    assert result.metrics["time_correlation"] > 0.0
    assert result.metrics["sim_best_tile"] > 1  # tiling helps
