"""Frontend benchmark: trace generation and external-trace ingestion.

Measures the :mod:`repro.frontends` paths end to end:

* **generate** — RV frontend trace production (assemble + interpret +
  canonical trace emission), rows/sec per kernel;
* **ingest** — :func:`repro.frontends.trace_import.parse_trace` over the
  documented JSONL and CSV schemas, plain and gzipped, in both
  **streaming** (constant-memory line iterator) and **whole-file**
  modes — the numbers show what the streaming default costs (or saves)
  against slurping;
* **import** — the full :func:`import_trace` path: cold (parse +
  atomic npz publish + manifest) vs warm (source-digest cache hit, no
  parsing at all).

Results are printed and written to ``BENCH_frontend.json``.  Run::

    PYTHONPATH=src python benchmarks/bench_frontend.py --rows 50000 \
        --output BENCH_frontend.json

Acceptance bar: the warm import must be at least 10x faster than the
cold one (the content-addressed cache actually short-circuits parsing).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _gzip_copy(path: str) -> str:
    import gzip

    out = f"{path}.gz"
    with open(path, "rb") as src, gzip.open(out, "wb") as dst:
        shutil.copyfileobj(src, dst)
    return out


def bench_frontend(rows: int = 50_000, repeats: int = 3) -> dict:
    from repro.frontends import get_frontend
    from repro.frontends.rv import kernels
    from repro.frontends.trace_import import (
        export_trace,
        import_trace,
        parse_trace,
    )

    rv = get_frontend("rv")

    # -- trace generation: assemble + run + canonical emission ------------
    generate = {}
    for name in ("rv.axpy", "rv.crc", "rv.gcd"):
        def produce(name=name):
            kernels.clear_trace_cache()
            return rv.trace(name, rows)

        seconds = _time(produce, repeats)
        n = len(produce())
        generate[name] = {
            "rows": n,
            "seconds": seconds,
            "rows_per_s": n / seconds,
        }

    trace = rv.trace("rv.crc", rows)
    work = tempfile.mkdtemp(prefix="bench_frontend_")
    try:
        # -- ingestion: schema parse rates, streaming vs whole-file -------
        files = {}
        for fmt in ("jsonl", "csv"):
            path = os.path.join(work, f"trace.{fmt}")
            export_trace(trace, path, fmt=fmt)
            files[fmt] = path
            files[f"{fmt}.gz"] = _gzip_copy(path)
        ingest = {}
        for label, path in files.items():
            entry = {"bytes": os.path.getsize(path)}
            for mode, streaming in (("streaming", True),
                                    ("whole_file", False)):
                seconds = _time(
                    lambda p=path, s=streaming: parse_trace(p, streaming=s),
                    repeats,
                )
                entry[mode] = {
                    "seconds": seconds,
                    "rows_per_s": len(trace) / seconds,
                }
            entry["streaming_vs_whole_file"] = (
                entry["whole_file"]["seconds"] / entry["streaming"]["seconds"]
            )
            ingest[label] = entry

        # -- full import path: cold publish vs content-addressed hit ------
        cache = os.path.join(work, "cache")
        path = files["jsonl"]

        def cold():
            shutil.rmtree(cache, ignore_errors=True)
            return import_trace(path, name="bench", cache_dir=cache)

        t_cold = _time(cold, repeats)
        t_warm = _time(
            lambda: import_trace(path, name="bench", cache_dir=cache),
            repeats,
        )
        warm_hit = import_trace(path, name="bench", cache_dir=cache)
        imports = {
            "cold_seconds": t_cold,
            "warm_seconds": t_warm,
            "warm_cache_hit": warm_hit.cache_hit,
            "warm_speedup": t_cold / t_warm,
            "rows_per_s_cold": len(trace) / t_cold,
        }
    finally:
        shutil.rmtree(work, ignore_errors=True)

    return {
        "meta": {
            "frontend": "rv",
            "rows": len(trace),
            "repeats": repeats,
            "host_cpus": os.cpu_count() or 1,
        },
        "generate": generate,
        "ingest": ingest,
        "import": imports,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=50_000,
                        help="trace length to generate and ingest")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing repeats")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="JSON output (default: results/BENCH_frontend.json)")
    args = parser.parse_args(argv)

    report = bench_frontend(rows=args.rows, repeats=args.repeats)

    meta = report["meta"]
    print(f"frontend bench: {meta['rows']:,} rows, isa={meta['frontend']}, "
          f"best of {meta['repeats']}")
    for name, row in report["generate"].items():
        print(f"generate {name:<12s} {row['rows_per_s']:>12,.0f} rows/s")
    for label, row in sorted(report["ingest"].items()):
        s, w = row["streaming"], row["whole_file"]
        print(f"ingest {label:<9s} streaming {s['rows_per_s']:>10,.0f} rows/s"
              f"  whole-file {w['rows_per_s']:>10,.0f} rows/s"
              f"  ({row['bytes']:,} bytes)")
    imports = report["import"]
    print(f"import cold {1e3 * imports['cold_seconds']:.1f} ms, "
          f"warm {1e3 * imports['warm_seconds']:.2f} ms "
          f"({imports['warm_speedup']:.0f}x, "
          f"cache_hit={imports['warm_cache_hit']})")

    from _bench_util import metrics_block

    report["metrics"] = metrics_block()
    if args.output:
        out = args.output
    else:
        from repro.cache import results_dir

        os.makedirs(results_dir(), exist_ok=True)
        out = os.path.join(results_dir(), "BENCH_frontend.json")
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(f"saved: {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
