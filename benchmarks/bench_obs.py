"""Observability overhead benchmark: REPRO_OBS on vs off.

The obs subsystem's contract is "off by default cheap, on still cheap":
the disabled span path is one environment lookup returning a shared
no-op, and the enabled path appends one JSON line per span to an
``O_APPEND`` log.  This benchmark measures both sides of that contract
on the two hot paths the spans actually instrument:

* **predict** — ``Session.predict_many`` over a warm serving session
  (spans: ``session.predict`` + jit/cache counters), timed with tracing
  disabled and enabled;
* **sweep** — a forced synthetic local pipeline run (spans:
  ``pipeline.run`` + one ``stage.run`` per stage);
* **trace_log** — raw span write throughput (open/close a span in a
  tight loop), the ceiling any instrumented path can pay.

Results are printed and written to ``BENCH_obs.json``.  Run::

    PYTHONPATH=src python benchmarks/bench_obs.py --scale smoke \
        --output benchmarks/BENCH_obs.json

Acceptance bar: predict overhead (enabled vs disabled) under 5%.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from _bench_util import metrics_block

#: Model spec for the serving session (tiny: the benchmark measures
#: observability overhead, not model quality).
SPEC = dict(arch="lstm-1-8", chunk_len=16, batch_size=8, epochs=1)
BENCHMARKS = ("999.specrand", "505.mcf")


def _interleaved(fn, repeats: int) -> tuple[float, float, float, float]:
    """Paired off/on timings: (best_off, best_on, overhead %, delta s).

    Each round times one tracing-disabled block immediately followed by
    one tracing-enabled block, so background load drift lands on both
    sides of a pair instead of skewing whichever phase ran second.  The
    reported overhead is the *median* of the per-round ratios — robust
    to the one round that caught a scheduler hiccup, which min-vs-min
    comparisons are not.
    """
    from repro import obs

    disabled = enabled = float("inf")
    deltas = []
    ratios = []
    for _ in range(repeats):
        obs.set_enabled(False)
        start = time.perf_counter()
        fn()
        off_s = time.perf_counter() - start
        obs.set_enabled(True)
        try:
            start = time.perf_counter()
            fn()
            on_s = time.perf_counter() - start
        finally:
            obs.set_enabled(False)
        disabled = min(disabled, off_s)
        enabled = min(enabled, on_s)
        deltas.append(on_s - off_s)
        ratios.append(1e2 * (on_s - off_s) / off_s)
    return disabled, enabled, _median(ratios), _median(deltas)


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def bench_predict_overhead(
    scale: str, repeats: int, cache_dir: str | None
) -> dict:
    """predict_many wall time, tracing off vs on (same warm session)."""
    from repro import obs
    from repro.api import Session

    session = Session(scale=scale, cache_dir=cache_dir)
    session.train(benchmarks=BENCHMARKS, **SPEC)
    requests = list(BENCHMARKS) * 8
    inner = 10  # calls per timed block: one span per call, and a block
    # tens of ms long keeps scheduler jitter out of the percentage
    for name in BENCHMARKS:  # warm feature + model caches
        session.features(name)
    session.predict_many(requests)

    def block() -> None:
        for _ in range(inner):
            session.predict_many(requests)

    obs.set_enabled(True)
    try:
        # warm the log file open out of the measurement
        session.predict_many(requests)
    finally:
        obs.set_enabled(False)
    disabled_s, enabled_s, overhead_pct, delta_s = _interleaved(
        block, repeats)
    return {
        "requests": len(requests),
        "calls_per_block": inner,
        "disabled_seconds": disabled_s,
        "enabled_seconds": enabled_s,
        "overhead_pct": overhead_pct,
        # absolute per-predict_many-call cost of tracing: what a CI gate
        # should bound alongside the percentage, which scheduler noise
        # can push past any threshold on a busy box
        "per_call_overhead_us": 1e6 * delta_s / inner,
    }


def bench_sweep_overhead(points: int, repeats: int) -> dict:
    """A forced synthetic local sweep, tracing off vs on."""
    import repro.pipeline.dse  # noqa: F401 — registers synthetic_point
    from repro.pipeline import ExperimentSpec, SweepSpec, run_sweep, stage

    base = ExperimentSpec(
        name="obs-bench",
        title="Obs overhead workload",
        scale="smoke",
        stages=(
            stage("point", "analysis", fn="synthetic_point",
                  point=0, work=50000),
        ),
    )
    sweep = SweepSpec(base=base,
                      matrix={"point.point": tuple(range(points))})

    def run() -> None:
        # force=True: measure execution, not the artifact cache
        result = run_sweep(sweep, force=True)
        assert result.executed == points

    run()  # warm imports and the analysis registry
    disabled_s, enabled_s, overhead_pct, delta_s = _interleaved(
        run, repeats)
    return {
        "points": points,
        "disabled_seconds": disabled_s,
        "enabled_seconds": enabled_s,
        "overhead_pct": overhead_pct,
        "per_run_overhead_us": 1e6 * delta_s,
    }


def bench_trace_log(spans: int) -> dict:
    """Raw span open/close throughput with the JSONL log enabled."""
    from repro import obs

    obs.set_enabled(True)
    try:
        start = time.perf_counter()
        for i in range(spans):
            with obs.span("bench.span", i=i):
                pass
        enabled_s = time.perf_counter() - start
    finally:
        obs.set_enabled(False)
    start = time.perf_counter()
    for i in range(spans):
        with obs.span("bench.span", i=i):
            pass
    disabled_s = time.perf_counter() - start
    return {
        "spans": spans,
        "enabled_seconds": enabled_s,
        "enabled_spans_per_s": spans / enabled_s,
        "enabled_us_per_span": 1e6 * enabled_s / spans,
        "disabled_seconds": disabled_s,
        "disabled_ns_per_span": 1e9 * disabled_s / spans,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default=os.environ.get(
        "REPRO_BENCH_SCALE", "smoke"))
    parser.add_argument("--repeats", type=int, default=9,
                        help="paired off/on rounds per measurement")
    parser.add_argument("--points", type=int, default=4,
                        help="sweep points for the pipeline section")
    parser.add_argument("--spans", type=int, default=20000,
                        help="spans for the raw log-throughput section")
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="JSON output (default: results/BENCH_obs.json)")
    args = parser.parse_args(argv)

    report = {
        "scale": args.scale,
        "predict": bench_predict_overhead(
            args.scale, args.repeats, args.cache_dir
        ),
        "sweep": bench_sweep_overhead(args.points, args.repeats),
        "trace_log": bench_trace_log(args.spans),
    }
    predict = report["predict"]
    sweep = report["sweep"]
    log = report["trace_log"]
    print(f"# bench_obs scale={report['scale']}")
    print(f"predict: off {1e3 * predict['disabled_seconds']:8.2f} ms  "
          f"on {1e3 * predict['enabled_seconds']:8.2f} ms  "
          f"overhead {predict['overhead_pct']:+.2f}%")
    print(f"sweep:   off {1e3 * sweep['disabled_seconds']:8.2f} ms  "
          f"on {1e3 * sweep['enabled_seconds']:8.2f} ms  "
          f"overhead {sweep['overhead_pct']:+.2f}%")
    print(f"trace log: {log['enabled_spans_per_s']:,.0f} spans/s enabled "
          f"({log['enabled_us_per_span']:.1f} us/span); disabled path "
          f"{log['disabled_ns_per_span']:.0f} ns/span")

    report["metrics"] = metrics_block()
    output = args.output or os.path.join("results", "BENCH_obs.json")
    os.makedirs(os.path.dirname(output) or ".", exist_ok=True)
    with open(output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(f"saved: {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
