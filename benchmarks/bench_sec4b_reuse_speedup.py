"""Bench: Sec. IV-B — instruction-representation-reuse training speedup."""

from benchmarks._bench_util import bench_experiment


def test_sec4b_reuse_speedup(benchmark):
    result = bench_experiment(benchmark, "sec4b_reuse")
    speedups = [v for k, v in result.metrics.items() if k.startswith("speedup")]
    # reuse amortizes the foundation pass over all k microarchitectures
    assert max(speedups) > 2.0
