"""Bench: Sec. V-B — training-data volume ablation."""

from benchmarks._bench_util import bench_experiment


def test_sec5b_data_volume(benchmark):
    result = bench_experiment(benchmark, "sec5b_data_volume")
    m = result.metrics
    # the paper's shape: more instructions help generalization
    assert m["error_at_100pct_instructions"] <= m["error_at_10pct_instructions"]
