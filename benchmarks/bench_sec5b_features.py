"""Bench: Sec. V-B — memory/branch feature ablation."""

from benchmarks._bench_util import bench_experiment


def test_sec5b_features(benchmark):
    result = bench_experiment(benchmark, "sec5b_features")
    # the paper's shape: removing stack-distance and branch features hurts
    # (paper: 5.5% -> 17.0%)
    assert result.metrics["masked_features_error"] > result.metrics[
        "full_features_error"
    ]
