"""Serving benchmark: latency distributions, batching, cluster scaling.

Measures the serving paths against the same stored model:

* **singles** — ``Session.predict`` once per request (each call resolves
  and loads the artifact, then runs a one-stream engine pass: the
  pre-serving-layer cost model).  Every request is timed individually,
  so the latency numbers are real p50/p95/p99 percentiles over the
  distribution, not a whole-batch average;
* **batched** — one ``Session.predict_many`` over the identical request
  list (one artifact load, one multi-stream no-grad engine pass).  The
  request list is a realistic serving mix — each benchmark appears
  ``--repeats`` times — so this speedup combines cross-request batching
  *and* the coalescing of hot repeated benchmarks;
* **distinct** — the same comparison over each benchmark exactly once,
  isolating cross-request batching (no coalescing contribution);
* **engine** — the no-grad fused forward vs the training-mode autograd
  forward on the same inference batch, isolating the kernel win;
* **load** — the multi-worker cluster under sustained **open-loop**
  traffic: for each worker count in ``--workers``, arrivals are issued
  on a fixed schedule (independent of completions, so queueing delay is
  charged to the request — no coordinated omission) and the section
  reports p50/p95/p99 latency plus achieved throughput per worker
  count.  The offered rate deliberately exceeds single-worker capacity,
  so achieved throughput ≈ capacity and the worker-scaling ratio is
  visible directly.

Results are printed and written to ``BENCH_serving.json`` (under
``results/`` by default).  Run directly::

    PYTHONPATH=src python benchmarks/bench_serving.py --scale smoke \
        --workers 1,2

Acceptance bars at smoke scale: ``batched.speedup >= 3`` (serving
refactor) and with ``--workers 1,2`` a ``>= 1.3x`` throughput ratio at
2 workers with ``p99 < 10 * p50`` per worker count (cluster refactor).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from _bench_util import (
    latency_summary,
    metrics_block,
    open_loop,
    percentile,
    time_each,
)


def _time(fn, repeats: int = 1) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_serving(
    scale: str = "smoke",
    benchmarks: list[str] | None = None,
    repeats: int = 4,
    cache_dir: str | None = None,
    jit_enabled: bool | None = None,
) -> dict:
    from repro import jit
    from repro.api import Session
    from repro.ml.autograd import Tensor
    from repro.workloads import TEST_BENCHMARKS

    jit.reset_stats()  # scope the kernel-tier counters to this run
    session = Session(scale=scale, cache_dir=cache_dir, jit=jit_enabled)
    trained = session.train()
    benchmarks = benchmarks or list(TEST_BENCHMARKS)
    request_list = benchmarks * repeats

    # warm-up: fill the feature cache so both paths measure inference +
    # model handling, not first-touch trace encoding
    for name in benchmarks:
        session.features(name)

    lat_singles = time_each(session.predict, request_list)
    t_singles = sum(lat_singles)
    t_batched = _time(lambda: session.predict_many(request_list))

    # batching alone: every benchmark exactly once, nothing to coalesce
    t_singles_distinct = sum(time_each(session.predict, benchmarks))
    t_batched_distinct = _time(lambda: session.predict_many(benchmarks))

    # engine microbenchmark: one inference batch, no-grad vs autograd
    model = trained.model.perfvec
    chunk_len = trained.model.chunk_len
    feats = session.features(benchmarks[0])
    full = (len(feats) // chunk_len) * chunk_len
    batch = feats[:full].reshape(-1, chunk_len, feats.shape[1])
    t_infer = _time(lambda: model.foundation.infer(batch), repeats=3)
    t_train_fwd = _time(
        lambda: model.foundation(Tensor(batch)), repeats=3
    )

    n = len(request_list)
    report = {
        "scale": scale,
        # which trace frontend benchmark names resolved against
        "frontend": session.frontend,
        "benchmarks": benchmarks,
        "requests": n,
        "singles": {
            "seconds": t_singles,
            "latency_ms": 1e3 * t_singles / n,
            "throughput_rps": n / t_singles,
            "latency": latency_summary(lat_singles),
        },
        "batched": {
            "seconds": t_batched,
            "latency_ms": 1e3 * t_batched / n,
            "throughput_rps": n / t_batched,
            "speedup": t_singles / t_batched,
        },
        "distinct": {
            "requests": len(benchmarks),
            "singles_seconds": t_singles_distinct,
            "batched_seconds": t_batched_distinct,
            "speedup": t_singles_distinct / t_batched_distinct,
        },
        "engine": {
            "batch_shape": list(batch.shape),
            "infer_seconds": t_infer,
            "train_forward_seconds": t_train_fwd,
            "speedup": t_train_fwd / t_infer,
        },
    }
    # which kernel tier served the run: compiled (repro.jit) or reference
    with session._jit_scope():
        report["jit"] = jit.stats()
    return report


def _worker_jit_summary(worker_stats: dict) -> dict:
    """Per-worker kernel-tier provenance, compacted for the report."""
    summary = {}
    for wid, stats in worker_stats.items():
        payload = stats.get("jit") if isinstance(stats, dict) else None
        if not isinstance(payload, dict):
            summary[str(wid)] = {"error": str(stats)}
            continue
        calls = payload.get("kernel_calls", 0)
        summary[str(wid)] = {
            "enabled": payload.get("enabled"),
            "tier": "compiled" if calls else "reference",
            "kernel_calls": calls,
            "compiles": payload.get("compiles", 0),
            "disk_hits": payload.get("disk_hits", 0),
        }
    return summary


def bench_cluster_load(
    scale: str = "smoke",
    benchmarks: list[str] | None = None,
    worker_counts: list[int] | None = None,
    requests: int = 200,
    rate_rps: float = 0.0,
    cache_dir: str | None = None,
    jit_enabled: bool | None = None,
) -> dict:
    """Open-loop load against the worker cluster, per worker count."""
    from repro.api import Session
    from repro.serving import DispatchPolicy, PredictionCluster, ServeRequest
    from repro.workloads import TEST_BENCHMARKS

    session = Session(scale=scale, cache_dir=cache_dir, jit=jit_enabled)
    session.train()  # reuses the stored artifact when warm
    benchmarks = benchmarks or list(TEST_BENCHMARKS)
    worker_counts = worker_counts or [1, 2]
    for name in benchmarks:  # warm the on-disk feature cache once
        session.features(name)

    request_list = [
        ServeRequest(benchmark=benchmarks[i % len(benchmarks)])
        for i in range(requests)
    ]
    section: dict = {"requests": requests, "workers": {}}
    for count in sorted(worker_counts):
        policy = DispatchPolicy(
            # the harness saturates on purpose: the queue must hold the
            # whole run (rejection is load-shedding, not a measurement),
            # and every worker is a candidate for the single hot model
            queue_depth=max(64, 2 * requests),
            queue_timeout_s=600.0,
            replicas=max(2, count),
        )
        with PredictionCluster(
            workers=count, scale=scale, cache_dir=cache_dir, policy=policy,
            jit=jit_enabled,
        ) as cluster:
            # warm every worker's model/feature caches out of the
            # measurement window
            warm = [
                cluster.submit(ServeRequest(benchmark=name))
                for name in benchmarks * count
            ]
            serial_s = []
            for future in warm:
                future.result(timeout=300)
            for name in benchmarks:
                start = time.perf_counter()
                cluster.predict(ServeRequest(benchmark=name), timeout=300)
                serial_s.append(time.perf_counter() - start)
            if rate_rps > 0:
                rate = rate_rps
            else:
                # far above any worker count's capacity (micro-batching
                # lifts a worker well past its serial rate), so achieved
                # throughput ~= capacity and the scaling ratio is real
                rate = 20.0 / percentile(serial_s, 50)
            outcome = open_loop(
                cluster.submit, request_list, rate, timeout_s=600.0
            )
            # ask the workers which tier actually served (before teardown)
            worker_jit = _worker_jit_summary(
                cluster.stats().get("worker_stats", {})
            )
        row = latency_summary(outcome["latencies_s"])
        row["jit"] = worker_jit
        row.update(
            offered_rps=rate,
            throughput_rps=outcome["completed"] / outcome["elapsed_s"],
            completed=outcome["completed"],
            errors=outcome["errors"],
            elapsed_s=outcome["elapsed_s"],
        )
        section["workers"][str(count)] = row
    counts = sorted(section["workers"], key=int)
    if len(counts) > 1:
        base = section["workers"][counts[0]]["throughput_rps"]
        peak = section["workers"][counts[-1]]["throughput_rps"]
        section["scaling"] = {
            "from_workers": int(counts[0]),
            "to_workers": int(counts[-1]),
            "throughput_ratio": peak / base,
        }
    # real prediction work is CPU-bound: worker scaling needs cores
    section["host_cpus"] = os.cpu_count()
    return section


class _FixedServiceWorker:
    """A dispatcher-only worker that serves each request in a fixed time.

    Serving happens on the lane's sender thread (one request at a time,
    like a serial worker), so N workers have exactly N of these running
    concurrently — the ideal the dispatcher should expose.
    """

    def __init__(self, service_s: float):
        self.service_s = service_s
        self.dispatcher = None  # wired after Dispatcher.add_worker

    def send_requests(self, items) -> None:
        for rid, _payload in items:
            time.sleep(self.service_s)
            self.dispatcher.complete(rid, None)

    def send_control(self, cid, payload) -> None:
        self.dispatcher.control_reply(cid, True, None)

    def close(self) -> None:
        pass


def bench_dispatch_calibration(
    worker_counts: list[int],
    requests: int = 300,
    service_ms: float = 2.0,
) -> dict:
    """Dispatcher scaling with synthetic fixed service times.

    Workers *sleep* for a known service time instead of computing, so
    this isolates the dispatch machinery (lanes, routing, watchdog) from
    host core count: even on one core, N sleeping workers must yield
    ~N x throughput.  It validates the harness and the dispatcher — the
    ``load`` section above is the real-prediction measurement.
    """
    from repro.serving.dispatch import Dispatcher, DispatchPolicy

    service_s = service_ms / 1e3
    section: dict = {
        "requests": requests, "service_ms": service_ms, "workers": {},
    }
    for count in sorted(worker_counts):
        dispatcher = Dispatcher(DispatchPolicy(
            queue_depth=2 * requests, queue_timeout_s=600.0,
            replicas=max(2, count),
        ))
        try:
            for _ in range(count):
                worker = _FixedServiceWorker(service_s)
                worker.dispatcher = dispatcher
                dispatcher.add_worker(worker)
            rate = 5.0 * max(worker_counts) / service_s
            outcome = open_loop(
                lambda payload: dispatcher.submit(payload, key="calib"),
                list(range(requests)), rate, timeout_s=600.0,
            )
        finally:
            dispatcher.close()
        row = latency_summary(outcome["latencies_s"])
        row.update(
            offered_rps=rate,
            throughput_rps=outcome["completed"] / outcome["elapsed_s"],
            completed=outcome["completed"],
            errors=outcome["errors"],
        )
        section["workers"][str(count)] = row
    counts = sorted(section["workers"], key=int)
    if len(counts) > 1:
        base = section["workers"][counts[0]]["throughput_rps"]
        peak = section["workers"][counts[-1]]["throughput_rps"]
        section["scaling"] = {
            "from_workers": int(counts[0]),
            "to_workers": int(counts[-1]),
            "throughput_ratio": peak / base,
        }
    return section


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default=os.environ.get(
        "REPRO_BENCH_SCALE", "smoke"))
    parser.add_argument("--repeats", type=int, default=4,
                        help="times each benchmark appears in the request list")
    parser.add_argument("--workers", default="",
                        help="comma-separated worker counts for the cluster "
                             "load section, e.g. 1,2 (empty: skip)")
    parser.add_argument("--requests", type=int, default=200,
                        help="open-loop requests per worker count")
    parser.add_argument("--rate", type=float, default=0.0,
                        help="offered request rate (req/s; 0: auto, "
                             "~2.5x one worker's capacity)")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="JSON output (default: results/BENCH_serving.json)")
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--jit", action=argparse.BooleanOptionalAction,
                        default=None,
                        help="force the compiled kernel tier on/off "
                             "(default: REPRO_JIT env, else on)")
    args = parser.parse_args(argv)

    report = bench_serving(
        scale=args.scale, repeats=args.repeats, cache_dir=args.cache_dir,
        jit_enabled=args.jit,
    )
    singles = report["singles"]
    batched = report["batched"]
    engine = report["engine"]
    print(f"# bench_serving scale={report['scale']} "
          f"requests={report['requests']}")
    lat = singles["latency"]
    print(f"singles: p50 {lat['p50_ms']:7.2f} ms  p95 {lat['p95_ms']:7.2f} ms"
          f"  p99 {lat['p99_ms']:7.2f} ms  {singles['throughput_rps']:8.1f}"
          f" req/s")
    print(f"batched: {batched['latency_ms']:8.2f} ms/req  "
          f"{batched['throughput_rps']:8.1f} req/s  "
          f"speedup={batched['speedup']:.2f}x")
    distinct = report["distinct"]
    print(f"distinct ({distinct['requests']} unique): "
          f"batching-only speedup={distinct['speedup']:.2f}x")
    print(f"engine:  infer {1e3 * engine['infer_seconds']:.2f} ms vs "
          f"train-forward {1e3 * engine['train_forward_seconds']:.2f} ms  "
          f"({engine['speedup']:.2f}x)")
    jit_stats = report["jit"]
    print(f"jit:     enabled={jit_stats['enabled']}  "
          f"kernel_calls={jit_stats['kernel_calls']}  "
          f"compiles={jit_stats['compiles']}  "
          f"disk_hits={jit_stats['disk_hits']}")

    if args.workers:
        worker_counts = [int(w) for w in args.workers.split(",") if w]
        report["load"] = bench_cluster_load(
            scale=args.scale,
            worker_counts=worker_counts,
            requests=args.requests,
            rate_rps=args.rate,
            cache_dir=args.cache_dir,
            jit_enabled=args.jit,
        )
        for count, row in sorted(
            report["load"]["workers"].items(), key=lambda kv: int(kv[0])
        ):
            tiers = [w.get("tier", "?") for w in row["jit"].values()]
            print(f"load w={count}: p50 {row['p50_ms']:7.2f} ms  "
                  f"p95 {row['p95_ms']:7.2f} ms  p99 {row['p99_ms']:7.2f} ms"
                  f"  {row['throughput_rps']:8.1f} req/s  "
                  f"(offered {row['offered_rps']:.1f}, "
                  f"errors {row['errors']}, "
                  f"kernels: {','.join(tiers) or '?'})")
        scaling = report["load"].get("scaling")
        if scaling:
            print(f"load scaling {scaling['from_workers']}->"
                  f"{scaling['to_workers']} workers: "
                  f"{scaling['throughput_ratio']:.2f}x throughput "
                  f"(host cpus: {report['load']['host_cpus']})")
        report["calibration"] = bench_dispatch_calibration(worker_counts)
        cal = report["calibration"].get("scaling")
        if cal:
            print(f"dispatch calibration "
                  f"({report['calibration']['service_ms']:g} ms synthetic "
                  f"service) {cal['from_workers']}->{cal['to_workers']} "
                  f"workers: {cal['throughput_ratio']:.2f}x throughput")

    report["metrics"] = metrics_block()
    output = args.output or os.path.join("results", "BENCH_serving.json")
    os.makedirs(os.path.dirname(output) or ".", exist_ok=True)
    with open(output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(f"saved: {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
