"""Serving benchmark: single-request latency vs batched throughput.

Measures the serving paths against the same stored model:

* **singles** — ``Session.predict`` once per request (each call resolves
  and loads the artifact, then runs a one-stream engine pass: the
  pre-serving-layer cost model);
* **batched** — one ``Session.predict_many`` over the identical request
  list (one artifact load, one multi-stream no-grad engine pass).  The
  request list is a realistic serving mix — each benchmark appears
  ``--repeats`` times — so this speedup combines cross-request batching
  *and* the coalescing of hot repeated benchmarks;
* **distinct** — the same comparison over each benchmark exactly once,
  isolating cross-request batching (no coalescing contribution);
* **engine** — the no-grad fused forward vs the training-mode autograd
  forward on the same inference batch, isolating the kernel win.

Results are printed and written to ``BENCH_serving.json`` (under
``results/`` by default).  Run directly::

    PYTHONPATH=src python benchmarks/bench_serving.py --scale smoke

The acceptance bar for the serving refactor is ``batched.speedup >= 3``
at smoke scale.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time


def _time(fn, repeats: int = 1) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_serving(
    scale: str = "smoke",
    benchmarks: list[str] | None = None,
    repeats: int = 4,
    cache_dir: str | None = None,
) -> dict:
    from repro.api import Session
    from repro.ml.autograd import Tensor
    from repro.workloads import TEST_BENCHMARKS

    session = Session(scale=scale, cache_dir=cache_dir)
    trained = session.train()
    benchmarks = benchmarks or list(TEST_BENCHMARKS)
    request_list = benchmarks * repeats

    # warm-up: fill the feature cache so both paths measure inference +
    # model handling, not first-touch trace encoding
    for name in benchmarks:
        session.features(name)

    t_singles = _time(
        lambda: [session.predict(name) for name in request_list]
    )
    t_batched = _time(lambda: session.predict_many(request_list))

    # batching alone: every benchmark exactly once, nothing to coalesce
    t_singles_distinct = _time(
        lambda: [session.predict(name) for name in benchmarks]
    )
    t_batched_distinct = _time(lambda: session.predict_many(benchmarks))

    # engine microbenchmark: one inference batch, no-grad vs autograd
    model = trained.model.perfvec
    chunk_len = trained.model.chunk_len
    feats = session.features(benchmarks[0])
    full = (len(feats) // chunk_len) * chunk_len
    batch = feats[:full].reshape(-1, chunk_len, feats.shape[1])
    t_infer = _time(lambda: model.foundation.infer(batch), repeats=3)
    t_train_fwd = _time(
        lambda: model.foundation(Tensor(batch)), repeats=3
    )

    n = len(request_list)
    report = {
        "scale": scale,
        "benchmarks": benchmarks,
        "requests": n,
        "singles": {
            "seconds": t_singles,
            "latency_ms": 1e3 * t_singles / n,
            "throughput_rps": n / t_singles,
        },
        "batched": {
            "seconds": t_batched,
            "latency_ms": 1e3 * t_batched / n,
            "throughput_rps": n / t_batched,
            "speedup": t_singles / t_batched,
        },
        "distinct": {
            "requests": len(benchmarks),
            "singles_seconds": t_singles_distinct,
            "batched_seconds": t_batched_distinct,
            "speedup": t_singles_distinct / t_batched_distinct,
        },
        "engine": {
            "batch_shape": list(batch.shape),
            "infer_seconds": t_infer,
            "train_forward_seconds": t_train_fwd,
            "speedup": t_train_fwd / t_infer,
        },
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default=os.environ.get(
        "REPRO_BENCH_SCALE", "smoke"))
    parser.add_argument("--repeats", type=int, default=4,
                        help="times each benchmark appears in the request list")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="JSON output (default: results/BENCH_serving.json)")
    parser.add_argument("--cache-dir", default=None)
    args = parser.parse_args(argv)

    report = bench_serving(
        scale=args.scale, repeats=args.repeats, cache_dir=args.cache_dir
    )
    singles = report["singles"]
    batched = report["batched"]
    engine = report["engine"]
    print(f"# bench_serving scale={report['scale']} "
          f"requests={report['requests']}")
    print(f"singles: {singles['latency_ms']:8.2f} ms/req  "
          f"{singles['throughput_rps']:8.1f} req/s")
    print(f"batched: {batched['latency_ms']:8.2f} ms/req  "
          f"{batched['throughput_rps']:8.1f} req/s  "
          f"speedup={batched['speedup']:.2f}x")
    distinct = report["distinct"]
    print(f"distinct ({distinct['requests']} unique): "
          f"batching-only speedup={distinct['speedup']:.2f}x")
    print(f"engine:  infer {1e3 * engine['infer_seconds']:.2f} ms vs "
          f"train-forward {1e3 * engine['train_forward_seconds']:.2f} ms  "
          f"({engine['speedup']:.2f}x)")

    output = args.output or os.path.join("results", "BENCH_serving.json")
    os.makedirs(os.path.dirname(output) or ".", exist_ok=True)
    with open(output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(f"saved: {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
