"""Micro-benchmarks of the substrates PerfVec runs on.

Not a paper table; these track the throughput of the expensive building
blocks (VM tracing, timing simulation, feature encoding, foundation
training step) so performance regressions in the hot paths are visible.
"""

import numpy as np

from repro.core.foundation import make_foundation
from repro.core.perfvec import PerfVec
from repro.core.predictor import MicroarchTable
from repro.features import encode_trace
from repro.ml.autograd import Tensor, mse_loss
from repro.sim import CPUSimulator
from repro.uarch.presets import cortex_a7_like, skylake_like
from repro.workloads import trace_benchmark

N = 10_000


def test_vm_tracing_rate(benchmark):
    from repro.workloads.suite import clear_trace_cache

    def trace():
        clear_trace_cache()
        return trace_benchmark("505.mcf", N)

    result = benchmark(trace)
    assert len(result) == N


def test_simulator_rate_inorder(benchmark):
    trace = trace_benchmark("505.mcf", N)
    sim = CPUSimulator(cortex_a7_like())
    result = benchmark(sim.run, trace)
    assert result.total_cycles > 0


def test_simulator_rate_ooo(benchmark):
    trace = trace_benchmark("505.mcf", N)
    sim = CPUSimulator(skylake_like())
    result = benchmark(sim.run, trace)
    assert result.total_cycles > 0


def test_feature_encoding_rate(benchmark):
    trace = trace_benchmark("505.mcf", N)
    feats = benchmark(encode_trace, trace)
    assert feats.shape == (N, 51)


def test_foundation_training_step(benchmark):
    foundation = make_foundation("lstm-2-64", seed=0)
    model = PerfVec(foundation, MicroarchTable(13, 64))
    rng = np.random.default_rng(0)
    x = rng.random((16, 48, 51)).astype(np.float32)
    y = rng.random((16, 48, 13)).astype(np.float32)

    def step():
        model.zero_grad()
        preds, _, _ = model(Tensor(x))
        loss = mse_loss(preds, y)
        loss.backward()
        return loss

    loss = benchmark(step)
    assert loss.item() >= 0


def test_program_representation_inference(benchmark):
    trace = trace_benchmark("505.mcf", N)
    feats = encode_trace(trace)
    foundation = make_foundation("lstm-2-64", seed=0)
    model = PerfVec(foundation, MicroarchTable(13, 64))
    rep = benchmark(model.program_representation, feats, 48)
    assert rep.shape == (64,)
