"""Micro-benchmarks of the substrates PerfVec runs on.

Not a paper table; these track the throughput of the expensive building
blocks (VM tracing, timing simulation, feature encoding, foundation
training step) so performance regressions in the hot paths are visible.

The ``jit_comparison`` section times the :mod:`repro.jit` compiled
kernels against the numpy reference kernels on the scale's LSTM/GRU
substrate and checks their parity.  Run directly to produce the
committed report (the CI ``jit`` job gates on it)::

    PYTHONPATH=src python benchmarks/bench_substrate.py --scale smoke \
        --output benchmarks/BENCH_jit.json

Acceptance bar at smoke scale: every kernel's compiled-vs-reference
``speedup >= 1.5`` with ``max_abs_diff <= 1e-6``.
"""

import argparse
import json
import os
import sys
import time

import numpy as np

from repro import jit
from repro.core.foundation import make_foundation
from repro.core.perfvec import PerfVec
from repro.core.predictor import MicroarchTable
from repro.features import encode_trace
from repro.ml.autograd import Tensor, mse_loss
from repro.sim import CPUSimulator
from repro.uarch.presets import cortex_a7_like, skylake_like
from repro.workloads import trace_benchmark

N = 10_000


def test_vm_tracing_rate(benchmark):
    from repro.workloads.suite import clear_trace_cache

    def trace():
        clear_trace_cache()
        return trace_benchmark("505.mcf", N)

    result = benchmark(trace)
    assert len(result) == N


def test_simulator_rate_inorder(benchmark):
    trace = trace_benchmark("505.mcf", N)
    sim = CPUSimulator(cortex_a7_like())
    result = benchmark(sim.run, trace)
    assert result.total_cycles > 0


def test_simulator_rate_ooo(benchmark):
    trace = trace_benchmark("505.mcf", N)
    sim = CPUSimulator(skylake_like())
    result = benchmark(sim.run, trace)
    assert result.total_cycles > 0


def test_feature_encoding_rate(benchmark):
    trace = trace_benchmark("505.mcf", N)
    feats = benchmark(encode_trace, trace)
    assert feats.shape == (N, 51)


def test_foundation_training_step(benchmark):
    foundation = make_foundation("lstm-2-64", seed=0)
    model = PerfVec(foundation, MicroarchTable(13, 64))
    rng = np.random.default_rng(0)
    x = rng.random((16, 48, 51)).astype(np.float32)
    y = rng.random((16, 48, 13)).astype(np.float32)

    def step():
        model.zero_grad()
        preds, _, _ = model(Tensor(x))
        loss = mse_loss(preds, y)
        loss.backward()
        return loss

    loss = benchmark(step)
    assert loss.item() >= 0


def test_program_representation_inference(benchmark):
    trace = trace_benchmark("505.mcf", N)
    feats = encode_trace(trace)
    foundation = make_foundation("lstm-2-64", seed=0)
    model = PerfVec(foundation, MicroarchTable(13, 64))
    rep = benchmark(model.program_representation, feats, 48)
    assert rep.shape == (64,)


# ---------------------------------------------------------------------------
# the repro.jit compiled tier vs the numpy reference kernels
# ---------------------------------------------------------------------------
def _scale_batch(scale_name: str):
    """One inference batch shaped like the scale's training chunks."""
    from repro.experiments.common import get_scale

    scale = get_scale(scale_name)
    rng = np.random.default_rng(0)
    batch = rng.standard_normal(
        (scale.batch_size, scale.chunk_len, 51)
    ).astype(np.float32)
    return scale, batch


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def jit_comparison(scale_name: str = "smoke", repeats: int = 50) -> dict:
    """Compiled-vs-reference timings + parity on the scale's substrate.

    One row per recurrent kernel family, sized exactly like the scale's
    serving chunks (the hot loop :mod:`repro.jit` exists for).
    """
    scale, batch = _scale_batch(scale_name)
    hidden = scale.spec.split("-")[-1]
    layers = scale.spec.split("-")[-2]
    report: dict = {
        "scale": scale.name,
        "batch_shape": list(batch.shape),
        "repeats": repeats,
        "kernels": {},
    }
    for kind in ("lstm", "gru"):
        spec = f"{kind}-{layers}-{hidden}"
        foundation = make_foundation(spec, seed=0)
        with jit.context(enabled=False):
            reference, _ = foundation.infer(batch)
            t_ref = _best_of(lambda: foundation.infer(batch), repeats)
        with jit.context(enabled=True):
            compiled, _ = foundation.infer(batch)  # warm-up + compile
            t_jit = _best_of(lambda: foundation.infer(batch), repeats)
        report["kernels"][kind] = {
            "spec": spec,
            "reference_seconds": t_ref,
            "compiled_seconds": t_jit,
            "speedup": t_ref / t_jit,
            "max_abs_diff": float(np.max(np.abs(compiled - reference))),
        }
    report["jit_stats"] = jit.stats()
    return report


def test_lstm_infer_reference_tier(benchmark):
    _, batch = _scale_batch("smoke")
    foundation = make_foundation("lstm-1-16", seed=0)
    with jit.context(enabled=False):
        out, _ = benchmark(foundation.infer, batch)
    assert out.shape == batch.shape[:2] + (16,)


def test_lstm_infer_compiled_tier(benchmark):
    _, batch = _scale_batch("smoke")
    foundation = make_foundation("lstm-1-16", seed=0)
    with jit.context(enabled=True):
        foundation.infer(batch)  # compile outside the timed region
        out, _ = benchmark(foundation.infer, batch)
    assert out.shape == batch.shape[:2] + (16,)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="compiled-vs-reference kernel benchmark"
    )
    parser.add_argument("--scale", default=os.environ.get(
        "REPRO_BENCH_SCALE", "smoke"))
    parser.add_argument("--repeats", type=int, default=50,
                        help="timing repetitions (best-of)")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="JSON output (default: results/BENCH_jit.json)")
    args = parser.parse_args(argv)

    report = jit_comparison(args.scale, repeats=args.repeats)
    print(f"# bench_substrate jit scale={report['scale']} "
          f"batch={tuple(report['batch_shape'])}")
    for kind, row in report["kernels"].items():
        print(f"{kind:>4s} {row['spec']:<12s} "
              f"ref {1e3 * row['reference_seconds']:7.3f} ms  "
              f"jit {1e3 * row['compiled_seconds']:7.3f} ms  "
              f"speedup {row['speedup']:.2f}x  "
              f"max|diff| {row['max_abs_diff']:.2e}")
    from _bench_util import metrics_block

    report["metrics"] = metrics_block()
    output = args.output or os.path.join("results", "BENCH_jit.json")
    os.makedirs(os.path.dirname(output) or ".", exist_ok=True)
    with open(output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(f"saved: {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
