"""Distributed sweep benchmark: points/sec vs worker count.

Runs the cache-DSE grid (``cache_dse_sweep``: |L1| x |L2| x seeds
points, one ``dse_point`` stage each) through the pipeline executor
backends and measures sweep throughput:

* **local** — the sequential in-process baseline (one scenario at a
  time, no queue traffic);
* **queue w=N** — for each worker count in ``--workers``, a fresh cache
  root, a coordinator that enqueues the union DAG into the filesystem
  work queue, and N spawned worker processes that claim, execute and
  publish stages through the shared ``StageArtifactStore``.  Each
  configuration reports wall time, points/sec, and the per-worker
  executed/stolen/dedup split from the queue stats;
* **rerun** — the largest queue configuration is immediately re-run on
  its warm cache and must execute **zero** stages (first-publish-wins
  dedup means a re-run is a pure store read);
* **scaling** — the throughput ratio from the smallest to the largest
  queue worker count, plus ``host_cpus`` so single-core hosts are
  self-describing.

Results are printed and written to ``benchmarks/BENCH_sweep.json`` by
default (the committed copy).  Run directly::

    PYTHONPATH=src python benchmarks/bench_sweep.py --points 1008 \
        --workers 1,2

Acceptance bars (CI, multi-core runners): ``scaling.points_per_s_ratio
>= 1.3`` at 2 workers vs 1, and ``rerun.executed == 0``.  On a
single-core host the ratio is recorded but not meaningful — gate only
where ``meta.host_cpus >= 2``.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time


def _fresh_dir(root: str, name: str) -> str:
    path = os.path.join(root, name)
    os.makedirs(path, exist_ok=True)
    return path


def _sweep_spec(points: int, benchmark: str, scale: str):
    """The DSE grid sized to >= ``points`` via the seed axis."""
    from repro.core.dse import DEFAULT_L1_SIZES, DEFAULT_L2_SIZES
    from repro.pipeline.dse import cache_dse_sweep

    grid = len(DEFAULT_L1_SIZES) * len(DEFAULT_L2_SIZES)
    seeds = max(1, math.ceil(points / grid))
    sweep = cache_dse_sweep(benchmark=benchmark, seeds=seeds, scale=scale)
    return sweep, grid * seeds, seeds


def _worker_summary(stats: dict | None) -> dict:
    if not stats:
        return {}
    workers = stats.get("workers", {})
    return {
        "executed": {w: s["executed"] for w, s in workers.items()},
        "stolen": sum(s.get("stolen", 0) for s in workers.values()),
        "dedup_skips": sum(s.get("dedup_skips", 0)
                           for s in workers.values()),
        "reclaimed_leases": stats.get("reclaimed_leases", 0),
        "respawns": stats.get("respawns", 0),
        "peak_ready": stats.get("peak_ready", 0),
        "peak_leased": stats.get("peak_leased", 0),
    }


def bench_sweep(
    points: int = 1008,
    worker_counts: list[int] | None = None,
    benchmark: str = "505.mcf",
    scale: str = "smoke",
    work_dir: str | None = None,
) -> dict:
    from repro.pipeline.runner import run_sweep

    worker_counts = worker_counts or [1, 2]
    work_dir = work_dir or os.path.join(
        os.environ.get("TMPDIR", "/tmp"), "repro_bench_sweep"
    )
    sweep, total_points, seeds = _sweep_spec(points, benchmark, scale)

    report: dict = {
        "meta": {
            "benchmark": benchmark,
            "scale": scale,
            "frontend": "mini-asm",  # the trace source behind the grid
            "points": total_points,
            "seeds": seeds,
            "host_cpus": os.cpu_count() or 1,
        },
        "configs": {},
    }

    # sequential in-process baseline
    start = time.perf_counter()
    local = run_sweep(sweep, cache_dir=_fresh_dir(work_dir, "local"))
    wall = time.perf_counter() - start
    report["configs"]["local"] = {
        "executed": local.executed,
        "cached": local.cached,
        "wall_s": round(wall, 3),
        "points_per_s": round(local.executed / wall, 2),
    }

    # queue backend at each worker count, each on a fresh cache root
    best = None
    last_queue = None
    for count in worker_counts:
        cache_dir = _fresh_dir(work_dir, f"queue_w{count}")
        start = time.perf_counter()
        result = run_sweep(
            sweep, backend="queue", workers=count, cache_dir=cache_dir,
            backend_options={"lease_ttl_s": 60.0},
        )
        wall = time.perf_counter() - start
        report["configs"][f"queue_w{count}"] = {
            "executed": result.executed,
            "cached": result.cached,
            "wall_s": round(wall, 3),
            "points_per_s": round(result.executed / wall, 2),
            "queue": _worker_summary(result.stats),
        }
        last_queue = (count, cache_dir)

        for point in result:
            for outcome in point.outcomes:
                metrics = (outcome.payload or {}).get("metrics", {})
                if "objective" in metrics:
                    key = (metrics["objective"], metrics["l1_kb"],
                           metrics["l2_kb"])
                    if best is None or key < best:
                        best = key
    if best is not None:
        report["dse"] = {
            "objective": round(best[0], 6),
            "l1_kb": best[1],
            "l2_kb": best[2],
        }

    # warm re-run on the largest queue cache: must execute nothing
    if last_queue is not None:
        count, cache_dir = last_queue
        start = time.perf_counter()
        rerun = run_sweep(
            sweep, backend="queue", workers=count, cache_dir=cache_dir,
            backend_options={"lease_ttl_s": 60.0},
        )
        report["rerun"] = {
            "workers": count,
            "executed": rerun.executed,
            "cached": rerun.cached,
            "fully_cached": rerun.fully_cached,
            "wall_s": round(time.perf_counter() - start, 3),
        }

    if len(worker_counts) >= 2:
        low, high = min(worker_counts), max(worker_counts)
        low_rate = report["configs"][f"queue_w{low}"]["points_per_s"]
        high_rate = report["configs"][f"queue_w{high}"]["points_per_s"]
        report["scaling"] = {
            "from_workers": low,
            "to_workers": high,
            "points_per_s_ratio": round(high_rate / low_rate, 3),
        }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--points", type=int, default=1008,
                        help="minimum sweep size (rounded up to fill the "
                             "L1 x L2 grid; seeds axis supplies the rest)")
    parser.add_argument("--workers", default="1,2",
                        help="comma-separated queue worker counts")
    parser.add_argument("--benchmark", default="505.mcf")
    parser.add_argument("--scale", default="smoke",
                        choices=["smoke", "bench", "paper"])
    parser.add_argument("--work-dir", default=None,
                        help="scratch root for per-config cache dirs")
    parser.add_argument("--output", default=None,
                        help="JSON path (default: benchmarks/"
                             "BENCH_sweep.json next to this script)")
    args = parser.parse_args(argv)

    worker_counts = [int(w) for w in args.workers.split(",") if w]
    report = bench_sweep(
        points=args.points,
        worker_counts=worker_counts,
        benchmark=args.benchmark,
        scale=args.scale,
        work_dir=args.work_dir,
    )

    meta = report["meta"]
    print(f"sweep: {meta['points']} points ({meta['seeds']} seeds x "
          f"L1xL2 grid), {meta['benchmark']} @ {meta['scale']}, "
          f"host cpus: {meta['host_cpus']}")
    for name, row in report["configs"].items():
        extra = ""
        queue = row.get("queue")
        if queue:
            extra = (f"  (stolen {queue['stolen']}, "
                     f"dedup {queue['dedup_skips']}, "
                     f"reclaimed {queue['reclaimed_leases']})")
        print(f"{name:>9s}: {row['executed']:5d} executed in "
              f"{row['wall_s']:7.2f}s  {row['points_per_s']:8.1f} "
              f"points/s{extra}")
    rerun = report.get("rerun")
    if rerun:
        print(f"    rerun: {rerun['executed']} executed, "
              f"{rerun['cached']} cached in {rerun['wall_s']:.2f}s "
              f"(fully_cached={rerun['fully_cached']})")
    dse = report.get("dse")
    if dse:
        print(f"      dse: best objective {dse['objective']:.4f} at "
              f"L1={dse['l1_kb']}kB L2={dse['l2_kb']}kB")
    scaling = report.get("scaling")
    if scaling:
        print(f"  scaling: {scaling['from_workers']}->"
              f"{scaling['to_workers']} workers: "
              f"{scaling['points_per_s_ratio']:.2f}x points/s")

    from _bench_util import metrics_block

    report["metrics"] = metrics_block()
    output = args.output or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "BENCH_sweep.json"
    )
    os.makedirs(os.path.dirname(output) or ".", exist_ok=True)
    with open(output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(f"saved: {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
