"""Bench: Table III — modeling-approach comparison with measured speeds."""

from benchmarks._bench_util import bench_experiment


def test_table3_comparison(benchmark):
    result = bench_experiment(benchmark, "table3_comparison")
    # PerfVec's program prediction is a dot product: microseconds,
    # independent of program length
    assert result.metrics["perfvec_predict_seconds"] < 1e-3
    assert result.metrics["ithemal_ips"] > 0
