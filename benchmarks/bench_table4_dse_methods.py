"""Bench: Table IV — DSE method overhead vs quality."""

from benchmarks._bench_util import bench_experiment


def test_table4_dse_methods(benchmark):
    result = bench_experiment(benchmark, "table4_dse_methods")
    m = result.metrics
    # the paper's headline: PerfVec explores with far fewer simulations
    assert m["perfvec_sims"] < m["mlp_sims"]
    assert m["perfvec_sims"] < m["actboost_sims"]
    assert m["perfvec_sims"] < m["cross_program_sims"]
