"""Design space exploration demo (paper Sec. VI-A, scaled down).

Explores L1D x L2 cache sizes around the Cortex-A7-like core for one
program, comparing PerfVec's predicted objective surface against exhaustive
simulation.  The PerfVec path simulates only a *sampled* subset of the grid
on tuning programs, then predicts everything else with dot products.
"""

import numpy as np

from repro.core.dse import CacheDSE
from repro.core.predictor import TICK_SCALE
from repro.core.training import FoundationTrainConfig, train_foundation
from repro.core.uarch_model import cache_size_params, train_uarch_model
from repro.experiments.common import render_surface
from repro.features.dataset import build_dataset
from repro.uarch.presets import cortex_a7_like

TARGET = "508.namd"
TUNING = ["525.x264", "557.xz"]
N_INSTR = 3000


def main() -> None:
    dse = CacheDSE(cortex_a7_like(), l1_sizes=(4, 16, 64), l2_sizes=(256, 1024, 4096))
    print(f"design space: {len(dse)} configurations")

    # a quick foundation model (pretend it is the pre-trained one)
    from repro.uarch import sample_configs

    base_configs = sample_configs(n_ooo=4, n_inorder=2, seed=11,
                                  include_presets=False)
    train_ds = build_dataset(TUNING + ["544.nab"], base_configs, N_INSTR)
    model, _ = train_foundation(
        train_ds,
        FoundationTrainConfig(spec="lstm-1-32", chunk_len=32, batch_size=8,
                              epochs=6, seed=2),
    )

    # tuning: sample half the grid, simulate the tuning programs there
    sampled = dse.sample_configs(len(dse) // 2, seed=0)
    tuning_cfgs = [dse.configs[i] for i in sampled]
    print(f"simulating tuning set: {len(TUNING)} programs x {len(tuning_cfgs)} configs")
    tune_ds = build_dataset(TUNING, tuning_cfgs, N_INSTR)
    uarch = train_uarch_model(
        model, tuning_cfgs, tune_ds.features, tune_ds.targets,
        extractor=cache_size_params, chunk_len=32, seed=0,
    )

    # predict the whole grid for the target program
    target_ds = build_dataset([TARGET], dse.configs, N_INSTR)
    feats, targets = target_ds.segment(TARGET)
    rep = model.program_representation(feats, chunk_len=32)
    m_all = uarch.representations(dse.configs, cache_size_params)
    predicted = (rep @ m_all.T.astype(np.float64)) / TICK_SCALE
    true = targets.astype(np.float64).sum(axis=0)

    l1_labels = [f"{s}k" for s in dse.l1_sizes]
    l2_labels = [f"{s}k" for s in dse.l2_sizes]
    print()
    print(render_surface(dse.objective_surface(true) / 1e6, l1_labels,
                         l2_labels, f"{TARGET} objective — simulator (x1e6):"))
    print()
    print(render_surface(dse.objective_surface(predicted) / 1e6, l1_labels,
                         l2_labels, f"{TARGET} objective — PerfVec (x1e6):"))
    quality = dse.rank_quality(dse.objective_values(predicted),
                               dse.objective_values(true))
    print(f"\nchosen design rank: {quality.rank} of {len(dse)} "
          f"({quality.frac_better:.0%} of designs are better)")


if __name__ == "__main__":
    main()
