"""A user-defined scenario with custom analysis logic — no experiment module.

Builds a pipeline spec in Python, registers a one-off analysis function,
and runs it twice to show per-stage artifact reuse::

    PYTHONPATH=src python examples/custom_scenario.py

The analysis ranks two stored-model families (PerfVec vs the Ithemal
baseline) on one unseen benchmark — a scenario no paper figure
covers, expressed in ~40 lines.
"""

from repro.pipeline import ExperimentSpec, Runner, analysis, stage

SCALE = "smoke"
TRAIN = ["999.specrand", "505.mcf"]
TARGET = "519.lbm"


@analysis("family_shootout")
def family_shootout(ctx, params, inputs):
    """Compare the upstream train stages' models on the target benchmark."""
    from repro.api import Session

    session = Session(scale=ctx.scale, cache_dir=ctx.cache_dir, jobs=ctx.jobs)
    rows = []
    errors = {}
    for need in params["contenders"]:
        payload = inputs[need]
        summary = session.evaluate(
            [params["target"]], artifact=payload["artifact"],
            family=payload["family"],
        )[params["target"]]
        errors[payload["family"]] = summary.mean
        rows.append([payload["family"], payload["artifact"],
                     f"{summary.mean:.1%}", f"{summary.max:.1%}"])
    best = min(errors, key=errors.get)
    return {
        "title": f"Model-family shootout on {params['target']}",
        "headers": ["family", "artifact", "mean err", "max err"],
        "rows": rows,
        "metrics": {f"{k}_error": v for k, v in errors.items()},
        "notes": [f"best family on {params['target']}: {best}"],
    }


SPEC = ExperimentSpec(
    name="family_shootout",
    title="PerfVec vs Ithemal baseline on an unseen program",
    scale=SCALE,
    stages=(
        stage("data", "dataset", benchmarks=TRAIN),
        stage("perfvec", "train", benchmarks=TRAIN, needs=("data",)),
        stage("ithemal", "train", benchmarks=TRAIN, family="ithemal",
              needs=("data",)),
        stage("analyze", "analysis", fn="family_shootout",
              contenders=["perfvec", "ithemal"], target=TARGET,
              needs=("perfvec", "ithemal")),
        stage("report", "report", needs=("analyze",)),
    ),
)


def main() -> None:
    first = Runner(SPEC, jobs=1).run()
    print(first.render())
    second = Runner(SPEC, jobs=1).run()
    print(second.summary())
    assert second.fully_cached, "repeat run must be answered from artifacts"


if __name__ == "__main__":
    main()
