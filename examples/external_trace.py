"""External trace ingestion walkthrough: import, train, predict.

The trace frontends make the *producer* of instruction traces
pluggable: the bundled mini-ASM VM, the RV32IM-ish frontend, or — this
example — traces produced by an external tool (a real-hardware tracer,
another simulator) and shipped as JSONL/CSV.

The walkthrough:

1. imports the hand-written ``external_trace.jsonl`` next to this
   script (the documented row schema, mnemonics + register names),
2. re-imports it to show the content-addressed cache hit,
3. exports a longer RV kernel trace and imports it as a second
   external benchmark,
4. trains an Ithemal-style model on the imported suite and predicts,
5. demonstrates the located diagnostics malformed input produces.

Everything runs in a throwaway cache directory in well under a minute.
"""

import json
import os
import tempfile

workdir = tempfile.mkdtemp(prefix="external_trace_example_")
# the imported-trace registry lives under the cache root; keep the
# example self-contained instead of touching .repro_cache/
os.environ["REPRO_CACHE_DIR"] = os.path.join(workdir, "cache")

from repro.api import Session  # noqa: E402
from repro.frontends import get_frontend  # noqa: E402
from repro.frontends.trace_import import (  # noqa: E402
    TraceImportError,
    export_trace,
    import_trace,
)

HERE = os.path.dirname(os.path.abspath(__file__))

# -- 1. import the documented JSONL schema ------------------------------
result = import_trace(os.path.join(HERE, "external_trace.jsonl"), name="loop")
print(f"imported {result.name!r}: {result.rows} rows, "
      f"digest {result.digest[:12]}, cache_hit={result.cache_hit}")

# -- 2. unchanged source bytes -> pure cache hit, nothing re-parsed -----
again = import_trace(os.path.join(HERE, "external_trace.jsonl"), name="loop")
print(f"re-import: cache_hit={again.cache_hit}")
assert again.cache_hit and again.digest == result.digest

# -- 3. a bigger external benchmark (here: exported from the RV
#       frontend, standing in for a real tracer) ------------------------
rv_trace = get_frontend("rv").trace("rv.crc", 4000)
crc_path = os.path.join(workdir, "crc.jsonl.gz")
export_trace(rv_trace, crc_path)
crc = import_trace(crc_path, name="crc_ext")
print(f"imported {crc.name!r}: {crc.rows} rows from gzip")

# -- 4. imported traces are first-class benchmarks ----------------------
session = Session(scale="smoke", frontend="imported")
train = session.train(family="ithemal", benchmarks=("crc_ext",), epochs=2)
print(f"trained artifact {train.artifact_id[:12]} on the imported suite")
for name in ("crc_ext", "loop"):
    times = session.predict(name, artifact=train.artifact_id)
    first = next(iter(times.items()))
    print(f"predict {name!r}: {first[0]} -> {first[1]:.1f} ticks "
          f"({len(times)} configs)")

# -- 5. malformed input is located, and publishes nothing ---------------
bad_path = os.path.join(workdir, "bad.jsonl")
with open(bad_path, "w") as fh:
    fh.write(json.dumps({"pc": 0, "op": "add"}) + "\n")
    fh.write(json.dumps({"pc": 4, "op": "vfmadd213ps"}) + "\n")
try:
    import_trace(bad_path, name="bad")
except TraceImportError as exc:
    print(f"rejected as expected: {exc}")
