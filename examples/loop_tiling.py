"""Loop-tiling analysis demo (paper Sec. VI-B, Fig. 8, scaled down).

Compares simulator and PerfVec execution-time estimates of a tiled matrix
multiply across tile sizes on the Cortex-A7-like core, and prints a small
ASCII chart of both series.
"""

import numpy as np

from repro.core.finetune import learn_unseen_uarch_table
from repro.core.predictor import TICK_SCALE
from repro.core.training import FoundationTrainConfig, train_foundation
from repro.features import encode_trace
from repro.features.dataset import build_dataset
from repro.sim import simulate
from repro.uarch import sample_configs
from repro.uarch.presets import cortex_a7_like
from repro.vm import run_program
from repro.workloads.kernels.linear_algebra import matmul

TILES = (1, 2, 4, 8, 16, 48)
BUDGET = 4000


def ascii_series(label: str, values, width: int = 40) -> None:
    top = max(values)
    for tile, v in zip(TILES, values):
        bar = "#" * max(1, int(round(v / top * width)))
        print(f"  {label} tile={tile:<3d} {bar} {v / 1e4:.1f} us")


def main() -> None:
    a7 = cortex_a7_like()
    configs = sample_configs(n_ooo=4, n_inorder=2, seed=5, include_presets=False)
    train_ds = build_dataset(["538.imagick", "557.xz", "544.nab"], configs, BUDGET)
    model, _ = train_foundation(
        train_ds,
        FoundationTrainConfig(spec="lstm-1-32", chunk_len=32, batch_size=8,
                              epochs=6, seed=4),
    )
    # learn the A7's representation from a small tuning run (frozen model)
    tune_ds = build_dataset(["557.xz"], [a7], BUDGET)
    table = learn_unseen_uarch_table(model, tune_ds.features, tune_ds.targets,
                                     chunk_len=32)
    a7_rep = table.table.data[0]

    sim_times, pv_times = [], []
    for tile in TILES:
        trace = run_program(matmul(n=48, tile=tile, reps=10_000),
                            max_instructions=BUDGET)
        sim_times.append(
            float(simulate(trace, a7).incremental_latencies.astype(np.float64).sum())
        )
        rep = model.program_representation(encode_trace(trace), chunk_len=32)
        pv_times.append(float(rep @ a7_rep.astype(np.float64)) / TICK_SCALE)

    print("execution time of an equal instruction budget per tile size:\n")
    ascii_series("sim    ", sim_times)
    print()
    ascii_series("perfvec", pv_times)
    print(f"\nsimulator optimum: tile={TILES[int(np.argmin(sim_times))]}, "
          f"perfvec optimum: tile={TILES[int(np.argmin(pv_times))]}")


if __name__ == "__main__":
    main()
