"""Quickstart: train a small PerfVec foundation model and predict.

Walks the full pipeline in miniature:

1. trace benchmarks with the functional VM,
2. simulate them on sampled microarchitectures (incremental latencies),
3. jointly train a foundation model + microarchitecture table with
   representation reuse,
4. compose a program representation by summing instruction representations,
5. predict total execution time with one dot product per microarchitecture.

Runs in well under a minute on a laptop CPU.  For the full-scale version
use ``python -m repro run-all --scale paper``.
"""

import numpy as np

from repro.core.errors import abs_rel_error
from repro.core.training import FoundationTrainConfig, train_foundation
from repro.features.dataset import build_dataset
from repro.uarch import sample_configs
from repro.workloads import TRAIN_BENCHMARKS


def main() -> None:
    # 1-2: trace three benchmarks and time them on six microarchitectures
    configs = sample_configs(n_ooo=4, n_inorder=2, seed=7, include_presets=False)
    benchmarks = list(TRAIN_BENCHMARKS[:3])
    print(f"building dataset: {benchmarks} x {len(configs)} microarchitectures")
    dataset = build_dataset(benchmarks, configs, max_instructions=3000)
    print(f"  {len(dataset):,} instructions, {dataset.num_configs} target columns")

    # 3: train the foundation model (microarchitecture sampling + reuse)
    print("training foundation model (lstm-1-32, a few epochs)...")
    model, history = train_foundation(
        dataset,
        FoundationTrainConfig(
            spec="lstm-1-32", chunk_len=32, batch_size=8, epochs=6, seed=0
        ),
    )
    print(f"  best validation loss: {history.best_val_loss:.4f} "
          f"(epoch {history.best_epoch})")

    # 4: program representation = sum of instruction representations
    feats, targets = dataset.segment(benchmarks[0])
    program_rep = model.program_representation(feats, chunk_len=32)
    print(f"program representation of {benchmarks[0]}: "
          f"{program_rep.shape[0]}-dim vector, |R| = {np.linalg.norm(program_rep):.2f}")

    # 5: one dot product per microarchitecture
    predicted = model.predict_program_times(feats, chunk_len=32)
    true = targets.astype(np.float64).sum(axis=0)
    print(f"\n{'microarchitecture':24s} {'true (us)':>10s} {'pred (us)':>10s} {'err':>7s}")
    for name, t, p in zip(dataset.config_names, true, predicted):
        print(f"{name:24s} {t / 1e4:10.2f} {p / 1e4:10.2f} "
              f"{abs(p - t) / t:7.1%}")
    print(f"\nmean error: {abs_rel_error(predicted, true).mean():.1%}")


if __name__ == "__main__":
    main()
