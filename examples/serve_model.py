"""Train once, serve anywhere: the `repro.api.Session` facade.

Run twice to see the artifact store at work::

    PYTHONPATH=src python examples/serve_model.py
    PYTHONPATH=src python examples/serve_model.py   # reuses, no retraining

Equivalent CLI: ``repro train --scale smoke`` then
``repro predict 505.mcf --scale smoke --evaluate``.
"""

from repro.api import Session, predicted_times_row

session = Session(scale="smoke")

result = session.train()  # loads the stored artifact when one matches
print(f"artifact {result.artifact_id} "
      f"({'reused from store' if result.reused else 'freshly trained'})")

# Pure serving: trace -> features -> stored model. No simulation.
times = session.predict("505.mcf")
print("505.mcf:", predicted_times_row(times))

# Against simulated ground truth (505.mcf is an *unseen* program):
for name, summary in session.evaluate(["505.mcf"]).items():
    print(f"{name}: {summary.row()}")
