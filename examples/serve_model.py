"""Train once, serve anywhere — including over HTTP.

Run twice to see the artifact store at work::

    PYTHONPATH=src python examples/serve_model.py
    PYTHONPATH=src python examples/serve_model.py   # reuses, no retraining

Equivalent CLI: ``repro train --scale smoke`` then
``repro predict 505.mcf --scale smoke --evaluate`` then
``repro serve --scale smoke --port 8080``.
"""

import json
import threading
import urllib.request

from repro.api import Session, predicted_times_row
from repro.serving import PredictionService, ServeRequest, make_server

session = Session(scale="smoke")

result = session.train()  # loads the stored artifact when one matches
print(f"artifact {result.artifact_id} "
      f"({'reused from store' if result.reused else 'freshly trained'})")

# Pure serving: cached features -> stored model. No simulation.
times = session.predict("505.mcf")
print("505.mcf:", predicted_times_row(times))

# Batched serving: several benchmarks through one no-grad engine pass.
for name, row in session.predict_many(["505.mcf", "519.lbm"]).items():
    print(f"{name} (batched): {predicted_times_row(row)}")

# Against simulated ground truth (505.mcf is an *unseen* program):
for name, summary in session.evaluate(["505.mcf"]).items():
    print(f"{name}: {summary.row()}")

# The same predictions as a service: micro-batching queue + HTTP endpoint.
service = PredictionService(session=session)
print("service:", service.predict(ServeRequest(benchmark="505.mcf")).times)

server = make_server(service, port=0)  # port=0: pick a free port
port = server.server_address[1]
threading.Thread(target=server.serve_forever, daemon=True).start()

request = urllib.request.Request(
    f"http://127.0.0.1:{port}/v1/predict",
    data=json.dumps({"benchmark": "505.mcf"}).encode(),
    headers={"Content-Type": "application/json"},
)
with urllib.request.urlopen(request, timeout=60) as response:
    payload = json.loads(response.read())
print(f"HTTP :{port} ->", predicted_times_row(payload["times"]))

server.shutdown()
server.server_close()
service.stop()
