"""Generality demo: predict a program the model never saw.

The paper's key claim: once the foundation model is trained, *any* program
compiled to the ISA can be represented by summing the representations of
its executed instructions — no retraining.  Here the model trains on four
benchmarks and predicts two completely different ones (505.mcf's pointer
chasing and 519.lbm's lattice streaming).
"""

import numpy as np

from repro.core.errors import error_summary
from repro.core.training import FoundationTrainConfig, train_foundation
from repro.features.dataset import build_dataset
from repro.uarch import sample_configs

TRAIN = ["525.x264", "544.nab", "557.xz", "999.specrand"]
UNSEEN = ["505.mcf", "519.lbm"]


def main() -> None:
    configs = sample_configs(n_ooo=5, n_inorder=2, seed=3, include_presets=False)
    print(f"training on {TRAIN}")
    train_ds = build_dataset(TRAIN, configs, max_instructions=4000)
    model, _ = train_foundation(
        train_ds,
        FoundationTrainConfig(
            spec="lstm-1-32", chunk_len=32, batch_size=8, epochs=8, seed=1
        ),
    )

    print(f"predicting unseen programs {UNSEEN} (no retraining)\n")
    unseen_ds = build_dataset(UNSEEN, configs, max_instructions=4000)
    for name in UNSEEN:
        feats, targets = unseen_ds.segment(name)
        predicted = model.predict_program_times(feats, chunk_len=32)
        true = targets.astype(np.float64).sum(axis=0)
        summary = error_summary(predicted, true)
        print(f"{name}: {summary.row()}")
    print(
        "\nThe foundation model generalizes because every program is a "
        "combination of the same instructions (paper Sec. III-B)."
    )


if __name__ == "__main__":
    main()
