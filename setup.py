"""Setuptools shim.

The offline environment ships setuptools without the ``wheel`` package, so
``pip install -e .`` (PEP 660) cannot build. ``python setup.py develop``
performs the equivalent editable install; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
