"""PerfVec reproduction.

A from-scratch, NumPy-only reproduction of *Learning Generalizable Program
and Architecture Representations for Performance Modeling* (Li, Flynn,
Hoisie — SC 2024): the PerfVec framework plus every substrate it depends on
(mini-ISA + functional VM, SPEC-like workload suite, cycle-level CPU timing
simulator, microarchitecture-independent feature extraction, a small deep
learning framework, baselines, a process-pool parallel runtime, and the
full experiment harness).

Quick start::

    from repro.workloads import suite
    from repro.uarch import presets, sampling
    from repro.sim import CPUSimulator
    from repro.core import PerfVec

See ``README.md`` and ``examples/quickstart.py``.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
