"""High-level facade: ``repro.api.Session``.

One object wires the whole serving pipeline together — workloads →
features → store-backed models:

>>> from repro.api import Session
>>> session = Session(scale="smoke")
>>> result = session.train()                    # trains or reuses an artifact
>>> session.predict("505.mcf")                  # {config name: predicted ticks}
>>> session.predict_many(["505.mcf", "519.lbm"])  # one batched engine pass
>>> session.evaluate(["505.mcf"])               # {benchmark: ErrorSummary}

``train`` consults the :class:`~repro.models.store.ModelStore` first: an
artifact with the same family, spec, training provenance and dataset
fingerprint is loaded instead of retrained, so warm sessions — including
**fresh processes** — skip straight to serving. ``predict`` never
trains; it refuses with a clear error when no artifact exists.
``predict_many`` is the batched serving path: every benchmark's cached
feature stream rides one no-grad inference pass
(:class:`repro.serving.PredictionService` builds on it for HTTP traffic).

``run_pipeline`` executes a declarative :mod:`repro.pipeline` spec (by
name, object or file path) at the session's scale with per-stage
artifact reuse.

The CLI verbs ``repro train`` / ``repro predict`` / ``repro serve`` /
``repro pipeline ...`` / ``repro models ...`` are thin wrappers over
this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import jit as _jit
from repro import obs
from repro.cache import dataset_cache_dir, model_store_dir
from repro.core.errors import (
    ErrorSummary,
    PredictionError,
    UnknownBenchmarkError,
)
from repro.experiments.common import ScaleConfig, get_scale
from repro.features.dataset import (
    DEFAULT_CACHE_DIR,
    TraceDataset,
    build_dataset,
)
from repro.features.feature_cache import encoded_features, feature_cache_dir
from repro.frontends import DEFAULT_FRONTEND, get_frontend
from repro.models import (
    ModelStore,
    PerformanceModel,
    PredictRequest,
    StoreError,
    create,
)
from repro.models.registry import get_family
from repro.models.store import training_provenance
from repro.uarch import sample_configs
from repro.uarch.config import MicroarchConfig
from repro.workloads import TRAIN_BENCHMARKS


@dataclass(frozen=True)
class TrainResult:
    """What :meth:`Session.train` hands back."""

    artifact_id: str
    model: PerformanceModel
    reused: bool  # True when the store satisfied the request
    errors: dict[str, ErrorSummary] = field(default_factory=dict)


class Session:
    """Train, store, load and serve performance models at one scale."""

    def __init__(
        self,
        scale: str | ScaleConfig = "bench",
        cache_dir: str | None = None,
        jobs: int | None = 1,
        store: ModelStore | None = None,
        jit: bool | None = None,
        frontend: str = DEFAULT_FRONTEND,
    ):
        self.scale = get_scale(scale)
        self.cache_dir = cache_dir  # None -> REPRO_CACHE_DIR / .repro_cache
        self.jobs = jobs
        # which trace source benchmark names resolve against; validates
        # eagerly (unknown names raise with suggestions)
        self.frontend = get_frontend(frontend).name
        # None defers to REPRO_JIT / the process default (enabled); True or
        # False pins the compiled tier for this session's engine passes
        self.jit = jit
        self.store = store or ModelStore(model_store_dir(cache_dir))
        self._configs: list[MicroarchConfig] | None = None
        self._datasets: dict[tuple[str, ...], TraceDataset] = {}
        self._features: dict[str, np.ndarray] = {}

    def _jit_scope(self):
        """The :func:`repro.jit.context` this session's engine passes run
        under: its ``jit`` pin (or the ambient default) plus its cache
        root, so compiled kernels publish next to its other artifacts."""
        return _jit.context(enabled=self.jit, cache_dir=self.cache_dir)

    # -- shared ingredients ----------------------------------------------
    def configs(self) -> list[MicroarchConfig]:
        """The scale's sampled training microarchitectures."""
        if self._configs is None:
            self._configs = sample_configs(
                n_ooo=self.scale.n_ooo, n_inorder=self.scale.n_inorder,
                seed=self.scale.seed,
                include_presets=self.scale.include_presets,
            )
        return self._configs

    def dataset(self, benchmarks: tuple[str, ...] | list[str]) -> TraceDataset:
        """Cached (features, per-config targets) over ``benchmarks``."""
        key = tuple(benchmarks)
        ds = self._datasets.get(key)
        if ds is None:
            ds = build_dataset(
                list(benchmarks), self.configs(), self.scale.instructions,
                cache_dir=(
                    dataset_cache_dir(self.cache_dir)
                    if self.cache_dir else DEFAULT_CACHE_DIR
                ),
                jobs=self.jobs,
                isa=self.frontend,
            )
            self._datasets[key] = ds
        return ds

    def _validate_benchmark(self, benchmark: str) -> None:
        known = get_frontend(self.frontend).benchmarks()
        if benchmark not in known:
            raise UnknownBenchmarkError(benchmark, known)

    def default_spec(self, family: str) -> dict:
        """Scale-derived hyper-parameters for a family (perfvec only —
        baseline adapters carry their own defaults)."""
        if family == "perfvec":
            return {
                "arch": self.scale.spec,
                "chunk_len": self.scale.chunk_len,
                "batch_size": self.scale.batch_size,
                "epochs": self.scale.epochs,
                "seed": self.scale.seed,
            }
        return {}

    # -- training ---------------------------------------------------------
    def train(
        self,
        family: str = "perfvec",
        benchmarks: tuple[str, ...] | None = TRAIN_BENCHMARKS,
        reuse: bool = True,
        evaluate: bool = True,
        tag: str | None = None,
        **overrides,
    ) -> TrainResult:
        """Train ``family`` on ``benchmarks`` — or reuse a stored artifact.

        The store is queried by (family, spec, training provenance,
        dataset fingerprint); an exact hit is loaded instead of
        retrained. ``overrides`` feed the family's constructor.
        ``benchmarks=None`` means the session frontend's training split.
        """
        if benchmarks is None or (
            benchmarks is TRAIN_BENCHMARKS
            and self.frontend != DEFAULT_FRONTEND
        ):
            benchmarks = get_frontend(self.frontend).train_benchmarks()
        dataset = self.dataset(benchmarks)
        fingerprint = dataset.fingerprint()
        spec = {**self.default_spec(family), **overrides}
        # materialize the full spec (constructor defaults included) so the
        # store lookup is exact
        spec = create(family, **spec).spec
        train_config = self._train_config(family, benchmarks)
        artifact_id = None
        if reuse:
            artifact_id = self.store.find(
                family=family, dataset_fingerprint=fingerprint, spec=spec,
                train_config=train_config,
            )
        if artifact_id is not None:
            model = self.store.load(artifact_id, expect_fingerprint=fingerprint)
            reused = True
        else:
            with obs.span(
                "session.train", family=family, scale=self.scale.name
            ), self._jit_scope():
                model = create(family, **spec).fit(
                    dataset, configs=self.configs()
                )
            artifact_id = self.store.put(
                model, dataset_fingerprint=fingerprint,
                train_config=train_config, tag=tag,
            )
            reused = False
        with self._jit_scope():
            errors = model.evaluate(dataset) if evaluate else {}
        return TrainResult(
            artifact_id=artifact_id, model=model, reused=reused, errors=errors
        )

    def _train_config(
        self, family: str, benchmarks: tuple[str, ...] | list[str]
    ) -> dict:
        return training_provenance(
            self.scale.name, family, benchmarks, isa=self.frontend
        )

    # -- serving ----------------------------------------------------------
    def resolve_artifact(
        self, family: str = "perfvec", artifact: str | None = None
    ) -> str:
        """The artifact id :meth:`model` would serve (without loading it).

        ``artifact`` pins an id; otherwise the newest artifact of
        ``family`` trained at this session's scale is used. There is no
        cross-scale fallback: scales sample *different*
        microarchitectures under the same names, so serving another
        scale's artifact here would silently mislabel every prediction —
        pin ``artifact`` explicitly to do that on purpose.
        """
        if artifact is not None:
            return artifact
        get_family(family)  # fail early on unknown families
        for manifest in self.store.list():
            if manifest["family"] != family:
                continue
            train_config = manifest.get("train_config") or {}
            if (
                train_config.get("scale") == self.scale.name
                and train_config.get("isa", DEFAULT_FRONTEND) == self.frontend
            ):
                return manifest["id"]
        raise StoreError(
            f"no stored {family!r} artifact for scale "
            f"{self.scale.name!r} under {self.store.root}; "
            "run Session.train() (or `repro train`) first"
        )

    def model(
        self, artifact: str | None = None, family: str = "perfvec"
    ) -> PerformanceModel:
        """Load a stored model — never trains (see :meth:`resolve_artifact`)."""
        return self.store.load(self.resolve_artifact(family, artifact))

    def features(self, benchmark: str, memo: bool = True) -> np.ndarray:
        """The benchmark's encoded feature stream at this session's scale.

        Validated against the workload suite, then served from the
        in-memory memo or the content-addressed on-disk feature cache —
        repeated predictions never re-encode (let alone re-trace) a
        benchmark.  The memo is unbounded (right for short-lived
        sessions); callers with their own bounded cache — the serving
        layer's feature LRU — pass ``memo=False`` so evicted streams
        actually free memory.
        """
        self._validate_benchmark(benchmark)
        stream = self._features.get(benchmark)
        if stream is None:
            stream = encoded_features(
                benchmark, self.scale.instructions,
                cache_dir=(
                    feature_cache_dir(self.cache_dir)
                    if self.cache_dir else "auto"
                ),
                isa=self.frontend,
            )
            if memo:
                self._features[benchmark] = stream
        return stream

    def serve_request(
        self,
        model: PerformanceModel,
        benchmark: str,
        features: np.ndarray | None = None,
        signature_times=None,
    ) -> PredictRequest:
        """A :class:`PredictRequest` carrying exactly what ``model`` needs.

        The family's :attr:`~repro.models.base.PerformanceModel.serve_inputs`
        declares its serving inputs: feature streams come from this
        session's cache (or a caller-prefetched ``features`` array — the
        serving layer's LRU), trace lengths from the session's scale, and
        signature-configuration times from the caller (the cross-program
        baseline's measured inputs).  Benchmark names are validated here,
        before any feature work.
        """
        self._validate_benchmark(benchmark)
        needs = model.serve_inputs
        kwargs: dict = {}
        if "features" in needs:
            kwargs["features"] = (
                features if features is not None else self.features(benchmark)
            )
        if "length" in needs:
            kwargs["n_instructions"] = self.scale.instructions
        if "signature_times" in needs:
            if signature_times is None:
                raise PredictionError(
                    f"family {model.family!r} predicts from measured "
                    f"signature-configuration times; pass signature_times "
                    f"for {benchmark!r}"
                )
            kwargs["signature_times"] = np.asarray(
                signature_times, dtype=np.float64
            )
        return PredictRequest(
            benchmark=benchmark, isa=self.frontend, **kwargs
        )

    def predict(
        self,
        benchmark: str,
        config: str | None = None,
        artifact: str | None = None,
        family: str = "perfvec",
        signature_times=None,
    ) -> dict[str, float] | float:
        """Predicted total execution time (0.1 ns ticks) for ``benchmark``.

        Pure serving: a stored model answers from its serving inputs (no
        simulation), for every microarchitecture it knows — or just
        ``config``.  Every family serves: ``perfvec`` from the cached
        feature stream, the trace-walking baselines from the scale's
        deterministic trace, the per-program baselines from fitted
        state, and ``cross_program`` from caller-measured
        ``signature_times``.
        """
        times = self.predict_many(
            [benchmark], artifact=artifact, family=family,
            signature_times=(
                None if signature_times is None
                else {benchmark: signature_times}
            ),
        )[benchmark]
        if config is not None:
            return times[config]
        return times

    def predict_many(
        self,
        benchmarks: tuple[str, ...] | list[str],
        artifact: str | None = None,
        family: str = "perfvec",
        signature_times: dict | None = None,
    ) -> dict[str, dict[str, float]]:
        """Batched serving: every benchmark through **one** engine pass.

        Returns ``{benchmark: {config name: predicted ticks}}``.
        ``signature_times`` maps benchmark name to its measured times on
        the signature configurations (required by ``cross_program``
        only).
        """
        model = self.model(artifact, family)
        signature_times = signature_times or {}
        requests = [
            self.serve_request(
                model, name, signature_times=signature_times.get(name)
            )
            for name in benchmarks
        ]
        with obs.span(
            "session.predict", family=family, benchmarks=len(requests)
        ), self._jit_scope():
            results = model.predict_batch(requests)
        return {
            request.benchmark: dict(
                zip(model.config_names, result.tolist())
            )
            for request, result in zip(requests, results)
        }

    def evaluate(
        self,
        benchmarks: tuple[str, ...] | list[str],
        artifact: str | None = None,
        family: str = "perfvec",
    ) -> dict[str, ErrorSummary]:
        """Stored-model prediction error vs simulated ground truth."""
        model = self.model(artifact, family)
        with self._jit_scope():
            return model.evaluate(self.dataset(benchmarks))

    # -- pipelines --------------------------------------------------------
    def run_pipeline(
        self,
        spec,
        save: bool = False,
        force: bool = False,
        results_dir: str | None = None,
        backend="local",
        workers: int = 0,
        backend_options: dict | None = None,
    ):
        """Execute a pipeline spec at this session's scale.

        ``spec`` is a registered spec name, an
        :class:`~repro.pipeline.ExperimentSpec`, or a path to a
        ``.toml``/``.json`` spec file.  Stages reuse their
        content-addressed artifacts (under this session's cache root),
        so repeating a pipeline re-executes only invalidated stages.
        ``backend``/``workers`` select the executor — ``"queue"`` with
        ``workers=N`` runs stages on N queue worker processes (plus any
        external ``repro pipeline worker`` sharing the cache root).
        Returns a :class:`~repro.pipeline.PipelineResult`.
        """
        import os

        from repro.pipeline import (
            ExperimentSpec,
            Runner,
            SpecError,
            get_spec,
            load_spec,
        )

        if isinstance(spec, str):
            if os.path.sep in spec or spec.endswith((".toml", ".json")):
                spec = load_spec(spec)
            else:
                spec = get_spec(spec)
        if not isinstance(spec, ExperimentSpec):  # a SweepSpec
            raise SpecError(
                f"spec {spec.name!r} declares a sweep grid; expand it with "
                "repro.pipeline.run_sweep (or `repro pipeline sweep`), or "
                "pass spec.base to run one scenario"
            )
        return Runner(
            spec, scale=self.scale, cache_dir=self.cache_dir,
            results_dir=results_dir, jobs=self.jobs, save=save, force=force,
            backend=backend, workers=workers, backend_options=backend_options,
        ).run()

    # -- inspection -------------------------------------------------------
    def models(self) -> list[dict]:
        """Manifests of every stored artifact, newest first."""
        return self.store.list()


def predicted_times_row(times: dict[str, float]) -> str:
    """One-line rendering of a :meth:`Session.predict` result."""
    return "  ".join(f"{name}={ticks:.4g}" for name, ticks in times.items())


__all__ = ["Session", "TrainResult", "predicted_times_row"]
