"""Baseline performance models the paper compares against (Tables III-IV).

* :mod:`~repro.baselines.ithemal` — basic-block LSTM throughput model
  (Ithemal [39]); per-microarchitecture, basic blocks only.
* :mod:`~repro.baselines.simnet` — per-instruction latency model over
  *microarchitecture-dependent* features (SimNet [37]); handles whole
  programs but must re-extract features and re-predict per target config.
* :mod:`~repro.baselines.program_specific` — Ipek-style MLP (config
  parameters -> program time), one model per program [28].
* :mod:`~repro.baselines.cross_program` — Dubach-style transferable linear
  predictor using a program signature measured on a few canonical
  configurations [21].
* :mod:`~repro.baselines.actboost` — AdaBoost.R2 over in-house regression
  trees with stratified sampling (ActBoost [36]).
"""

from repro.baselines.trees import RegressionTree
from repro.baselines.actboost import AdaBoostR2
from repro.baselines.program_specific import ProgramSpecificMLP
from repro.baselines.cross_program import CrossProgramPredictor
from repro.baselines.ithemal import BasicBlock, IthemalModel, extract_basic_blocks
from repro.baselines.simnet import SimNetModel, simnet_features

__all__ = [
    "RegressionTree",
    "AdaBoostR2",
    "ProgramSpecificMLP",
    "CrossProgramPredictor",
    "BasicBlock",
    "IthemalModel",
    "extract_basic_blocks",
    "SimNetModel",
    "simnet_features",
]
