"""ActBoost-style boosted DSE predictor (Li et al., DAC'16 [36]).

The original combines statistical sampling with active AdaBoost learning;
this reproduction implements the core regressor — AdaBoost.R2 (Drucker) over
CART trees — plus the stratified "statistical sampling" helper used to pick
which configurations to simulate for training.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.trees import RegressionTree


class AdaBoostR2:
    """Drucker's AdaBoost.R2 with linear loss over regression trees."""

    def __init__(self, n_estimators: int = 20, max_depth: int = 3,
                 seed: int = 0):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.seed = seed
        self.trees: list[RegressionTree] = []
        self.betas: list[float] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "AdaBoostR2":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        n = len(y)
        rng = np.random.default_rng(self.seed)
        weights = np.full(n, 1.0 / n)
        self.trees = []
        self.betas = []
        for _ in range(self.n_estimators):
            # weighted bootstrap, as in the original formulation
            idx = rng.choice(n, size=n, replace=True, p=weights)
            tree = RegressionTree(max_depth=self.max_depth, min_leaf=1)
            tree.fit(x[idx], y[idx])
            pred = tree.predict(x)
            err = np.abs(pred - y)
            denom = err.max()
            if denom <= 0:
                self.trees.append(tree)
                self.betas.append(1e-10)
                break
            loss = err / denom
            avg_loss = float((loss * weights).sum())
            if avg_loss >= 0.5:
                if not self.trees:  # keep at least one member
                    self.trees.append(tree)
                    self.betas.append(0.5)
                break
            beta = avg_loss / (1.0 - avg_loss)
            self.trees.append(tree)
            self.betas.append(beta)
            weights = weights * beta ** (1.0 - loss)
            weights /= weights.sum()
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Weighted-median combination of the ensemble."""
        if not self.trees:
            raise RuntimeError("model not fitted")
        preds = np.stack([t.predict(x) for t in self.trees], axis=1)  # (n, m)
        log_inv = np.log(1.0 / np.asarray(self.betas))
        order = np.argsort(preds, axis=1)
        sorted_preds = np.take_along_axis(preds, order, axis=1)
        sorted_w = log_inv[order]
        cum = np.cumsum(sorted_w, axis=1)
        threshold = 0.5 * cum[:, -1:]
        pick = (cum >= threshold).argmax(axis=1)
        return sorted_preds[np.arange(len(x)), pick]


def stratified_sample(
    values: np.ndarray, count: int, bins: int = 4, seed: int = 0
) -> list[int]:
    """ActBoost's statistical sampling: pick ``count`` indices spread across
    value strata of ``values`` (e.g. chip area of each configuration)."""
    values = np.asarray(values, dtype=np.float64)
    if not 1 <= count <= len(values):
        raise ValueError("count out of range")
    rng = np.random.default_rng(seed)
    order = np.argsort(values)
    strata = np.array_split(order, min(bins, count))
    picks: list[int] = []
    stratum = 0
    while len(picks) < count:
        pool = [i for i in strata[stratum % len(strata)] if i not in picks]
        if pool:
            picks.append(int(rng.choice(pool)))
        stratum += 1
        if stratum > 10 * bins * count:  # pragma: no cover - safety valve
            break
    return sorted(picks)
