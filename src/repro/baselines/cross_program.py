"""Cross-program (transferable) predictor (Dubach et al., MICRO'07 [21]).

The architecture-centric idea: train a *shared* linear model over
microarchitecture parameters augmented with a per-program *signature* — the
program's measured times on a small set of canonical configurations.  A new
program then only needs those few signature runs instead of a full training
sweep, "which reduce the required training data volume, but the limited
generality issue persists" (the signature runs are still simulations).
"""

from __future__ import annotations

import numpy as np

from repro.uarch.config import MicroarchConfig


class CrossProgramPredictor:
    """Ridge regression over [uarch params, program signature, interactions]."""

    def __init__(self, n_signature: int = 3, ridge: float = 1e-3):
        if n_signature < 1:
            raise ValueError("need at least one signature configuration")
        self.n_signature = n_signature
        self.ridge = ridge
        self._weights: np.ndarray | None = None
        self._signature_indices: list[int] | None = None

    @property
    def signature_indices(self) -> list[int]:
        """Config columns whose measured times form a program's signature."""
        if self._signature_indices is None:
            raise RuntimeError("model not fitted")
        return list(self._signature_indices)

    @classmethod
    def from_state(
        cls, weights: np.ndarray, signature_indices: list[int],
        ridge: float = 1e-3,
    ) -> "CrossProgramPredictor":
        """Rebuild a fitted predictor from stored state (model artifacts)."""
        model = cls(n_signature=len(signature_indices), ridge=ridge)
        model._weights = np.asarray(weights, dtype=np.float64)
        model._signature_indices = [int(i) for i in signature_indices]
        return model

    # ------------------------------------------------------------------
    @staticmethod
    def _params(configs: list[MicroarchConfig]) -> np.ndarray:
        return np.stack([c.to_feature_vector() for c in configs]).astype(np.float64)

    def _design(self, params: np.ndarray, signature: np.ndarray) -> np.ndarray:
        """One row per config: [1, params, signature, params x mean(sig)]."""
        n = len(params)
        sig = np.broadcast_to(signature, (n, len(signature)))
        interaction = params * signature.mean()
        return np.concatenate(
            [np.ones((n, 1)), params, sig, interaction], axis=1
        )

    def signature_of(self, times: np.ndarray) -> np.ndarray:
        """A program's signature: its (log) times on the signature configs."""
        if self._signature_indices is None:
            raise RuntimeError("model not fitted")
        return np.log(np.asarray(times, dtype=np.float64)[self._signature_indices])

    # ------------------------------------------------------------------
    def fit(
        self,
        configs: list[MicroarchConfig],
        times_per_program: dict[str, np.ndarray],
        signature_indices: list[int] | None = None,
    ) -> "CrossProgramPredictor":
        """Train on several programs' full (config -> time) responses."""
        if signature_indices is None:
            signature_indices = list(range(self.n_signature))
        if len(signature_indices) != self.n_signature:
            raise ValueError("signature index count mismatch")
        self._signature_indices = list(signature_indices)
        params = self._params(configs)
        rows = []
        targets = []
        for times in times_per_program.values():
            times = np.asarray(times, dtype=np.float64)
            if len(times) != len(configs):
                raise ValueError("every program needs one time per config")
            signature = self.signature_of(times)
            rows.append(self._design(params, signature))
            targets.append(np.log(times))
        design = np.concatenate(rows, axis=0)
        target = np.concatenate(targets)
        gram = design.T @ design + self.ridge * np.eye(design.shape[1])
        self._weights = np.linalg.solve(gram, design.T @ target)
        return self

    def predict(
        self, configs: list[MicroarchConfig], signature_times: np.ndarray
    ) -> np.ndarray:
        """Predict a (possibly unseen) program's times on ``configs``.

        ``signature_times`` are the program's measured times on the
        signature configurations, in the order given at fit time.
        """
        if self._weights is None:
            raise RuntimeError("model not fitted")
        return self.predict_from_params(self._params(configs), signature_times)

    def predict_from_params(
        self, params: np.ndarray, signature_times: np.ndarray
    ) -> np.ndarray:
        """Like :meth:`predict`, but from precomputed parameter vectors
        (``MicroarchConfig.to_feature_vector`` rows) — the form a stored
        model artifact can evaluate without the config objects."""
        if self._weights is None:
            raise RuntimeError("model not fitted")
        signature = np.log(np.asarray(signature_times, dtype=np.float64))
        if len(signature) != self.n_signature:
            raise ValueError("signature length mismatch")
        design = self._design(np.asarray(params, dtype=np.float64), signature)
        return np.exp(design @ self._weights)
