"""Ithemal-style basic-block throughput model (Mendis et al., ICML'19 [39]).

Predicts the latency of *static basic blocks* — "they can only deal with
basic blocks with a handful of instructions" (paper Sec. V-C) — from the
opcode sequence alone, with a learned opcode embedding feeding an LSTM.
One model per microarchitecture (no cross-uarch generality), and no
dynamic memory/branch context ("taking only textual traces also makes them
not suitable to predict performance in real systems with complex memory
behavior").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.isa.opcodes import NUM_OPCODES
from repro.ml.autograd import Tensor, mse_loss
from repro.ml.layers import Linear, Module
from repro.ml.optim import Adam
from repro.ml.recurrent import LSTM
from repro.vm.trace import Trace


@dataclass(frozen=True)
class BasicBlock:
    """A dynamic basic-block occurrence: opcode ids + its measured latency."""

    opcodes: tuple[int, ...]
    latency: float  # summed incremental latency, 0.1 ns ticks

    def __len__(self) -> int:
        return len(self.opcodes)


def extract_basic_blocks(
    trace: Trace,
    latencies: np.ndarray,
    max_len: int = 16,
) -> list[BasicBlock]:
    """Cut a trace into dynamic basic blocks (ending at control transfers).

    Blocks longer than ``max_len`` are truncated — mirroring the baseline's
    "handful of instructions" limitation.
    """
    if len(latencies) != len(trace):
        raise ValueError("latencies must align with the trace")
    blocks: list[BasicBlock] = []
    is_branch = trace.is_branch
    ops = trace.opid.tolist()
    lat = latencies.tolist()
    branch_flags = is_branch.tolist()
    current_ops: list[int] = []
    current_lat = 0.0
    for i in range(len(trace)):
        current_ops.append(ops[i])
        current_lat += lat[i]
        if branch_flags[i] or len(current_ops) >= max_len:
            blocks.append(BasicBlock(tuple(current_ops), current_lat))
            current_ops = []
            current_lat = 0.0
    if current_ops:
        blocks.append(BasicBlock(tuple(current_ops), current_lat))
    return blocks


class IthemalModel(Module):
    """Opcode embedding + LSTM + linear head -> block latency (per uarch)."""

    def __init__(self, embed_dim: int = 16, hidden: int = 32, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.embedding = Tensor(
            rng.normal(scale=0.1, size=(NUM_OPCODES, embed_dim)).astype(np.float32),
            requires_grad=True,
        )
        self.lstm = LSTM(embed_dim, hidden, num_layers=1, rng=rng)
        self.head = Linear(hidden, 1, rng=rng)
        self._scale = 1.0

    def _forward_padded(self, op_matrix: np.ndarray, lengths: np.ndarray) -> Tensor:
        """(B, Lmax) padded opcode ids -> (B,) predicted latency."""
        embedded = self.embedding[op_matrix.reshape(-1)]
        batch, max_len = op_matrix.shape
        embedded = embedded.reshape(batch, max_len, -1)
        outputs, _ = self.lstm(embedded)
        # gather the output at each block's true last position
        last = outputs[np.arange(batch), lengths - 1, :]
        return self.head(last)[:, 0]

    @staticmethod
    def _pad(blocks: list[BasicBlock]) -> tuple[np.ndarray, np.ndarray]:
        lengths = np.array([len(b) for b in blocks], dtype=np.int64)
        max_len = int(lengths.max())
        ops = np.zeros((len(blocks), max_len), dtype=np.int64)
        for i, b in enumerate(blocks):
            ops[i, : len(b)] = b.opcodes
        return ops, lengths

    def fit(self, blocks: list[BasicBlock], epochs: int = 60,
            batch_size: int = 64, lr: float = 5e-3, seed: int = 0
            ) -> "IthemalModel":
        if not blocks:
            raise ValueError("no training blocks")
        ops, lengths = self._pad(blocks)
        targets = np.array([b.latency for b in blocks], dtype=np.float64)
        self._scale = float(targets.mean()) or 1.0
        y = (targets / self._scale).astype(np.float32)
        rng = np.random.default_rng(seed)
        optimizer = Adam(self.parameters(), lr=lr)
        for _ in range(epochs):
            order = rng.permutation(len(blocks))
            for start in range(0, len(blocks), batch_size):
                idx = order[start : start + batch_size]
                optimizer.zero_grad()
                preds = self._forward_padded(ops[idx], lengths[idx])
                loss = mse_loss(preds, y[idx])
                loss.backward()
                optimizer.step()
        return self

    def predict(self, blocks: list[BasicBlock]) -> np.ndarray:
        if not blocks:
            return np.zeros(0)
        ops, lengths = self._pad(blocks)
        preds = self._forward_padded(ops, lengths)
        return preds.data.astype(np.float64) * self._scale
