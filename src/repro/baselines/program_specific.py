"""Program-specific MLP predictor (Ipek et al., ASPLOS'06 [28]).

One network per program: microarchitecture parameters in, execution time
out.  "They come at the cost that numerous runs/simulations are required
... whenever encountering a new program" — which is exactly the overhead
Table IV charges this baseline for.
"""

from __future__ import annotations

import numpy as np

from repro.ml.autograd import Tensor, mse_loss
from repro.ml.layers import MLP
from repro.ml.optim import Adam
from repro.uarch.config import MicroarchConfig


class ProgramSpecificMLP:
    """config parameter vector -> normalized execution time, per program."""

    def __init__(self, hidden: int = 32, layers: int = 2, epochs: int = 500,
                 lr: float = 5e-3, seed: int = 0):
        self.hidden = hidden
        self.layers = layers
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self._net: MLP | None = None
        self._scale = 1.0

    @staticmethod
    def encode(configs: list[MicroarchConfig]) -> np.ndarray:
        return np.stack([c.to_feature_vector() for c in configs])

    def fit(self, configs: list[MicroarchConfig], times: np.ndarray
            ) -> "ProgramSpecificMLP":
        x = self.encode(configs)
        times = np.asarray(times, dtype=np.float64)
        if len(x) != len(times):
            raise ValueError("configs/times mismatch")
        self._scale = float(times.mean()) or 1.0
        y = (times / self._scale).astype(np.float32)[:, None]
        sizes = [x.shape[1]] + [self.hidden] * (self.layers - 1) + [1]
        self._net = MLP(sizes, rng=np.random.default_rng(self.seed))
        optimizer = Adam(self._net.parameters(), lr=self.lr)
        xt = Tensor(x.astype(np.float32))
        for _ in range(self.epochs):
            optimizer.zero_grad()
            loss = mse_loss(self._net(xt), y)
            loss.backward()
            optimizer.step()
        return self

    def predict(self, configs: list[MicroarchConfig]) -> np.ndarray:
        return self.predict_params(self.encode(configs))

    def predict_params(self, params: np.ndarray) -> np.ndarray:
        """Like :meth:`predict`, but from precomputed :meth:`encode` rows
        (the form a stored model artifact evaluates without configs)."""
        if self._net is None:
            raise RuntimeError("model not fitted")
        x = Tensor(np.asarray(params, dtype=np.float32))
        return self._net(x).data[:, 0].astype(np.float64) * self._scale
