"""SimNet-style ML simulation (Li et al., SIGMETRICS'22 [37]).

SimNet predicts each instruction's latency from *microarchitecture-
dependent* features — "such as cache hit/miss, making it not generalizable
across microarchitectures" — and walks the whole trace instruction by
instruction.  The feature extractor therefore runs the target config's
cache hierarchy and branch predictor over the trace (the paper's analogous
step is a simplified gem5 run to gather SimNet's input traces), and a new
model must be trained per microarchitecture.
"""

from __future__ import annotations

import numpy as np

from repro.isa.opcodes import OpClass
from repro.ml.autograd import Tensor, mse_loss
from repro.ml.layers import MLP
from repro.ml.optim import Adam
from repro.sim.branch import BranchUnit
from repro.sim.cache import CacheHierarchy
from repro.uarch.config import MicroarchConfig
from repro.vm.trace import OP_CLASS, OP_IS_COND, Trace

#: op-class one-hot (15) + data hit level one-hot (4) + ifetch hit level
#: one-hot (4) + branch mispredict flag (1)
SIMNET_FEATURES = 24


def simnet_features(trace: Trace, config: MicroarchConfig) -> np.ndarray:
    """Microarchitecture-dependent per-instruction features.

    Runs the target's caches and branch predictor over the trace in program
    order — the step that must be *redone for every microarchitecture*
    (unlike PerfVec's reusable microarchitecture-independent features).
    """
    n = len(trace)
    feats = np.zeros((n, SIMNET_FEATURES), dtype=np.float32)
    opclass = OP_CLASS[trace.opid]
    feats[np.arange(n), opclass] = 1.0

    hierarchy = CacheHierarchy(config)
    branch_unit = BranchUnit(config.branch)
    line_shift = config.l1d.line_bytes.bit_length() - 1
    pcs = trace.pc.tolist()
    addrs = trace.mem_addr.tolist()
    takens = trace.branch_taken.tolist()
    targets = trace.branch_target.tolist()
    is_cond = OP_IS_COND[trace.opid].tolist()
    is_mem = trace.is_mem.tolist()
    cur_line = -1
    for i in range(n):
        line = pcs[i] >> line_shift
        if line != cur_line:
            _, lvl = hierarchy.access_ifetch(pcs[i], 0)
            feats[i, 19 + lvl] = 1.0
            cur_line = line
        else:
            feats[i, 19 + 1] = 1.0  # same line: L1-hit equivalent
        if is_mem[i]:
            _, lvl = hierarchy.access_data(addrs[i], 0)
            feats[i, 15 + lvl] = 1.0
        if is_cond[i]:
            if branch_unit.resolve_conditional(pcs[i], targets[i], takens[i] == 1):
                feats[i, 23] = 1.0
    return feats


class SimNetModel:
    """Per-microarchitecture MLP: dependent features -> instruction latency."""

    def __init__(self, hidden: int = 32, layers: int = 2, epochs: int = 30,
                 batch_size: int = 512, lr: float = 3e-3, seed: int = 0):
        self.hidden = hidden
        self.layers = layers
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self._net: MLP | None = None
        self._scale = 1.0

    def fit(self, features: np.ndarray, latencies: np.ndarray) -> "SimNetModel":
        if len(features) != len(latencies):
            raise ValueError("features/latencies mismatch")
        sizes = [features.shape[1]] + [self.hidden] * (self.layers - 1) + [1]
        self._net = MLP(sizes, rng=np.random.default_rng(self.seed))
        self._scale = float(np.mean(latencies)) or 1.0
        y = (latencies / self._scale).astype(np.float32)[:, None]
        optimizer = Adam(self._net.parameters(), lr=self.lr)
        rng = np.random.default_rng(self.seed + 1)
        n = len(features)
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                optimizer.zero_grad()
                loss = mse_loss(self._net(Tensor(features[idx])), y[idx])
                loss.backward()
                optimizer.step()
        return self

    def predict_latencies(self, features: np.ndarray) -> np.ndarray:
        if self._net is None:
            raise RuntimeError("model not fitted")
        return self._net(Tensor(features)).data[:, 0].astype(np.float64) * self._scale

    def predict_total_time(self, features: np.ndarray) -> float:
        """Program time = walk every instruction and sum (SimNet's mode)."""
        return float(self.predict_latencies(features).sum())
