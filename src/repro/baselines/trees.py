"""CART regression trees (the weak learner for ActBoost).

Variance-reduction splits on continuous features, depth- and leaf-size
bounded.  Split search is vectorized per feature (sorted prefix sums), so
fitting stays fast without any external ML dependency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree:
    """CART regressor with MSE splits."""

    def __init__(self, max_depth: int = 4, min_leaf: int = 2):
        if max_depth < 1 or min_leaf < 1:
            raise ValueError("max_depth and min_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self._root: _Node | None = None

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray,
            sample_weight: np.ndarray | None = None) -> "RegressionTree":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or y.ndim != 1 or len(x) != len(y):
            raise ValueError("x must be (n, f) and y (n,)")
        if sample_weight is None:
            sample_weight = np.ones(len(y))
        sample_weight = np.asarray(sample_weight, dtype=np.float64)
        self._root = self._build(x, y, sample_weight, depth=0)
        return self

    def _best_split(self, x, y, w):
        best_gain = 0.0
        best = None
        total_w = w.sum()
        total_wy = (w * y).sum()
        base_sse = (w * y * y).sum() - total_wy**2 / total_w
        for f in range(x.shape[1]):
            order = np.argsort(x[:, f], kind="stable")
            xs = x[order, f]
            ws = w[order]
            wys = ws * y[order]
            wyy = wys * y[order]
            cw = np.cumsum(ws)
            cwy = np.cumsum(wys)
            cwyy = np.cumsum(wyy)
            # candidate split after position i (left = [0..i])
            valid = np.flatnonzero(xs[:-1] < xs[1:])
            if len(valid) == 0:
                continue
            lw = cw[valid]
            lwy = cwy[valid]
            lyy = cwyy[valid]
            rw = total_w - lw
            rwy = total_wy - lwy
            ryy = cwyy[-1] - lyy
            with np.errstate(invalid="ignore", divide="ignore"):
                sse = (lyy - lwy**2 / lw) + (ryy - rwy**2 / rw)
            counts = valid + 1
            ok = (counts >= self.min_leaf) & (len(y) - counts >= self.min_leaf)
            if not ok.any():
                continue
            sse = np.where(ok, sse, np.inf)
            i = int(np.argmin(sse))
            gain = base_sse - sse[i]
            if gain > best_gain + 1e-12:
                best_gain = gain
                threshold = 0.5 * (xs[valid[i]] + xs[valid[i] + 1])
                best = (f, threshold)
        return best

    def _build(self, x, y, w, depth) -> _Node:
        node = _Node(value=float(np.average(y, weights=w)))
        if depth >= self.max_depth or len(y) < 2 * self.min_leaf:
            return node
        if float(y.max() - y.min()) == 0.0:
            return node
        split = self._best_split(x, y, w)
        if split is None:
            return node
        f, threshold = split
        mask = x[:, f] <= threshold
        node.feature = f
        node.threshold = threshold
        node.left = self._build(x[mask], y[mask], w[mask], depth + 1)
        node.right = self._build(x[~mask], y[~mask], w[~mask], depth + 1)
        return node

    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree not fitted")
        x = np.asarray(x, dtype=np.float64)
        out = np.empty(len(x))
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    # ------------------------------------------------------------------
    def to_arrays(self) -> dict[str, np.ndarray]:
        """Flatten the fitted tree into parallel preorder arrays.

        ``left``/``right`` hold child node indices (-1 for leaves), so the
        structure round-trips exactly through :meth:`from_arrays` — leaf
        values are stored as float64, making reloaded predictions
        byte-identical.
        """
        if self._root is None:
            raise RuntimeError("tree not fitted")
        feature: list[int] = []
        threshold: list[float] = []
        value: list[float] = []
        left: list[int] = []
        right: list[int] = []

        def add(node: _Node) -> int:
            idx = len(feature)
            feature.append(node.feature)
            threshold.append(node.threshold)
            value.append(node.value)
            left.append(-1)
            right.append(-1)
            if not node.is_leaf:
                left[idx] = add(node.left)
                right[idx] = add(node.right)
            return idx

        add(self._root)
        return {
            "feature": np.asarray(feature, dtype=np.int64),
            "threshold": np.asarray(threshold, dtype=np.float64),
            "value": np.asarray(value, dtype=np.float64),
            "left": np.asarray(left, dtype=np.int64),
            "right": np.asarray(right, dtype=np.int64),
        }

    @classmethod
    def from_arrays(
        cls, arrays: dict[str, np.ndarray], max_depth: int = 4,
        min_leaf: int = 2,
    ) -> "RegressionTree":
        """Rebuild a tree saved by :meth:`to_arrays`."""
        tree = cls(max_depth=max_depth, min_leaf=min_leaf)

        def build(idx: int) -> _Node:
            node = _Node(
                feature=int(arrays["feature"][idx]),
                threshold=float(arrays["threshold"][idx]),
                value=float(arrays["value"][idx]),
            )
            left = int(arrays["left"][idx])
            if left >= 0:
                node.left = build(left)
                node.right = build(int(arrays["right"][idx]))
            return node

        tree._root = build(0)
        return tree

    @property
    def depth(self) -> int:
        def walk(node):
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)
