"""Cache-location resolution.

Every on-disk cache (dataset npz files, stored model artifacts) lives
under one *cache root*, resolved per call in priority order:

1. an explicit ``cache_dir``/``root`` argument (CLI ``--cache-dir``);
2. the ``REPRO_CACHE_DIR`` environment variable;
3. ``.repro_cache/`` in the current working directory.

Resolution happens at call time, not import time, so tests and the CLI
can redirect every cache by setting the environment variable (or passing
``--cache-dir``, which does exactly that) without reimporting anything.
"""

from __future__ import annotations

import os

#: Fallback cache root when ``REPRO_CACHE_DIR`` is unset.
DEFAULT_CACHE_ROOT = ".repro_cache"

#: Environment variable that overrides the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable that overrides where result JSON files land.
RESULTS_DIR_ENV = "REPRO_RESULTS_DIR"


def cache_root(override: str | None = None) -> str:
    """The cache root directory (not created here)."""
    if override:
        return override
    return os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_ROOT


def dataset_cache_dir(root: str | None = None) -> str:
    """Where :mod:`repro.features.dataset` keeps its npz cache."""
    return os.path.join(cache_root(root), "datasets")


def model_store_dir(root: str | None = None) -> str:
    """Where :class:`repro.models.store.ModelStore` keeps artifacts."""
    return os.path.join(cache_root(root), "models")


def stage_store_dir(root: str | None = None) -> str:
    """Where :mod:`repro.pipeline` keeps per-stage result artifacts."""
    return os.path.join(cache_root(root), "stages")


def jit_cache_dir(root: str | None = None) -> str:
    """Where :mod:`repro.jit` publishes compiled kernel sources."""
    return os.path.join(cache_root(root), "jit")


def obs_dir(root: str | None = None) -> str:
    """Where :mod:`repro.obs` appends trace logs and flight dumps.

    Shares the cache root so every process in one run (coordinator,
    cluster workers, queue workers) writes span files next to each
    other — the ``repro obs`` viewers stitch a trace by reading the
    whole directory.
    """
    return os.path.join(cache_root(root), "obs")


def imported_trace_dir(root: str | None = None) -> str:
    """Where :mod:`repro.frontends.trace_import` publishes ingested traces."""
    return os.path.join(cache_root(root), "imported")


def queue_dir(root: str | None = None) -> str:
    """Where :mod:`repro.pipeline.queue` keeps its distributed work queue.

    Lives under the cache root on purpose: every worker that shares the
    cache root (same host or a shared filesystem) sees the same queue
    *and* the same stage artifact store, which is what makes claiming
    and publishing a single rendezvous point.
    """
    return os.path.join(cache_root(root), "queue")


def results_dir(override: str | None = None, root: str | None = None) -> str:
    """Where experiment/pipeline result JSON files land.

    Resolution mirrors :func:`cache_root`: an explicit override (CLI
    ``--results-dir``), then ``REPRO_RESULTS_DIR``, then ``results/``
    under the cache root — so redirecting the cache relocates results
    with every other artifact instead of littering the working directory.
    """
    if override:
        return override
    env = os.environ.get(RESULTS_DIR_ENV)
    if env:
        return env
    return os.path.join(cache_root(root), "results")


def set_cache_root(path: str | None) -> None:
    """Process-wide cache-root override (the CLI's ``--cache-dir``).

    Exported as ``REPRO_CACHE_DIR`` so worker processes spawned by
    :mod:`repro.runtime` resolve the same root.
    """
    if path:
        os.environ[CACHE_DIR_ENV] = path


def set_results_dir(path: str | None) -> None:
    """Process-wide results-dir override (the CLI's ``--results-dir``).

    Exported as ``REPRO_RESULTS_DIR`` for the same worker-process reason
    as :func:`set_cache_root`.
    """
    if path:
        os.environ[RESULTS_DIR_ENV] = path
