"""Cache-location resolution.

Every on-disk cache (dataset npz files, stored model artifacts) lives
under one *cache root*, resolved per call in priority order:

1. an explicit ``cache_dir``/``root`` argument (CLI ``--cache-dir``);
2. the ``REPRO_CACHE_DIR`` environment variable;
3. ``.repro_cache/`` in the current working directory.

Resolution happens at call time, not import time, so tests and the CLI
can redirect every cache by setting the environment variable (or passing
``--cache-dir``, which does exactly that) without reimporting anything.
"""

from __future__ import annotations

import os

#: Fallback cache root when ``REPRO_CACHE_DIR`` is unset.
DEFAULT_CACHE_ROOT = ".repro_cache"

#: Environment variable that overrides the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def cache_root(override: str | None = None) -> str:
    """The cache root directory (not created here)."""
    if override:
        return override
    return os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_ROOT


def dataset_cache_dir(root: str | None = None) -> str:
    """Where :mod:`repro.features.dataset` keeps its npz cache."""
    return os.path.join(cache_root(root), "datasets")


def model_store_dir(root: str | None = None) -> str:
    """Where :class:`repro.models.store.ModelStore` keeps artifacts."""
    return os.path.join(cache_root(root), "models")


def set_cache_root(path: str | None) -> None:
    """Process-wide cache-root override (the CLI's ``--cache-dir``).

    Exported as ``REPRO_CACHE_DIR`` so worker processes spawned by
    :mod:`repro.runtime` resolve the same root.
    """
    if path:
        os.environ[CACHE_DIR_ENV] = path
