"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands::

    repro list                      # available experiments and scales
    repro run fig3_seen_unseen      # one experiment (default scale: bench)
    repro run-all --scale bench     # every experiment, saving JSON results
    repro pipeline list             # registered pipeline specs + stages
    repro pipeline run <spec>       # a spec by name or .toml/.json path
    repro pipeline sweep <spec>     # expand a sweep grid, run every scenario
    repro pipeline worker           # serve the distributed stage queue
    repro bench-suite --scale bench # trace + simulate the whole suite once
    repro train --scale smoke       # train (or reuse) a stored model
    repro predict 505.mcf --scale smoke   # serve predictions from the store
    repro serve --scale smoke --port 8080 # HTTP/JSON prediction service
    repro models list               # stored artifacts
    repro models show <id>          # one artifact's manifest
    repro models rm <id>            # delete an artifact (store GC)
    repro frontends list            # registered trace frontends + suites
    repro trace import t.jsonl --isa rv   # ingest an external trace
    repro trace export rv.gcd --isa rv --out t.jsonl  # emit the schema
    repro trace list                # imported traces

``repro train``/``repro predict`` take ``--isa NAME`` to resolve
benchmark names against another trace frontend (``repro frontends
list``); imported external traces serve via ``--isa imported``.

Every runner subcommand takes ``--jobs N`` (default: all cores) to fan
trace simulations — and, for ``run-all``/pipelines, whole
experiments/stages — out across worker processes via
:mod:`repro.runtime`, ``--cache-dir DIR`` to redirect every on-disk
cache (datasets + models + stage artifacts + compiled jit kernels;
equivalent to setting ``REPRO_CACHE_DIR``), and ``--results-dir DIR``
to redirect result JSON files (default: ``<cache root>/results``).

The serving/prediction subcommands additionally take ``--jit`` /
``--no-jit`` to pin the :mod:`repro.jit` compiled-kernel tier on or off
(equivalent to setting ``REPRO_JIT``; the default is on). ``repro
models show`` lists the kernels published under ``<cache>/jit/``.

Observability (``repro.obs``): ``--obs`` / ``--no-obs`` on the serving
and pipeline subcommands turns structured span tracing on or off
(equivalent to setting ``REPRO_OBS``; default off — metrics counters
are always on).  Captured traces are inspected with::

    repro obs list                  # recent traces, newest first
    repro obs trace <trace-id>      # one trace's span tree
    repro obs top                   # hot-path table across all traces
"""

from __future__ import annotations

import argparse
import sys


def _resolved_header(command: str, scale: str, jobs: int | None) -> str:
    from repro.runtime import resolve_jobs

    return f"# repro {command}: scale={scale} jobs={resolve_jobs(jobs)}"


def _progress(total: int):
    from repro.runtime import ProgressReporter

    return ProgressReporter(total=total, stream=sys.stderr)


def _cmd_list(_args) -> int:
    from repro.experiments import EXPERIMENTS, SCALES

    print("experiments:")
    for name in EXPERIMENTS:
        print(f"  {name}")
    print("scales:", ", ".join(SCALES))
    return 0


def _cmd_run(args) -> int:
    from repro.experiments import run_experiment

    print(_resolved_header(f"run {args.experiment}", args.scale, args.jobs))
    result = run_experiment(args.experiment, scale=args.scale, jobs=args.jobs)
    print(result.render())
    if args.save:
        path = result.save()
        print(f"saved: {path}")
    return 0


def _cmd_run_all(args) -> int:
    from repro.experiments import EXPERIMENTS, run_all

    print(_resolved_header("run-all", args.scale, args.jobs))
    outcomes = run_all(
        scale=args.scale, jobs=args.jobs,
        progress=_progress(len(EXPERIMENTS)), save=True,
    )
    failures = []
    for outcome in outcomes:
        print(f"\n### {outcome.name} (scale={args.scale})")
        if not outcome.ok:
            print(f"FAILED:\n{outcome.error}")
            failures.append(outcome.name)
            continue
        print(outcome.result.render())
        print(f"saved: {outcome.result.save()}")
    if failures:
        print(f"\nfailed experiments: {failures}")
        return 1
    return 0


def _resolve_pipeline_spec(name: str):
    """A spec argument: a registered name, or a path to a .toml/.json file."""
    import os

    from repro.pipeline import get_spec, load_spec

    if os.path.sep in name or name.endswith((".toml", ".json")):
        return load_spec(name)
    return get_spec(name)


def _cmd_pipeline_worker(args) -> int:
    """`repro pipeline worker`: serve the shared queue until stopped."""
    from repro.pipeline.worker import run_worker

    print(f"# repro pipeline worker: cache root queue "
          f"(lease ttl {args.lease_ttl:.0f}s)", file=sys.stderr)
    stats = run_worker(
        worker_id=args.id,
        lease_ttl_s=args.lease_ttl,
        poll_s=args.poll,
        idle_timeout_s=args.idle_timeout,
        max_tasks=args.max_tasks,
    )
    print(f"worker {stats.worker}: {stats.executed} executed, "
          f"{stats.stolen} stolen, {stats.dedup_skips} deduped, "
          f"{stats.failures} failed, {stats.busy_s:.1f}s busy")
    return 0


def _backend_kwargs(args) -> dict:
    """Executor selection flags -> Runner/run_sweep keyword arguments."""
    options = {}
    if args.backend == "queue":
        options["lease_ttl_s"] = args.lease_ttl
    return dict(backend=args.backend, workers=args.workers,
                backend_options=options)


def _cmd_pipeline(args) -> int:
    from repro.pipeline import (
        ExperimentSpec,
        Runner,
        SweepSpec,
        available_specs,
        run_sweep,
    )

    if args.action == "list":
        from repro.pipeline.presets import SWEEP_BUILDERS

        print("pipeline specs:")
        for name, spec in available_specs().items():
            stages = " -> ".join(s.name for s in spec.stages)
            print(f"  {name:<22s} {stages}")
        print("sweep presets:")
        for name, builder in SWEEP_BUILDERS.items():
            sweep = builder()
            print(f"  {name:<22s} {len(sweep)} scenario(s) over "
                  f"{', '.join(sorted(sweep.matrix))}")
        return 0

    if args.action == "worker":
        return _cmd_pipeline_worker(args)

    if not args.spec:
        print(f"usage: repro pipeline {args.action} <spec-name-or-file>")
        return 2
    spec = _resolve_pipeline_spec(args.spec)
    base = spec.base if isinstance(spec, SweepSpec) else spec
    print(_resolved_header(f"pipeline {args.action} {args.spec}",
                           args.scale or base.scale or "bench", args.jobs))
    common = dict(
        scale=args.scale, jobs=args.jobs, results_dir=args.results_dir,
        save=args.save, force=args.force, **_backend_kwargs(args),
    )
    if args.action == "sweep":
        if isinstance(spec, ExperimentSpec):
            print(f"error: spec {spec.name!r} declares no [sweep.matrix]; "
                  "use `repro pipeline run` for single-scenario specs")
            return 2
        print(f"sweep {spec.name}: {len(spec)} scenario(s)")
        progress = _progress(0) if args.backend == "queue" else None
        result = run_sweep(spec, progress=progress, **common)
        print(result.render())
        return 0
    if isinstance(spec, SweepSpec):
        print(f"note: {spec.name!r} declares a sweep of {len(spec)} "
              "scenario(s); running the base scenario only "
              "(use `repro pipeline sweep` for the grid)")
        spec = spec.base
    result = Runner(spec, **common).run()
    print(result.render())
    return 0


def _cmd_bench_suite(args) -> int:
    import time

    from repro.experiments.common import get_scale, seen_configs
    from repro.features.dataset import build_dataset
    from repro.workloads import ALL_BENCHMARKS

    print(_resolved_header("bench-suite", args.scale, args.jobs))
    cfg = get_scale(args.scale)
    benchmarks = list(ALL_BENCHMARKS)
    configs = seen_configs(cfg)
    start = time.perf_counter()
    ds = build_dataset(
        benchmarks, configs, cfg.instructions, jobs=args.jobs,
        progress=_progress(len(benchmarks) * (len(configs) + 1)),
    )
    elapsed = time.perf_counter() - start
    total = len(ds) * ds.num_configs
    print(
        f"suite dataset: {len(ds):,} rows x {ds.num_configs} uarchs "
        f"({total:,} instruction-simulations) in {elapsed:.1f}s"
    )
    return 0


def _cmd_frontends(args) -> int:
    """`repro frontends list`: registered trace sources + their suites."""
    from repro.frontends import DEFAULT_FRONTEND, available_frontends

    print("frontends:")
    for name, frontend in available_frontends().items():
        default = "  (default)" if name == DEFAULT_FRONTEND else ""
        print(f"  {name:<10s} {frontend.description}{default}")
        benchmarks = frontend.benchmarks()
        if benchmarks:
            print(f"{'':12s}benchmarks: {', '.join(benchmarks)}")
        elif not frontend.has_vocabulary:
            print(f"{'':12s}benchmarks: (none imported yet — "
                  "`repro trace import <file>`)")
    return 0


def _cmd_trace(args) -> int:
    """`repro trace import|export|list`: external trace ingestion."""
    from repro.core.errors import UnknownExperimentError
    from repro.frontends.trace_import import (
        TraceImportError,
        export_trace,
        import_trace,
        list_imported,
    )

    if args.action == "list":
        names = list_imported()
        if not names:
            print("no imported traces (use `repro trace import <file>`)")
            return 0
        print(f"{len(names)} imported trace(s):")
        from repro.frontends.trace_import import load_imported

        for name in names:
            trace = load_imported(name)
            print(f"  {name:<24s} {len(trace):>10,d} rows")
        return 0

    if args.action == "export":
        if not args.path or not args.out:
            print("usage: repro trace export <benchmark> --out FILE "
                  "[--isa NAME]")
            return 2
        from repro.experiments.common import get_scale
        from repro.frontends import get_frontend

        scale = get_scale(args.scale)
        trace = get_frontend(args.isa).trace(args.path, scale.instructions)
        export_trace(trace, args.out, fmt=args.format)
        print(f"exported {len(trace):,} rows of {args.path} "
              f"(isa={args.isa}) to {args.out}")
        return 0

    if not args.path:
        print("usage: repro trace import <file> [--isa NAME] [--name NAME]")
        return 2
    try:
        result = import_trace(
            args.path, name=args.name, isa=args.isa, fmt=args.format,
            streaming=not args.whole_file,
        )
    except (TraceImportError, UnknownExperimentError) as exc:
        print(f"error: {exc}")
        return 1
    verb = "cache hit" if result.cache_hit else "imported"
    print(f"{verb}: {result.name} ({result.rows:,} rows, isa={result.isa}, "
          f"sha256 {result.digest[:12]})")
    print(f"serve it via the 'imported' frontend: "
          f"repro predict {result.name} --isa imported")
    return 0


def _cmd_train(args) -> int:
    from repro.api import Session

    print(_resolved_header(f"train {args.model}", args.scale, args.jobs))
    session = Session(scale=args.scale, jobs=args.jobs, frontend=args.isa)
    benchmarks = _benchmarks_value(args.benchmarks)
    kwargs = {"benchmarks": benchmarks} if benchmarks else {}
    result = session.train(
        family=args.model, reuse=not args.retrain, tag=args.tag, **kwargs
    )
    print(f"artifact: {result.artifact_id} "
          f"({'reused from store' if result.reused else 'trained'})")
    for name, summary in result.errors.items():
        print(f"  {name:>16s}  {summary.row()}")
    return 0


def _cmd_predict(args) -> int:
    from repro.api import Session, predicted_times_row

    print(_resolved_header(f"predict {args.benchmark}", args.scale, args.jobs))
    session = Session(scale=args.scale, jobs=args.jobs, frontend=args.isa)
    times = session.predict(
        args.benchmark, config=args.config, artifact=args.artifact,
        family=args.model,
    )
    if args.config is not None:
        print(f"{args.benchmark} @ {args.config}: {times:.6g} ticks")
    else:
        print(f"{args.benchmark}: {predicted_times_row(times)}")
    if args.evaluate:
        errors = session.evaluate(
            [args.benchmark], artifact=args.artifact, family=args.model
        )
        for name, summary in errors.items():
            print(f"  {name:>16s}  {summary.row()}")
    return 0


def _cmd_serve(args) -> int:
    from repro.serving import (
        DispatchPolicy, PredictionCluster, PredictionService, run_server,
    )

    print(_resolved_header("serve", args.scale, max(1, args.workers)))
    if args.workers > 0:
        service = PredictionCluster(
            workers=args.workers,
            scale=args.scale,
            cache_dir=args.cache_dir,
            model_cache=args.model_cache,
            policy=DispatchPolicy(
                queue_depth=args.queue_depth,
                queue_timeout_s=args.queue_timeout,
                hedge_after_s=args.hedge_after or None,
            ),
        )
        endpoints = ("POST /v1/predict, POST /v1/swap, GET /healthz, "
                     "GET /v1/models, GET /v1/stats")
    else:
        service = PredictionService(
            scale=args.scale,
            cache_dir=args.cache_dir,
            model_cache=args.model_cache,
            max_batch=args.max_batch,
        )
        endpoints = "POST /v1/predict, GET /healthz, GET /v1/models"
    print(f"listening on http://{args.host}:{args.port} ({endpoints})")
    run_server(service, host=args.host, port=args.port)
    return 0


def _cmd_models(args) -> int:
    import json

    from repro.models import ModelStore, StoreError

    store = ModelStore()
    if args.action == "show":
        if not args.artifact:
            print("usage: repro models show <artifact-id>")
            return 2
        try:
            manifest = store.manifest(args.artifact)
        except StoreError as exc:
            print(f"error: {exc}")
            return 1
        print(json.dumps(manifest, indent=2, sort_keys=True))
        _print_jit_summary()
        return 0
    if args.action == "rm":
        if not args.artifact:
            print("usage: repro models rm <artifact-id>")
            return 2
        try:
            store.delete(args.artifact)
        except StoreError as exc:
            print(f"error: {exc}")
            return 1
        print(f"deleted {args.artifact} from {store.root}")
        return 0
    manifests = store.list()
    if not manifests:
        print(f"no stored models under {store.root}")
        return 0
    print(f"{len(manifests)} artifact(s) under {store.root}:")
    for manifest in manifests:
        train_config = manifest.get("train_config") or {}
        scale = train_config.get("scale", "-")
        fingerprint = manifest.get("dataset_fingerprint") or "-"
        tag = manifest.get("tag")
        suffix = f"  tag={tag}" if tag else ""
        print(f"  {manifest['id']:<42s} scale={scale:<6s} "
              f"data={fingerprint}{suffix}")
    return 0


def _cmd_obs(args) -> int:
    """`repro obs trace|top|list`: render captured span traces."""
    from repro import obs

    if args.action == "trace":
        if not args.trace:
            rows = obs.list_traces()
            if not rows:
                print("no traces recorded (run with --obs or REPRO_OBS=1)")
                return 2
            print("usage: repro obs trace <trace-id>; recent traces:")
            for row in rows[:10]:
                print(f"  {row['trace']}  {row['root']}")
            return 2
        print(obs.render_trace(args.trace))
        return 0
    if args.action == "top":
        print(obs.render_top(limit=args.limit))
        return 0
    rows = obs.list_traces()
    if not rows:
        print("no traces recorded (run with --obs or REPRO_OBS=1)")
        return 0
    print(f"{len(rows)} trace(s), newest first:")
    for row in rows[: args.limit]:
        duration = (f"{row['duration_s']:.3f}s"
                    if row["duration_s"] is not None else "...")
        flags = []
        if row["truncated"]:
            flags.append(f"{row['truncated']} truncated")
        if row["errors"]:
            flags.append(f"{row['errors']} error(s)")
        suffix = f"  [{', '.join(flags)}]" if flags else ""
        print(f"  {row['trace']}  {row['root']:<24s} "
              f"{row['spans']:>4d} spans  {row['processes']} proc  "
              f"{duration}{suffix}")
    return 0


def _print_jit_summary() -> None:
    """Compiled kernels published under ``<cache>/jit/`` (models show)."""
    from repro import jit

    summary = jit.disk_summary()
    if not summary["kernels"] and not summary["stale"]:
        return
    print(f"\njit kernel cache ({summary['dir']}, "
          f"generator v{summary['generator_version']}):")
    for entry in summary["kernels"]:
        print(f"  {entry['key']}  {entry['label']:<32s} "
              f"{entry['bytes']:>6d} bytes")
    if summary["stale"]:
        print(f"  + {summary['stale']} stale entr"
              f"{'y' if summary['stale'] == 1 else 'ies'} "
              "(older generator; ignored)")


def _benchmarks_value(text: str | None) -> tuple[str, ...] | None:
    if not text:
        return None
    return tuple(name.strip() for name in text.split(",") if name.strip())


def _jobs_value(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"--jobs must be >= 1 (or 0 for all cores), got {value}"
        )
    return value


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=_jobs_value, default=0, metavar="N",
        help="worker processes (default: all cores; 1 = serial)",
    )


def _add_cache_dir_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache root for datasets + models + stage artifacts "
             "(default: $REPRO_CACHE_DIR or .repro_cache)",
    )


def _add_jit_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jit", action=argparse.BooleanOptionalAction, default=None,
        help="compiled kernel tier for the ml hot loops (default: "
             "$REPRO_JIT or on; --no-jit forces the numpy reference path)",
    )


def _add_obs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--obs", action=argparse.BooleanOptionalAction, default=None,
        help="structured span tracing to <cache>/obs/ (default: "
             "$REPRO_OBS or off; metrics counters are always on)",
    )


def _add_isa_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--isa", default="mini-asm", metavar="NAME",
        help="trace frontend benchmark names resolve against "
             "(see `repro frontends list`; default: mini-asm)",
    )


def _add_results_dir_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--results-dir", default=None, metavar="DIR",
        help="where result JSON files land "
             "(default: $REPRO_RESULTS_DIR or <cache root>/results)",
    )


def main(argv: list[str] | None = None) -> int:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="PerfVec reproduction experiment runner",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and scales")

    p_run = sub.add_parser("run", help="run one experiment")
    p_run.add_argument("experiment")
    p_run.add_argument("--scale", default="bench")
    p_run.add_argument("--save", action="store_true")
    _add_jobs_flag(p_run)
    _add_cache_dir_flag(p_run)
    _add_results_dir_flag(p_run)

    p_all = sub.add_parser("run-all", help="run every experiment")
    p_all.add_argument("--scale", default="bench")
    _add_jobs_flag(p_all)
    _add_cache_dir_flag(p_all)
    _add_results_dir_flag(p_all)

    p_pipe = sub.add_parser(
        "pipeline", help="run declarative pipeline specs (see docs/API.md)"
    )
    p_pipe.add_argument("action", choices=["run", "sweep", "list", "worker"])
    p_pipe.add_argument(
        "spec", nargs="?", default=None,
        help="registered spec name or path to a .toml/.json spec file",
    )
    p_pipe.add_argument("--scale", default=None,
                        help="scale override (default: the spec's)")
    p_pipe.add_argument("--save", action="store_true",
                        help="write the report JSON to the results dir")
    p_pipe.add_argument("--force", action="store_true",
                        help="re-execute every stage, ignoring artifacts")
    p_pipe.add_argument(
        "--backend", choices=["local", "queue"], default="local",
        help="stage executor: in-process waves (local, default) or the "
             "distributed work-stealing queue under the cache root",
    )
    p_pipe.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="queue workers to spawn on this host (0: rely on external "
             "`repro pipeline worker` processes; queue backend only)",
    )
    p_pipe.add_argument(
        "--lease-ttl", type=float, default=30.0, metavar="SECONDS",
        help="missed-heartbeat window before a queue task is re-issued",
    )
    p_pipe.add_argument(
        "--id", default=None, metavar="WORKER_ID",
        help="worker identity (worker action; default: host-pid)",
    )
    p_pipe.add_argument(
        "--poll", type=float, default=0.05, metavar="SECONDS",
        help="queue poll interval when idle (worker action)",
    )
    p_pipe.add_argument(
        "--idle-timeout", type=float, default=None, metavar="SECONDS",
        help="exit after this long without claimable work "
             "(worker action; default: wait for the stop sentinel)",
    )
    p_pipe.add_argument(
        "--max-tasks", type=int, default=None, metavar="N",
        help="exit after claiming N tasks (worker action)",
    )
    _add_jobs_flag(p_pipe)
    _add_cache_dir_flag(p_pipe)
    _add_results_dir_flag(p_pipe)
    _add_jit_flag(p_pipe)
    _add_obs_flag(p_pipe)

    p_suite = sub.add_parser("bench-suite", help="build the full suite dataset")
    p_suite.add_argument("--scale", default="bench")
    _add_jobs_flag(p_suite)
    _add_cache_dir_flag(p_suite)

    p_train = sub.add_parser(
        "train", help="train a performance model into the store (or reuse)"
    )
    p_train.add_argument("--scale", default="bench")
    p_train.add_argument(
        "--model", default="perfvec", metavar="FAMILY",
        help="model family (see `repro models list` / repro.models.available)",
    )
    p_train.add_argument(
        "--benchmarks", default=None, metavar="A,B,...",
        help="comma-separated training benchmarks (default: the train split)",
    )
    p_train.add_argument(
        "--retrain", action="store_true",
        help="train even when a matching stored artifact exists",
    )
    p_train.add_argument("--tag", default=None, help="free-form artifact tag")
    _add_isa_flag(p_train)
    _add_jobs_flag(p_train)
    _add_cache_dir_flag(p_train)
    _add_jit_flag(p_train)
    _add_obs_flag(p_train)

    p_predict = sub.add_parser(
        "predict", help="serve predictions from a stored model (no training)"
    )
    p_predict.add_argument("benchmark")
    p_predict.add_argument("--scale", default="bench")
    p_predict.add_argument("--model", default="perfvec", metavar="FAMILY")
    p_predict.add_argument(
        "--artifact", default=None, metavar="ID",
        help="artifact id (default: newest of the family at this scale)",
    )
    p_predict.add_argument(
        "--config", default=None, metavar="NAME",
        help="single microarchitecture (default: every known config)",
    )
    p_predict.add_argument(
        "--evaluate", action="store_true",
        help="also simulate ground truth and print the error summary",
    )
    _add_isa_flag(p_predict)
    _add_jobs_flag(p_predict)
    _add_cache_dir_flag(p_predict)
    _add_jit_flag(p_predict)
    _add_obs_flag(p_predict)

    p_frontends = sub.add_parser(
        "frontends", help="list registered trace frontends"
    )
    p_frontends.add_argument("action", choices=["list"])
    _add_cache_dir_flag(p_frontends)

    p_trace = sub.add_parser(
        "trace", help="import/export external instruction traces"
    )
    p_trace.add_argument("action", choices=["import", "export", "list"])
    p_trace.add_argument(
        "path", nargs="?", default=None,
        help="trace file to import (.jsonl/.csv, .gz ok) — or, for "
             "export, the benchmark name to trace",
    )
    p_trace.add_argument(
        "--name", default=None, metavar="NAME",
        help="imported-trace name (default: derived from the file name)",
    )
    p_trace.add_argument(
        "--format", default=None, choices=["jsonl", "csv"],
        help="file format (default: inferred from the extension)",
    )
    p_trace.add_argument(
        "--out", default=None, metavar="FILE",
        help="output path (export action)",
    )
    p_trace.add_argument(
        "--whole-file", action="store_true",
        help="parse the whole file in memory instead of streaming",
    )
    p_trace.add_argument("--scale", default="bench",
                         help="trace length for export (scale preset)")
    _add_isa_flag(p_trace)
    _add_cache_dir_flag(p_trace)

    p_serve = sub.add_parser(
        "serve", help="run the HTTP/JSON prediction service"
    )
    p_serve.add_argument("--scale", default="bench")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080)
    p_serve.add_argument(
        "--model-cache", type=int, default=4, metavar="N",
        help="deserialized models kept hot (LRU)",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=64, metavar="N",
        help="micro-batch size cap for queued requests",
    )
    p_serve.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="prediction worker processes behind a dispatching frontend "
             "(0: serve in-process, the default)",
    )
    p_serve.add_argument(
        "--queue-depth", type=int, default=64, metavar="N",
        help="max outstanding requests per worker before 503 rejection",
    )
    p_serve.add_argument(
        "--queue-timeout", type=float, default=30.0, metavar="SECONDS",
        help="requests unanswered this long fail with 503",
    )
    p_serve.add_argument(
        "--hedge-after", type=float, default=0.0, metavar="SECONDS",
        help="duplicate straggling requests to a second worker after "
             "this long (0: hedging off)",
    )
    _add_cache_dir_flag(p_serve)
    _add_jit_flag(p_serve)
    _add_obs_flag(p_serve)

    p_obs = sub.add_parser(
        "obs", help="inspect captured span traces (<cache>/obs/)"
    )
    p_obs.add_argument("action", choices=["trace", "top", "list"])
    p_obs.add_argument(
        "trace", nargs="?", default=None,
        help="trace id (trace action; see `repro obs list`)",
    )
    p_obs.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="rows shown by top/list (default: 20)",
    )
    _add_cache_dir_flag(p_obs)

    p_models = sub.add_parser("models", help="inspect the model store")
    p_models.add_argument("action", choices=["list", "show", "rm"])
    p_models.add_argument(
        "artifact", nargs="?", default=None,
        help="artifact id (for show/rm)",
    )
    _add_cache_dir_flag(p_models)

    args = parser.parse_args(argv)
    from repro import jit, obs
    from repro.cache import set_cache_root, set_results_dir

    set_cache_root(getattr(args, "cache_dir", None))
    set_results_dir(getattr(args, "results_dir", None))
    # exported as REPRO_JIT so spawned workers resolve the same setting
    jit.set_enabled(getattr(args, "jit", None))
    # likewise REPRO_OBS: spawned cluster/queue workers trace too
    obs.set_enabled(getattr(args, "obs", None))
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "run-all": _cmd_run_all,
        "pipeline": _cmd_pipeline,
        "bench-suite": _cmd_bench_suite,
        "train": _cmd_train,
        "predict": _cmd_predict,
        "serve": _cmd_serve,
        "obs": _cmd_obs,
        "models": _cmd_models,
        "frontends": _cmd_frontends,
        "trace": _cmd_trace,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
