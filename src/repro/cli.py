"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands::

    repro list                      # available experiments and scales
    repro run fig3_seen_unseen      # one experiment (default scale: bench)
    repro run-all --scale bench     # every experiment, saving JSON results
    repro bench-suite --scale bench # trace + simulate the whole suite once
"""

from __future__ import annotations

import argparse
import sys


def _cmd_list(_args) -> int:
    from repro.experiments import EXPERIMENTS, SCALES

    print("experiments:")
    for name in EXPERIMENTS:
        print(f"  {name}")
    print("scales:", ", ".join(SCALES))
    return 0


def _cmd_run(args) -> int:
    from repro.experiments import run_experiment

    result = run_experiment(args.experiment, scale=args.scale)
    print(result.render())
    if args.save:
        path = result.save()
        print(f"saved: {path}")
    return 0


def _cmd_run_all(args) -> int:
    from repro.experiments import EXPERIMENTS, run_experiment

    failures = []
    for name in EXPERIMENTS:
        print(f"\n### {name} (scale={args.scale})")
        try:
            result = run_experiment(name, scale=args.scale)
        except Exception as exc:  # keep going; report at the end
            print(f"FAILED: {exc}")
            failures.append(name)
            continue
        print(result.render())
        print(f"saved: {result.save()}")
    if failures:
        print(f"\nfailed experiments: {failures}")
        return 1
    return 0


def _cmd_bench_suite(args) -> int:
    import time

    from repro.experiments.common import get_scale, seen_configs
    from repro.features.dataset import build_dataset
    from repro.workloads import ALL_BENCHMARKS

    cfg = get_scale(args.scale)
    start = time.perf_counter()
    ds = build_dataset(
        list(ALL_BENCHMARKS), seen_configs(cfg), cfg.instructions
    )
    elapsed = time.perf_counter() - start
    total = len(ds) * ds.num_configs
    print(
        f"suite dataset: {len(ds):,} rows x {ds.num_configs} uarchs "
        f"({total:,} instruction-simulations) in {elapsed:.1f}s"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PerfVec reproduction experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and scales")

    p_run = sub.add_parser("run", help="run one experiment")
    p_run.add_argument("experiment")
    p_run.add_argument("--scale", default="bench")
    p_run.add_argument("--save", action="store_true")

    p_all = sub.add_parser("run-all", help="run every experiment")
    p_all.add_argument("--scale", default="bench")

    p_suite = sub.add_parser("bench-suite", help="build the full suite dataset")
    p_suite.add_argument("--scale", default="bench")

    args = parser.parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "run-all": _cmd_run_all,
        "bench-suite": _cmd_bench_suite,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
