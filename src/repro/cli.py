"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands::

    repro list                      # available experiments and scales
    repro run fig3_seen_unseen      # one experiment (default scale: bench)
    repro run-all --scale bench     # every experiment, saving JSON results
    repro bench-suite --scale bench # trace + simulate the whole suite once

Every runner subcommand takes ``--jobs N`` (default: all cores) to fan
trace simulations — and, for ``run-all``, whole experiments — out across
worker processes via :mod:`repro.runtime`.
"""

from __future__ import annotations

import argparse
import sys


def _resolved_header(command: str, scale: str, jobs: int | None) -> str:
    from repro.runtime import resolve_jobs

    return f"# repro {command}: scale={scale} jobs={resolve_jobs(jobs)}"


def _progress(total: int):
    from repro.runtime import ProgressReporter

    return ProgressReporter(total=total, stream=sys.stderr)


def _cmd_list(_args) -> int:
    from repro.experiments import EXPERIMENTS, SCALES

    print("experiments:")
    for name in EXPERIMENTS:
        print(f"  {name}")
    print("scales:", ", ".join(SCALES))
    return 0


def _cmd_run(args) -> int:
    from repro.experiments import run_experiment

    print(_resolved_header(f"run {args.experiment}", args.scale, args.jobs))
    result = run_experiment(args.experiment, scale=args.scale, jobs=args.jobs)
    print(result.render())
    if args.save:
        path = result.save()
        print(f"saved: {path}")
    return 0


def _cmd_run_all(args) -> int:
    from repro.experiments import EXPERIMENTS, run_all

    print(_resolved_header("run-all", args.scale, args.jobs))
    outcomes = run_all(
        scale=args.scale, jobs=args.jobs,
        progress=_progress(len(EXPERIMENTS)), save=True,
    )
    failures = []
    for outcome in outcomes:
        print(f"\n### {outcome.name} (scale={args.scale})")
        if not outcome.ok:
            print(f"FAILED:\n{outcome.error}")
            failures.append(outcome.name)
            continue
        print(outcome.result.render())
        print(f"saved: {outcome.result.save()}")
    if failures:
        print(f"\nfailed experiments: {failures}")
        return 1
    return 0


def _cmd_bench_suite(args) -> int:
    import time

    from repro.experiments.common import get_scale, seen_configs
    from repro.features.dataset import build_dataset
    from repro.workloads import ALL_BENCHMARKS

    print(_resolved_header("bench-suite", args.scale, args.jobs))
    cfg = get_scale(args.scale)
    benchmarks = list(ALL_BENCHMARKS)
    configs = seen_configs(cfg)
    start = time.perf_counter()
    ds = build_dataset(
        benchmarks, configs, cfg.instructions, jobs=args.jobs,
        progress=_progress(len(benchmarks) * (len(configs) + 1)),
    )
    elapsed = time.perf_counter() - start
    total = len(ds) * ds.num_configs
    print(
        f"suite dataset: {len(ds):,} rows x {ds.num_configs} uarchs "
        f"({total:,} instruction-simulations) in {elapsed:.1f}s"
    )
    return 0


def _jobs_value(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"--jobs must be >= 1 (or 0 for all cores), got {value}"
        )
    return value


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=_jobs_value, default=0, metavar="N",
        help="worker processes (default: all cores; 1 = serial)",
    )


def main(argv: list[str] | None = None) -> int:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="PerfVec reproduction experiment runner",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and scales")

    p_run = sub.add_parser("run", help="run one experiment")
    p_run.add_argument("experiment")
    p_run.add_argument("--scale", default="bench")
    p_run.add_argument("--save", action="store_true")
    _add_jobs_flag(p_run)

    p_all = sub.add_parser("run-all", help="run every experiment")
    p_all.add_argument("--scale", default="bench")
    _add_jobs_flag(p_all)

    p_suite = sub.add_parser("bench-suite", help="build the full suite dataset")
    p_suite.add_argument("--scale", default="bench")
    _add_jobs_flag(p_suite)

    args = parser.parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "run-all": _cmd_run_all,
        "bench-suite": _cmd_bench_suite,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
