"""PerfVec core: the paper's primary contribution.

* :mod:`~repro.core.foundation` — the instruction representation model
  (the *foundation model*), with the architecture registry swept by Fig. 6
  (``lstm-2-256``, ``gru-2-256``, ``transformer-2-256``, ...).
* :mod:`~repro.core.predictor` — the learnable microarchitecture
  representation table and the bias-free linear latency predictor.
* :mod:`~repro.core.perfvec` — the combined model; program representations
  composed by summing instruction representations (Sec. III-B).
* :mod:`~repro.core.training` — foundation training with microarchitecture
  sampling + instruction representation reuse (Sec. IV).
* :mod:`~repro.core.finetune` — unseen-microarchitecture representation
  learning with a frozen foundation (Sec. V-A).
* :mod:`~repro.core.uarch_model` — the parametric microarchitecture
  representation model used in DSE (Sec. VI-A).
* :mod:`~repro.core.dse` — the cache design-space-exploration workflow.
* :mod:`~repro.core.errors` — the paper's prediction-error metrics.
"""

from repro.core.foundation import Foundation, make_foundation, parse_spec
from repro.core.predictor import MicroarchTable, TICK_SCALE
from repro.core.perfvec import PerfVec
from repro.core.training import train_foundation, naive_training_step_cost
from repro.core.finetune import fit_table_least_squares, learn_unseen_uarch_table
from repro.core.uarch_model import UarchModel, train_uarch_model
from repro.core.errors import abs_rel_error, error_summary
from repro.core.dse import CacheDSE, cache_objective

__all__ = [
    "Foundation",
    "make_foundation",
    "parse_spec",
    "MicroarchTable",
    "TICK_SCALE",
    "PerfVec",
    "train_foundation",
    "naive_training_step_cost",
    "fit_table_least_squares",
    "learn_unseen_uarch_table",
    "UarchModel",
    "train_uarch_model",
    "abs_rel_error",
    "error_summary",
    "CacheDSE",
    "cache_objective",
]
