"""Cache design-space exploration (paper Sec. VI-A, Fig. 7, Table IV).

The paper's case study: explore L1D (4-128 kB) x L2 (256 kB - 8 MB) around
an ARM Cortex-A7-like core, minimizing the objective

    (1000 + 10 * L1_kB + L2_kB) * execution_time

("the optimal cache capacities that minimize the total chip footprint
without significant performance loss").  The PerfVec workflow: simulate a
few programs on a *sampled subset* of the space, train a parametric
microarchitecture model on that tuning data, then predict the whole grid
for every program with dot products.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.uarch.config import MicroarchConfig

#: Paper grid: both dimensions powers of two.
DEFAULT_L1_SIZES = (4, 8, 16, 32, 64, 128)
DEFAULT_L2_SIZES = (256, 512, 1024, 2048, 4096, 8192)


def cache_objective(l1_kb: int, l2_kb: int, exec_time: float) -> float:
    """The paper's chip-footprint-times-time objective."""
    return (1000.0 + 10.0 * l1_kb + l2_kb) * exec_time


@dataclass(frozen=True)
class RankQuality:
    """How good is the design a method picked, vs exhaustive ground truth."""

    chosen_index: int
    rank: int  # 1 = optimal
    frac_better: float  # fraction of designs strictly better (paper's metric)

    @property
    def is_optimal(self) -> bool:
        return self.rank == 1

    def within_top(self, k: int) -> bool:
        return self.rank <= k


class CacheDSE:
    """The L1D x L2 grid around a base microarchitecture."""

    def __init__(
        self,
        base: MicroarchConfig,
        l1_sizes: tuple[int, ...] = DEFAULT_L1_SIZES,
        l2_sizes: tuple[int, ...] = DEFAULT_L2_SIZES,
    ):
        if not l1_sizes or not l2_sizes:
            raise ValueError("empty design space")
        self.base = base
        self.l1_sizes = tuple(l1_sizes)
        self.l2_sizes = tuple(l2_sizes)
        self.grid: list[tuple[int, int]] = [
            (l1, l2) for l1 in self.l1_sizes for l2 in self.l2_sizes
        ]
        self.configs: list[MicroarchConfig] = [
            base.with_cache_sizes(l1d_kb=l1, l2_kb=l2) for l1, l2 in self.grid
        ]

    def __len__(self) -> int:
        return len(self.grid)

    def sample_configs(self, count: int, seed: int = 0) -> list[int]:
        """Indices of a random tuning subset of the grid (no replacement)."""
        if not 1 <= count <= len(self.grid):
            raise ValueError("count out of range")
        rng = np.random.default_rng(seed)
        return sorted(rng.choice(len(self.grid), size=count, replace=False).tolist())

    def objective_values(self, times: np.ndarray) -> np.ndarray:
        """Objective per grid point given execution times (same order)."""
        times = np.asarray(times, dtype=np.float64)
        if times.shape[-1] != len(self.grid):
            raise ValueError("times must have one entry per grid point")
        areas = np.array(
            [1000.0 + 10.0 * l1 + l2 for l1, l2 in self.grid], dtype=np.float64
        )
        return times * areas

    def objective_surface(self, times: np.ndarray) -> np.ndarray:
        """Objective reshaped to (len(l1_sizes), len(l2_sizes)) — Fig. 7."""
        return self.objective_values(times).reshape(
            len(self.l1_sizes), len(self.l2_sizes)
        )

    @staticmethod
    def rank_quality(
        predicted_objective: np.ndarray, true_objective: np.ndarray
    ) -> RankQuality:
        """Judge the design chosen from predictions against ground truth."""
        predicted_objective = np.asarray(predicted_objective, dtype=np.float64)
        true_objective = np.asarray(true_objective, dtype=np.float64)
        if predicted_objective.shape != true_objective.shape:
            raise ValueError("shape mismatch")
        chosen = int(predicted_objective.argmin())
        better = int((true_objective < true_objective[chosen]).sum())
        return RankQuality(
            chosen_index=chosen, rank=better + 1,
            frac_better=better / len(true_objective),
        )
