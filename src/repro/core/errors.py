"""Prediction-error metrics (Figs. 3-6) and prediction-request errors."""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Iterable

import numpy as np


class PredictionError(RuntimeError):
    """A prediction/serving request that cannot be satisfied as posed."""


class UnknownExperimentError(KeyError):
    """A name lookup (experiment, spec, stage, scale, ...) that missed.

    Subclasses :class:`KeyError` so callers that guarded the old bare
    dict lookups keep working; the message names the nearest matches so
    a typo in ``repro run``/``repro pipeline run`` is a one-glance fix.
    """

    def __init__(
        self, name: str, known: Iterable[str] = (), kind: str = "experiment"
    ):
        self.name = name
        self.kind = kind
        self.known = tuple(known)
        self.suggestions = tuple(
            difflib.get_close_matches(name, self.known, n=3, cutoff=0.4)
        )
        message = f"unknown {kind} {name!r}"
        if self.suggestions:
            message += "; did you mean " + " or ".join(
                repr(s) for s in self.suggestions
            ) + "?"
        if self.known:
            message += f" (known: {', '.join(sorted(self.known))})"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


class UnknownBenchmarkError(PredictionError, KeyError):
    """The requested benchmark is not in the workload suite or dataset.

    Subclasses :class:`KeyError` so callers that guarded the old bare
    segment-lookup ``KeyError`` keep working.
    """

    def __init__(self, benchmark: str, known: Iterable[str] = ()):
        self.benchmark = benchmark
        self.known = tuple(known)
        message = f"unknown benchmark {benchmark!r}"
        if self.known:
            message += f"; known: {list(self.known)}"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


def abs_rel_error(predicted: np.ndarray, true: np.ndarray) -> np.ndarray:
    """Element-wise absolute relative error ``|pred - true| / true``."""
    predicted = np.asarray(predicted, dtype=np.float64)
    true = np.asarray(true, dtype=np.float64)
    if predicted.shape != true.shape:
        raise ValueError("shape mismatch")
    if np.any(true <= 0):
        raise ValueError("true values must be positive")
    return np.abs(predicted - true) / true


@dataclass(frozen=True)
class ErrorSummary:
    """The paper's per-program error statistics across microarchitectures
    (Fig. 3's dots, orange caps and blue caps)."""

    mean: float
    std: float
    min: float
    max: float

    def row(self) -> str:
        return (
            f"mean={self.mean:6.2%}  std={self.std:6.2%}  "
            f"min={self.min:6.2%}  max={self.max:6.2%}"
        )


def error_summary(predicted: np.ndarray, true: np.ndarray) -> ErrorSummary:
    """Summarize prediction errors across one program's microarchitectures."""
    err = abs_rel_error(predicted, true)
    return ErrorSummary(
        mean=float(err.mean()),
        std=float(err.std()),
        min=float(err.min()),
        max=float(err.max()),
    )
