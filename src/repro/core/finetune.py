"""Unseen-microarchitecture representation learning (paper Sec. V-A).

"Unseen microarchitecture representations are learned ... with an important
difference that the instruction representation model is initialized to be
the pre-trained foundation model and frozen during training.  Only the
microarchitecture representation table is updated."

With the foundation frozen, instruction representations can be computed
*once*; and because the predictor is bias-free linear with an MSE loss, the
optimal table rows are exactly the least-squares solution — a property the
linear-predictor design choice buys for free.  Both solvers are provided:
the closed form (default; exact and fast) and plain gradient descent (for
parity with the paper's description).
"""

from __future__ import annotations

import numpy as np

from repro.core.perfvec import PerfVec
from repro.core.predictor import MicroarchTable, TICK_SCALE
from repro.ml.autograd import Tensor, mse_loss
from repro.ml.optim import Adam


def fit_table_least_squares(
    reps: np.ndarray, targets: np.ndarray, ridge: float = 1e-6
) -> np.ndarray:
    """Closed-form optimal table: argmin_M ||reps @ M.T - targets||^2.

    ``reps``: (N, d) instruction representations; ``targets``: (N, k)
    incremental latencies in 0.1 ns ticks.  Returns (k, d) rows in the
    model's scaled latency space (ready to install in a
    :class:`MicroarchTable`).  A small ridge term keeps the normal
    equations well-posed when representations are collinear.
    """
    if reps.ndim != 2 or targets.ndim != 2 or len(reps) != len(targets):
        raise ValueError("reps (N,d) and targets (N,k) must align")
    scaled = targets.astype(np.float64) * TICK_SCALE
    a = reps.astype(np.float64)
    gram = a.T @ a + ridge * np.eye(a.shape[1])
    solution = np.linalg.solve(gram, a.T @ scaled)  # (d, k)
    return solution.T.astype(np.float32)


def learn_unseen_uarch_table(
    model: PerfVec,
    tuning_features: np.ndarray,
    tuning_targets: np.ndarray,
    config_names: tuple[str, ...] | None = None,
    method: str = "lstsq",
    epochs: int = 200,
    lr: float = 0.01,
    chunk_len: int = 64,
    seed: int = 0,
) -> MicroarchTable:
    """Learn representations of new microarchitectures with a frozen foundation.

    ``tuning_features``/``tuning_targets`` come from simulating a few *seen*
    programs on the unseen microarchitectures (the paper's small tuning
    dataset); the foundation is only used for inference.
    """
    if method not in ("lstsq", "sgd"):
        raise ValueError("method must be 'lstsq' or 'sgd'")
    reps = model.instruction_representations(tuning_features, chunk_len=chunk_len)
    k = tuning_targets.shape[1]
    table = MicroarchTable(
        k, model.foundation.dim, config_names=config_names,
        rng=np.random.default_rng(seed),
    )
    if method == "lstsq":
        table.table.data = fit_table_least_squares(reps, tuning_targets)
        return table
    # gradient variant: only the table receives updates
    optimizer = Adam([table.table], lr=lr)
    reps_t = Tensor(reps)
    scaled = tuning_targets * TICK_SCALE
    for _ in range(epochs):
        optimizer.zero_grad()
        preds = table(reps_t)
        mse_loss(preds, scaled).backward()
        optimizer.step()
    return table
