"""The instruction representation (foundation) model.

Maps a stream of 51-feature instruction rows to d-dimensional instruction
representations ``R_i``.  The architecture registry covers everything the
paper's Fig. 6 ablation sweeps: linear regression, per-instruction MLP,
GRU, unidirectional/bidirectional LSTM and a causal Transformer encoder,
at any depth/width via the spec string ``"<arch>-<layers>-<dim>"``
(e.g. the paper's default ``"lstm-2-256"``).

Context handling: the paper gives each instruction ``c = 255`` predecessors
of context.  Here the stream is processed in contiguous chunks with fresh
recurrent state per chunk, so the chunk length plays the role of ``c`` —
instructions late in a chunk see up to ``chunk_len - 1`` predecessors.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro.features.encoder import NUM_FEATURES
from repro.ml.attention import TransformerEncoder
from repro.ml.autograd import Tensor
from repro.ml.layers import Linear, MLP, Module
from repro.ml.recurrent import GRU, LSTM

_SPEC_RE = re.compile(r"^(linear|mlp|gru|lstm|bilstm|transformer)-(\d+)-(\d+)$")


@dataclass(frozen=True)
class FoundationSpec:
    arch: str
    layers: int
    dim: int

    @property
    def name(self) -> str:
        return f"{self.arch}-{self.layers}-{self.dim}"


def parse_spec(spec: str) -> FoundationSpec:
    """Parse an architecture spec like ``"lstm-2-256"``."""
    match = _SPEC_RE.match(spec.strip().lower())
    if not match:
        raise ValueError(
            f"bad foundation spec {spec!r}; expected '<arch>-<layers>-<dim>' "
            "with arch in linear/mlp/gru/lstm/bilstm/transformer"
        )
    arch, layers, dim = match.group(1), int(match.group(2)), int(match.group(3))
    if layers < 1 or dim < 1:
        raise ValueError("layers and dim must be positive")
    return FoundationSpec(arch, layers, dim)


class _PerPosition(Module):
    """Context-free cores (linear / MLP) lifted to (B, T, F) streams."""

    def __init__(self, net: Module, dim: int):
        super().__init__()
        self.net = net
        self.dim = dim

    @property
    def output_size(self) -> int:
        return self.dim

    def initial_state(self, batch: int):
        return None

    def forward(self, x: Tensor, state=None):
        batch, time, feat = x.shape
        flat = x.reshape(batch * time, feat)
        out = self.net(flat)
        return out.reshape(batch, time, self.dim), None

    def infer(self, x: np.ndarray, state=None):
        batch, time, feat = x.shape
        out = self.net.infer(x.reshape(batch * time, feat))
        return out.reshape(batch, time, self.dim), None


class Foundation(Module):
    """Sequence core + (optional) projection to the representation space."""

    def __init__(self, spec: FoundationSpec, input_size: int = NUM_FEATURES,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.spec = spec
        self.input_size = input_size
        self.dim = spec.dim
        arch = spec.arch
        if arch == "linear":
            self.core = _PerPosition(
                Linear(input_size, spec.dim, rng=rng), spec.dim
            )
        elif arch == "mlp":
            sizes = [input_size] + [spec.dim] * spec.layers
            self.core = _PerPosition(MLP(sizes, rng=rng), spec.dim)
        elif arch == "gru":
            self.core = GRU(input_size, spec.dim, num_layers=spec.layers, rng=rng)
        elif arch == "lstm":
            self.core = LSTM(input_size, spec.dim, num_layers=spec.layers, rng=rng)
        elif arch == "bilstm":
            self.core = LSTM(
                input_size, spec.dim, num_layers=spec.layers,
                bidirectional=True, rng=rng,
            )
        elif arch == "transformer":
            heads = 4 if spec.dim % 4 == 0 else 2 if spec.dim % 2 == 0 else 1
            self.core = TransformerEncoder(
                input_size, spec.dim, num_layers=spec.layers, num_heads=heads,
                rng=rng,
            )
        else:  # pragma: no cover - parse_spec guards
            raise ValueError(arch)
        # project non-d-sized core outputs (biLSTM doubles) down to dim
        if self.core.output_size != spec.dim:
            self.proj = Linear(self.core.output_size, spec.dim, bias=False, rng=rng)
        else:
            self.proj = None

    @property
    def name(self) -> str:
        return self.spec.name

    def initial_state(self, batch: int):
        return self.core.initial_state(batch)

    def forward(self, x: Tensor, state=None):
        """(B, T, 51) -> instruction representations (B, T, d), new state."""
        reps, new_state = self.core(x, state)
        if self.proj is not None:
            reps = self.proj(reps)
        return reps, new_state

    def infer(self, x: np.ndarray, state=None):
        """No-grad :meth:`forward` on raw ndarrays (the serving path)."""
        reps, new_state = self.core.infer(x, state)
        if self.proj is not None:
            reps = self.proj.infer(reps)
        return reps, new_state


def make_foundation(
    spec: str | FoundationSpec,
    input_size: int = NUM_FEATURES,
    seed: int = 0,
) -> Foundation:
    """Build a foundation model from a spec string (seeded)."""
    if isinstance(spec, str):
        spec = parse_spec(spec)
    return Foundation(spec, input_size=input_size, rng=np.random.default_rng(seed))
