"""The combined PerfVec model.

``PerfVec = foundation (instruction representations) + microarchitecture
table + bias-free linear predictor``.  The compositional property (Sec.
III-B) gives the two inference modes:

* *per-instruction*: ``t_i^j = R_i · M_j`` — detailed analysis;
* *per-program*: ``T^j = (Σ_i R_i) · M_j`` — a program representation is
  the **sum** of its instruction representations, computed once and reused
  for every microarchitecture.

Inference runs on the batched no-grad engine (:mod:`repro.ml.inference`):
feature streams — any number of them at once — are cut into contiguous
chunks, chunks from *all* streams are packed into dense batches, and the
foundation's fused ``infer`` kernels process each batch without building an
autograd graph.  "The representations of all instructions can be generated
in parallel" (Sec. III-B) — here parallelism is the batch dimension of one
BLAS call, shared across every queued request.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.foundation import Foundation
from repro.core.predictor import MicroarchTable, TICK_SCALE
from repro.ml.autograd import Tensor
from repro.ml.inference import iter_chunk_batches
from repro.ml.layers import Module


class PerfVec(Module):
    """Foundation + microarchitecture table."""

    def __init__(self, foundation: Foundation, table: MicroarchTable):
        super().__init__()
        if foundation.dim != table.dim:
            raise ValueError("foundation and table dimensionality differ")
        self.foundation = foundation
        self.table = table

    # -- training-time forward -------------------------------------------
    def forward(self, x: Tensor, state=None):
        """(B, T, F) -> (scaled latency predictions (B, T, k), reps, state)."""
        reps, new_state = self.foundation(x, state)
        preds = self.table(reps)
        return preds, reps, new_state

    def infer(self, x: np.ndarray, state=None):
        """No-grad :meth:`forward` on raw ndarrays: (preds, reps, state)."""
        reps, new_state = self.foundation.infer(x, state)
        preds = reps @ self.table.table.data.T
        return preds, reps, new_state

    # -- inference ----------------------------------------------------------
    def instruction_representations(
        self, features: np.ndarray, chunk_len: int = 64, batch_size: int = 64
    ) -> np.ndarray:
        """Representations R_i for a feature stream ``[N, F]`` (inference).

        The stream is cut into contiguous chunks (fresh state per chunk,
        mirroring training); chunks are batched through the fused no-grad
        kernels for throughput, and the ragged tail rides as a final short
        chunk.
        """
        features = np.asarray(features, dtype=np.float32)
        self.eval()
        reps_out = np.empty(
            (len(features), self.foundation.dim), dtype=np.float32
        )
        for places, batch in iter_chunk_batches(
            [features], chunk_len, batch_size
        ):
            reps, _ = self.foundation.infer(batch)
            for row, (_s, start, length) in enumerate(places):
                reps_out[start : start + length] = reps[row]
        return reps_out

    def program_representations(
        self,
        streams: Sequence[np.ndarray],
        chunk_len: int = 64,
        batch_size: int = 64,
    ) -> np.ndarray:
        """Program representations ``(len(streams), d)`` in one engine pass.

        Chunks from every stream share inference batches, so a queue of
        serving requests costs one fused forward per batch rather than one
        per request.  Per-chunk representation sums are accumulated in
        float64 without materializing per-instruction representations, so
        arbitrarily long streams pass through bounded memory.
        """
        streams = [np.asarray(s, dtype=np.float32) for s in streams]
        self.eval()
        out = np.zeros((len(streams), self.foundation.dim), dtype=np.float64)
        for places, batch in iter_chunk_batches(streams, chunk_len, batch_size):
            reps, _ = self.foundation.infer(batch)
            sums = reps.astype(np.float64).sum(axis=1)
            for row, (s, _start, _length) in enumerate(places):
                out[s] += sums[row]
        return out

    def program_representation(
        self, features: np.ndarray, chunk_len: int = 64, batch_size: int = 64
    ) -> np.ndarray:
        """Program representation: the sum of instruction representations."""
        return self.program_representations(
            [features], chunk_len, batch_size
        )[0]

    # -- prediction ----------------------------------------------------------
    def predict_latencies(
        self, features: np.ndarray, chunk_len: int = 64, batch_size: int = 64
    ) -> np.ndarray:
        """Per-instruction incremental latencies (0.1 ns ticks), all configs."""
        reps = self.instruction_representations(features, chunk_len, batch_size)
        return (reps @ self.table.table.data.T) / TICK_SCALE

    def predict_total_time(
        self, program_rep: np.ndarray, uarch_rep: np.ndarray | None = None,
        config_index: int | None = None,
    ) -> float:
        """Total execution time (0.1 ns ticks) from representations.

        Exactly one of ``uarch_rep`` / ``config_index`` selects the target
        microarchitecture.
        """
        if (uarch_rep is None) == (config_index is None):
            raise ValueError("pass exactly one of uarch_rep / config_index")
        if uarch_rep is None:
            uarch_rep = self.table.vector(config_index)
        return float(program_rep @ uarch_rep.astype(np.float64)) / TICK_SCALE

    def predict_program_times(
        self, features: np.ndarray, chunk_len: int = 64, batch_size: int = 64
    ) -> np.ndarray:
        """Total time (ticks) on every sampled microarchitecture at once."""
        return self.predict_many_program_times(
            [features], chunk_len, batch_size
        )[0]

    def predict_many_program_times(
        self,
        streams: Sequence[np.ndarray],
        chunk_len: int = 64,
        batch_size: int = 64,
    ) -> np.ndarray:
        """Batched serving: total times ``(len(streams), k)`` for a whole
        queue of feature streams through one engine pass."""
        reps = self.program_representations(streams, chunk_len, batch_size)
        return (reps @ self.table.table.data.T.astype(np.float64)) / TICK_SCALE
