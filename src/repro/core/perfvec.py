"""The combined PerfVec model.

``PerfVec = foundation (instruction representations) + microarchitecture
table + bias-free linear predictor``.  The compositional property (Sec.
III-B) gives the two inference modes:

* *per-instruction*: ``t_i^j = R_i · M_j`` — detailed analysis;
* *per-program*: ``T^j = (Σ_i R_i) · M_j`` — a program representation is
  the **sum** of its instruction representations, computed once and reused
  for every microarchitecture.
"""

from __future__ import annotations

import numpy as np

from repro.core.foundation import Foundation
from repro.core.predictor import MicroarchTable, TICK_SCALE
from repro.ml.autograd import Tensor, no_grad
from repro.ml.layers import Module


class PerfVec(Module):
    """Foundation + microarchitecture table."""

    def __init__(self, foundation: Foundation, table: MicroarchTable):
        super().__init__()
        if foundation.dim != table.dim:
            raise ValueError("foundation and table dimensionality differ")
        self.foundation = foundation
        self.table = table

    # -- training-time forward -------------------------------------------
    def forward(self, x: Tensor, state=None):
        """(B, T, F) -> (scaled latency predictions (B, T, k), reps, state)."""
        reps, new_state = self.foundation(x, state)
        preds = self.table(reps)
        return preds, reps, new_state

    # -- inference ----------------------------------------------------------
    def instruction_representations(
        self, features: np.ndarray, chunk_len: int = 64, batch_size: int = 64
    ) -> np.ndarray:
        """Representations R_i for a feature stream ``[N, F]`` (inference).

        The stream is cut into contiguous chunks (fresh state per chunk,
        mirroring training); chunks are batched for throughput.  The ragged
        tail is processed as a final short chunk.  "The representations of
        all instructions can be generated in parallel" (Sec. III-B) — here
        parallelism is the batch dimension of one BLAS call.
        """
        n, feat = features.shape
        if n == 0:
            raise ValueError("empty feature stream")
        reps_out = np.empty((n, self.foundation.dim), dtype=np.float32)
        full = (n // chunk_len) * chunk_len
        with no_grad():
            self.eval()
            if full:
                chunks = features[:full].reshape(-1, chunk_len, feat)
                for start in range(0, len(chunks), batch_size):
                    batch = chunks[start : start + batch_size]
                    reps, _ = self.foundation(Tensor(batch))
                    reps_out[
                        start * chunk_len : (start + len(batch)) * chunk_len
                    ] = reps.data.reshape(-1, self.foundation.dim)
            if full < n:
                tail = features[full:][None, :, :]
                reps, _ = self.foundation(Tensor(tail))
                reps_out[full:] = reps.data[0]
        return reps_out

    def program_representation(
        self, features: np.ndarray, chunk_len: int = 64, batch_size: int = 64
    ) -> np.ndarray:
        """Program representation: the sum of instruction representations."""
        reps = self.instruction_representations(features, chunk_len, batch_size)
        return reps.astype(np.float64).sum(axis=0)

    # -- prediction ----------------------------------------------------------
    def predict_latencies(
        self, features: np.ndarray, chunk_len: int = 64, batch_size: int = 64
    ) -> np.ndarray:
        """Per-instruction incremental latencies (0.1 ns ticks), all configs."""
        reps = self.instruction_representations(features, chunk_len, batch_size)
        return (reps @ self.table.table.data.T) / TICK_SCALE

    def predict_total_time(
        self, program_rep: np.ndarray, uarch_rep: np.ndarray | None = None,
        config_index: int | None = None,
    ) -> float:
        """Total execution time (0.1 ns ticks) from representations.

        Exactly one of ``uarch_rep`` / ``config_index`` selects the target
        microarchitecture.
        """
        if (uarch_rep is None) == (config_index is None):
            raise ValueError("pass exactly one of uarch_rep / config_index")
        if uarch_rep is None:
            uarch_rep = self.table.vector(config_index)
        return float(program_rep @ uarch_rep.astype(np.float64)) / TICK_SCALE

    def predict_program_times(
        self, features: np.ndarray, chunk_len: int = 64, batch_size: int = 64
    ) -> np.ndarray:
        """Total time (ticks) on every sampled microarchitecture at once."""
        rep = self.program_representation(features, chunk_len, batch_size)
        return (rep @ self.table.table.data.T.astype(np.float64)) / TICK_SCALE
