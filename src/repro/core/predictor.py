"""Microarchitecture representation table and the linear latency predictor.

The performance predictor is a *bias-free linear model*: the incremental
latency of instruction ``i`` on microarchitecture ``j`` is the dot product
``R_i · M_j``.  Sec. III-B of the paper proves that exactly this choice
makes program representations compositional (``T = (Σ R_i) · M``); the
test suite verifies the identity to numerical precision.

Microarchitecture *sampling* (Sec. IV-A) replaces a full microarchitecture
representation model during foundation training with this small learnable
table of k rows — 77 x 256 = 19.7k parameters in the paper's setup versus
millions for a parametric model.
"""

from __future__ import annotations

import numpy as np

from repro.ml.autograd import Tensor
from repro.ml.layers import Module

#: Latency targets are scaled from 0.1 ns ticks into ~O(1) units for MSE
#: training (predictions are scaled back on the way out).
TICK_SCALE = 0.1


class MicroarchTable(Module):
    """k learnable microarchitecture representations (k, d)."""

    def __init__(self, num_configs: int, dim: int,
                 config_names: tuple[str, ...] | None = None,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if num_configs < 1 or dim < 1:
            raise ValueError("num_configs and dim must be positive")
        rng = rng or np.random.default_rng(0)
        self.num_configs = num_configs
        self.dim = dim
        self.config_names = tuple(config_names) if config_names else tuple(
            f"uarch-{i}" for i in range(num_configs)
        )
        if len(self.config_names) != num_configs:
            raise ValueError("config_names length mismatch")
        self.table = Tensor(
            rng.uniform(-0.1, 0.1, size=(num_configs, dim)).astype(np.float32),
            requires_grad=True,
        )

    def forward(self, reps: Tensor) -> Tensor:
        """Predict scaled latencies: (..., d) @ (d, k) -> (..., k).

        A pure dot product — no bias, no activation — per the
        compositionality requirement.
        """
        return reps @ self.table.transpose()

    def vector(self, index: int) -> np.ndarray:
        """The representation of one sampled microarchitecture."""
        return self.table.data[index]

    def index_of(self, name: str) -> int:
        return self.config_names.index(name)
