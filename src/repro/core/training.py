"""Foundation training: microarchitecture sampling + representation reuse.

The two efficiency ideas of Sec. IV, both embodied in one training step:

* **Microarchitecture sampling** — instead of a parametric uarch model,
  only a k-row table is trained jointly with the foundation.
* **Instruction representation reuse** — each chunk's representations are
  computed *once* and combined with all k table rows in a single
  ``(B·L, d) @ (d, k)`` matmul; backpropagation through the expensive
  foundation happens once per step regardless of k.  The naive alternative
  (one microarchitecture per step) costs k foundation passes —
  :func:`naive_training_step_cost` measures exactly that ratio, which is
  the paper's 26 days -> 8 hours argument.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.foundation import Foundation, make_foundation
from repro.core.perfvec import PerfVec
from repro.core.predictor import MicroarchTable, TICK_SCALE
from repro.features.dataset import TraceDataset
from repro.ml.autograd import Tensor, mse_loss, no_grad
from repro.ml.data import ChunkBatches, make_chunks, split_chunks
from repro.ml.trainer import TrainConfig, Trainer, TrainHistory


@dataclass
class FoundationTrainConfig:
    """Hyper-parameters for foundation training (paper Sec. IV-D defaults,
    scaled for an offline CPU run)."""

    spec: str = "lstm-2-256"
    chunk_len: int = 64  # the context window c analogue
    batch_size: int = 16
    epochs: int = 50
    lr: float = 1e-3
    lr_step: int = 10
    lr_gamma: float = 0.1
    val_frac: float = 0.05
    test_frac: float = 0.05
    seed: int = 0
    verbose: bool = False


def _dataset_batches(dataset: TraceDataset, chunks, batch_size: int, seed: int,
                     shuffle: bool) -> ChunkBatches:
    scaled_targets = dataset.targets  # scaling applied in the loss step
    return ChunkBatches(
        dataset.features, scaled_targets, chunks, batch_size,
        shuffle=shuffle, seed=seed,
    )


def train_foundation(
    dataset: TraceDataset,
    config: FoundationTrainConfig | None = None,
) -> tuple[PerfVec, TrainHistory]:
    """Jointly train a foundation model and microarchitecture table."""
    config = config or FoundationTrainConfig()
    foundation = make_foundation(config.spec, seed=config.seed)
    table = MicroarchTable(
        dataset.num_configs, foundation.dim,
        config_names=dataset.config_names,
        rng=np.random.default_rng(config.seed + 1),
    )
    model = PerfVec(foundation, table)

    chunks = make_chunks(dataset.segments, config.chunk_len)
    train_chunks, val_chunks, _ = split_chunks(
        chunks, config.val_frac, config.test_frac, seed=config.seed
    )
    if not train_chunks:
        raise ValueError("dataset too small for the requested chunk length")
    train_batches = _dataset_batches(
        dataset, train_chunks, config.batch_size, config.seed, shuffle=True
    )
    val_batches = (
        _dataset_batches(dataset, val_chunks, config.batch_size, config.seed,
                         shuffle=False)
        if val_chunks
        else None
    )

    def train_step(batch):
        x, y = batch
        preds, _, _ = model(Tensor(x))
        return mse_loss(preds, y * TICK_SCALE)

    def val_loss() -> float:
        if val_batches is None:
            return float("nan")
        total = 0.0
        count = 0
        with no_grad():
            for x, y in val_batches:
                preds, _, _ = model(Tensor(x))
                total += float(mse_loss(preds, y * TICK_SCALE).item()) * len(x)
                count += len(x)
        return total / max(count, 1)

    trainer = Trainer(
        model,
        TrainConfig(
            epochs=config.epochs, lr=config.lr, lr_step=config.lr_step,
            lr_gamma=config.lr_gamma, verbose=config.verbose,
        ),
    )
    history = trainer.fit(lambda: iter(train_batches), train_step, val_loss)
    return model, history


def naive_training_step_cost(
    dataset: TraceDataset,
    config: FoundationTrainConfig | None = None,
    steps: int = 4,
) -> dict[str, float]:
    """Measure reuse vs naive per-microarchitecture training cost.

    Runs ``steps`` optimizer steps in each regime and reports wall-clock
    seconds per step plus the speedup; the naive regime performs one
    foundation forward/backward per microarchitecture column, which is what
    the paper's 26-day estimate extrapolates.
    """
    config = config or FoundationTrainConfig()
    k = dataset.num_configs
    foundation = make_foundation(config.spec, seed=config.seed)
    table = MicroarchTable(k, foundation.dim, config_names=dataset.config_names)
    model = PerfVec(foundation, table)
    chunks = make_chunks(dataset.segments, config.chunk_len)
    batches = _dataset_batches(dataset, chunks, config.batch_size, config.seed,
                               shuffle=False)
    from repro.ml.optim import Adam

    optimizer = Adam(model.parameters(), lr=config.lr)

    iterator = iter(batches)
    batch_list = [next(iterator) for _ in range(min(steps, len(batches)))]

    # warm both paths once (BLAS planning, allocator growth) before timing
    wx, wy = batch_list[0]
    preds, _, _ = model(Tensor(wx))
    mse_loss(preds, wy * TICK_SCALE).backward()
    model.zero_grad()
    reps, _ = model.foundation(Tensor(wx))
    col = reps @ model.table.table[0:1, :].transpose()
    mse_loss(col, wy[:, :, 0:1] * TICK_SCALE).backward()
    model.zero_grad()

    # GC pauses during graph teardown otherwise dominate at small scales
    import gc

    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        for x, y in batch_list:
            optimizer.zero_grad()
            preds, _, _ = model(Tensor(x))
            mse_loss(preds, y * TICK_SCALE).backward()
            optimizer.step()
        reuse_time = (time.perf_counter() - start) / len(batch_list)

        start = time.perf_counter()
        for x, y in batch_list:
            for j in range(k):
                optimizer.zero_grad()
                reps, _ = model.foundation(Tensor(x))
                col = reps @ model.table.table[j : j + 1, :].transpose()
                mse_loss(col, y[:, :, j : j + 1] * TICK_SCALE).backward()
                optimizer.step()
        naive_time = (time.perf_counter() - start) / len(batch_list)
    finally:
        if gc_was_enabled:
            gc.enable()

    return {
        "configs": float(k),
        "reuse_seconds_per_step": reuse_time,
        "naive_seconds_per_step": naive_time,
        "speedup": naive_time / reuse_time,
    }
