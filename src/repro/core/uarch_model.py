"""Parametric microarchitecture representation model (paper Sec. VI-A).

For design-space exploration the learnable table is replaced by "a
microarchitecture representation model that generates representations from
input parameters, so that it can generalize to unseen microarchitectures".
The paper uses a 2-layer MLP whose inputs are the L1/L2 cache sizes; this
implementation accepts any parameter-vector extractor so the same class
serves full-config encodings too.

Training keeps the foundation frozen (representations are computed once and
cached), so each step is a small MLP regression — which is why the paper's
DSE trains in hours, not days.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.perfvec import PerfVec
from repro.core.predictor import TICK_SCALE
from repro.ml.autograd import Tensor, mse_loss
from repro.ml.layers import MLP, Module
from repro.ml.optim import Adam
from repro.uarch.config import MicroarchConfig


def cache_size_params(config: MicroarchConfig) -> np.ndarray:
    """The Fig. 7 DSE knobs: log2 of L1D and L2 capacity, normalized."""
    return np.array(
        [np.log2(config.l1d.size_kb) / 14.0, np.log2(config.l2.size_kb) / 14.0],
        dtype=np.float32,
    )


def full_config_params(config: MicroarchConfig) -> np.ndarray:
    """The full normalized parameter vector (all sampler knobs)."""
    return config.to_feature_vector()


class UarchModel(Module):
    """MLP: microarchitecture parameters -> d-dim representation."""

    def __init__(self, param_size: int, dim: int, hidden: int = 32,
                 layers: int = 2, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        sizes = [param_size] + [hidden] * (layers - 1) + [dim]
        self.net = MLP(sizes, rng=rng)
        self.param_size = param_size
        self.dim = dim

    def forward(self, params: Tensor) -> Tensor:
        return self.net(params)

    def representations(self, configs: Sequence[MicroarchConfig],
                        extractor: Callable[[MicroarchConfig], np.ndarray]
                        ) -> np.ndarray:
        """Representations of arbitrary configs (inference)."""
        params = np.stack([extractor(c) for c in configs])
        return self.forward(Tensor(params)).data


def train_uarch_model(
    model: PerfVec,
    configs: Sequence[MicroarchConfig],
    tuning_features: np.ndarray,
    tuning_targets: np.ndarray,
    extractor: Callable[[MicroarchConfig], np.ndarray] = cache_size_params,
    hidden: int = 32,
    layers: int = 2,
    epochs: int = 400,
    lr: float = 5e-3,
    chunk_len: int = 64,
    seed: int = 0,
    verbose: bool = False,
) -> UarchModel:
    """Train a :class:`UarchModel` against a frozen foundation.

    ``tuning_targets[:, j]`` are incremental latencies (ticks) of the tuning
    trace on ``configs[j]``.  Representations are cached once; each epoch is
    one full-batch Adam step over ``||reps @ uarch(params).T - y||^2``.
    """
    if tuning_targets.shape[1] != len(configs):
        raise ValueError("target columns must match configs")
    reps = model.instruction_representations(tuning_features, chunk_len=chunk_len)
    params = np.stack([extractor(c) for c in configs]).astype(np.float32)
    uarch = UarchModel(
        params.shape[1], model.foundation.dim, hidden=hidden, layers=layers,
        rng=np.random.default_rng(seed),
    )
    optimizer = Adam(uarch.parameters(), lr=lr)
    reps_t = Tensor(reps)
    params_t = Tensor(params)
    scaled = tuning_targets * TICK_SCALE
    for epoch in range(epochs):
        optimizer.zero_grad()
        m = uarch(params_t)  # (k, d)
        preds = reps_t @ m.transpose()
        loss = mse_loss(preds, scaled)
        loss.backward()
        optimizer.step()
        if verbose and epoch % 50 == 0:
            print(f"uarch-model epoch {epoch}: loss={loss.item():.5f}")
    return uarch
