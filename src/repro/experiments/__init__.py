"""Experiment harness: one module per table/figure of the paper.

Every experiment is a declarative :mod:`repro.pipeline` spec (the
module's ``SPEC``) plus a registered analysis function; ``run(scale) ->
ExperimentResult`` is a thin shim that executes the spec through the
pipeline runner with per-stage artifact reuse.  The modules are
registered in :mod:`~repro.experiments.registry` (run callables) and
:mod:`repro.pipeline.presets` (specs); ``python -m repro`` is the CLI
front end (see ``README.md`` for the experiment/figure table).

==========================  =============================================
module                      reproduces
==========================  =============================================
``fig3_seen_unseen``        Fig. 3 — seen/unseen programs, seen uarchs
``fig4_retrain_lbm``        Fig. 4 — moving 519.lbm into training
``fig5_unseen_uarch``       Fig. 5 — unseen microarchitectures
``fig6_ablation_arch``      Fig. 6 — model architecture ablation
``sec4b_reuse``             Sec. IV-B — representation-reuse speedup
``sec5b_data_volume``       Sec. V-B — training-data volume ablation
``sec5b_features``          Sec. V-B — feature ablation
``table3_comparison``       Table III — approach comparison + speeds
``table4_dse_methods``      Table IV — DSE method overhead/quality
``fig7_cache_dse``          Fig. 7 + Sec. VI-A — cache-size DSE
``fig8_loop_tiling``        Fig. 8 — matrix-multiply loop tiling
``cross_isa``               Cross-ISA zero-shot transfer (mini-ASM -> RV)
==========================  =============================================
"""

from repro.experiments.common import (
    SCALES,
    ExperimentResult,
    ScaleConfig,
    get_scale,
)
from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentOutcome,
    run_all,
    run_experiment,
)

__all__ = [
    "SCALES",
    "ExperimentResult",
    "ScaleConfig",
    "get_scale",
    "EXPERIMENTS",
    "ExperimentOutcome",
    "run_all",
    "run_experiment",
]
