"""Shared experiment infrastructure: scales, model cache, rendering.

Scale presets trade fidelity for runtime:

* ``smoke`` — seconds; used by the test suite.
* ``bench`` — tens of seconds per experiment; used by ``benchmarks/``.
* ``paper`` — the documented offline configuration (77 microarchitectures,
  LSTM-2-256); hours on a CPU box.

Simulation results are cached on disk by :mod:`repro.features.dataset`;
trained foundation models are memoized in-process per (scale, split) *and*
persisted through :class:`repro.models.store.ModelStore`, so Figs. 3-8
share models exactly as the paper does ("The updated model is used in the
following experiments") and repeat invocations — including fresh
processes — load the stored artifact instead of retraining.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.errors import ErrorSummary, error_summary
from repro.core.perfvec import PerfVec
from repro.features.dataset import TraceDataset, build_dataset
from repro.ml.trainer import TrainHistory
from repro.uarch import sample_configs
from repro.uarch.config import MicroarchConfig
from repro.workloads import TEST_BENCHMARKS, TRAIN_BENCHMARKS

#: Where experiment JSON results land.
RESULTS_DIR = "results"


@dataclass(frozen=True)
class ScaleConfig:
    """Knobs that size every experiment."""

    name: str
    instructions: int  # trace length per benchmark
    n_ooo: int  # random OoO configs
    n_inorder: int  # random in-order configs
    include_presets: bool  # add the 7 predefined configs
    spec: str  # foundation architecture
    chunk_len: int  # context window analogue
    batch_size: int
    epochs: int
    ablation_epochs: int  # shorter budget for per-arch sweeps
    dse_instructions: int  # trace length for DSE studies
    seed: int = 0

    @property
    def num_configs(self) -> int:
        return self.n_ooo + self.n_inorder + (7 if self.include_presets else 0)


SCALES: dict[str, ScaleConfig] = {
    "smoke": ScaleConfig(
        name="smoke", instructions=2000, n_ooo=4, n_inorder=2,
        include_presets=False, spec="lstm-1-16", chunk_len=32, batch_size=8,
        epochs=4, ablation_epochs=2, dse_instructions=2000,
    ),
    "bench": ScaleConfig(
        name="bench", instructions=6000, n_ooo=10, n_inorder=3,
        include_presets=False, spec="lstm-2-64", chunk_len=48, batch_size=16,
        epochs=12, ablation_epochs=8, dse_instructions=5000,
    ),
    "paper": ScaleConfig(
        name="paper", instructions=50_000, n_ooo=60, n_inorder=10,
        include_presets=True, spec="lstm-2-256", chunk_len=128, batch_size=16,
        epochs=50, ablation_epochs=20, dse_instructions=50_000,
    ),
}


def get_scale(scale: str | ScaleConfig) -> ScaleConfig:
    if isinstance(scale, ScaleConfig):
        return scale
    if scale not in SCALES:
        raise KeyError(f"unknown scale {scale!r}; known: {sorted(SCALES)}")
    return SCALES[scale]


# ---------------------------------------------------------------------------
# parallelism default
# ---------------------------------------------------------------------------
# Experiments call benchmark_dataset() deep inside their run() functions, so
# the CLI's --jobs value travels as a process-wide default instead of a
# parameter threaded through every experiment signature.
_DEFAULT_JOBS: int = 1


def set_default_jobs(jobs: int | None) -> int:
    """Set the simulation fan-out used by :func:`benchmark_dataset`.

    ``None``/``0`` resolves to all cores. Returns the previous value so
    callers can restore it (see :func:`repro.experiments.run_experiment`).
    """
    from repro.runtime import resolve_jobs

    global _DEFAULT_JOBS
    previous = _DEFAULT_JOBS
    _DEFAULT_JOBS = resolve_jobs(jobs)
    return previous


def get_default_jobs() -> int:
    """Current simulation fan-out (1 = serial)."""
    return _DEFAULT_JOBS


# ---------------------------------------------------------------------------
# shared data / model construction (memoized)
# ---------------------------------------------------------------------------
_CONFIG_CACHE: dict[str, list[MicroarchConfig]] = {}
_DATASET_CACHE: dict[tuple, TraceDataset] = {}
_MODEL_CACHE: dict[tuple, tuple[PerfVec, TrainHistory]] = {}


def seen_configs(scale: ScaleConfig) -> list[MicroarchConfig]:
    """The scale's sampled training ("seen") microarchitectures."""
    cached = _CONFIG_CACHE.get(scale.name)
    if cached is None:
        cached = sample_configs(
            n_ooo=scale.n_ooo, n_inorder=scale.n_inorder, seed=scale.seed,
            include_presets=scale.include_presets,
        )
        _CONFIG_CACHE[scale.name] = cached
    return cached


def unseen_configs(scale: ScaleConfig, count: int = 10) -> list[MicroarchConfig]:
    """Fresh random microarchitectures never used in training (Fig. 5)."""
    configs = sample_configs(
        n_ooo=max(count - 2, 1), n_inorder=min(2, count - 1),
        seed=scale.seed + 1000, include_presets=False,
    )[:count]
    return [replace(c, name=f"unseen-{i}-{c.name}") for i, c in enumerate(configs)]


def benchmark_dataset(
    scale: ScaleConfig,
    benchmarks: tuple[str, ...],
    configs: list[MicroarchConfig] | None = None,
    instructions: int | None = None,
) -> TraceDataset:
    """Cached dataset over ``benchmarks`` x ``configs``."""
    configs = configs if configs is not None else seen_configs(scale)
    instructions = instructions or scale.instructions
    key = (scale.name, tuple(benchmarks), tuple(c.name for c in configs),
           instructions)
    ds = _DATASET_CACHE.get(key)
    if ds is None:
        ds = build_dataset(
            list(benchmarks), configs, instructions, jobs=get_default_jobs()
        )
        _DATASET_CACHE[key] = ds
    return ds


def trained_model(
    scale: ScaleConfig,
    train_benchmarks: tuple[str, ...] = TRAIN_BENCHMARKS,
    spec: str | None = None,
    epochs: int | None = None,
) -> tuple[PerfVec, TrainHistory]:
    """Train (or fetch) the foundation model for a benchmark split.

    Two cache levels: the in-process memo (so experiments in one run
    share object identity) and the on-disk :class:`ModelStore` keyed by
    spec + training provenance + dataset fingerprint (so *repeat
    invocations in fresh processes* skip retraining entirely).
    """
    from repro.models import ModelStore, PerfVecModel
    from repro.models.store import training_provenance

    spec = spec or scale.spec
    epochs = epochs or scale.epochs
    key = (scale.name, tuple(train_benchmarks), spec, epochs)
    cached = _MODEL_CACHE.get(key)
    if cached is None:
        dataset = benchmark_dataset(scale, train_benchmarks)
        fingerprint = dataset.fingerprint()
        wrapper = PerfVecModel(
            arch=spec, chunk_len=scale.chunk_len, batch_size=scale.batch_size,
            epochs=epochs, seed=scale.seed,
        )
        train_config = training_provenance(
            scale.name, "perfvec", train_benchmarks
        )
        store = ModelStore()  # resolves REPRO_CACHE_DIR at call time
        artifact = store.find(
            family="perfvec", dataset_fingerprint=fingerprint,
            spec=wrapper.spec, train_config=train_config,
        )
        if artifact is not None:
            wrapper = store.load(artifact, expect_fingerprint=fingerprint)
        else:
            wrapper.fit(dataset)
            store.put(
                wrapper, dataset_fingerprint=fingerprint,
                train_config=train_config,
            )
        cached = (wrapper.perfvec, wrapper.history or TrainHistory())
        _MODEL_CACHE[key] = cached
    return cached


def clear_caches() -> None:
    """Drop all in-process experiment caches (tests)."""
    _CONFIG_CACHE.clear()
    _DATASET_CACHE.clear()
    _MODEL_CACHE.clear()


# ---------------------------------------------------------------------------
# evaluation helpers
# ---------------------------------------------------------------------------
def total_time_errors(
    model: PerfVec,
    dataset: TraceDataset,
    chunk_len: int,
    table: np.ndarray | None = None,
) -> dict[str, ErrorSummary]:
    """Per-benchmark total-execution-time error across the dataset's configs.

    ``table`` overrides the model's built-in microarchitecture table (used
    when evaluating on unseen microarchitectures with a learned table).
    """
    from repro.core.predictor import TICK_SCALE

    rows: dict[str, ErrorSummary] = {}
    uses = table if table is not None else model.table.table.data
    for name, start, end in dataset.segments:
        feats = dataset.features[start:end]
        true_total = dataset.targets[start:end].astype(np.float64).sum(axis=0)
        prog_rep = model.program_representation(feats, chunk_len=chunk_len)
        pred_total = (prog_rep @ uses.T.astype(np.float64)) / TICK_SCALE
        rows[name] = error_summary(pred_total, true_total)
    return rows


def split_label(name: str) -> str:
    if name in TRAIN_BENCHMARKS:
        return "seen"
    if name in TEST_BENCHMARKS:
        return "unseen"
    return "extra"


# ---------------------------------------------------------------------------
# result container + rendering
# ---------------------------------------------------------------------------
@dataclass
class ExperimentResult:
    """Uniform result record: printable and JSON-serializable."""

    experiment: str
    title: str
    scale: str
    headers: list[str]
    rows: list[list]
    notes: list[str] = field(default_factory=list)
    metrics: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        out = [f"== {self.experiment}: {self.title} (scale={self.scale}) =="]
        out.append(render_table(self.headers, self.rows))
        for key, value in sorted(self.metrics.items()):
            out.append(f"  {key} = {value:.4g}")
        for note in self.notes:
            out.append(f"  note: {note}")
        return "\n".join(out)

    def save(self, results_dir: str = RESULTS_DIR) -> str:
        os.makedirs(results_dir, exist_ok=True)
        path = os.path.join(results_dir, f"{self.experiment}_{self.scale}.json")
        payload = {
            "experiment": self.experiment,
            "title": self.title,
            "scale": self.scale,
            "headers": self.headers,
            "rows": self.rows,
            "notes": self.notes,
            "metrics": self.metrics,
        }
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, default=str)
        return path


def render_table(headers: list[str], rows: list[list]) -> str:
    """Plain-text table with per-column widths."""
    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_surface(
    surface: np.ndarray, row_labels: list[str], col_labels: list[str],
    title: str,
) -> str:
    """6x6-style numeric heatmap (Fig. 7's objective surfaces) with the
    minimum cell marked."""
    surface = np.asarray(surface, dtype=np.float64)
    best = np.unravel_index(surface.argmin(), surface.shape)
    lines = [title]
    header = " " * 8 + "  ".join(f"{c:>8s}" for c in col_labels)
    lines.append(header)
    for i, label in enumerate(row_labels):
        cells = []
        for j in range(surface.shape[1]):
            mark = "*" if (i, j) == best else " "
            cells.append(f"{surface[i, j]:8.3g}{mark}")
        lines.append(f"{label:>6s}  " + " ".join(cells))
    return "\n".join(lines)
