"""Shared experiment data layer: scale presets and memoized ingredients.

Scale presets trade fidelity for runtime:

* ``smoke`` — seconds; used by the test suite.
* ``bench`` — tens of seconds per experiment; used by ``benchmarks/``.
* ``paper`` — the documented offline configuration (77 microarchitectures,
  LSTM-2-256); hours on a CPU box.

Simulation results are cached on disk by :mod:`repro.features.dataset`;
trained foundation models are memoized in-process per (scale, split) *and*
persisted through :class:`repro.models.store.ModelStore`, so Figs. 3-8
share models exactly as the paper does ("The updated model is used in the
following experiments") and repeat invocations — including fresh
processes — load the stored artifact instead of retraining.

Result containers and rendering live in :mod:`repro.pipeline.report`
(re-exported here for compatibility); experiment *structure* lives in
:mod:`repro.pipeline` specs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.errors import (
    ErrorSummary,
    UnknownExperimentError,
    error_summary,
)
from repro.core.perfvec import PerfVec
from repro.features.dataset import TraceDataset, build_dataset
from repro.ml.trainer import TrainHistory
from repro.pipeline.report import (  # noqa: F401 — compat re-exports
    ExperimentResult,
    render_surface,
    render_table,
)
from repro.uarch import sample_configs
from repro.uarch.config import MicroarchConfig
from repro.workloads import TEST_BENCHMARKS, TRAIN_BENCHMARKS


@dataclass(frozen=True)
class ScaleConfig:
    """Knobs that size every experiment."""

    name: str
    instructions: int  # trace length per benchmark
    n_ooo: int  # random OoO configs
    n_inorder: int  # random in-order configs
    include_presets: bool  # add the 7 predefined configs
    spec: str  # foundation architecture
    chunk_len: int  # context window analogue
    batch_size: int
    epochs: int
    ablation_epochs: int  # shorter budget for per-arch sweeps
    dse_instructions: int  # trace length for DSE studies
    seed: int = 0

    @property
    def num_configs(self) -> int:
        return self.n_ooo + self.n_inorder + (7 if self.include_presets else 0)


SCALES: dict[str, ScaleConfig] = {
    "smoke": ScaleConfig(
        name="smoke", instructions=2000, n_ooo=4, n_inorder=2,
        include_presets=False, spec="lstm-1-16", chunk_len=32, batch_size=8,
        epochs=4, ablation_epochs=2, dse_instructions=2000,
    ),
    "bench": ScaleConfig(
        name="bench", instructions=6000, n_ooo=10, n_inorder=3,
        include_presets=False, spec="lstm-2-64", chunk_len=48, batch_size=16,
        epochs=12, ablation_epochs=8, dse_instructions=5000,
    ),
    "paper": ScaleConfig(
        name="paper", instructions=50_000, n_ooo=60, n_inorder=10,
        include_presets=True, spec="lstm-2-256", chunk_len=128, batch_size=16,
        epochs=50, ablation_epochs=20, dse_instructions=50_000,
    ),
}


def get_scale(scale: str | ScaleConfig) -> ScaleConfig:
    if isinstance(scale, ScaleConfig):
        return scale
    if scale not in SCALES:
        raise UnknownExperimentError(scale, SCALES, kind="scale")
    return SCALES[scale]


# ---------------------------------------------------------------------------
# parallelism default
# ---------------------------------------------------------------------------
# Experiments call benchmark_dataset() deep inside their run() functions, so
# the CLI's --jobs value travels as a process-wide default instead of a
# parameter threaded through every experiment signature.
_DEFAULT_JOBS: int = 1


def set_default_jobs(jobs: int | None) -> int:
    """Set the simulation fan-out used by :func:`benchmark_dataset`.

    ``None``/``0`` resolves to all cores. Returns the previous value so
    callers can restore it (see :func:`repro.experiments.run_experiment`).
    """
    from repro.runtime import resolve_jobs

    global _DEFAULT_JOBS
    previous = _DEFAULT_JOBS
    _DEFAULT_JOBS = resolve_jobs(jobs)
    return previous


def get_default_jobs() -> int:
    """Current simulation fan-out (1 = serial)."""
    return _DEFAULT_JOBS


# ---------------------------------------------------------------------------
# shared data / model construction (memoized)
# ---------------------------------------------------------------------------
_CONFIG_CACHE: dict[str, list[MicroarchConfig]] = {}
_DATASET_CACHE: dict[tuple, TraceDataset] = {}
#: (model, history, store artifact id) per training identity + store root.
_MODEL_CACHE: dict[tuple, tuple[PerfVec, TrainHistory, str]] = {}


def seen_configs(scale: ScaleConfig) -> list[MicroarchConfig]:
    """The scale's sampled training ("seen") microarchitectures."""
    cached = _CONFIG_CACHE.get(scale.name)
    if cached is None:
        cached = sample_configs(
            n_ooo=scale.n_ooo, n_inorder=scale.n_inorder, seed=scale.seed,
            include_presets=scale.include_presets,
        )
        _CONFIG_CACHE[scale.name] = cached
    return cached


def unseen_configs(scale: ScaleConfig, count: int = 10) -> list[MicroarchConfig]:
    """Fresh random microarchitectures never used in training (Fig. 5)."""
    configs = sample_configs(
        n_ooo=max(count - 2, 1), n_inorder=min(2, count - 1),
        seed=scale.seed + 1000, include_presets=False,
    )[:count]
    return [replace(c, name=f"unseen-{i}-{c.name}") for i, c in enumerate(configs)]


def benchmark_dataset(
    scale: ScaleConfig,
    benchmarks: tuple[str, ...],
    configs: list[MicroarchConfig] | None = None,
    instructions: int | None = None,
    isa: str | None = None,
) -> TraceDataset:
    """Cached dataset over ``benchmarks`` x ``configs``.

    ``isa`` selects the trace frontend benchmark names resolve against
    (default: the mini-ASM VM).
    """
    from repro.frontends import DEFAULT_FRONTEND

    configs = configs if configs is not None else seen_configs(scale)
    instructions = instructions or scale.instructions
    isa = isa or DEFAULT_FRONTEND
    key = (scale.name, tuple(benchmarks), tuple(c.name for c in configs),
           instructions, isa)
    ds = _DATASET_CACHE.get(key)
    if ds is None:
        ds = build_dataset(
            list(benchmarks), configs, instructions,
            jobs=get_default_jobs(), isa=isa,
        )
        _DATASET_CACHE[key] = ds
    return ds


def trained_model(
    scale: ScaleConfig,
    train_benchmarks: tuple[str, ...] = TRAIN_BENCHMARKS,
    spec: str | None = None,
    epochs: int | None = None,
) -> tuple[PerfVec, TrainHistory]:
    """Train (or fetch) the foundation model for a benchmark split.

    Two cache levels: the in-process memo (so experiments in one run
    share object identity) and the on-disk :class:`ModelStore` keyed by
    spec + training provenance + dataset fingerprint (so *repeat
    invocations in fresh processes* skip retraining entirely).
    """
    model, history, _ = _trained_entry(scale, train_benchmarks, spec, epochs)
    return model, history


def trained_artifact(
    scale: ScaleConfig,
    train_benchmarks: tuple[str, ...] = TRAIN_BENCHMARKS,
    spec: str | None = None,
    epochs: int | None = None,
) -> str:
    """Train-or-reuse via the same path as :func:`trained_model`,
    returning the stored artifact id (what pipeline ``train`` stages
    record as provenance)."""
    return _trained_entry(scale, train_benchmarks, spec, epochs)[2]


def _trained_entry(
    scale: ScaleConfig,
    train_benchmarks: tuple[str, ...],
    spec: str | None,
    epochs: int | None,
) -> tuple[PerfVec, TrainHistory, str]:
    import os

    from repro.models import ModelStore, PerfVecModel
    from repro.models.store import training_provenance

    spec = spec or scale.spec
    epochs = epochs or scale.epochs
    store = ModelStore()  # resolves REPRO_CACHE_DIR at call time
    # the memo is per store root: redirecting the cache mid-process must
    # not serve a model the new root's store has never seen
    key = (scale.name, tuple(train_benchmarks), spec, epochs,
           os.path.abspath(store.root))
    cached = _MODEL_CACHE.get(key)
    if cached is None:
        dataset = benchmark_dataset(scale, train_benchmarks)
        fingerprint = dataset.fingerprint()
        wrapper = PerfVecModel(
            arch=spec, chunk_len=scale.chunk_len, batch_size=scale.batch_size,
            epochs=epochs, seed=scale.seed,
        )
        train_config = training_provenance(
            scale.name, "perfvec", train_benchmarks
        )
        artifact = store.find(
            family="perfvec", dataset_fingerprint=fingerprint,
            spec=wrapper.spec, train_config=train_config,
        )
        if artifact is not None:
            wrapper = store.load(artifact, expect_fingerprint=fingerprint)
        else:
            wrapper.fit(dataset)
            artifact = store.put(
                wrapper, dataset_fingerprint=fingerprint,
                train_config=train_config,
            )
        cached = (wrapper.perfvec, wrapper.history or TrainHistory(), artifact)
        _MODEL_CACHE[key] = cached
    return cached


def clear_caches() -> None:
    """Drop all in-process experiment caches (tests)."""
    _CONFIG_CACHE.clear()
    _DATASET_CACHE.clear()
    _MODEL_CACHE.clear()


# ---------------------------------------------------------------------------
# evaluation helpers
# ---------------------------------------------------------------------------
def total_time_errors(
    model: PerfVec,
    dataset: TraceDataset,
    chunk_len: int,
    table: np.ndarray | None = None,
) -> dict[str, ErrorSummary]:
    """Per-benchmark total-execution-time error across the dataset's configs.

    ``table`` overrides the model's built-in microarchitecture table (used
    when evaluating on unseen microarchitectures with a learned table).
    """
    from repro.core.predictor import TICK_SCALE

    rows: dict[str, ErrorSummary] = {}
    uses = table if table is not None else model.table.table.data
    for name, start, end in dataset.segments:
        feats = dataset.features[start:end]
        true_total = dataset.targets[start:end].astype(np.float64).sum(axis=0)
        prog_rep = model.program_representation(feats, chunk_len=chunk_len)
        pred_total = (prog_rep @ uses.T.astype(np.float64)) / TICK_SCALE
        rows[name] = error_summary(pred_total, true_total)
    return rows


def split_label(name: str) -> str:
    if name in TRAIN_BENCHMARKS:
        return "seen"
    if name in TEST_BENCHMARKS:
        return "unseen"
    return "extra"


# Result container + rendering moved to repro.pipeline.report (the
# report stage owns them now); re-exported at the top for compatibility.
