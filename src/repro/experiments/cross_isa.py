"""Cross-ISA generalization — train on mini-ASM, evaluate zero-shot on RV.

The feature encoding (Table I) is deliberately microarchitecture- and
ISA-independent: every frontend maps its opcodes and registers onto the
shared operation-class vocabulary before a trace reaches the encoders.
This experiment measures how far that buys actual *transfer*: each
transferable model family is trained on the mini-ASM training split,
evaluated natively on the mini-ASM test split, then evaluated — with the
same stored artifact, zero retraining — on the RISC-V frontend's kernel
suite, and the per-family error deltas are reported.

Only families whose serving inputs are benchmark-independent can
transfer: ``perfvec`` (feature streams), ``ithemal`` and ``simnet``
(regenerated traces). The per-program baselines answer from state keyed
by fitted benchmark names and ``cross_program`` needs measured signature
times, so they are structurally ISA-bound — the report notes them as
such rather than silently skipping them.

The analysis also exercises the external-trace loop end to end: one RV
benchmark trace is exported to the documented JSONL schema, re-imported
under a deterministic name, verified byte-identical against the
original, and imported *again* to prove the content-addressed import
cache answers the repeat without re-parsing.
"""

from __future__ import annotations

import os

from repro.pipeline import ExperimentSpec, analysis, stage
from repro.workloads import TEST_BENCHMARKS

#: Families whose serving inputs let a mini-ASM artifact answer RV
#: benchmarks (see module docstring).
TRANSFER_FAMILIES = ("perfvec", "ithemal", "simnet")

#: Families that structurally cannot transfer across frontends.
BOUND_FAMILIES = ("actboost", "cross_program", "program_specific")

#: The RV benchmark exported/imported by the round-trip check.
ROUNDTRIP_BENCHMARK = "rv.gcd"


def _roundtrip(ctx) -> dict:
    """Export one RV trace, import it back, verify identity + cache hit."""
    import numpy as np

    from repro.cache import cache_root
    from repro.frontends import get_frontend
    from repro.frontends.trace_import import (
        export_trace,
        import_trace,
        load_imported,
    )

    trace = get_frontend("rv").trace(
        ROUNDTRIP_BENCHMARK, ctx.scale.instructions
    )
    export_dir = os.path.join(cache_root(ctx.cache_dir), "exports")
    os.makedirs(export_dir, exist_ok=True)
    safe = ROUNDTRIP_BENCHMARK.replace(".", "_")
    path = os.path.join(export_dir, f"cross_isa_{safe}.jsonl")
    export_trace(trace, path)
    # exported files carry canonical mnemonics + integer register ids, so
    # they re-import under the shared (default) vocabulary
    name = f"cross_isa_{safe}"
    first = import_trace(path, name=name)
    again = import_trace(path, name=name)
    loaded = load_imported(name)
    identical = (
        len(loaded) == len(trace)
        and bool(np.array_equal(loaded.opid, trace.opid))
        and bool(np.array_equal(loaded.pc, trace.pc))
        and bool(np.array_equal(loaded.src_slots, trace.src_slots))
        and bool(np.array_equal(loaded.dst_slots, trace.dst_slots))
        and bool(np.array_equal(loaded.mem_addr, trace.mem_addr))
        and bool(np.array_equal(loaded.branch_taken, trace.branch_taken))
        and bool(np.array_equal(loaded.branch_target, trace.branch_target))
    )
    return {
        "rows": first.rows,
        "digest": first.digest,
        "identical": identical,
        "reimport_cache_hit": again.cache_hit,
    }


@analysis("cross_isa")
def analyze(ctx, params, inputs) -> dict:
    from repro.api import Session
    from repro.frontends import get_frontend

    artifacts = {
        payload["family"]: payload["artifact"]
        for payload in inputs.values()
        if payload and "artifact" in payload and "family" in payload
    }
    native = Session(
        scale=ctx.scale, cache_dir=ctx.cache_dir, jobs=ctx.jobs
    )
    rv = Session(
        scale=ctx.scale, cache_dir=ctx.cache_dir, jobs=ctx.jobs,
        frontend="rv",
    )
    rv_benchmarks = get_frontend("rv").benchmarks()

    rows = []
    metrics: dict[str, float] = {}
    for family in TRANSFER_FAMILIES:
        artifact = artifacts.get(family)
        if artifact is None:
            continue
        native_errors = native.evaluate(
            TEST_BENCHMARKS, artifact=artifact, family=family
        )
        rv_errors = rv.evaluate(
            rv_benchmarks, artifact=artifact, family=family
        )
        native_mean = sum(s.mean for s in native_errors.values()) / len(
            native_errors
        )
        rv_mean = sum(s.mean for s in rv_errors.values()) / len(rv_errors)
        delta = rv_mean - native_mean
        rows.append([
            family, f"{native_mean:.1%}", f"{rv_mean:.1%}",
            f"{delta:+.1%}",
        ])
        metrics[f"{family}_native_error"] = native_mean
        metrics[f"{family}_rv_error"] = rv_mean
        metrics[f"{family}_delta"] = delta

    roundtrip = _roundtrip(ctx)
    metrics["roundtrip_identical"] = float(roundtrip["identical"])
    metrics["reimport_cache_hit"] = float(roundtrip["reimport_cache_hit"])
    notes = [
        "zero-shot: mini-ASM artifacts served unmodified on RV traces",
        f"not transferable (per-program/measured inputs): "
        f"{', '.join(BOUND_FAMILIES)}",
        f"trace round-trip {ROUNDTRIP_BENCHMARK}: "
        f"{roundtrip['rows']} rows, digest {roundtrip['digest'][:12]}, "
        f"identical={roundtrip['identical']}, "
        f"reimport cache_hit={roundtrip['reimport_cache_hit']}",
    ]
    return {
        "headers": ["family", "native (mini-asm test)", "rv zero-shot",
                    "delta"],
        "rows": rows,
        "metrics": metrics,
        "notes": notes,
    }


SPEC = ExperimentSpec(
    name="cross_isa",
    title="Cross-ISA zero-shot generalization (mini-ASM -> RV)",
    description=(
        "Train on mini-ASM, evaluate zero-shot on the RISC-V frontend's "
        "kernel suite; per-family error deltas + trace import round-trip"
    ),
    stages=(
        stage("train_data", "dataset", benchmarks="train"),
        stage("rv_data", "dataset", benchmarks="all", isa="rv"),
        stage("foundation", "train", benchmarks="train",
              needs=("train_data",)),
        stage("train_ithemal", "train", benchmarks="train",
              family="ithemal", needs=("train_data",)),
        stage("train_simnet", "train", benchmarks="train",
              family="simnet", needs=("train_data",)),
        stage("analyze", "analysis", fn="cross_isa",
              needs=("foundation", "train_ithemal", "train_simnet",
                     "rv_data")),
        stage("report", "report",
              title="Cross-ISA zero-shot generalization (mini-ASM -> RV)",
              needs=("analyze",)),
    ),
)


def run(scale: str = "bench"):
    """Back-compat shim: one pipeline run, returning the ExperimentResult."""
    from repro.pipeline import run_spec

    return run_spec(SPEC, scale=scale).result
