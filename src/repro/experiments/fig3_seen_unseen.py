"""Fig. 3 — prediction accuracy for seen and unseen programs on seen
microarchitectures.

Paper result: average errors below 8% for the nine seen programs; below
10% for most unseen programs, with ``519.lbm`` as the outlier whose
"instruction combination scenarios" the training set lacks.
"""

from __future__ import annotations

from repro.experiments.common import (
    benchmark_dataset,
    total_time_errors,
    trained_model,
)
from repro.pipeline import ExperimentSpec, analysis, stage
from repro.workloads import ALL_BENCHMARKS, TEST_BENCHMARKS, TRAIN_BENCHMARKS


@analysis("fig3_seen_unseen")
def analyze(ctx, params, inputs) -> dict:
    cfg = ctx.scale
    model, history = trained_model(cfg, TRAIN_BENCHMARKS)
    dataset = benchmark_dataset(cfg, tuple(ALL_BENCHMARKS))
    errors = total_time_errors(model, dataset, cfg.chunk_len)

    ordered = list(TRAIN_BENCHMARKS) + list(TEST_BENCHMARKS)
    rows = []
    for name in ordered:
        s = errors[name]
        split = "seen" if name in TRAIN_BENCHMARKS else "unseen"
        rows.append(
            [name, split, f"{s.mean:.1%}", f"{s.std:.1%}",
             f"{s.min:.1%}", f"{s.max:.1%}"]
        )
    seen = [errors[n].mean for n in TRAIN_BENCHMARKS]
    unseen = [errors[n].mean for n in TEST_BENCHMARKS]
    worst_unseen = max(TEST_BENCHMARKS, key=lambda n: errors[n].mean)
    return {
        "headers": ["benchmark", "split", "mean", "std", "min", "max"],
        "rows": rows,
        "metrics": {
            "avg_seen_error": sum(seen) / len(seen),
            "avg_unseen_error": sum(unseen) / len(unseen),
            "best_val_loss": history.best_val_loss,
        },
        "notes": [
            f"worst unseen program: {worst_unseen} "
            f"(paper: 519.lbm is the outlier)",
            "paper: seen avg < 8%, unseen avg < 10% for most programs",
        ],
    }


SPEC = ExperimentSpec(
    name="fig3_seen_unseen",
    title="Prediction error, seen + unseen programs on seen uarchs",
    description="Fig. 3 — seen/unseen programs on seen microarchitectures",
    stages=(
        stage("train_data", "dataset", benchmarks="train"),
        stage("suite_data", "dataset", benchmarks="all"),
        stage("foundation", "train", benchmarks="train", needs=("train_data",)),
        stage("analyze", "analysis", fn="fig3_seen_unseen",
              needs=("foundation", "suite_data")),
        stage("report", "report",
              title="Prediction error, seen + unseen programs on seen uarchs",
              needs=("analyze",)),
    ),
)


def run(scale: str = "bench"):
    """Back-compat shim: one pipeline run, returning the ExperimentResult."""
    from repro.pipeline import run_spec

    return run_spec(SPEC, scale=scale).result
