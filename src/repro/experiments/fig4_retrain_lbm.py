"""Fig. 4 — moving ``519.lbm`` into the training set.

Paper result: lbm's error "effectively reduces close to zero", and the
updated model also improves other seen and unseen programs — the
larger-coverage argument.  The updated split (TRAIN + 519.lbm) is the model
all later experiments use.
"""

from __future__ import annotations

from repro.experiments.common import (
    benchmark_dataset,
    total_time_errors,
    trained_model,
)
from repro.pipeline import ExperimentSpec, analysis, stage
from repro.workloads import ALL_BENCHMARKS, TEST_BENCHMARKS, TRAIN_BENCHMARKS

#: The Fig. 4 training split: Table II's training set plus 519.lbm.
UPDATED_TRAIN: tuple[str, ...] = tuple(TRAIN_BENCHMARKS) + ("519.lbm",)
UPDATED_TEST: tuple[str, ...] = tuple(
    n for n in TEST_BENCHMARKS if n != "519.lbm"
)


@analysis("fig4_retrain_lbm")
def analyze(ctx, params, inputs) -> dict:
    cfg = ctx.scale
    before_model, _ = trained_model(cfg, TRAIN_BENCHMARKS)
    after_model, _ = trained_model(cfg, UPDATED_TRAIN)
    dataset = benchmark_dataset(cfg, tuple(ALL_BENCHMARKS))
    before = total_time_errors(before_model, dataset, cfg.chunk_len)
    after = total_time_errors(after_model, dataset, cfg.chunk_len)

    ordered = list(UPDATED_TRAIN) + list(UPDATED_TEST)
    rows = []
    for name in ordered:
        split = "seen" if name in UPDATED_TRAIN else "unseen"
        rows.append(
            [name, split, f"{before[name].mean:.1%}", f"{after[name].mean:.1%}",
             f"{after[name].mean - before[name].mean:+.1%}"]
        )
    lbm_before = before["519.lbm"].mean
    lbm_after = after["519.lbm"].mean
    others = [n for n in ALL_BENCHMARKS if n != "519.lbm"]
    avg_before = sum(before[n].mean for n in others) / len(others)
    avg_after = sum(after[n].mean for n in others) / len(others)
    return {
        "headers": ["benchmark", "split", "err_before", "err_after", "delta"],
        "rows": rows,
        "metrics": {
            "lbm_error_before": lbm_before,
            "lbm_error_after": lbm_after,
            "others_avg_before": avg_before,
            "others_avg_after": avg_after,
        },
        "notes": [
            "paper: lbm error drops close to zero once seen; other programs "
            "also improve (larger datasets -> better coverage)",
        ],
    }


SPEC = ExperimentSpec(
    name="fig4_retrain_lbm",
    title="Accuracy after moving 519.lbm into training",
    description="Fig. 4 — moving 519.lbm into the training split",
    stages=(
        stage("suite_data", "dataset", benchmarks="all"),
        stage("foundation_before", "train", benchmarks="train",
              needs=("suite_data",)),
        stage("foundation_after", "train", benchmarks="updated-train",
              needs=("suite_data",)),
        stage("analyze", "analysis", fn="fig4_retrain_lbm",
              needs=("foundation_before", "foundation_after")),
        stage("report", "report",
              title="Accuracy after moving 519.lbm into training",
              needs=("analyze",)),
    ),
)


def run(scale: str = "bench"):
    """Back-compat shim: one pipeline run, returning the ExperimentResult."""
    from repro.pipeline import run_spec

    return run_spec(SPEC, scale=scale).result
