"""Fig. 5 — generality to unseen microarchitectures.

Workflow (paper Sec. V-A): simulate a few *seen* programs on the target
unseen microarchitectures to obtain a small tuning set; freeze the
pre-trained foundation; learn only the new microarchitecture
representations.  Paper result: 4.2% average error for seen programs and
7.1% for unseen programs — comparable to the seen-uarch case.
"""

from __future__ import annotations

from repro.core.finetune import learn_unseen_uarch_table
from repro.experiments.common import (
    benchmark_dataset,
    total_time_errors,
    trained_model,
    unseen_configs,
)
from repro.experiments.fig4_retrain_lbm import UPDATED_TEST, UPDATED_TRAIN
from repro.pipeline import ExperimentSpec, analysis, stage
from repro.workloads import ALL_BENCHMARKS

#: Seen programs used to build the unseen-uarch tuning dataset.
TUNING_BENCHMARKS: tuple[str, ...] = ("525.x264", "544.nab", "557.xz")

#: Default number of target unseen microarchitectures.
DEFAULT_N_UNSEEN = 10


@analysis("fig5_unseen_uarch")
def analyze(ctx, params, inputs) -> dict:
    cfg = ctx.scale
    n_unseen = int(params.get("n_unseen", DEFAULT_N_UNSEEN))
    model, _ = trained_model(cfg, UPDATED_TRAIN)
    targets = unseen_configs(cfg, n_unseen)

    tuning = benchmark_dataset(cfg, TUNING_BENCHMARKS, configs=targets)
    table = learn_unseen_uarch_table(
        model, tuning.features, tuning.targets,
        config_names=tuning.config_names, chunk_len=cfg.chunk_len,
    )

    dataset = benchmark_dataset(cfg, tuple(ALL_BENCHMARKS), configs=targets)
    errors = total_time_errors(
        model, dataset, cfg.chunk_len, table=table.table.data
    )

    rows = []
    for name in list(UPDATED_TRAIN) + list(UPDATED_TEST):
        split = "seen" if name in UPDATED_TRAIN else "unseen"
        s = errors[name]
        rows.append(
            [name, split, f"{s.mean:.1%}", f"{s.std:.1%}", f"{s.max:.1%}"]
        )
    seen = [errors[n].mean for n in UPDATED_TRAIN]
    unseen = [errors[n].mean for n in UPDATED_TEST]
    return {
        "headers": ["benchmark", "split", "mean", "std", "max"],
        "rows": rows,
        "metrics": {
            "avg_seen_error": sum(seen) / len(seen),
            "avg_unseen_error": sum(unseen) / len(unseen),
            "unseen_uarch_count": float(len(targets)),
        },
        "notes": [
            "foundation frozen; only microarchitecture representations "
            "learned from a small tuning set of seen programs",
            "paper: 4.2% (seen programs) / 7.1% (unseen programs)",
        ],
    }


SPEC = ExperimentSpec(
    name="fig5_unseen_uarch",
    title="Prediction error on unseen microarchitectures",
    description="Fig. 5 — generality to unseen microarchitectures",
    stages=(
        stage("train_data", "dataset", benchmarks="updated-train"),
        stage("foundation", "train", benchmarks="updated-train",
              needs=("train_data",)),
        stage("tuning_data", "dataset", benchmarks=list(TUNING_BENCHMARKS),
              configs="unseen", count=DEFAULT_N_UNSEEN),
        stage("eval_data", "dataset", benchmarks="all",
              configs="unseen", count=DEFAULT_N_UNSEEN),
        stage("analyze", "analysis", fn="fig5_unseen_uarch",
              n_unseen=DEFAULT_N_UNSEEN,
              needs=("foundation", "tuning_data", "eval_data")),
        stage("report", "report",
              title="Prediction error on unseen microarchitectures",
              needs=("analyze",)),
    ),
)


def run(scale: str = "bench", n_unseen: int = DEFAULT_N_UNSEEN):
    """Back-compat shim: one pipeline run, returning the ExperimentResult."""
    from repro.pipeline import run_spec

    spec = SPEC
    if n_unseen != DEFAULT_N_UNSEEN:
        spec = SPEC.override({
            "tuning_data.count": n_unseen,
            "eval_data.count": n_unseen,
            "analyze.n_unseen": n_unseen,
        })
    return run_spec(spec, scale=scale).result
