"""Fig. 6 — foundation-architecture ablation.

Sweeps the paper's model families (linear, MLP, GRU, biLSTM, Transformer,
LSTM at several depths and widths) and reports the average unseen-program
error per architecture.  Paper result: the linear model is worst,
Transformer second-worst, and LSTM-2-256 is sufficient — deeper/wider
LSTMs bring little.

Widths scale with the experiment preset (the paper's 256 becomes the
scale's base dimension) so the sweep stays CPU-tractable.  The per-arch
trainings happen inside the analysis stage (the width grid depends on
the runtime scale), but every one of them lands in the ModelStore, so a
partially interrupted sweep resumes from the architectures it finished.
"""

from __future__ import annotations

from repro.core.foundation import parse_spec
from repro.experiments.common import (
    benchmark_dataset,
    total_time_errors,
    trained_model,
)
from repro.pipeline import ExperimentSpec, analysis, stage
from repro.workloads import TEST_BENCHMARKS, TRAIN_BENCHMARKS


def sweep_specs(base_dim: int) -> list[str]:
    """The Fig. 6 sweep, scaled to ``base_dim`` (paper: 256)."""
    half, double = max(base_dim // 2, 4), base_dim * 2
    return [
        f"linear-1-{base_dim}",
        f"mlp-2-{base_dim}",
        f"gru-2-{base_dim}",
        f"bilstm-2-{base_dim}",
        f"transformer-2-{base_dim}",
        f"lstm-1-{base_dim}",
        f"lstm-2-{base_dim}",
        f"lstm-3-{base_dim}",
        f"lstm-2-{half}",
        f"lstm-2-{double}",
    ]


@analysis("fig6_ablation_arch")
def analyze(ctx, params, inputs) -> dict:
    cfg = ctx.scale
    # the sweep trains ~10 models; halve the width to keep it tractable
    base_dim = max(parse_spec(cfg.spec).dim // 2, 8)
    dataset = benchmark_dataset(cfg, tuple(TEST_BENCHMARKS))
    rows = []
    errors_by_spec: dict[str, float] = {}
    for spec in sweep_specs(base_dim):
        model, history = trained_model(
            cfg, TRAIN_BENCHMARKS, spec=spec, epochs=cfg.ablation_epochs
        )
        errs = total_time_errors(model, dataset, cfg.chunk_len)
        avg = sum(s.mean for s in errs.values()) / len(errs)
        errors_by_spec[spec] = avg
        rows.append(
            [spec, model.foundation.num_parameters(), f"{avg:.1%}",
             f"{history.best_val_loss:.4g}"]
        )
    best = min(errors_by_spec, key=errors_by_spec.get)
    return {
        "headers": ["architecture", "params", "avg_unseen_error", "val_loss"],
        "rows": rows,
        "metrics": {
            "linear_error": errors_by_spec[f"linear-1-{base_dim}"],
            "default_lstm_error": errors_by_spec[f"lstm-2-{base_dim}"],
            "best_is_default_family": float(best.startswith(("lstm", "gru"))),
        },
        "notes": [
            f"best architecture at this scale: {best}",
            "paper: linear worst, transformer second worst, LSTM-2-256 "
            "sufficient; deeper/wider LSTMs bring negligible gains",
        ],
    }


SPEC = ExperimentSpec(
    name="fig6_ablation_arch",
    title="Foundation architecture ablation (avg unseen-program error)",
    description="Fig. 6 — foundation-architecture ablation",
    stages=(
        stage("train_data", "dataset", benchmarks="train"),
        stage("test_data", "dataset", benchmarks="test"),
        stage("analyze", "analysis", fn="fig6_ablation_arch",
              needs=("train_data", "test_data")),
        stage("report", "report",
              title="Foundation architecture ablation "
                    "(avg unseen-program error)",
              needs=("analyze",)),
    ),
)


def run(scale: str = "bench"):
    """Back-compat shim: one pipeline run, returning the ExperimentResult."""
    from repro.pipeline import run_spec

    return run_spec(SPEC, scale=scale).result
