"""Fig. 7 + Sec. VI-A — L1D/L2 cache-size design space exploration.

Workflow (paper): ① simulate a few programs on 18 sampled configurations of
the 36-point grid, ② train a 2-layer-MLP microarchitecture representation
model on that tuning set with the foundation frozen, ③ predict every
(program, configuration) pair with dot products and pick the design
minimizing ``(1000 + 10*L1kB + L2kB) * time``.

Paper results: PerfVec's pick is optimal for 4/17 programs, top-2 for 11,
top-3 for 15, top-5 for all; on average only 3.6% of designs beat it.  The
predicted objective surface for 508.namd matches gem5's shape but smoother.

The tuning programs and sampled-configuration count are spec parameters,
so a sweep over them is one :class:`~repro.pipeline.SweepSpec` away.
"""

from __future__ import annotations

import numpy as np

from repro.core.dse import CacheDSE
from repro.core.perfvec import PerfVec
from repro.core.predictor import TICK_SCALE
from repro.core.uarch_model import cache_size_params, train_uarch_model
from repro.experiments.common import (
    ScaleConfig,
    benchmark_dataset,
    render_surface,
    trained_model,
)
from repro.experiments.fig4_retrain_lbm import UPDATED_TRAIN
from repro.pipeline import ExperimentSpec, analysis, stage
from repro.uarch.presets import cortex_a7_like
from repro.workloads import ALL_BENCHMARKS

#: Programs simulated to build the DSE tuning set (paper: three programs).
DSE_TUNING_BENCHMARKS: tuple[str, ...] = ("525.x264", "544.nab", "557.xz")
#: Sampled configurations for tuning (paper: 18 of 36).
DSE_TUNING_CONFIGS = 18


def dse_ground_truth(
    cfg: ScaleConfig, dse: CacheDSE, benchmarks: tuple[str, ...]
) -> dict[str, np.ndarray]:
    """Exhaustive-simulation times (ticks) per program over the grid."""
    ds = benchmark_dataset(
        cfg, benchmarks, configs=dse.configs, instructions=cfg.dse_instructions
    )
    return ds.total_times()


def perfvec_dse_times(
    cfg: ScaleConfig,
    model: PerfVec,
    dse: CacheDSE,
    benchmarks: tuple[str, ...],
    tuning_benchmarks: tuple[str, ...] = DSE_TUNING_BENCHMARKS,
    tuning_configs: int = DSE_TUNING_CONFIGS,
) -> tuple[dict[str, np.ndarray], dict[str, float]]:
    """PerfVec-predicted times per program over the grid, plus overhead info."""
    sample_idx = dse.sample_configs(min(tuning_configs, len(dse)), seed=cfg.seed)
    tuning_cfgs = [dse.configs[i] for i in sample_idx]
    tune_ds = benchmark_dataset(
        cfg, tuning_benchmarks, configs=tuning_cfgs,
        instructions=cfg.dse_instructions,
    )
    uarch = train_uarch_model(
        model, tuning_cfgs, tune_ds.features, tune_ds.targets,
        extractor=cache_size_params, chunk_len=cfg.chunk_len, seed=cfg.seed,
    )
    m_all = uarch.representations(dse.configs, cache_size_params)  # (G, d)
    feats_ds = benchmark_dataset(
        cfg, benchmarks, configs=dse.configs, instructions=cfg.dse_instructions
    )
    times: dict[str, np.ndarray] = {}
    for name in benchmarks:
        feats, _ = feats_ds.segment(name)
        rep = model.program_representation(feats, chunk_len=cfg.chunk_len)
        times[name] = (rep @ m_all.T.astype(np.float64)) / TICK_SCALE
    overhead = {
        "tuning_simulations": float(len(tuning_cfgs) * len(tuning_benchmarks)),
        "tuning_instructions": float(
            len(tuning_cfgs) * len(tuning_benchmarks) * cfg.dse_instructions
        ),
    }
    return times, overhead


@analysis("fig7_cache_dse")
def analyze(ctx, params, inputs) -> dict:
    cfg = ctx.scale
    tuning_benchmarks = tuple(
        params.get("tuning_benchmarks", DSE_TUNING_BENCHMARKS)
    )
    tuning_configs = int(params.get("tuning_configs", DSE_TUNING_CONFIGS))
    model, _ = trained_model(cfg, UPDATED_TRAIN)
    dse = CacheDSE(cortex_a7_like())
    benchmarks = tuple(ALL_BENCHMARKS)

    truth = dse_ground_truth(cfg, dse, benchmarks)
    predicted, overhead = perfvec_dse_times(
        cfg, model, dse, benchmarks,
        tuning_benchmarks=tuning_benchmarks, tuning_configs=tuning_configs,
    )

    rows = []
    qualities = []
    for name in benchmarks:
        true_obj = dse.objective_values(truth[name])
        pred_obj = dse.objective_values(predicted[name])
        q = dse.rank_quality(pred_obj, true_obj)
        qualities.append(q)
        l1, l2 = dse.grid[q.chosen_index]
        rows.append(
            [name, f"L1={l1}k L2={l2}k", q.rank, f"{q.frac_better:.1%}"]
        )

    n_total = len(qualities)
    metrics = {
        "optimal_count": float(sum(q.is_optimal for q in qualities)),
        "top2_count": float(sum(q.within_top(2) for q in qualities)),
        "top3_count": float(sum(q.within_top(3) for q in qualities)),
        "top5_count": float(sum(q.within_top(5) for q in qualities)),
        "avg_frac_better": float(np.mean([q.frac_better for q in qualities])),
        "programs": float(n_total),
        **overhead,
    }

    namd = "508.namd"
    l1_labels = [f"{s}k" for s in dse.l1_sizes]
    l2_labels = [f"{s}k" for s in dse.l2_sizes]
    surfaces = [
        render_surface(
            dse.objective_surface(truth[namd]) / 1e6, l1_labels, l2_labels,
            f"{namd} objective surface — simulator ground truth (x1e6):",
        ),
        render_surface(
            dse.objective_surface(predicted[namd]) / 1e6, l1_labels, l2_labels,
            f"{namd} objective surface — PerfVec prediction (x1e6):",
        ),
    ]
    return {
        "headers": ["benchmark", "chosen design", "rank",
                    "frac designs better"],
        "rows": rows,
        "metrics": metrics,
        "notes": surfaces + [
            "paper: optimal for 4/17, top-2 for 11, top-3 for 15, top-5 for "
            "all; avg 3.6% of designs better than PerfVec's pick",
        ],
    }


SPEC = ExperimentSpec(
    name="fig7_cache_dse",
    title="L1D x L2 cache-size DSE (objective rank per program)",
    description="Fig. 7 + Sec. VI-A — cache-size DSE",
    stages=(
        stage("train_data", "dataset", benchmarks="updated-train"),
        stage("foundation", "train", benchmarks="updated-train",
              needs=("train_data",)),
        stage("analyze", "analysis", fn="fig7_cache_dse",
              tuning_benchmarks=list(DSE_TUNING_BENCHMARKS),
              tuning_configs=DSE_TUNING_CONFIGS,
              needs=("foundation",)),
        stage("report", "report",
              title="L1D x L2 cache-size DSE (objective rank per program)",
              needs=("analyze",)),
    ),
)


def run(scale: str = "bench"):
    """Back-compat shim: one pipeline run, returning the ExperimentResult."""
    from repro.pipeline import run_spec

    return run_spec(SPEC, scale=scale).result
