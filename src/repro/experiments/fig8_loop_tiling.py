"""Fig. 8 — loop-tiling analysis of matrix multiply.

The paper compares gem5 and PerfVec execution times of a tiled MM across
tile sizes on the Cortex-A7 model: sharp improvement up to tile 8 (vector
width there; cache-reuse here), degradation once a tile's working set
exceeds L1D, and agreement between simulator and model on the optimal
region.  "This analysis incurs negligible inference overhead and no
training overhead because the pre-trained foundation model is used" — here
the A7's representation is obtained with one small least-squares fit
(foundation frozen).

The matrix size and tile sweep are spec parameters
(``analyze.matrix_n`` / ``analyze.tiles``), so alternative tilings are a
spec override or a :class:`~repro.pipeline.SweepSpec` axis, not new code.
"""

from __future__ import annotations

import numpy as np

from repro.core.finetune import learn_unseen_uarch_table
from repro.core.predictor import TICK_SCALE
from repro.experiments.common import benchmark_dataset, trained_model
from repro.experiments.fig4_retrain_lbm import UPDATED_TRAIN
from repro.features import encode_trace
from repro.pipeline import ExperimentSpec, analysis, stage
from repro.sim import simulate
from repro.uarch.presets import cortex_a7_like
from repro.vm import run_program
from repro.workloads.kernels.linear_algebra import matmul

#: Matrix size and tile sweep; 48^2 matrices (54 kB working set) overflow
#: the A7's 32 kB L1D, so tiling has something to win.
MATRIX_N = 48
TILES: tuple[int, ...] = (1, 2, 4, 8, 16, 48)


@analysis("fig8_loop_tiling")
def analyze(ctx, params, inputs) -> dict:
    cfg = ctx.scale
    matrix_n = int(params.get("matrix_n", MATRIX_N))
    tiles = tuple(int(t) for t in params.get("tiles", TILES))
    a7 = cortex_a7_like()
    model, _ = trained_model(cfg, UPDATED_TRAIN)
    budget = max(cfg.dse_instructions, 4000)

    # learn the A7's representation once, from seen-program tuning data
    tune = benchmark_dataset(cfg, ("525.x264", "557.xz"), configs=[a7],
                             instructions=budget)
    table = learn_unseen_uarch_table(
        model, tune.features, tune.targets, chunk_len=cfg.chunk_len
    )
    a7_rep = table.table.data[0]

    rows = []
    sim_times = []
    pv_times = []
    for tile in tiles:
        program = matmul(n=matrix_n, tile=tile, reps=10_000)
        trace = run_program(program, max_instructions=budget)
        sim_ticks = float(
            simulate(trace, a7).incremental_latencies.astype(np.float64).sum()
        )
        feats = encode_trace(trace)
        rep = model.program_representation(feats, chunk_len=cfg.chunk_len)
        pv_ticks = float(rep @ a7_rep.astype(np.float64)) / TICK_SCALE
        sim_times.append(sim_ticks)
        pv_times.append(pv_ticks)
        rows.append(
            [tile, f"{sim_ticks / 1e4:.1f} us", f"{pv_ticks / 1e4:.1f} us",
             f"{abs(pv_ticks - sim_ticks) / sim_ticks:.1%}"]
        )

    sim_best = tiles[int(np.argmin(sim_times))]
    pv_best = tiles[int(np.argmin(pv_times))]
    corr = float(np.corrcoef(sim_times, pv_times)[0, 1])
    return {
        "title": f"MM loop tiling ({matrix_n}x{matrix_n}) on Cortex-A7-like",
        "headers": ["tile", "simulator time", "perfvec time", "error"],
        "rows": rows,
        "metrics": {
            "sim_best_tile": float(sim_best),
            "perfvec_best_tile": float(pv_best),
            "time_correlation": corr,
        },
        "notes": [
            "times cover an equal instruction budget per tile, so they "
            "compare per-instruction efficiency (cache reuse) across tiles",
            "paper: optimum at tile 16 in gem5; PerfVec ranks 16/32 "
            "equally best; surfaces agree in shape",
        ],
    }


SPEC = ExperimentSpec(
    name="fig8_loop_tiling",
    title=f"MM loop tiling ({MATRIX_N}x{MATRIX_N}) on Cortex-A7-like",
    description="Fig. 8 — matrix-multiply loop tiling",
    stages=(
        stage("train_data", "dataset", benchmarks="updated-train"),
        stage("foundation", "train", benchmarks="updated-train",
              needs=("train_data",)),
        stage("analyze", "analysis", fn="fig8_loop_tiling",
              matrix_n=MATRIX_N, tiles=list(TILES),
              needs=("foundation",)),
        stage("report", "report", needs=("analyze",)),
    ),
)


def run(scale: str = "bench"):
    """Back-compat shim: one pipeline run, returning the ExperimentResult."""
    from repro.pipeline import run_spec

    return run_spec(SPEC, scale=scale).result
