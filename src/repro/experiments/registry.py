"""Experiment registry and runner (back-compat layer over the pipeline).

Every experiment is now a :mod:`repro.pipeline` spec (its module's
``SPEC``); the module ``run`` callables registered here are thin shims
that execute that spec through the pipeline runner, so a repeat
invocation is answered from per-stage artifacts instead of re-executing.
The spec registry itself lives in :mod:`repro.pipeline.presets`.

:func:`run_experiment` executes one experiment; ``jobs`` controls how many
processes its trace simulations fan out across.  :func:`run_all` executes
every registered experiment and can additionally run the *experiments
themselves* concurrently: the shared dataset is pre-built once (parallel
simulation, warm on-disk cache), then independent experiments dispatch
through :class:`repro.runtime.ParallelMap` and read that cache instead of
re-simulating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.errors import UnknownExperimentError
from repro.experiments import (
    cross_isa,
    fig3_seen_unseen,
    fig4_retrain_lbm,
    fig5_unseen_uarch,
    fig6_ablation_arch,
    fig7_cache_dse,
    fig8_loop_tiling,
    sec4b_reuse,
    sec5b_data_volume,
    sec5b_features,
    table3_comparison,
    table4_dse_methods,
)
from repro.experiments.common import ExperimentResult, set_default_jobs

#: Experiment id -> run callable (ordered as in the paper's evaluation).
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig3_seen_unseen": fig3_seen_unseen.run,
    "fig4_retrain_lbm": fig4_retrain_lbm.run,
    "fig5_unseen_uarch": fig5_unseen_uarch.run,
    "fig6_ablation_arch": fig6_ablation_arch.run,
    "sec4b_reuse": sec4b_reuse.run,
    "sec5b_data_volume": sec5b_data_volume.run,
    "sec5b_features": sec5b_features.run,
    "table3_comparison": table3_comparison.run,
    "table4_dse_methods": table4_dse_methods.run,
    "fig7_cache_dse": fig7_cache_dse.run,
    "fig8_loop_tiling": fig8_loop_tiling.run,
    "cross_isa": cross_isa.run,
}


def run_experiment(
    name: str, scale: str = "bench", jobs: int | None = None
) -> ExperimentResult:
    """Run one registered experiment at the given scale.

    ``jobs`` sets the simulation fan-out for this run (``None`` keeps the
    process-wide default, ``0`` means all cores); the previous default is
    restored afterwards.
    """
    if name not in EXPERIMENTS:
        raise UnknownExperimentError(name, EXPERIMENTS)
    if jobs is None:
        return EXPERIMENTS[name](scale=scale)
    previous = set_default_jobs(jobs)
    try:
        return EXPERIMENTS[name](scale=scale)
    finally:
        set_default_jobs(previous)


@dataclass(frozen=True)
class ExperimentOutcome:
    """One :func:`run_all` entry: a result or a captured failure."""

    name: str
    result: ExperimentResult | None = None
    error: str | None = None  # worker traceback when the experiment failed

    @property
    def ok(self) -> bool:
        return self.error is None


def _experiment_job(item: tuple[str, str, bool]) -> ExperimentResult:
    """Worker entry point for parallel :func:`run_all`.

    Simulations stay serial inside each worker — the shared dataset cache
    is already warm, and concurrency comes from running experiments side
    by side.  With ``save`` the result JSON is written here, as soon as
    the experiment finishes, so completed work survives a later crash or
    interrupt of the batch.
    """
    name, scale, save = item
    result = run_experiment(name, scale=scale, jobs=1)
    if save:
        result.save()
    return result


def _warm_dataset_cache(scale: str, jobs: int, stream) -> None:
    """Pre-build the suite dataset every experiment reads (parallel sims).

    Purely an optimization: failures are swallowed here so that the
    experiments that actually need the broken benchmark fail (and are
    captured) individually, exactly as they would without the warm-up.
    """
    from repro.experiments.common import get_scale, seen_configs
    from repro.features.dataset import build_dataset
    from repro.runtime import ProgressReporter
    from repro.workloads import ALL_BENCHMARKS

    cfg = get_scale(scale)
    configs = seen_configs(cfg)
    benchmarks = list(ALL_BENCHMARKS)
    reporter = None
    if stream is not None:
        reporter = ProgressReporter(
            total=len(benchmarks) * (len(configs) + 1), prefix="warm ",
            stream=stream,
        )
    try:
        build_dataset(
            benchmarks, configs, cfg.instructions, jobs=jobs,
            progress=reporter,
        )
    except Exception as exc:
        if stream is not None:
            stream.write(f"warm-up failed (continuing): {exc}\n")


def run_all(
    names: Sequence[str] | None = None,
    scale: str = "bench",
    jobs: int | None = 1,
    progress=None,
    save: bool = False,
) -> list[ExperimentOutcome]:
    """Run experiments (default: all), capturing per-experiment failures.

    With ``jobs > 1`` the shared seen-config dataset cache is built first
    with parallel simulation, then experiments run concurrently in worker
    processes.  Each worker retrains its own models (the in-process model
    cache is not shared across processes); simulations of the shared
    dataset become disk-cache hits, while experiments that need extra
    configurations (unseen microarchitectures, DSE sweeps) still simulate
    those serially inside their own worker.

    ``progress`` receives one completion line per *experiment*; warm-up
    simulations report separately (``warm`` prefix) on the same stream.
    With ``save`` each result JSON lands under ``results/`` the moment
    its experiment completes, so an interrupted batch keeps what it
    finished.
    """
    from repro.runtime import ParallelMap, resolve_jobs

    names = list(names) if names is not None else list(EXPERIMENTS)
    for name in names:
        if name not in EXPERIMENTS:
            raise UnknownExperimentError(name, EXPERIMENTS)
    jobs = resolve_jobs(jobs)
    if jobs > 1:
        stream = progress.stream if progress is not None else None
        _warm_dataset_cache(scale, jobs, stream)
    pool = ParallelMap(jobs=min(jobs, len(names)), chunksize=1,
                       progress=progress)
    results = pool.map(
        _experiment_job,
        [(name, scale, save) for name in names],
        return_errors=True,
        labels=names,
    )
    return [
        ExperimentOutcome(name=name, result=res.value, error=res.error)
        for name, res in zip(names, results)
    ]
