"""Experiment registry and runner."""

from __future__ import annotations

from typing import Callable

from repro.experiments import (
    fig3_seen_unseen,
    fig4_retrain_lbm,
    fig5_unseen_uarch,
    fig6_ablation_arch,
    fig7_cache_dse,
    fig8_loop_tiling,
    sec4b_reuse,
    sec5b_data_volume,
    sec5b_features,
    table3_comparison,
    table4_dse_methods,
)
from repro.experiments.common import ExperimentResult

#: Experiment id -> run callable (ordered as in the paper's evaluation).
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig3_seen_unseen": fig3_seen_unseen.run,
    "fig4_retrain_lbm": fig4_retrain_lbm.run,
    "fig5_unseen_uarch": fig5_unseen_uarch.run,
    "fig6_ablation_arch": fig6_ablation_arch.run,
    "sec4b_reuse": sec4b_reuse.run,
    "sec5b_data_volume": sec5b_data_volume.run,
    "sec5b_features": sec5b_features.run,
    "table3_comparison": table3_comparison.run,
    "table4_dse_methods": table4_dse_methods.run,
    "fig7_cache_dse": fig7_cache_dse.run,
    "fig8_loop_tiling": fig8_loop_tiling.run,
}


def run_experiment(name: str, scale: str = "bench") -> ExperimentResult:
    """Run one registered experiment at the given scale."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[name](scale=scale)
