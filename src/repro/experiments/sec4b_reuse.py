"""Sec. IV-B — instruction representation reuse speedup.

Measures the per-step training cost of the reuse scheme (one foundation
pass serving all k microarchitectures) against the naive scheme (one pass
per microarchitecture).  Paper: reuse cuts one epoch from 26 days to 8
hours — near-constant in k instead of linear.
"""

from __future__ import annotations

from repro.core.training import FoundationTrainConfig, naive_training_step_cost
from repro.experiments.common import benchmark_dataset
from repro.pipeline import ExperimentSpec, analysis, stage
from repro.workloads import TRAIN_BENCHMARKS


@analysis("sec4b_reuse")
def analyze(ctx, params, inputs) -> dict:
    cfg = ctx.scale
    full = benchmark_dataset(cfg, TRAIN_BENCHMARKS)
    k_values = sorted({max(2, full.num_configs // 4), full.num_configs // 2,
                       full.num_configs})
    rows = []
    metrics: dict[str, float] = {}
    tc = FoundationTrainConfig(
        spec=cfg.spec, chunk_len=cfg.chunk_len, batch_size=cfg.batch_size,
        seed=cfg.seed,
    )
    for k in k_values:
        ds = full.select_configs(range(k))
        cost = naive_training_step_cost(ds, tc, steps=3)
        rows.append(
            [k, f"{cost['reuse_seconds_per_step'] * 1e3:.1f} ms",
             f"{cost['naive_seconds_per_step'] * 1e3:.1f} ms",
             f"{cost['speedup']:.1f}x"]
        )
        metrics[f"speedup_k{k}"] = cost["speedup"]
    return {
        "headers": ["uarchs (k)", "reuse/step", "naive/step", "speedup"],
        "rows": rows,
        "metrics": metrics,
        "notes": [
            "speedup grows ~linearly with k: reuse amortizes the foundation "
            "pass (paper: 26 days -> 8 hours per epoch at k=77)",
        ],
    }


SPEC = ExperimentSpec(
    name="sec4b_reuse",
    title="Representation reuse vs naive per-uarch training cost",
    description="Sec. IV-B — representation-reuse speedup",
    stages=(
        stage("train_data", "dataset", benchmarks="train"),
        stage("analyze", "analysis", fn="sec4b_reuse", needs=("train_data",)),
        stage("report", "report",
              title="Representation reuse vs naive per-uarch training cost",
              needs=("analyze",)),
    ),
)


def run(scale: str = "bench"):
    """Back-compat shim: one pipeline run, returning the ExperimentResult."""
    from repro.pipeline import run_spec

    return run_spec(SPEC, scale=scale).result
