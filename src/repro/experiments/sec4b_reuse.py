"""Sec. IV-B — instruction representation reuse speedup.

Measures the per-step training cost of the reuse scheme (one foundation
pass serving all k microarchitectures) against the naive scheme (one pass
per microarchitecture).  Paper: reuse cuts one epoch from 26 days to 8
hours — near-constant in k instead of linear.
"""

from __future__ import annotations

from repro.core.training import FoundationTrainConfig, naive_training_step_cost
from repro.experiments.common import (
    ExperimentResult,
    benchmark_dataset,
    get_scale,
)
from repro.workloads import TRAIN_BENCHMARKS


def run(scale: str = "bench") -> ExperimentResult:
    cfg = get_scale(scale)
    full = benchmark_dataset(cfg, TRAIN_BENCHMARKS)
    k_values = sorted({max(2, full.num_configs // 4), full.num_configs // 2,
                       full.num_configs})
    rows = []
    metrics: dict[str, float] = {}
    tc = FoundationTrainConfig(
        spec=cfg.spec, chunk_len=cfg.chunk_len, batch_size=cfg.batch_size,
        seed=cfg.seed,
    )
    for k in k_values:
        ds = full.select_configs(range(k))
        cost = naive_training_step_cost(ds, tc, steps=3)
        rows.append(
            [k, f"{cost['reuse_seconds_per_step'] * 1e3:.1f} ms",
             f"{cost['naive_seconds_per_step'] * 1e3:.1f} ms",
             f"{cost['speedup']:.1f}x"]
        )
        metrics[f"speedup_k{k}"] = cost["speedup"]
    return ExperimentResult(
        experiment="sec4b_reuse",
        title="Representation reuse vs naive per-uarch training cost",
        scale=cfg.name,
        headers=["uarchs (k)", "reuse/step", "naive/step", "speedup"],
        rows=rows,
        metrics=metrics,
        notes=[
            "speedup grows ~linearly with k: reuse amortizes the foundation "
            "pass (paper: 26 days -> 8 hours per epoch at k=77)",
        ],
    )
