"""Sec. V-B — training-data volume ablation.

Two axes, as in the paper:

* instruction volume: 10% / 50% / 100% of the scale's trace budget —
  paper: unseen-program error drops 7.7% -> 5.2% -> 3.6%;
* microarchitecture count: few vs all sampled configs — paper: dropping
  77 -> 20 uarchs hurts *unseen-microarchitecture* error more (5.3 -> 7.9%)
  than unseen-program error (5.5 -> 7.2%).
"""

from __future__ import annotations

from repro.core.finetune import learn_unseen_uarch_table
from repro.core.training import FoundationTrainConfig, train_foundation
from repro.experiments.common import (
    benchmark_dataset,
    total_time_errors,
    unseen_configs,
)
from repro.pipeline import ExperimentSpec, analysis, stage
from repro.workloads import TEST_BENCHMARKS, TRAIN_BENCHMARKS

INSTRUCTION_FRACTIONS = (0.1, 0.5, 1.0)


def _avg_error(errors) -> float:
    return sum(s.mean for s in errors.values()) / len(errors)


@analysis("sec5b_data_volume")
def analyze(ctx, params, inputs) -> dict:
    cfg = ctx.scale
    rows = []
    metrics: dict[str, float] = {}

    # --- axis 1: instruction volume ------------------------------------
    test_ds = benchmark_dataset(cfg, tuple(TEST_BENCHMARKS))
    frac_errors = []
    for frac in INSTRUCTION_FRACTIONS:
        n = max(int(cfg.instructions * frac), 4 * cfg.chunk_len)
        train_ds = benchmark_dataset(cfg, TRAIN_BENCHMARKS, instructions=n)
        model, _ = train_foundation(
            train_ds,
            FoundationTrainConfig(
                spec=cfg.spec, chunk_len=cfg.chunk_len,
                batch_size=cfg.batch_size, epochs=cfg.ablation_epochs,
                seed=cfg.seed,
            ),
        )
        err = _avg_error(total_time_errors(model, test_ds, cfg.chunk_len))
        frac_errors.append(err)
        rows.append([f"instructions {frac:.0%}", f"{err:.1%}", "-"])
        metrics[f"error_at_{int(frac * 100)}pct_instructions"] = err

    # --- axis 2: microarchitecture count --------------------------------
    full_ds = benchmark_dataset(cfg, TRAIN_BENCHMARKS)
    few = max(3, full_ds.num_configs // 3)
    unseen = unseen_configs(cfg, 6)
    tune_ds = benchmark_dataset(cfg, ("525.x264", "557.xz"), configs=unseen)
    eval_ds = benchmark_dataset(cfg, tuple(TEST_BENCHMARKS), configs=unseen)
    for label, ds in (
        (f"{few} uarchs", full_ds.select_configs(range(few))),
        (f"{full_ds.num_configs} uarchs", full_ds),
    ):
        model, _ = train_foundation(
            ds,
            FoundationTrainConfig(
                spec=cfg.spec, chunk_len=cfg.chunk_len,
                batch_size=cfg.batch_size, epochs=cfg.ablation_epochs,
                seed=cfg.seed,
            ),
        )
        # unseen-program error is judged on the same config columns the
        # model's table covers
        prog_eval = (
            test_ds if ds.num_configs == test_ds.num_configs
            else test_ds.select_configs(range(ds.num_configs))
        )
        prog_err = _avg_error(total_time_errors(model, prog_eval, cfg.chunk_len))
        table = learn_unseen_uarch_table(
            model, tune_ds.features, tune_ds.targets, chunk_len=cfg.chunk_len
        )
        uarch_err = _avg_error(
            total_time_errors(model, eval_ds, cfg.chunk_len, table=table.table.data)
        )
        rows.append([label, f"{prog_err:.1%}", f"{uarch_err:.1%}"])
        key = "few" if ds.num_configs == few else "full"
        metrics[f"{key}_uarch_prog_error"] = prog_err
        metrics[f"{key}_uarch_unseen_uarch_error"] = uarch_err

    return {
        "headers": ["training data", "unseen-program err", "unseen-uarch err"],
        "rows": rows,
        "metrics": metrics,
        "notes": [
            "paper: 7.7% -> 5.2% -> 3.6% with 10/50/100% instructions",
            "paper: 20 vs 77 uarchs hurts unseen-uarch error (5.3->7.9%) "
            "more than unseen-program error (5.5->7.2%)",
        ],
    }


SPEC = ExperimentSpec(
    name="sec5b_data_volume",
    title="Training-data volume ablation",
    description="Sec. V-B — training-data volume ablation",
    stages=(
        stage("train_data", "dataset", benchmarks="train"),
        stage("test_data", "dataset", benchmarks="test"),
        stage("unseen_tune_data", "dataset",
              benchmarks=["525.x264", "557.xz"], configs="unseen", count=6),
        stage("unseen_eval_data", "dataset", benchmarks="test",
              configs="unseen", count=6),
        stage("analyze", "analysis", fn="sec5b_data_volume",
              needs=("train_data", "test_data", "unseen_tune_data",
                     "unseen_eval_data")),
        stage("report", "report", title="Training-data volume ablation",
              needs=("analyze",)),
    ),
)


def run(scale: str = "bench"):
    """Back-compat shim: one pipeline run, returning the ExperimentResult."""
    from repro.pipeline import run_spec

    return run_spec(SPEC, scale=scale).result
