"""Sec. V-B — microarchitecture-independent feature ablation.

Removes the memory (stack distance) and branch (entropy + taken) features
from the input and retrains.  Paper result: average unseen-program error
soars from 5.5% to 17.0% — the features are "essential to capture memory
and branch behaviors".
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.training import FoundationTrainConfig, train_foundation
from repro.experiments.common import benchmark_dataset, total_time_errors
from repro.features.dataset import TraceDataset
from repro.features.encoder import FeatureGroups
from repro.pipeline import ExperimentSpec, analysis, stage
from repro.workloads import TEST_BENCHMARKS, TRAIN_BENCHMARKS


def mask_memory_branch_features(dataset: TraceDataset) -> TraceDataset:
    """Zero the stack-distance and branch-behaviour columns."""
    features = dataset.features.copy()
    features[:, FeatureGroups.memory] = 0.0
    features[:, FeatureGroups.branch] = 0.0
    features[:, FeatureGroups.behaviour.start + 1] = 0.0  # branch-taken bit
    return dataclasses.replace(dataset, features=features)


def _avg_error(errors) -> float:
    return float(np.mean([s.mean for s in errors.values()]))


@analysis("sec5b_features")
def analyze(ctx, params, inputs) -> dict:
    cfg = ctx.scale
    train_ds = benchmark_dataset(cfg, TRAIN_BENCHMARKS)
    test_ds = benchmark_dataset(cfg, tuple(TEST_BENCHMARKS))
    tc = FoundationTrainConfig(
        spec=cfg.spec, chunk_len=cfg.chunk_len, batch_size=cfg.batch_size,
        epochs=cfg.ablation_epochs, seed=cfg.seed,
    )

    full_model, _ = train_foundation(train_ds, tc)
    full_err = _avg_error(total_time_errors(full_model, test_ds, cfg.chunk_len))

    masked_model, _ = train_foundation(mask_memory_branch_features(train_ds), tc)
    masked_err = _avg_error(
        total_time_errors(
            masked_model, mask_memory_branch_features(test_ds), cfg.chunk_len
        )
    )

    return {
        "headers": ["features", "avg_unseen_error"],
        "rows": [
            ["all 51 (Table I)", f"{full_err:.1%}"],
            ["without memory + branch", f"{masked_err:.1%}"],
        ],
        "metrics": {
            "full_features_error": full_err,
            "masked_features_error": masked_err,
            "degradation_factor": masked_err / max(full_err, 1e-9),
        },
        "notes": [
            "paper: 5.5% with all features vs 17.0% without memory/branch"
        ],
    }


SPEC = ExperimentSpec(
    name="sec5b_features",
    title="Memory/branch feature ablation (avg unseen-program error)",
    description="Sec. V-B — feature ablation",
    stages=(
        stage("train_data", "dataset", benchmarks="train"),
        stage("test_data", "dataset", benchmarks="test"),
        stage("analyze", "analysis", fn="sec5b_features",
              needs=("train_data", "test_data")),
        stage("report", "report",
              title="Memory/branch feature ablation "
                    "(avg unseen-program error)",
              needs=("analyze",)),
    ),
)


def run(scale: str = "bench"):
    """Back-compat shim: one pipeline run, returning the ExperimentResult."""
    from repro.pipeline import run_spec

    return run_spec(SPEC, scale=scale).result
