"""Table III — comparison of ML-based modeling and simulation approaches.

The qualitative columns (input, target, generality) restate the paper's
analysis for our implementations; the prediction-speed column is *measured*
on this substrate: instructions/second for trace-walking approaches and
per-program prediction latency for representation-based ones.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.ithemal import IthemalModel, extract_basic_blocks
from repro.baselines.simnet import SimNetModel, simnet_features
from repro.experiments.common import benchmark_dataset, trained_model
from repro.pipeline import ExperimentSpec, analysis, stage
from repro.sim import simulate
from repro.uarch.presets import cortex_a7_like
from repro.workloads import TRAIN_BENCHMARKS, get_trace


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@analysis("table3_comparison")
def analyze(ctx, params, inputs) -> dict:
    cfg = ctx.scale
    n = cfg.instructions
    trace = get_trace("557.xz", n)
    a7 = cortex_a7_like()
    res = simulate(trace, a7)
    lat = res.incremental_latencies

    # --- Ithemal: basic-block walker -----------------------------------
    blocks = extract_basic_blocks(trace, lat)
    ithemal = IthemalModel(embed_dim=8, hidden=16).fit(blocks, epochs=4)
    t_ithemal = _time(lambda: ithemal.predict(blocks))
    ithemal_ips = n / t_ithemal

    # --- SimNet: per-instruction walker (features are uarch-dependent) --
    feats_dep = simnet_features(trace, a7)
    simnet = SimNetModel(hidden=16, epochs=3).fit(feats_dep, lat.astype(np.float64))
    t_simnet = _time(lambda: simnet.predict_total_time(feats_dep))
    t_simnet_full = t_simnet + _time(lambda: simnet_features(trace, a7))
    simnet_ips = n / t_simnet_full

    # --- PerfVec: representation dot product -----------------------------
    model, _ = trained_model(cfg, TRAIN_BENCHMARKS)
    ds = benchmark_dataset(cfg, ("557.xz",))
    feats = ds.features
    t_rep = _time(lambda: model.program_representation(feats, cfg.chunk_len))
    prog_rep = model.program_representation(feats, cfg.chunk_len)
    t_predict = _time(
        lambda: model.predict_total_time(prog_rep, config_index=0), repeats=10
    )

    rows = [
        ["Ithemal/GRANITE", "textual instruction trace", "basic block",
         "minutes", f"{ithemal_ips:,.0f} IPS", "yes", "no"],
        ["Perf. embedding", "flow graph + perf counters", "loop nest",
         "days", "(not impl: uarch-dependent counters)", "yes", "no"],
        ["Program-specific", "uarch parameters", "program",
         "days-weeks", "< 1 ms", "no", "no"],
        ["Transferable", "uarch params + signature", "program",
         "hours-days", "< 1 ms", "partial", "no"],
        ["SimNet", "uarch-dependent instr trace", "program",
         "hours-days", f"{simnet_ips:,.0f} IPS", "yes", "no"],
        ["PerfVec", "uarch-independent instr trace", "program",
         "hours", f"{t_predict * 1e6:.0f} us/program", "yes", "yes"],
    ]
    return {
        "headers": ["approach", "input", "target", "train overhead",
                    "prediction speed", "program-general", "uarch-general"],
        "rows": rows,
        "metrics": {
            "ithemal_ips": ithemal_ips,
            "simnet_ips": simnet_ips,
            "perfvec_rep_generation_ips": n / t_rep,
            "perfvec_predict_seconds": t_predict,
        },
        "notes": [
            "PerfVec prediction with a pre-computed program representation "
            "is a dot product: independent of program size",
            "SimNet speed includes re-extracting uarch-dependent features, "
            "which must be redone for every target microarchitecture",
        ],
    }


SPEC = ExperimentSpec(
    name="table3_comparison",
    title="Comparison of modeling approaches (speeds measured here)",
    description="Table III — approach comparison + measured speeds",
    stages=(
        stage("xz_data", "dataset", benchmarks=["557.xz"]),
        stage("foundation", "train", benchmarks="train"),
        stage("analyze", "analysis", fn="table3_comparison",
              needs=("xz_data", "foundation")),
        stage("report", "report",
              title="Comparison of modeling approaches "
                    "(speeds measured here)",
              needs=("analyze",)),
    ),
)


def run(scale: str = "bench"):
    """Back-compat shim: one pipeline run, returning the ExperimentResult."""
    from repro.pipeline import run_spec

    return run_spec(SPEC, scale=scale).result
