"""Table IV — comparison of ML-based DSE methods.

All methods explore the same 36-point cache grid; they differ in how many
simulations they need and how good their chosen design is:

* **MLP predictor** (Ipek [28]) — per program, train on a random 25% of the
  grid;
* **Cross-program predictor** (Dubach [21]) — shared model trained on three
  tuning programs' full responses, each target program pays only a
  5-configuration signature (~14%);
* **ActBoost** [36] — per program, AdaBoost.R2 on a stratified 28% sample;
* **PerfVec** — three tuning programs on 18 sampled configurations, once,
  for *all* programs.

Overhead is reported as simulated (program, configuration) pairs — the
quantity the paper's hour figures are proportional to — plus measured model
training time; quality is the average fraction of designs that beat the
chosen one (paper: 4.4% / 4.7% / 3.6% / 3.6% for overheads 150h / 84h /
170h / 11h).
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.actboost import AdaBoostR2, stratified_sample
from repro.baselines.cross_program import CrossProgramPredictor
from repro.baselines.program_specific import ProgramSpecificMLP
from repro.core.dse import CacheDSE
from repro.experiments.common import trained_model
from repro.experiments.fig4_retrain_lbm import UPDATED_TRAIN
from repro.experiments.fig7_cache_dse import (
    DSE_TUNING_BENCHMARKS,
    dse_ground_truth,
    perfvec_dse_times,
)
from repro.pipeline import ExperimentSpec, analysis, stage
from repro.uarch.presets import cortex_a7_like
from repro.workloads import ALL_BENCHMARKS


def _avg_quality(dse: CacheDSE, truth, predicted) -> float:
    vals = []
    for name, pred_times in predicted.items():
        q = dse.rank_quality(
            dse.objective_values(pred_times), dse.objective_values(truth[name])
        )
        vals.append(q.frac_better)
    return float(np.mean(vals))


@analysis("table4_dse_methods")
def analyze(ctx, params, inputs) -> dict:
    cfg = ctx.scale
    dse = CacheDSE(cortex_a7_like())
    benchmarks = tuple(ALL_BENCHMARKS)
    grid_size = len(dse)
    truth = dse_ground_truth(cfg, dse, benchmarks)
    areas = np.array([1000 + 10 * l1 + l2 for l1, l2 in dse.grid], dtype=float)
    rng = np.random.default_rng(cfg.seed)

    rows = []
    metrics: dict[str, float] = {}

    # ---- MLP predictor: per-program, 25% of the grid --------------------
    n_train = max(3, grid_size // 4)
    start = time.perf_counter()
    preds = {}
    for name in benchmarks:
        idx = sorted(rng.choice(grid_size, size=n_train, replace=False).tolist())
        model = ProgramSpecificMLP(epochs=300, seed=cfg.seed).fit(
            [dse.configs[i] for i in idx], truth[name][idx]
        )
        preds[name] = model.predict(dse.configs)
    mlp_secs = time.perf_counter() - start
    mlp_sims = len(benchmarks) * n_train
    mlp_quality = _avg_quality(dse, truth, preds)
    rows.append(["MLP predictor [28]", mlp_sims, f"{mlp_secs:.1f}s",
                 f"{mlp_quality:.1%}"])
    metrics["mlp_quality"] = mlp_quality
    metrics["mlp_sims"] = float(mlp_sims)

    # ---- Cross-program predictor: 3 full responses + 5-run signatures ---
    n_sig = 5
    start = time.perf_counter()
    xp = CrossProgramPredictor(n_signature=n_sig)
    train_times = {name: truth[name] for name in DSE_TUNING_BENCHMARKS}
    xp.fit(dse.configs, train_times)
    preds = {}
    for name in benchmarks:
        signature = truth[name][xp._signature_indices]
        preds[name] = xp.predict(dse.configs, signature)
    xp_secs = time.perf_counter() - start
    xp_sims = len(DSE_TUNING_BENCHMARKS) * grid_size + len(benchmarks) * n_sig
    xp_quality = _avg_quality(dse, truth, preds)
    rows.append(["Cross-program [21]", xp_sims, f"{xp_secs:.1f}s",
                 f"{xp_quality:.1%}"])
    metrics["cross_program_quality"] = xp_quality
    metrics["cross_program_sims"] = float(xp_sims)

    # ---- ActBoost: per-program stratified 28% ---------------------------
    n_boost = max(3, int(round(grid_size * 0.28)))
    start = time.perf_counter()
    params_grid = np.stack([c.to_feature_vector() for c in dse.configs])
    preds = {}
    for name in benchmarks:
        idx = stratified_sample(areas, n_boost, seed=cfg.seed)
        booster = AdaBoostR2(n_estimators=20, max_depth=3, seed=cfg.seed).fit(
            params_grid[idx], truth[name][idx]
        )
        preds[name] = booster.predict(params_grid)
    boost_secs = time.perf_counter() - start
    boost_sims = len(benchmarks) * n_boost
    boost_quality = _avg_quality(dse, truth, preds)
    rows.append(["ActBoost [36]", boost_sims, f"{boost_secs:.1f}s",
                 f"{boost_quality:.1%}"])
    metrics["actboost_quality"] = boost_quality
    metrics["actboost_sims"] = float(boost_sims)

    # ---- PerfVec ----------------------------------------------------------
    model, _ = trained_model(cfg, UPDATED_TRAIN)
    start = time.perf_counter()
    preds, overhead = perfvec_dse_times(cfg, model, dse, benchmarks)
    pv_secs = time.perf_counter() - start
    pv_sims = int(overhead["tuning_simulations"])
    pv_quality = _avg_quality(dse, truth, preds)
    rows.append(["PerfVec", pv_sims, f"{pv_secs:.1f}s", f"{pv_quality:.1%}"])
    metrics["perfvec_quality"] = pv_quality
    metrics["perfvec_sims"] = float(pv_sims)
    metrics["exhaustive_sims"] = float(len(benchmarks) * grid_size)

    return {
        "headers": ["method", "simulations", "model time",
                    "quality (frac better)"],
        "rows": rows,
        "metrics": metrics,
        "notes": [
            "simulations column ~ the paper's overhead hours; PerfVec's "
            "tuning cost is constant in the number of target programs",
            "paper: quality 4.4%/4.7%/3.6%/3.6% at 150h/84h/170h/11h",
        ],
    }


SPEC = ExperimentSpec(
    name="table4_dse_methods",
    title="DSE method comparison: overhead vs design quality",
    description="Table IV — DSE method overhead/quality",
    stages=(
        stage("train_data", "dataset", benchmarks="updated-train"),
        stage("foundation", "train", benchmarks="updated-train",
              needs=("train_data",)),
        stage("analyze", "analysis", fn="table4_dse_methods",
              needs=("foundation",)),
        stage("report", "report",
              title="DSE method comparison: overhead vs design quality",
              needs=("analyze",)),
    ),
)


def run(scale: str = "bench"):
    """Back-compat shim: one pipeline run, returning the ExperimentResult."""
    from repro.pipeline import run_spec

    return run_spec(SPEC, scale=scale).result
