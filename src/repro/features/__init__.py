"""Microarchitecture-independent instruction features (paper Table I).

51 features per dynamic instruction:

* 15 operation features (class one-hots, direct/indirect branch, barrier),
* 28 register-slot features (index + category for 8 sources, 6 destinations),
* 2 execution-behaviour features (fault, branch taken),
* 4 memory features (stack distances w.r.t. instruction fetch, all data
  accesses, loads, stores),
* 2 branch-predictability features (global and local branch entropy).

Everything here is computed from the trace alone — no microarchitecture
state — which is what lets learned representations transfer across
microarchitectures (the ablation in Sec. V-B shows error tripling without
the memory/branch features).
"""

from repro.features.stack_distance import (
    MaskedStackDistanceStream,
    StackDistanceStream,
    stack_distances,
    stack_distances_where,
)
from repro.features.branch_entropy import BranchEntropyStream, branch_entropies
from repro.features.encoder import (
    FEATURE_NAMES,
    NUM_FEATURES,
    FeatureGroups,
    StreamingTraceEncoder,
    encode_trace,
    iter_encoded_chunks,
)
from repro.features.feature_cache import encoded_features, feature_cache_dir
from repro.features.dataset import TraceDataset, build_dataset

__all__ = [
    "stack_distances",
    "stack_distances_where",
    "StackDistanceStream",
    "MaskedStackDistanceStream",
    "branch_entropies",
    "BranchEntropyStream",
    "FEATURE_NAMES",
    "NUM_FEATURES",
    "FeatureGroups",
    "StreamingTraceEncoder",
    "encode_trace",
    "iter_encoded_chunks",
    "encoded_features",
    "feature_cache_dir",
    "TraceDataset",
    "build_dataset",
]
