"""Branch entropy (paper Sec. III-C, citing Yokota et al. / De Pestel et al.).

Taken/not-taken history is treated as a Bernoulli stream whose probability
is tracked with an exponential moving average; the reported feature is the
Shannon entropy of that estimate *before* observing the current outcome.
Branches with consistent behaviour (always taken, always untaken) converge
to entropy 0; unpredictable branches stay near 1.

Two scopes, as in the paper: *global* (one estimate over all conditional
branches) and *local* (one estimate per branch pc).
"""

from __future__ import annotations

import math

import numpy as np

from repro.vm.trace import OP_IS_COND, Trace

#: EMA weight of a new outcome; 1/16 tracks local phase behaviour while
#: converging within a few dozen executions.
DEFAULT_ALPHA = 1.0 / 16.0


def _entropy(p: float) -> float:
    if p <= 0.0 or p >= 1.0:
        return 0.0
    q = 1.0 - p
    return -(p * math.log2(p) + q * math.log2(q))


class BranchEntropyStream:
    """Resumable (global, local) branch-entropy computation.

    The EMA estimates (one global, one per branch pc) persist across
    :meth:`push` calls, so feeding a trace chunk-by-chunk reproduces the
    whole-trace result exactly — the streaming-encoder analogue of
    :class:`repro.features.stack_distance.StackDistanceStream`.
    """

    __slots__ = ("alpha", "_p_global", "_h_global", "_p_local")

    def __init__(self, alpha: float = DEFAULT_ALPHA):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._p_global = 0.5
        self._h_global = 1.0
        self._p_local: dict[int, float] = {}

    def push(
        self, opid: np.ndarray, pc: np.ndarray, branch_taken: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(global, local) entropy columns for the next trace chunk."""
        n = len(opid)
        g_col = np.zeros(n, dtype=np.float32)
        l_col = np.zeros(n, dtype=np.float32)
        cond_list = OP_IS_COND[opid].tolist()
        takens = np.asarray(branch_taken).tolist()
        pcs = np.asarray(pc).tolist()
        alpha = self.alpha
        p_global = self._p_global
        h_global = self._h_global
        p_local = self._p_local
        for i in range(n):
            if cond_list[i]:
                pc_i = pcs[i]
                pl = p_local.get(pc_i, 0.5)
                g_col[i] = h_global
                l_col[i] = _entropy(pl)
                taken = 1.0 if takens[i] == 1 else 0.0
                p_global += alpha * (taken - p_global)
                h_global = _entropy(p_global)
                p_local[pc_i] = pl + alpha * (taken - pl)
            else:
                g_col[i] = h_global
                # l_col stays 0: not a branch
        self._p_global = p_global
        self._h_global = h_global
        return g_col, l_col


def branch_entropies(
    trace: Trace, alpha: float = DEFAULT_ALPHA
) -> tuple[np.ndarray, np.ndarray]:
    """Per-instruction (global, local) branch entropy, float32 in [0, 1].

    Non-branch instructions carry the entropy of the global stream as seen
    so far for the global column and 0 for the local column — matching the
    intuition that the features describe "the branch context this
    instruction executes in" (global) and "this branch's own history"
    (local).
    """
    return BranchEntropyStream(alpha).push(
        trace.opid, trace.pc, trace.branch_taken
    )
