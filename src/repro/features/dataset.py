"""Dataset assembly: features plus per-microarchitecture latency targets.

For each benchmark the trace is generated once, features are extracted once,
and the trace is timed on every sampled microarchitecture — the data-level
analogue of the paper's "instruction representation reuse" (Sec. IV-B): the
logical trace does not change with the microarchitecture, so one trace
serves all k target columns.

Simulation dominates every experiment's runtime and the (benchmark x
config) grid is embarrassingly parallel, so construction fans out through
:class:`repro.runtime.ParallelMap`: each feature-encoding or single-config
simulation is a pure top-level job function.  Parallel and serial builds
are interchangeable — results are assembled in deterministic order, so the
arrays and the cache files they produce are byte-identical either way.

Caching is two-level, both under ``cache_dir``:

* **merged** (``<bench>_n<N>_s<seed>_<digest>.npz``) — features + the full
  target matrix for one benchmark against one config list, keyed by a
  content hash of every microarchitecture description.  This is the
  long-lived cache consulted first.
* **shards** (``shards/<bench>_n<N>_s<seed>_<cfg-digest>.npz``) — one
  array per job, written by the worker that computed it.  Shards let an
  interrupted parallel build resume without re-simulating finished
  columns; they are folded into the merged entry and deleted as soon as
  every column of a benchmark lands.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass

import numpy as np

from repro.cache import dataset_cache_dir
from repro.features.encoder import NUM_FEATURES, encode_trace
from repro.frontends import DEFAULT_FRONTEND, get_frontend
from repro.runtime import ParallelMap, ProgressReporter
from repro.sim import CPUSimulator
from repro.uarch.config import MicroarchConfig

#: Default ``cache_dir`` sentinel: resolve ``REPRO_CACHE_DIR`` (or
#: ``.repro_cache/``) at call time via :mod:`repro.cache`.
DEFAULT_CACHE_DIR = "auto"


def _resolve_cache_dir(cache_dir: str | None) -> str | None:
    return dataset_cache_dir() if cache_dir == DEFAULT_CACHE_DIR else cache_dir


@dataclass(frozen=True)
class TraceDataset:
    """Features and per-config incremental-latency targets for a benchmark set."""

    features: np.ndarray  # float32 [N, 51]
    targets: np.ndarray  # float32 [N, k] incremental latencies (0.1 ns)
    segments: tuple[tuple[str, int, int], ...]  # (benchmark, start, end)
    config_names: tuple[str, ...]
    #: Which frontend generated the traces (``repro.frontends`` name).
    isa: str = DEFAULT_FRONTEND

    def __post_init__(self) -> None:
        if self.features.shape[0] != self.targets.shape[0]:
            raise ValueError("features/targets row mismatch")
        if self.features.shape[1] != NUM_FEATURES:
            raise ValueError(f"expected {NUM_FEATURES} features")
        if self.targets.shape[1] != len(self.config_names):
            raise ValueError("target columns must match config names")

    def __len__(self) -> int:
        return self.features.shape[0]

    @property
    def num_configs(self) -> int:
        return self.targets.shape[1]

    @property
    def benchmark_names(self) -> list[str]:
        return [name for name, _, _ in self.segments]

    def segment(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """(features, targets) views of one benchmark's rows."""
        for seg_name, start, end in self.segments:
            if seg_name == name:
                return self.features[start:end], self.targets[start:end]
        from repro.core.errors import UnknownBenchmarkError

        raise UnknownBenchmarkError(name, self.benchmark_names)

    def select_configs(self, indices) -> "TraceDataset":
        """Dataset restricted to a subset of microarchitecture columns."""
        indices = list(indices)
        return TraceDataset(
            features=self.features,
            targets=np.ascontiguousarray(self.targets[:, indices]),
            segments=self.segments,
            config_names=tuple(self.config_names[i] for i in indices),
            isa=self.isa,
        )

    def total_times(self) -> dict[str, np.ndarray]:
        """Per-benchmark true total execution time (0.1 ns ticks) per config."""
        return {
            name: self.targets[start:end].astype(np.float64).sum(axis=0)
            for name, start, end in self.segments
        }

    def fingerprint(self) -> str:
        """Content hash over every array and label (model-artifact keying).

        Two datasets with the same fingerprint are byte-identical, so a
        model trained on one is exactly reusable on the other — this is
        what :class:`repro.models.store.ModelStore` records and checks.
        """
        h = hashlib.sha256()
        h.update(np.ascontiguousarray(self.features).tobytes())
        h.update(np.ascontiguousarray(self.targets).tobytes())
        h.update(repr(self.segments).encode())
        h.update(repr(self.config_names).encode())
        if self.isa != DEFAULT_FRONTEND:
            # conditional so every pre-frontend fingerprint stays stable
            h.update(self.isa.encode())
        return h.hexdigest()[:16]


def _config_digest(configs: list[MicroarchConfig]) -> str:
    text = "\n".join(repr(c) for c in configs)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def _safe_name(name: str, isa: str) -> str:
    """Cache-file stem; non-default frontends get a distinguishing prefix
    (conditional so every pre-frontend cache file keeps its path)."""
    safe = name.replace(".", "_")
    if isa != DEFAULT_FRONTEND:
        safe = f"{isa.replace('-', '_')}__{safe}"
    return safe


def _cache_path(
    cache_dir: str, name: str, n: int, seed: int | None, digest: str,
    isa: str = DEFAULT_FRONTEND,
) -> str:
    return os.path.join(
        cache_dir, f"{_safe_name(name, isa)}_n{n}_s{seed}_{digest}.npz"
    )


def _shard_path(
    cache_dir: str, name: str, n: int, seed: int | None, config_digest: str,
    isa: str = DEFAULT_FRONTEND,
) -> str:
    return os.path.join(
        cache_dir, "shards",
        f"{_safe_name(name, isa)}_n{n}_s{seed}_{config_digest}.npz",
    )


def _atomic_savez(path: str, **arrays: np.ndarray) -> None:
    """Write an npz atomically so concurrent builders never see partial files."""
    os.makedirs(os.path.dirname(path), exist_ok=True)
    tmp = f"{path}.{os.getpid()}.tmp.npz"
    np.savez_compressed(tmp, **arrays)
    os.replace(tmp, path)


@dataclass(frozen=True)
class _SimJob:
    """One pool work item: encode features or simulate one config.

    ``config is None`` means "encode the trace's features"; otherwise the
    job times the trace on that single microarchitecture.  Jobs are pure
    (trace regenerated from the benchmark name) and picklable, so they can
    run in any worker process.
    """

    benchmark: str
    config: MicroarchConfig | None
    max_instructions: int
    seed: int | None
    shard_path: str | None
    isa: str = DEFAULT_FRONTEND

    @property
    def label(self) -> str:
        what = "features" if self.config is None else f"@ {self.config.name}"
        return f"sim {self.benchmark} {what}"


def _run_sim_job(job: _SimJob) -> np.ndarray:
    """Execute one job (worker side), persisting its shard when enabled.

    Frontend ``trace`` calls memoize per process, so consecutive jobs for
    one benchmark in the same worker share the trace.
    """
    trace = get_frontend(job.isa).trace(
        job.benchmark, job.max_instructions, seed=job.seed
    )
    if job.config is None:
        data = encode_trace(trace)
    else:
        data = CPUSimulator(job.config).run(trace).incremental_latencies
    if job.shard_path:
        _atomic_savez(job.shard_path, data=data)
    return data


def _benchmark_jobs(
    name: str,
    configs: list[MicroarchConfig],
    max_instructions: int,
    seed: int | None,
    cache_dir: str | None,
    isa: str = DEFAULT_FRONTEND,
) -> list[_SimJob]:
    """The features job plus one simulation job per config, in column order."""
    jobs = []
    for config in [None, *configs]:
        shard = None
        if cache_dir:
            tag = (
                "features"
                if config is None
                else hashlib.sha256(repr(config).encode()).hexdigest()[:16]
            )
            shard = _shard_path(cache_dir, name, max_instructions, seed, tag, isa)
        jobs.append(
            _SimJob(
                benchmark=name,
                config=config,
                max_instructions=max_instructions,
                seed=seed,
                shard_path=shard,
                isa=isa,
            )
        )
    return jobs


def _assemble_benchmark(
    outputs: list[np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Merge one benchmark's job outputs into (features, targets)."""
    features = outputs[0]
    targets = np.empty((len(features), len(outputs) - 1), dtype=np.float32)
    for j, column in enumerate(outputs[1:]):
        targets[:, j] = column
    return features, targets


def _build_many(
    benchmarks: list[str],
    configs: list[MicroarchConfig],
    max_instructions: int,
    seed: int | None,
    cache_dir: str | None,
    jobs: int | None,
    progress: ProgressReporter | None,
    isa: str,
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """(features, targets) per benchmark, fanning cache misses out as jobs."""
    digest = _config_digest(configs)
    arrays: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    pending: dict[str, list[_SimJob]] = {}
    for name in dict.fromkeys(benchmarks):
        if cache_dir:
            path = _cache_path(
                cache_dir, name, max_instructions, seed, digest, isa
            )
            if os.path.exists(path):
                with np.load(path) as data:
                    arrays[name] = (data["features"], data["targets"])
                continue
        pending[name] = _benchmark_jobs(
            name, configs, max_instructions, seed, cache_dir, isa
        )

    if pending:
        flat = [job for jobs_ in pending.values() for job in jobs_]
        # Shards from an interrupted earlier build short-circuit their jobs.
        done: dict[_SimJob, np.ndarray] = {}
        todo = []
        for job in flat:
            if job.shard_path and os.path.exists(job.shard_path):
                try:
                    with np.load(job.shard_path) as data:
                        done[job] = data["data"]
                    continue
                except OSError:
                    pass  # concurrent builder merged + removed it: recompute
            todo.append(job)
        if progress is not None:
            progress.total = len(todo)  # cache/shard hits are not jobs
        pool = ParallelMap(jobs=jobs, progress=progress)
        for job, output in zip(
            todo, pool.map(_run_sim_job, todo, labels=[j.label for j in todo])
        ):
            done[job] = output
        for name, bench_jobs in pending.items():
            features, targets = _assemble_benchmark(
                [done[j] for j in bench_jobs]
            )
            if cache_dir:
                path = _cache_path(
                    cache_dir, name, max_instructions, seed, digest, isa
                )
                _atomic_savez(path, features=features, targets=targets)
                # Shards only go once the merged entry is durable, so a
                # crash in between never loses resume state.
                for job in bench_jobs:
                    try:
                        os.remove(job.shard_path)
                    except OSError:
                        pass
            arrays[name] = (features, targets)
        if cache_dir:
            try:  # drop the shard dir once every shard has been folded in
                os.rmdir(os.path.join(cache_dir, "shards"))
            except OSError:
                pass
    return arrays


def build_benchmark_arrays(
    name: str,
    configs: list[MicroarchConfig],
    max_instructions: int,
    seed: int | None = None,
    cache_dir: str | None = DEFAULT_CACHE_DIR,
    jobs: int | None = 1,
    progress: ProgressReporter | None = None,
    isa: str = DEFAULT_FRONTEND,
) -> tuple[np.ndarray, np.ndarray]:
    """(features, targets) for one benchmark, via the on-disk cache."""
    return _build_many(
        [name], configs, max_instructions, seed, _resolve_cache_dir(cache_dir),
        jobs, progress, isa,
    )[name]


def build_dataset(
    benchmarks: list[str],
    configs: list[MicroarchConfig],
    max_instructions: int,
    seed: int | None = None,
    cache_dir: str | None = DEFAULT_CACHE_DIR,
    jobs: int | None = 1,
    progress: ProgressReporter | None = None,
    isa: str = DEFAULT_FRONTEND,
) -> TraceDataset:
    """Assemble the full dataset over ``benchmarks`` x ``configs``.

    ``jobs`` fans the per-(benchmark, config) simulations out across
    processes (``None``/``0`` = all cores, ``1`` = serial in-process);
    the resulting dataset and cache files are identical for any value.
    ``isa`` selects the trace frontend (:mod:`repro.frontends`) and is
    recorded on the dataset, in its fingerprint and in every cache key.
    """
    if not benchmarks:
        raise ValueError("no benchmarks given")
    if not configs:
        raise ValueError("no configs given")
    names = [c.name for c in configs]
    if len(set(names)) != len(names):
        raise ValueError("config names must be unique")
    arrays = _build_many(
        list(benchmarks), configs, max_instructions, seed,
        _resolve_cache_dir(cache_dir), jobs, progress, isa,
    )
    feature_blocks = []
    target_blocks = []
    segments = []
    cursor = 0
    for name in benchmarks:
        features, targets = arrays[name]
        feature_blocks.append(features)
        target_blocks.append(targets)
        segments.append((name, cursor, cursor + len(features)))
        cursor += len(features)
    return TraceDataset(
        features=np.concatenate(feature_blocks, axis=0),
        targets=np.concatenate(target_blocks, axis=0),
        segments=tuple(segments),
        config_names=tuple(names),
        isa=isa,
    )
