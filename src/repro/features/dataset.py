"""Dataset assembly: features plus per-microarchitecture latency targets.

For each benchmark the trace is generated once, features are extracted once,
and the trace is timed on every sampled microarchitecture — the data-level
analogue of the paper's "instruction representation reuse" (Sec. IV-B): the
logical trace does not change with the microarchitecture, so one trace
serves all k target columns.

Built datasets are cached on disk (npz) keyed by a hash of the benchmark,
instruction budget, seed and the full microarchitecture descriptions, since
simulation is by far the most expensive step of every experiment.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass

import numpy as np

from repro.features.encoder import NUM_FEATURES, encode_trace
from repro.sim import CPUSimulator
from repro.uarch.config import MicroarchConfig
from repro.workloads import get_trace

#: Default on-disk cache location (created lazily).
DEFAULT_CACHE_DIR = os.path.join(".repro_cache", "datasets")


@dataclass(frozen=True)
class TraceDataset:
    """Features and per-config incremental-latency targets for a benchmark set."""

    features: np.ndarray  # float32 [N, 51]
    targets: np.ndarray  # float32 [N, k] incremental latencies (0.1 ns)
    segments: tuple[tuple[str, int, int], ...]  # (benchmark, start, end)
    config_names: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.features.shape[0] != self.targets.shape[0]:
            raise ValueError("features/targets row mismatch")
        if self.features.shape[1] != NUM_FEATURES:
            raise ValueError(f"expected {NUM_FEATURES} features")
        if self.targets.shape[1] != len(self.config_names):
            raise ValueError("target columns must match config names")

    def __len__(self) -> int:
        return self.features.shape[0]

    @property
    def num_configs(self) -> int:
        return self.targets.shape[1]

    @property
    def benchmark_names(self) -> list[str]:
        return [name for name, _, _ in self.segments]

    def segment(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """(features, targets) views of one benchmark's rows."""
        for seg_name, start, end in self.segments:
            if seg_name == name:
                return self.features[start:end], self.targets[start:end]
        raise KeyError(f"benchmark {name!r} not in dataset")

    def select_configs(self, indices) -> "TraceDataset":
        """Dataset restricted to a subset of microarchitecture columns."""
        indices = list(indices)
        return TraceDataset(
            features=self.features,
            targets=np.ascontiguousarray(self.targets[:, indices]),
            segments=self.segments,
            config_names=tuple(self.config_names[i] for i in indices),
        )

    def total_times(self) -> dict[str, np.ndarray]:
        """Per-benchmark true total execution time (0.1 ns ticks) per config."""
        return {
            name: self.targets[start:end].astype(np.float64).sum(axis=0)
            for name, start, end in self.segments
        }


def _config_digest(configs: list[MicroarchConfig]) -> str:
    text = "\n".join(repr(c) for c in configs)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def _cache_path(
    cache_dir: str, name: str, n: int, seed: int | None, digest: str
) -> str:
    safe = name.replace(".", "_")
    return os.path.join(cache_dir, f"{safe}_n{n}_s{seed}_{digest}.npz")


def build_benchmark_arrays(
    name: str,
    configs: list[MicroarchConfig],
    max_instructions: int,
    seed: int | None = None,
    cache_dir: str | None = DEFAULT_CACHE_DIR,
) -> tuple[np.ndarray, np.ndarray]:
    """(features, targets) for one benchmark, via the on-disk cache."""
    digest = _config_digest(configs)
    path = None
    if cache_dir:
        path = _cache_path(cache_dir, name, max_instructions, seed, digest)
        if os.path.exists(path):
            with np.load(path) as data:
                return data["features"], data["targets"]
    trace = get_trace(name, max_instructions, seed=seed)
    features = encode_trace(trace)
    targets = np.empty((len(trace), len(configs)), dtype=np.float32)
    for j, config in enumerate(configs):
        targets[:, j] = CPUSimulator(config).run(trace).incremental_latencies
    if path:
        os.makedirs(cache_dir, exist_ok=True)
        np.savez_compressed(path, features=features, targets=targets)
    return features, targets


def build_dataset(
    benchmarks: list[str],
    configs: list[MicroarchConfig],
    max_instructions: int,
    seed: int | None = None,
    cache_dir: str | None = DEFAULT_CACHE_DIR,
) -> TraceDataset:
    """Assemble the full dataset over ``benchmarks`` x ``configs``."""
    if not benchmarks:
        raise ValueError("no benchmarks given")
    if not configs:
        raise ValueError("no configs given")
    names = [c.name for c in configs]
    if len(set(names)) != len(names):
        raise ValueError("config names must be unique")
    feature_blocks = []
    target_blocks = []
    segments = []
    cursor = 0
    for name in benchmarks:
        features, targets = build_benchmark_arrays(
            name, configs, max_instructions, seed=seed, cache_dir=cache_dir
        )
        feature_blocks.append(features)
        target_blocks.append(targets)
        segments.append((name, cursor, cursor + len(features)))
        cursor += len(features)
    return TraceDataset(
        features=np.concatenate(feature_blocks, axis=0),
        targets=np.concatenate(target_blocks, axis=0),
        segments=tuple(segments),
        config_names=tuple(names),
    )
