"""The 51-feature instruction encoder (paper Table I).

Feature layout (all float32, roughly normalized to [0, 1]):

====================  =====  ==================================================
group                 count  contents
====================  =====  ==================================================
operation             15     12 op-group one-hots + is_direct_branch +
                             is_indirect_branch + is_memory_barrier
register slots        28     (index, category) for 8 source slots and
                             6 destination slots
execution behaviour   2      fault, branch taken
memory                4      log-scaled stack distance w.r.t. instruction
                             fetch lines, all data lines, load lines, store
                             lines
branch predictability 2      global branch entropy, local branch entropy
====================  =====  ==================================================
"""

from __future__ import annotations

import numpy as np

from repro.features.branch_entropy import BranchEntropyStream
from repro.features.stack_distance import (
    MaskedStackDistanceStream,
    StackDistanceStream,
)
from repro.isa.opcodes import NUM_OPCODES, OPCODE_BY_ID, OpClass
from repro.isa.registers import NUM_REGS, RegCategory, reg_category
from repro.vm.trace import OP_IS_LOAD, OP_IS_MEM, OP_IS_STORE, Trace

#: Number of features per instruction (Table I).
NUM_FEATURES = 51

#: Operation one-hot groups (12).
_OP_GROUPS = [
    "int_alu", "int_mul", "int_div", "fp_add", "fp_mul", "fp_div",
    "load", "store", "cond_branch", "uncond_direct", "indirect", "other",
]

#: Cache-line granularity used for stack-distance keys, in address bits.
LINE_BITS = 6

#: log2 scale cap for stack distances (2^24 distinct lines ~ any cache).
_SD_LOG_CAP = 24.0


def _group_of(spec) -> int:
    oc = spec.opclass
    if oc is OpClass.BRANCH:
        return _OP_GROUPS.index("cond_branch")
    if oc in (OpClass.JUMP, OpClass.CALL):
        return _OP_GROUPS.index("uncond_direct")
    if oc is OpClass.JUMP_IND:
        return _OP_GROUPS.index("indirect")
    if oc is OpClass.LOAD:
        return _OP_GROUPS.index("load")
    if oc is OpClass.STORE:
        return _OP_GROUPS.index("store")
    if oc.value <= OpClass.FP_DIV.value:
        return oc.value  # the six compute classes share enum order
    return _OP_GROUPS.index("other")


def _build_op_table() -> np.ndarray:
    table = np.zeros((NUM_OPCODES, 15), dtype=np.float32)
    for opid, spec in enumerate(OPCODE_BY_ID):
        table[opid, _group_of(spec)] = 1.0
        if spec.is_branch and spec.is_direct:
            table[opid, 12] = 1.0
        if spec.is_indirect:
            table[opid, 13] = 1.0
        if spec.opclass is OpClass.BARRIER:
            table[opid, 14] = 1.0
    return table


_OP_TABLE = _build_op_table()

#: Register-category lookup padded so REG_NONE (-1) maps to slot 0.
_CAT_TABLE = np.array(
    [RegCategory.NONE] + [reg_category(r) for r in range(NUM_REGS)],
    dtype=np.float32,
) / float(max(RegCategory))

_MAX_CAT = float(max(RegCategory))


def _feature_names() -> list[str]:
    names = [f"op_{g}" for g in _OP_GROUPS]
    names += ["op_direct_branch", "op_indirect_branch", "op_mem_barrier"]
    for s in range(8):
        names += [f"src{s}_idx", f"src{s}_cat"]
    for d in range(6):
        names += [f"dst{d}_idx", f"dst{d}_cat"]
    names += ["fault", "branch_taken"]
    names += ["sd_ifetch", "sd_data", "sd_load", "sd_store"]
    names += ["entropy_global", "entropy_local"]
    assert len(names) == NUM_FEATURES
    return names


FEATURE_NAMES: list[str] = _feature_names()


class FeatureGroups:
    """Column index ranges of each Table I group (used by ablations)."""

    operation = slice(0, 15)
    registers = slice(15, 43)
    behaviour = slice(43, 45)
    memory = slice(45, 49)
    branch = slice(49, 51)


def _log_scale_distances(dist: np.ndarray) -> np.ndarray:
    """Map raw distances to [0, 1]: n/a -> 0, cold -> 1, else log2 scale."""
    out = np.zeros(len(dist), dtype=np.float32)
    cold = dist == -1
    valid = dist >= 0
    out[valid] = np.log2(1.0 + dist[valid].astype(np.float64)) / _SD_LOG_CAP
    np.clip(out, 0.0, 1.0, out=out)
    out[cold] = 1.0
    return out


class StreamingTraceEncoder:
    """Encode a trace chunk-by-chunk through bounded memory.

    The per-row features (operation, registers, behaviour) are stateless;
    the history-dependent ones (stack distances, branch entropies) carry
    resumable stream state across chunks, so encoding a trace in any chunk
    partition produces byte-identical features to a whole-trace pass —
    :func:`encode_trace` itself is the single-chunk special case.
    """

    def __init__(self) -> None:
        self._ifetch = StackDistanceStream()
        self._data = MaskedStackDistanceStream()
        self._loads = MaskedStackDistanceStream()
        self._stores = MaskedStackDistanceStream()
        self._entropy = BranchEntropyStream()

    def encode_chunk(self, trace: Trace, start: int, end: int) -> np.ndarray:
        """Features for trace rows ``[start, end)``; chunks must be fed in
        order and without gaps."""
        opid = trace.opid[start:end]
        n = len(opid)
        feats = np.zeros((n, NUM_FEATURES), dtype=np.float32)

        # operation features (vectorized table lookup)
        feats[:, 0:15] = _OP_TABLE[opid]

        # register slots: index scaled by register count, category by max
        src = trace.src_slots[start:end].astype(np.int64)
        dst = trace.dst_slots[start:end].astype(np.int64)
        feats[:, 15:31:2] = (src + 1).astype(np.float32) / float(NUM_REGS)
        feats[:, 16:31:2] = _CAT_TABLE[src + 1]
        feats[:, 31:43:2] = (dst + 1).astype(np.float32) / float(NUM_REGS)
        feats[:, 32:43:2] = _CAT_TABLE[dst + 1]

        # execution behaviour
        taken = trace.branch_taken[start:end]
        feats[:, 43] = trace.fault[start:end].astype(np.float32)
        feats[:, 44] = (taken == 1).astype(np.float32)

        # memory: stack distances at line granularity
        ifetch_lines = trace.pc[start:end] >> LINE_BITS
        feats[:, 45] = _log_scale_distances(self._ifetch.push(ifetch_lines))
        data_lines = trace.mem_addr[start:end] >> LINE_BITS
        feats[:, 46] = _log_scale_distances(
            self._data.push(data_lines, OP_IS_MEM[opid])
        )
        feats[:, 47] = _log_scale_distances(
            self._loads.push(data_lines, OP_IS_LOAD[opid])
        )
        feats[:, 48] = _log_scale_distances(
            self._stores.push(data_lines, OP_IS_STORE[opid])
        )

        # branch predictability
        g_col, l_col = self._entropy.push(opid, trace.pc[start:end], taken)
        feats[:, 49] = g_col
        feats[:, 50] = l_col
        return feats


def iter_encoded_chunks(trace: Trace, chunk_rows: int = 8192):
    """Yield the ``[n, 51]`` feature matrix in ``chunk_rows``-row pieces.

    Concatenating the chunks equals :func:`encode_trace` byte-for-byte;
    peak memory is one chunk plus the O(distinct keys) stream state.
    """
    if chunk_rows < 1:
        raise ValueError("chunk_rows must be positive")
    encoder = StreamingTraceEncoder()
    for start in range(0, len(trace), chunk_rows):
        yield encoder.encode_chunk(
            trace, start, min(start + chunk_rows, len(trace))
        )


def encode_trace(trace: Trace) -> np.ndarray:
    """Encode a trace into the ``[n, 51]`` float32 feature matrix."""
    return StreamingTraceEncoder().encode_chunk(trace, 0, len(trace))
