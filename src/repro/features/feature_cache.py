"""Content-addressed cache of encoded feature streams (the serving path).

``Session.predict`` / the serving layer need a benchmark's ``[n, 51]``
feature matrix on every request; traces are deterministic functions of
``(benchmark, max_instructions, seed)``, so the encoded features are too.
This module memoizes them on disk under the :mod:`repro.cache` root
(``<root>/features/``), keyed by those inputs plus an encoder version —
bumping :data:`ENCODER_VERSION` invalidates every cached stream when the
Table I encoding changes.

Encoding streams through :func:`repro.features.encoder.iter_encoded_chunks`
so long traces never hold more than one chunk of intermediate state, and
files are written atomically (:func:`repro.ml.serialize.save_arrays`), so
concurrent servers can share one cache directory.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import zipfile

import numpy as np

from repro.cache import cache_root
from repro.features.encoder import NUM_FEATURES, iter_encoded_chunks
from repro.frontends import DEFAULT_FRONTEND
from repro.obs.metrics import REGISTRY

log = logging.getLogger(__name__)


def _count(outcome: str) -> None:
    REGISTRY.counter(
        "repro_feature_cache_total",
        "On-disk feature cache lookups by outcome.",
        outcome=outcome,
    ).inc()

#: Bump when the Table I encoding changes incompatibly.
ENCODER_VERSION = 1

#: Rows encoded (and held in memory) per streaming chunk.
DEFAULT_CHUNK_ROWS = 8192

#: Default ``cache_dir`` sentinel: resolve the :mod:`repro.cache` root at
#: call time (pass ``None`` to disable the on-disk cache).
DEFAULT_CACHE_DIR = "auto"


def feature_cache_dir(root: str | None = None) -> str:
    """Where encoded feature streams are cached."""
    return os.path.join(cache_root(root), "features")


def feature_key(
    benchmark: str,
    max_instructions: int,
    seed: int | None,
    isa: str = DEFAULT_FRONTEND,
) -> str:
    """Content address of one encoded stream (inputs + encoder version)."""
    identity = {
        "benchmark": benchmark,
        "max_instructions": max_instructions,
        "seed": seed,
        "num_features": NUM_FEATURES,
        "encoder_version": ENCODER_VERSION,
    }
    if isa != DEFAULT_FRONTEND:
        # conditional so every pre-frontend cache key stays stable
        identity["isa"] = isa
    return hashlib.sha256(
        json.dumps(identity, sort_keys=True).encode()
    ).hexdigest()[:16]


def _cache_path(
    cache_dir: str,
    benchmark: str,
    max_instructions: int,
    seed: int | None,
    isa: str,
) -> str:
    safe = benchmark.replace(".", "_")
    key = feature_key(benchmark, max_instructions, seed, isa)
    return os.path.join(cache_dir, f"{safe}_{key}.npz")


def encoded_features(
    benchmark: str,
    max_instructions: int,
    seed: int | None = None,
    cache_dir: str | None = DEFAULT_CACHE_DIR,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    isa: str = DEFAULT_FRONTEND,
) -> np.ndarray:
    """The benchmark's encoded ``[n, 51]`` features, via the on-disk cache."""
    from repro.frontends import get_frontend
    from repro.ml.serialize import save_arrays

    if cache_dir == DEFAULT_CACHE_DIR:
        cache_dir = feature_cache_dir()
    path = None
    if cache_dir:
        path = _cache_path(cache_dir, benchmark, max_instructions, seed, isa)
        if os.path.exists(path):
            # a torn write or bit rot must not take prediction down:
            # count + log the corruption, fall through, and recompute
            # (the rewrite below repairs the cache entry)
            try:
                with np.load(path) as data:
                    features = data["features"]
            except (OSError, ValueError, KeyError,
                    zipfile.BadZipFile) as exc:
                _count("corrupt")
                log.warning(
                    "corrupt feature cache entry %s (%s): recomputing",
                    path, exc,
                )
            else:
                _count("hit")
                return features
        else:
            _count("miss")
    trace = get_frontend(isa).trace(benchmark, max_instructions, seed=seed)
    # fill a preallocated matrix chunk-by-chunk: peak transient memory is
    # one chunk, not a second copy of the whole stream
    features = np.empty((len(trace), NUM_FEATURES), dtype=np.float32)
    row = 0
    for chunk in iter_encoded_chunks(trace, chunk_rows=chunk_rows):
        features[row : row + len(chunk)] = chunk
        row += len(chunk)
    if path:
        save_arrays(path, {"features": features})
    return features
