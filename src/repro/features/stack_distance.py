"""Reuse (stack) distance computation.

The stack distance of an access is "the number of unique memory accesses
between the current and last accesses to the same address" (paper Sec.
III-C, citing Ding & Zhong).  Accesses with longer stack distances are more
likely to miss in caches of any size — which is exactly why the feature is
microarchitecture-independent.

The classic O(n log n) algorithm: a Fenwick tree marks the positions that
are the *most recent* occurrence of their key; the distance of an access is
the number of marks strictly between the previous occurrence and now.
"""

from __future__ import annotations

import numpy as np

#: Distance reported for cold (first) accesses.
COLD = -1


class _Fenwick:
    """Fenwick/BIT over fixed positions with +/-1 updates."""

    __slots__ = ("size", "tree")

    def __init__(self, size: int):
        self.size = size
        self.tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        tree = self.tree
        i = index + 1
        size = self.size
        while i <= size:
            tree[i] += delta
            i += i & -i

    def prefix(self, index: int) -> int:
        """Sum of marks at positions [0, index]."""
        tree = self.tree
        i = index + 1
        total = 0
        while i > 0:
            total += tree[i]
            i -= i & -i
        return total


class StackDistanceStream:
    """Resumable stack-distance computation over appended key chunks.

    Feeding one long key sequence through successive :meth:`push` calls
    yields exactly the distances of a single whole-sequence pass — the
    Fenwick tree and the last-occurrence map carry across chunks (the tree
    doubles its capacity, re-marking the live positions, when a chunk runs
    past it).  This is what lets :mod:`repro.features.encoder` stream long
    traces through bounded memory.
    """

    __slots__ = ("_fen", "_last", "_pos")

    def __init__(self, capacity: int = 1024):
        self._fen = _Fenwick(max(capacity, 1))
        self._last: dict[int, int] = {}
        self._pos = 0

    def _grow(self, minimum: int) -> None:
        size = self._fen.size
        while size < minimum:
            size *= 2
        fen = _Fenwick(size)
        for pos in self._last.values():  # only most-recent positions are marked
            fen.add(pos, 1)
        self._fen = fen

    def push(self, keys) -> np.ndarray:
        """Distances for the next chunk of accesses (``COLD`` = first)."""
        keys = np.asarray(keys)
        n = len(keys)
        out = np.empty(n, dtype=np.int64)
        if n == 0:
            return out
        base = self._pos
        if base + n > self._fen.size:
            self._grow(base + n)
        fen = self._fen
        add = fen.add
        prefix = fen.prefix
        last = self._last
        for off, k in enumerate(keys.tolist()):
            i = base + off
            j = last.get(k)
            if j is None:
                out[off] = COLD
            else:
                # marks strictly between j and i (positions j+1 .. i-1)
                out[off] = prefix(i - 1) - prefix(j)
                add(j, -1)
            add(i, 1)
            last[k] = i
        self._pos = base + n
        return out


class MaskedStackDistanceStream:
    """Stack distances over a masked subsequence, streamed in chunks.

    Selected positions get ``COLD`` semantics, unselected ones ``-2``
    ("not applicable") — the load-only and store-only distance columns of
    Table I, resumable across trace chunks.
    """

    __slots__ = ("_inner",)

    def __init__(self):
        self._inner = StackDistanceStream()

    def push(self, keys, mask) -> np.ndarray:
        keys = np.asarray(keys)
        mask = np.asarray(mask, dtype=bool)
        if keys.shape != mask.shape:
            raise ValueError("keys and mask must have equal length")
        out = np.full(len(keys), -2, dtype=np.int64)
        idx = np.flatnonzero(mask)
        if len(idx):
            out[idx] = self._inner.push(keys[idx])
        return out


def stack_distances(keys) -> np.ndarray:
    """Per-access stack distance of ``keys`` (any hashable ints).

    Returns an int64 array: ``COLD`` (-1) for first accesses, otherwise the
    number of distinct keys touched strictly between this access and the
    previous access to the same key (0 for back-to-back reuse).
    """
    keys = np.asarray(keys)
    return StackDistanceStream(capacity=len(keys)).push(keys)


def stack_distances_where(keys, mask) -> np.ndarray:
    """Stack distances over the subsequence selected by ``mask``.

    Returns a full-length int64 array with ``COLD`` semantics on selected
    positions and ``-2`` ("not applicable") elsewhere.
    """
    return MaskedStackDistanceStream().push(keys, mask)
