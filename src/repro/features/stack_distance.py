"""Reuse (stack) distance computation.

The stack distance of an access is "the number of unique memory accesses
between the current and last accesses to the same address" (paper Sec.
III-C, citing Ding & Zhong).  Accesses with longer stack distances are more
likely to miss in caches of any size — which is exactly why the feature is
microarchitecture-independent.

The classic O(n log n) algorithm: a Fenwick tree marks the positions that
are the *most recent* occurrence of their key; the distance of an access is
the number of marks strictly between the previous occurrence and now.
"""

from __future__ import annotations

import numpy as np

#: Distance reported for cold (first) accesses.
COLD = -1


class _Fenwick:
    """Fenwick/BIT over fixed positions with +/-1 updates."""

    __slots__ = ("size", "tree")

    def __init__(self, size: int):
        self.size = size
        self.tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        tree = self.tree
        i = index + 1
        size = self.size
        while i <= size:
            tree[i] += delta
            i += i & -i

    def prefix(self, index: int) -> int:
        """Sum of marks at positions [0, index]."""
        tree = self.tree
        i = index + 1
        total = 0
        while i > 0:
            total += tree[i]
            i -= i & -i
        return total


def stack_distances(keys) -> np.ndarray:
    """Per-access stack distance of ``keys`` (any hashable ints).

    Returns an int64 array: ``COLD`` (-1) for first accesses, otherwise the
    number of distinct keys touched strictly between this access and the
    previous access to the same key (0 for back-to-back reuse).
    """
    keys = np.asarray(keys)
    n = len(keys)
    out = np.empty(n, dtype=np.int64)
    if n == 0:
        return out
    fen = _Fenwick(n)
    add = fen.add
    prefix = fen.prefix
    last: dict[int, int] = {}
    key_list = keys.tolist()
    for i, k in enumerate(key_list):
        j = last.get(k)
        if j is None:
            out[i] = COLD
        else:
            # marks strictly between j and i (positions j+1 .. i-1)
            out[i] = prefix(i - 1) - prefix(j)
            add(j, -1)
        add(i, 1)
        last[k] = i
    return out


def stack_distances_where(keys, mask) -> np.ndarray:
    """Stack distances over the subsequence selected by ``mask``.

    Returns a full-length int64 array with ``COLD`` semantics on selected
    positions and ``-2`` ("not applicable") elsewhere.  Used to compute the
    load-only and store-only distance columns of Table I.
    """
    keys = np.asarray(keys)
    mask = np.asarray(mask, dtype=bool)
    if keys.shape != mask.shape:
        raise ValueError("keys and mask must have equal length")
    out = np.full(len(keys), -2, dtype=np.int64)
    idx = np.flatnonzero(mask)
    if len(idx):
        out[idx] = stack_distances(keys[idx])
    return out
