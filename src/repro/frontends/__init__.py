"""Pluggable trace sources behind one registry.

>>> from repro.frontends import get_frontend, available_frontends
>>> get_frontend("rv").trace("rv.axpy", 2000)
>>> sorted(available_frontends())
['imported', 'mini-asm', 'rv']

Frontends register lazily (factories import their module on first use)
so ``import repro.frontends`` stays cheap and worker processes only pay
for the frontends they actually trace through.  Unknown names raise
:class:`~repro.core.errors.UnknownExperimentError` with close-match
suggestions, the same KeyError-compatible shape the pipeline uses for
specs and scales.
"""

from __future__ import annotations

from typing import Callable

from repro.frontends.base import Frontend

#: The frontend every existing call site implies when it says nothing.
DEFAULT_FRONTEND = "mini-asm"

_FACTORIES: dict[str, Callable[[], Frontend]] = {}
_INSTANCES: dict[str, Frontend] = {}


def register_frontend(name: str, factory: Callable[[], Frontend]) -> None:
    """Register a frontend factory under ``name`` (last wins)."""
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def frontend_names() -> tuple[str, ...]:
    """Every registered frontend name, sorted."""
    return tuple(sorted(_FACTORIES))


def get_frontend(name: str) -> Frontend:
    """The frontend registered under ``name`` (instantiated once).

    Raises :class:`UnknownExperimentError` (``kind="frontend"``) with
    difflib suggestions for unknown names — reused verbatim by
    ``repro trace import --isa`` and ``isa =`` keys in spec files.
    """
    instance = _INSTANCES.get(name)
    if instance is not None:
        return instance
    factory = _FACTORIES.get(name)
    if factory is None:
        # deferred: repro.core pulls in the feature stack, which itself
        # imports this module for DEFAULT_FRONTEND
        from repro.core.errors import UnknownExperimentError

        raise UnknownExperimentError(name, _FACTORIES, kind="frontend")
    instance = factory()
    _INSTANCES[name] = instance
    return instance


def available_frontends() -> dict[str, Frontend]:
    """name -> instantiated frontend, for every registered name."""
    return {name: get_frontend(name) for name in frontend_names()}


def _make_mini_asm() -> Frontend:
    from repro.frontends.mini_asm import MiniAsmFrontend

    return MiniAsmFrontend()


def _make_rv() -> Frontend:
    from repro.frontends.rv import RvFrontend

    return RvFrontend()


def _make_imported() -> Frontend:
    from repro.frontends.trace_import import ImportedFrontend

    return ImportedFrontend()


register_frontend("mini-asm", _make_mini_asm)
register_frontend("rv", _make_rv)
register_frontend("imported", _make_imported)

__all__ = [
    "DEFAULT_FRONTEND",
    "Frontend",
    "available_frontends",
    "frontend_names",
    "get_frontend",
    "register_frontend",
]
