"""The :class:`Frontend` protocol: one shape for every trace source.

A frontend is where dynamic instruction traces come from.  Everything
downstream of a :class:`~repro.vm.trace.Trace` — the timing simulator,
the Table I feature encoder, every model family — consumes the
*canonical* trace vocabulary (the mini-ASM opcode ids of
:mod:`repro.isa.opcodes` and the global register ids of
:mod:`repro.isa.registers`), so a frontend's single job is to produce
traces in that vocabulary:

* ``mini-asm`` — the in-repo VM and its 17-benchmark suite (the
  original, and the default everywhere);
* ``rv`` — the RISC-V-flavored ISA backend (:mod:`repro.frontends.rv`):
  its own assembler, encoder/decoder, interpreter and kernels, with
  opcodes and registers mapped onto the canonical vocabulary at trace
  time;
* ``imported`` — externally produced traces ingested by
  :mod:`repro.frontends.trace_import`.

Frontends with an *instruction vocabulary* (``has_vocabulary``)
additionally resolve textual opcode/register names for the trace
importer, so an external trace recorded against either ISA maps onto
the shared operation classes.
"""

from __future__ import annotations

import abc
from typing import ClassVar

from repro.vm.trace import Trace


class Frontend(abc.ABC):
    """One pluggable trace source (see module docstring)."""

    #: Registry key (``repro frontends list``).
    name: ClassVar[str] = ""
    #: One-line description for listings.
    description: ClassVar[str] = ""
    #: Whether :meth:`operation_id`/:meth:`register_id` resolve textual
    #: names (the trace importer needs a vocabulary to map against).
    has_vocabulary: ClassVar[bool] = True

    # -- workloads --------------------------------------------------------
    @abc.abstractmethod
    def benchmarks(self) -> tuple[str, ...]:
        """Every benchmark name this frontend can trace (sorted)."""

    def train_benchmarks(self) -> tuple[str, ...]:
        """The frontend's training split (the ``"train"`` alias)."""
        return self.benchmarks()

    def test_benchmarks(self) -> tuple[str, ...]:
        """The frontend's held-out split (the ``"test"`` alias)."""
        return self.benchmarks()

    @abc.abstractmethod
    def trace(
        self, benchmark: str, max_instructions: int, seed: int | None = None
    ) -> Trace:
        """The benchmark's dynamic trace in the canonical vocabulary.

        Deterministic in ``(benchmark, max_instructions, seed)`` —
        dataset and feature caches key on exactly those inputs plus the
        frontend name.
        """

    # -- vocabulary (trace importer) --------------------------------------
    def operation_id(self, mnemonic: str) -> int:
        """Canonical opcode id of ``mnemonic`` in this frontend's ISA.

        Raises ``KeyError`` for unknown mnemonics (the importer turns
        that into a line-located diagnostic).
        """
        raise NotImplementedError(
            f"frontend {self.name!r} has no instruction vocabulary"
        )

    def register_id(self, token: str) -> int:
        """Canonical global register id of ``token`` in this ISA.

        Raises ``ValueError`` for tokens that name no register.
        """
        raise NotImplementedError(
            f"frontend {self.name!r} has no register vocabulary"
        )
