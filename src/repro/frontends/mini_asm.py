"""The original trace source: the in-repo mini-ASM VM and its suite.

A thin adapter — the workload suite (:mod:`repro.workloads`) already
produces canonical traces and memoizes them per process, so this
frontend just re-exposes it behind the :class:`Frontend` shape.
"""

from __future__ import annotations

from repro.frontends.base import Frontend
from repro.vm.trace import Trace


class MiniAsmFrontend(Frontend):
    """The in-repo mini-ASM VM (:mod:`repro.isa` / :mod:`repro.vm`)."""

    name = "mini-asm"
    description = "in-repo mini-ASM VM, 17-benchmark SPEC-like suite"

    def benchmarks(self) -> tuple[str, ...]:
        from repro.workloads import ALL_BENCHMARKS

        return tuple(ALL_BENCHMARKS)

    def train_benchmarks(self) -> tuple[str, ...]:
        from repro.workloads import TRAIN_BENCHMARKS

        return tuple(TRAIN_BENCHMARKS)

    def test_benchmarks(self) -> tuple[str, ...]:
        from repro.workloads import TEST_BENCHMARKS

        return tuple(TEST_BENCHMARKS)

    def trace(
        self, benchmark: str, max_instructions: int, seed: int | None = None
    ) -> Trace:
        from repro.workloads import get_trace

        return get_trace(benchmark, max_instructions, seed=seed)

    def operation_id(self, mnemonic: str) -> int:
        from repro.isa.opcodes import opcode_id

        return opcode_id(mnemonic)

    def register_id(self, token: str) -> int:
        from repro.isa.registers import parse_reg

        return parse_reg(token)
