"""The RISC-V-flavored frontend: ISA, assembler, decoder, machine, kernels.

See :mod:`repro.frontends.rv.isa` for the subset definition and the
canonical opcode/register mapping that makes RV traces consumable by the
feature encoders and every model family unchanged.
"""

from __future__ import annotations

from repro.frontends.base import Frontend
from repro.vm.trace import Trace


class RvFrontend(Frontend):
    """RV32IM-ish ISA backend with its own assembler/decoder/interpreter."""

    name = "rv"
    description = "RISC-V-flavored RV32IM-ish backend, 6-kernel suite"

    def benchmarks(self) -> tuple[str, ...]:
        from repro.frontends.rv.kernels import ALL_BENCHMARKS

        return tuple(ALL_BENCHMARKS)

    def train_benchmarks(self) -> tuple[str, ...]:
        from repro.frontends.rv.kernels import TRAIN_BENCHMARKS

        return tuple(TRAIN_BENCHMARKS)

    def test_benchmarks(self) -> tuple[str, ...]:
        from repro.frontends.rv.kernels import TEST_BENCHMARKS

        return tuple(TEST_BENCHMARKS)

    def trace(
        self, benchmark: str, max_instructions: int, seed: int | None = None
    ) -> Trace:
        from repro.frontends.rv.kernels import get_trace

        return get_trace(benchmark, max_instructions, seed=seed)

    def operation_id(self, mnemonic: str) -> int:
        from repro.frontends.rv.isa import CANONICAL_OPID, jump_opid

        mnemonic = mnemonic.lower()
        if mnemonic in ("jal", "jalr"):
            # context-free fallback: jal links, jalr is an indirect jump
            return jump_opid(mnemonic, rd=1 if mnemonic == "jal" else 2, rs1=2)
        return CANONICAL_OPID[mnemonic]

    def register_id(self, token: str) -> int:
        from repro.frontends.rv.isa import CANONICAL_REG, parse_xreg

        return CANONICAL_REG[parse_xreg(token)]


__all__ = ["RvFrontend"]
