"""Two-pass text assembler for the RV32IM-ish subset.

Accepts standard-ish RISC-V assembly::

    # comments with '#' or ';'
    loop:
        lw   a1, 0(a0)
        addi a0, a0, 4
        add  s0, s0, a1
        bnez a2, loop
        ret

plus ``.data`` / ``.word`` directives for static data.  Pass 1 sizes
every statement (``li`` expands to one or two words depending on the
constant) and collects labels; pass 2 encodes 32-bit words via
:func:`repro.frontends.rv.isa.encode`.

Pseudo-instructions: ``li``, ``mv``, ``not``, ``neg``, ``j``, ``jr``,
``call``, ``ret``, ``nop``, ``beqz``, ``bnez``, ``blez``, ``bgez``,
``bltz``, ``bgtz``.

Errors raise :class:`RvAssemblyError` carrying the 1-based source line,
rendered as ``line N: message`` (the mini-ASM assembler idiom).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontends.rv.isa import (
    RV_OPCODES,
    RvEncodingError,
    RvOpSpec,
    encode,
    parse_xreg,
)

#: Base address of the first instruction (mirrors the mini-ASM layout so
#: encoded PC ranges land in the same feature buckets).
CODE_BASE = 0x1000
#: Base address of ``.data`` words.
DATA_BASE = 0x10_0000


class RvAssemblyError(ValueError):
    """Assembly failure at a specific source line."""

    def __init__(self, message: str, lineno: int | None = None):
        self.lineno = lineno
        if lineno is not None:
            message = f"line {lineno}: {message}"
        super().__init__(message)


@dataclass(frozen=True)
class RvInstruction:
    """One assembled instruction (word + decoded operand fields)."""

    mnemonic: str
    pc: int
    word: int
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    @property
    def spec(self) -> RvOpSpec:
        return RV_OPCODES[self.mnemonic]


@dataclass(frozen=True)
class RvProgram:
    """Assembled program: instructions, labels, and static data words."""

    instructions: tuple[RvInstruction, ...]
    labels: dict[str, int] = field(default_factory=dict)
    data: tuple[int, ...] = ()

    def words(self) -> tuple[int, ...]:
        """The raw 32-bit instruction words, in program order."""
        return tuple(inst.word for inst in self.instructions)


@dataclass
class _Stmt:
    lineno: int
    mnemonic: str
    operands: list[str]
    pc: int = 0
    size: int = 1  # words after pseudo expansion


def _strip(line: str) -> str:
    for marker in ("#", ";", "//"):
        idx = line.find(marker)
        if idx >= 0:
            line = line[:idx]
    return line.strip()


def _split_operands(rest: str) -> list[str]:
    rest = rest.strip()
    if not rest:
        return []
    return [part.strip() for part in rest.split(",")]


def _parse_int(token: str, lineno: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise RvAssemblyError(f"not an integer: {token!r}", lineno) from None


def _reg(token: str, lineno: int) -> int:
    try:
        return parse_xreg(token)
    except ValueError as exc:
        raise RvAssemblyError(str(exc), lineno) from None


def _mem_operand(token: str, lineno: int) -> tuple[int, int]:
    """``imm(rs1)`` -> (imm, rs1)."""
    open_idx = token.find("(")
    if open_idx < 0 or not token.endswith(")"):
        raise RvAssemblyError(
            f"expected memory operand imm(reg), got {token!r}", lineno
        )
    imm_text = token[:open_idx].strip() or "0"
    return _parse_int(imm_text, lineno), _reg(token[open_idx + 1 : -1], lineno)


_BRANCH_ZERO = {
    "beqz": "beq",
    "bnez": "bne",
    "bltz": "blt",
    "bgez": "bge",
}
_PSEUDOS = (
    set(_BRANCH_ZERO)
    | {"li", "mv", "not", "neg", "j", "jr", "call", "ret", "nop", "blez", "bgtz"}
)


def _li_size(value: int) -> int:
    return 1 if -2048 <= value <= 2047 else 2


def _expand(stmt: _Stmt) -> list[tuple[str, list[str]]]:
    """Pseudo -> list of (real mnemonic, operands). Non-pseudos pass through."""
    m, ops, ln = stmt.mnemonic, stmt.operands, stmt.lineno

    def need(n: int) -> None:
        if len(ops) != n:
            raise RvAssemblyError(f"{m} expects {n} operand(s), got {len(ops)}", ln)

    if m == "nop":
        need(0)
        return [("addi", ["x0", "x0", "0"])]
    if m == "mv":
        need(2)
        return [("addi", [ops[0], ops[1], "0"])]
    if m == "not":
        need(2)
        return [("xori", [ops[0], ops[1], "-1"])]
    if m == "neg":
        need(2)
        return [("sub", [ops[0], "x0", ops[1]])]
    if m == "li":
        need(2)
        value = _parse_int(ops[1], ln)
        if _li_size(value) == 1:
            return [("addi", [ops[0], "x0", str(value)])]
        upper = ((value + (1 << 11)) >> 12) & 0xFFFFF
        lower = ((value & 0xFFFFFFFF) - ((upper << 12) & 0xFFFFFFFF)) & 0xFFF
        if lower >= 2048:
            lower -= 4096
        return [("lui", [ops[0], str(upper)]), ("addi", [ops[0], ops[0], str(lower)])]
    if m == "j":
        need(1)
        return [("jal", ["x0", ops[0]])]
    if m == "jr":
        need(1)
        return [("jalr", ["x0", ops[0], "0"])]
    if m == "call":
        need(1)
        return [("jal", ["ra", ops[0]])]
    if m == "ret":
        need(0)
        return [("jalr", ["x0", "ra", "0"])]
    if m in _BRANCH_ZERO:
        need(2)
        return [(_BRANCH_ZERO[m], [ops[0], "x0", ops[1]])]
    if m == "blez":
        need(2)
        return [("bge", ["x0", ops[0], ops[1]])]
    if m == "bgtz":
        need(2)
        return [("blt", ["x0", ops[0], ops[1]])]
    return [(m, ops)]


def assemble(source: str) -> RvProgram:
    """Assemble RV text into an :class:`RvProgram`."""
    statements: list[_Stmt] = []
    labels: dict[str, int] = {}
    data_words: list[int] = []
    in_data = False

    # ---- pass 1: tokenize, size, place labels ----
    pc = CODE_BASE
    data_addr = DATA_BASE
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = _strip(raw)
        if not line:
            continue
        while True:
            colon = line.find(":")
            if colon < 0:
                break
            label = line[:colon].strip()
            if not label or not label.replace("_", "").replace(".", "").isalnum():
                raise RvAssemblyError(f"bad label {label!r}", lineno)
            if label in labels:
                raise RvAssemblyError(f"duplicate label {label!r}", lineno)
            labels[label] = data_addr if in_data else pc
            line = line[colon + 1 :].strip()
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        if mnemonic == ".data":
            in_data = True
            continue
        if mnemonic == ".text":
            in_data = False
            continue
        if mnemonic == ".word":
            if not in_data:
                raise RvAssemblyError(".word outside .data section", lineno)
            for token in _split_operands(rest):
                data_words.append(_parse_int(token, lineno) & 0xFFFFFFFF)
                data_addr += 4
            continue
        if in_data:
            raise RvAssemblyError(
                f"instruction {mnemonic!r} inside .data section", lineno
            )
        if mnemonic not in RV_OPCODES and mnemonic not in _PSEUDOS:
            raise RvAssemblyError(f"unknown mnemonic {mnemonic!r}", lineno)
        stmt = _Stmt(lineno, mnemonic, _split_operands(rest), pc=pc)
        if mnemonic == "li":
            if len(stmt.operands) != 2:
                raise RvAssemblyError("li expects 2 operands", lineno)
            stmt.size = _li_size(_parse_int(stmt.operands[1], lineno))
        statements.append(stmt)
        pc += 4 * stmt.size

    # ---- pass 2: expand + encode ----
    def resolve(token: str, lineno: int, pc: int, relative: bool) -> int:
        if token in labels:
            return labels[token] - pc if relative else labels[token]
        return _parse_int(token, lineno)

    instructions: list[RvInstruction] = []
    for stmt in statements:
        pc = stmt.pc
        for mnemonic, ops in _expand(stmt):
            spec = RV_OPCODES[mnemonic]
            ln = stmt.lineno
            rd = rs1 = rs2 = imm = 0
            try:
                if spec.fmt == "R":
                    if len(ops) != 3:
                        raise RvAssemblyError(f"{mnemonic} expects 3 operands", ln)
                    rd, rs1, rs2 = (_reg(t, ln) for t in ops)
                elif spec.fmt == "I" and mnemonic != "jalr":
                    if len(ops) != 3:
                        raise RvAssemblyError(f"{mnemonic} expects 3 operands", ln)
                    rd, rs1 = _reg(ops[0], ln), _reg(ops[1], ln)
                    imm = resolve(ops[2], ln, pc, relative=False)
                elif mnemonic == "jalr":
                    if len(ops) == 2:  # jalr rd, rs1
                        ops = [ops[0], ops[1], "0"]
                    if len(ops) != 3:
                        raise RvAssemblyError("jalr expects rd, rs1[, imm]", ln)
                    rd, rs1 = _reg(ops[0], ln), _reg(ops[1], ln)
                    imm = _parse_int(ops[2], ln)
                elif spec.fmt == "IL":
                    if len(ops) != 2:
                        raise RvAssemblyError(f"{mnemonic} expects rd, imm(rs1)", ln)
                    rd = _reg(ops[0], ln)
                    imm, rs1 = _mem_operand(ops[1], ln)
                elif spec.fmt == "S":
                    if len(ops) != 2:
                        raise RvAssemblyError(f"{mnemonic} expects rs2, imm(rs1)", ln)
                    rs2 = _reg(ops[0], ln)
                    imm, rs1 = _mem_operand(ops[1], ln)
                elif spec.fmt == "B":
                    if len(ops) != 3:
                        raise RvAssemblyError(f"{mnemonic} expects 3 operands", ln)
                    rs1, rs2 = _reg(ops[0], ln), _reg(ops[1], ln)
                    imm = resolve(ops[2], ln, pc, relative=True)
                elif spec.fmt == "U":
                    if len(ops) != 2:
                        raise RvAssemblyError(f"{mnemonic} expects 2 operands", ln)
                    rd = _reg(ops[0], ln)
                    imm = resolve(ops[1], ln, pc, relative=False)
                elif spec.fmt == "J":
                    if len(ops) != 2:
                        raise RvAssemblyError(f"{mnemonic} expects rd, target", ln)
                    rd = _reg(ops[0], ln)
                    imm = resolve(ops[1], ln, pc, relative=True)
                elif spec.fmt == "SYS":
                    if ops:
                        raise RvAssemblyError(f"{mnemonic} takes no operands", ln)
                word = encode(spec, rd=rd, rs1=rs1, rs2=rs2, imm=imm)
            except RvEncodingError as exc:
                raise RvAssemblyError(str(exc), ln) from None
            instructions.append(
                RvInstruction(mnemonic, pc, word, rd=rd, rs1=rs1, rs2=rs2, imm=imm)
            )
            pc += 4

    return RvProgram(tuple(instructions), labels, tuple(data_words))
