"""32-bit word -> :class:`RvInstruction` decoder.

Inverts :func:`repro.frontends.rv.isa.encode` for every mnemonic in the
subset: ``decode(inst.word, inst.pc)`` reproduces the assembler's
operand fields exactly (the round-trip the test suite asserts).  Used by
the machine to validate programs arriving as raw words and by tooling
that wants to disassemble.
"""

from __future__ import annotations

from repro.frontends.rv.assembler import RvInstruction
from repro.frontends.rv.isa import RV_OPCODES, RvOpSpec, _sext, xreg_name


class RvDecodeError(ValueError):
    """The word encodes no instruction in the supported subset."""


def _build_index() -> dict[tuple[int, int, int], RvOpSpec]:
    """(opcode, funct3, funct7) -> spec; funct3/funct7 are -1 if unused."""
    index: dict[tuple[int, int, int], RvOpSpec] = {}
    for spec in RV_OPCODES.values():
        if spec.fmt == "R":
            key = (spec.opcode, spec.funct3, spec.funct7)
        elif spec.mnemonic in ("slli", "srli", "srai"):
            key = (spec.opcode, spec.funct3, spec.funct7)
        elif spec.fmt in ("I", "IL", "S", "B", "SYS"):
            key = (spec.opcode, spec.funct3, -1)
        else:  # U / J: opcode alone discriminates
            key = (spec.opcode, -1, -1)
        index[key] = spec
    return index


_INDEX = _build_index()
_SHIFT_OPC = RV_OPCODES["slli"].opcode  # OP-IMM: shifts carry funct7


def decode(word: int, pc: int = 0) -> RvInstruction:
    """Decode one 32-bit instruction word at address ``pc``."""
    word &= 0xFFFFFFFF
    opcode = word & 0x7F
    funct3 = (word >> 12) & 0x7
    funct7 = (word >> 25) & 0x7F
    rd = (word >> 7) & 0x1F
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F

    spec = _INDEX.get((opcode, -1, -1))  # U / J: opcode alone
    if spec is None and opcode == _SHIFT_OPC and funct3 in (0b001, 0b101):
        spec = _INDEX.get((opcode, funct3, funct7))  # OP-IMM shifts
    if spec is None:
        spec = _INDEX.get((opcode, funct3, funct7))  # R-type
        if spec is not None and spec.fmt != "R":
            spec = None
    if spec is None:
        spec = _INDEX.get((opcode, funct3, -1))  # I / IL / S / B / SYS
    if spec is None:
        raise RvDecodeError(f"cannot decode word 0x{word:08x}")

    imm = 0
    if spec.fmt in ("I", "IL"):
        imm = _sext(word >> 20, 12)
        if spec.mnemonic in ("slli", "srli", "srai"):
            imm = (word >> 20) & 0x1F
    elif spec.fmt == "S":
        imm = _sext(((word >> 25) << 5) | ((word >> 7) & 0x1F), 12)
    elif spec.fmt == "B":
        imm = (
            (((word >> 31) & 1) << 12)
            | (((word >> 7) & 1) << 11)
            | (((word >> 25) & 0x3F) << 5)
            | (((word >> 8) & 0xF) << 1)
        )
        imm = _sext(imm, 13)
    elif spec.fmt == "U":
        imm = (word >> 12) & 0xFFFFF
    elif spec.fmt == "J":
        imm = (
            (((word >> 31) & 1) << 20)
            | (((word >> 12) & 0xFF) << 12)
            | (((word >> 20) & 1) << 11)
            | (((word >> 21) & 0x3FF) << 1)
        )
        imm = _sext(imm, 21)

    if spec.fmt == "SYS":
        rd = rs1 = rs2 = 0
    if spec.fmt in ("U", "J", "I", "IL"):
        rs2 = 0
    if spec.fmt in ("U", "J"):
        rs1 = 0
    if spec.fmt in ("S", "B"):
        rd = 0

    return RvInstruction(spec.mnemonic, pc, word, rd=rd, rs1=rs1, rs2=rs2, imm=imm)


def disassemble(word: int, pc: int = 0) -> str:
    """Human-readable text of one instruction word."""
    inst = decode(word, pc)
    spec = inst.spec
    rd, rs1, rs2 = xreg_name(inst.rd), xreg_name(inst.rs1), xreg_name(inst.rs2)
    if spec.fmt == "R":
        return f"{inst.mnemonic} {rd}, {rs1}, {rs2}"
    if spec.fmt == "I":
        return f"{inst.mnemonic} {rd}, {rs1}, {inst.imm}"
    if spec.fmt == "IL":
        return f"{inst.mnemonic} {rd}, {inst.imm}({rs1})"
    if spec.fmt == "S":
        return f"{inst.mnemonic} {rs2}, {inst.imm}({rs1})"
    if spec.fmt == "B":
        return f"{inst.mnemonic} {rs1}, {rs2}, {pc + inst.imm:#x}"
    if spec.fmt == "U":
        return f"{inst.mnemonic} {rd}, {inst.imm:#x}"
    if spec.fmt == "J":
        return f"{inst.mnemonic} {rd}, {pc + inst.imm:#x}"
    return inst.mnemonic
