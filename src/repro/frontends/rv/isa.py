"""RV32IM-ish ISA definition: opcodes, registers, canonical mapping.

A deliberately real subset of RV32I + M: integer ALU (register and
immediate forms), multiply/divide, byte/half/word loads and stores,
conditional branches, ``jal``/``jalr``, ``lui``/``auipc`` and ``fence``.
``ecall`` stops the machine (the mini-ASM ``halt`` analogue).  No
floating point — the cross-ISA experiments lean on the *integer*
behaviour overlap between the two ISAs.

Two mappings make RV traces consumable by everything downstream:

* **opcode -> canonical opcode id** (:data:`CANONICAL_OPID`): every RV
  mnemonic maps to the mini-ASM opcode of the same operation class
  (``sll`` -> ``shl``, ``lw`` -> ``ld``, ``bgeu`` -> ``bge``, ...), so
  the per-opcode property tables of :mod:`repro.vm.trace`, the
  :class:`~repro.sim.CPUSimulator` functional-unit model and the 51
  Table I features all apply unchanged.  ``jal``/``jalr`` resolve by
  *operand context* (:func:`jump_opid`): a ``jal`` writing ``ra`` is a
  ``call``, one writing ``x0`` a plain ``jmp``; a ``jalr`` through
  ``ra`` is a ``ret``, any other an indirect ``jr``.
* **x-register -> canonical global id** (:data:`CANONICAL_REG`): a
  bijection. ``x0`` is the hardwired zero (canonical ``r0``), ``x1/ra``
  the link register (``r31``), ``x2/sp`` the stack pointer (``r28``),
  and ``x3``-``x31`` enumerate the 29 canonical general-purpose ids —
  register *categories* (Table I) therefore carry the same meaning in
  both ISAs.

Encoding is the real RV32 layout (R/I/S/B/U/J formats), so the
assembler emits 32-bit words and the decoder round-trips them — see
:mod:`repro.frontends.rv.assembler` / :mod:`repro.frontends.rv.decoder`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import OPCODE_IDS

# ---------------------------------------------------------------------------
# registers
# ---------------------------------------------------------------------------
#: ABI names of x0..x31, index = register number.
ABI_NAMES: tuple[str, ...] = (
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
)

_ABI_INDEX: dict[str, int] = {name: i for i, name in enumerate(ABI_NAMES)}
_ABI_INDEX["fp"] = 8  # s0 alias

#: x-register number -> canonical global register id (bijective).
#: zero/ra/sp land on their canonical counterparts; x3..x31 enumerate
#: the 29 canonical GENERAL-category ids in order.
_GENERAL_IDS = tuple(list(range(1, 28)) + [29, 30])
CANONICAL_REG: tuple[int, ...] = (0, 31, 28) + _GENERAL_IDS
assert len(CANONICAL_REG) == 32
assert len(set(CANONICAL_REG)) == 32


def parse_xreg(token: str) -> int:
    """RV register token (``x7``, ``a0``, ``sp``, ``fp``) -> x number."""
    token = token.strip().lower()
    index = _ABI_INDEX.get(token)
    if index is not None:
        return index
    if token.startswith("x") and token[1:].isdigit():
        index = int(token[1:])
        if 0 <= index < 32:
            return index
    raise ValueError(f"not a RISC-V register: {token!r}")


def xreg_name(index: int) -> str:
    """Canonical ABI name of x-register ``index``."""
    return ABI_NAMES[index]


# ---------------------------------------------------------------------------
# opcodes
# ---------------------------------------------------------------------------
#: Encoding formats understood by the assembler/decoder.
FORMATS = ("R", "I", "IL", "S", "B", "U", "J", "SYS")

_OPC_OP = 0b0110011
_OPC_OP_IMM = 0b0010011
_OPC_LOAD = 0b0000011
_OPC_STORE = 0b0100011
_OPC_BRANCH = 0b1100011
_OPC_JAL = 0b1101111
_OPC_JALR = 0b1100111
_OPC_LUI = 0b0110111
_OPC_AUIPC = 0b0010111
_OPC_FENCE = 0b0001111
_OPC_SYSTEM = 0b1110011


@dataclass(frozen=True)
class RvOpSpec:
    """One RV mnemonic: encoding fields + canonical mapping."""

    mnemonic: str
    fmt: str  # one of FORMATS ("IL" = I-format load)
    opcode: int
    funct3: int = 0
    funct7: int = 0
    #: Canonical mini-ASM mnemonic (context-free mapping; jal/jalr refine
    #: by operand, see :func:`jump_opid`).
    canonical: str = ""


def _rv_specs() -> list[RvOpSpec]:
    R, OI = _OPC_OP, _OPC_OP_IMM
    return [
        # R-type integer ALU
        RvOpSpec("add", "R", R, 0b000, 0b0000000, "add"),
        RvOpSpec("sub", "R", R, 0b000, 0b0100000, "sub"),
        RvOpSpec("sll", "R", R, 0b001, 0b0000000, "shl"),
        RvOpSpec("slt", "R", R, 0b010, 0b0000000, "slt"),
        RvOpSpec("sltu", "R", R, 0b011, 0b0000000, "slt"),
        RvOpSpec("xor", "R", R, 0b100, 0b0000000, "xor"),
        RvOpSpec("srl", "R", R, 0b101, 0b0000000, "shr"),
        RvOpSpec("sra", "R", R, 0b101, 0b0100000, "shr"),
        RvOpSpec("or", "R", R, 0b110, 0b0000000, "or"),
        RvOpSpec("and", "R", R, 0b111, 0b0000000, "and"),
        # M extension
        RvOpSpec("mul", "R", R, 0b000, 0b0000001, "mul"),
        RvOpSpec("mulh", "R", R, 0b001, 0b0000001, "mul"),
        RvOpSpec("div", "R", R, 0b100, 0b0000001, "div"),
        RvOpSpec("divu", "R", R, 0b101, 0b0000001, "div"),
        RvOpSpec("rem", "R", R, 0b110, 0b0000001, "rem"),
        RvOpSpec("remu", "R", R, 0b111, 0b0000001, "rem"),
        # I-type ALU
        RvOpSpec("addi", "I", OI, 0b000, 0, "addi"),
        RvOpSpec("slti", "I", OI, 0b010, 0, "slti"),
        RvOpSpec("sltiu", "I", OI, 0b011, 0, "slti"),
        RvOpSpec("xori", "I", OI, 0b100, 0, "xori"),
        RvOpSpec("ori", "I", OI, 0b110, 0, "ori"),
        RvOpSpec("andi", "I", OI, 0b111, 0, "andi"),
        RvOpSpec("slli", "I", OI, 0b001, 0b0000000, "shli"),
        RvOpSpec("srli", "I", OI, 0b101, 0b0000000, "shri"),
        RvOpSpec("srai", "I", OI, 0b101, 0b0100000, "shri"),
        # upper immediates
        RvOpSpec("lui", "U", _OPC_LUI, 0, 0, "movi"),
        RvOpSpec("auipc", "U", _OPC_AUIPC, 0, 0, "movi"),
        # loads / stores
        RvOpSpec("lb", "IL", _OPC_LOAD, 0b000, 0, "ld"),
        RvOpSpec("lh", "IL", _OPC_LOAD, 0b001, 0, "ld"),
        RvOpSpec("lw", "IL", _OPC_LOAD, 0b010, 0, "ld"),
        RvOpSpec("lbu", "IL", _OPC_LOAD, 0b100, 0, "ld"),
        RvOpSpec("lhu", "IL", _OPC_LOAD, 0b101, 0, "ld"),
        RvOpSpec("sb", "S", _OPC_STORE, 0b000, 0, "st"),
        RvOpSpec("sh", "S", _OPC_STORE, 0b001, 0, "st"),
        RvOpSpec("sw", "S", _OPC_STORE, 0b010, 0, "st"),
        # branches
        RvOpSpec("beq", "B", _OPC_BRANCH, 0b000, 0, "beq"),
        RvOpSpec("bne", "B", _OPC_BRANCH, 0b001, 0, "bne"),
        RvOpSpec("blt", "B", _OPC_BRANCH, 0b100, 0, "blt"),
        RvOpSpec("bge", "B", _OPC_BRANCH, 0b101, 0, "bge"),
        RvOpSpec("bltu", "B", _OPC_BRANCH, 0b110, 0, "blt"),
        RvOpSpec("bgeu", "B", _OPC_BRANCH, 0b111, 0, "bge"),
        # jumps
        RvOpSpec("jal", "J", _OPC_JAL, 0, 0, "call"),
        RvOpSpec("jalr", "I", _OPC_JALR, 0b000, 0, "jr"),
        # misc
        RvOpSpec("fence", "SYS", _OPC_FENCE, 0b000, 0, "fence"),
        RvOpSpec("ecall", "SYS", _OPC_SYSTEM, 0b000, 0, "halt"),
    ]


#: mnemonic -> RvOpSpec.
RV_OPCODES: dict[str, RvOpSpec] = {s.mnemonic: s for s in _rv_specs()}

#: RV mnemonic -> canonical opcode id (context-free; see jump_opid).
CANONICAL_OPID: dict[str, int] = {
    name: OPCODE_IDS[spec.canonical] for name, spec in RV_OPCODES.items()
}


def jump_opid(mnemonic: str, rd: int, rs1: int = 0) -> int:
    """Operand-refined canonical opcode id for ``jal``/``jalr``.

    ``jal ra, f`` is a ``call``; ``jal x0, l`` (the ``j`` pseudo) a plain
    ``jmp``.  ``jalr x0, ra, 0`` (the ``ret`` pseudo) maps to ``ret``;
    any other ``jalr`` is an indirect ``jr``.
    """
    if mnemonic == "jal":
        return OPCODE_IDS["call" if rd == 1 else "jmp"]
    if rd == 0 and rs1 == 1:
        return OPCODE_IDS["ret"]
    return OPCODE_IDS["jr"]


# ---------------------------------------------------------------------------
# encode / decode field helpers (real RV32 bit layout)
# ---------------------------------------------------------------------------
class RvEncodingError(ValueError):
    """An operand does not fit its encoding field."""


def _check_range(value: int, lo: int, hi: int, what: str) -> int:
    if not lo <= value <= hi:
        raise RvEncodingError(f"{what} {value} out of range [{lo}, {hi}]")
    return value & ((hi - lo) | (hi | -lo if lo < 0 else hi))


def encode(
    spec: RvOpSpec, rd: int = 0, rs1: int = 0, rs2: int = 0, imm: int = 0
) -> int:
    """Pack one instruction into its 32-bit word."""
    word = spec.opcode
    if spec.fmt == "R":
        word |= (rd << 7) | (spec.funct3 << 12) | (rs1 << 15)
        word |= (rs2 << 20) | (spec.funct7 << 25)
    elif spec.fmt in ("I", "IL"):
        if spec.mnemonic in ("slli", "srli", "srai"):
            if not 0 <= imm < 32:
                raise RvEncodingError(f"shift amount {imm} out of range [0, 31]")
            imm = imm | (spec.funct7 << 5)
        elif not -2048 <= imm <= 2047:
            raise RvEncodingError(f"I-immediate {imm} out of range [-2048, 2047]")
        word |= (rd << 7) | (spec.funct3 << 12) | (rs1 << 15)
        word |= (imm & 0xFFF) << 20
    elif spec.fmt == "S":
        if not -2048 <= imm <= 2047:
            raise RvEncodingError(f"S-immediate {imm} out of range [-2048, 2047]")
        word |= ((imm & 0x1F) << 7) | (spec.funct3 << 12)
        word |= (rs1 << 15) | (rs2 << 20) | (((imm >> 5) & 0x7F) << 25)
    elif spec.fmt == "B":
        if not -4096 <= imm <= 4094 or imm & 1:
            raise RvEncodingError(f"branch offset {imm} invalid (even, +/-4KiB)")
        word |= (((imm >> 11) & 1) << 7) | (((imm >> 1) & 0xF) << 8)
        word |= (spec.funct3 << 12) | (rs1 << 15) | (rs2 << 20)
        word |= (((imm >> 5) & 0x3F) << 25) | (((imm >> 12) & 1) << 31)
    elif spec.fmt == "U":
        if not 0 <= imm < (1 << 20):
            raise RvEncodingError(f"U-immediate {imm} out of range [0, 2^20)")
        word |= (rd << 7) | (imm << 12)
    elif spec.fmt == "J":
        if not -(1 << 20) <= imm <= (1 << 20) - 2 or imm & 1:
            raise RvEncodingError(f"jump offset {imm} invalid (even, +/-1MiB)")
        word |= (rd << 7) | (((imm >> 12) & 0xFF) << 12)
        word |= (((imm >> 11) & 1) << 20) | (((imm >> 1) & 0x3FF) << 21)
        word |= (((imm >> 20) & 1) << 31)
    elif spec.fmt == "SYS":
        word |= spec.funct3 << 12
    else:  # pragma: no cover - all formats enumerated above
        raise RvEncodingError(f"unknown format {spec.fmt!r}")
    return word & 0xFFFFFFFF


def _sext(value: int, bits: int) -> int:
    if value >> (bits - 1):
        value -= 1 << bits
    return value
