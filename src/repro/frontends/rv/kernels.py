"""RV workload suite: the kernel builders ported to the RV frontend.

A compact port of the :mod:`repro.workloads` idea: each benchmark is a
builder emitting RV assembly parameterised by ``reps`` (outer-loop
count) and ``seed`` (perturbs static data and constants), so the
``max_instructions`` cap truncates a long-running loop exactly like the
mini-ASM ``trace_benchmark`` wrapper.  Six kernels across three
categories:

=============  =========  ==============================================
name           category   behaviour
=============  =========  ==============================================
``rv.axpy``    stream     y[i] += a*x[i], unit-stride loads/stores
``rv.stride``  stream     masked strided gather-sum over a table
``rv.hashmix`` compute    xorshift*-style integer mixing, mul-heavy
``rv.crc``     compute    bitwise CRC over data words, shift/branch mix
``rv.gcd``     branchy    Euclid via ``call``/``ret``, rem-heavy
``rv.bsearch`` branchy    binary search with LCG-generated keys
=============  =========  ==============================================

``TRAIN_BENCHMARKS`` / ``TEST_BENCHMARKS`` give the frontend's split for
the ``train``/``test`` aliases; the cross-ISA experiment reports error
deltas per category.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.frontends.rv.assembler import DATA_BASE, RvProgram, assemble
from repro.frontends.rv.machine import run_program
from repro.vm.trace import Trace

_TABLE = 64  # power of two; every kernel's working set


@dataclass(frozen=True)
class RvWorkloadSpec:
    """One RV benchmark: source builder + metadata."""

    name: str
    category: str  # stream / compute / branchy
    description: str
    source: Callable[[int, int], str]  # (reps, seed) -> assembly text

    def build(self, reps: int, seed: int = 0) -> RvProgram:
        return assemble(self.source(max(reps, 1), seed))


def _words(values: list[int]) -> str:
    return "\n".join(
        ".word " + ", ".join(str(v & 0xFFFFFFFF) for v in values[i : i + 8])
        for i in range(0, len(values), 8)
    )


def _axpy(reps: int, seed: int) -> str:
    rng = random.Random(seed)
    xs = [rng.randrange(1 << 15) for _ in range(_TABLE)]
    ys = [rng.randrange(1 << 15) for _ in range(_TABLE)]
    scalar = rng.randrange(3, 1 << 10)
    xbase, ybase = DATA_BASE, DATA_BASE + 4 * _TABLE
    return f"""
# y[i] += a * x[i] over a {_TABLE}-element table, {reps} sweeps
    li   s1, {reps}
    li   t2, {scalar}
outer:
    li   a0, {xbase}
    li   a1, {ybase}
    li   s0, {_TABLE}
loop:
    lw   t0, 0(a0)
    lw   t1, 0(a1)
    mul  t0, t0, t2
    add  t1, t1, t0
    sw   t1, 0(a1)
    addi a0, a0, 4
    addi a1, a1, 4
    addi s0, s0, -1
    bnez s0, loop
    addi s1, s1, -1
    bnez s1, outer
    ecall
.data
{_words(xs + ys)}
"""


def _stride(reps: int, seed: int) -> str:
    rng = random.Random(seed)
    table = [rng.randrange(1 << 20) for _ in range(_TABLE)]
    stride = rng.choice([3, 5, 7, 11])
    return f"""
# strided gather-sum, index wraps with a power-of-two mask
    li   s1, {reps}
    li   a0, {DATA_BASE}
    li   s2, 0
outer:
    li   s0, {_TABLE}
    li   t3, 0
loop:
    slli t0, t3, 2
    add  t0, t0, a0
    lw   t1, 0(t0)
    add  s2, s2, t1
    addi t3, t3, {stride}
    andi t3, t3, {_TABLE - 1}
    addi s0, s0, -1
    bnez s0, loop
    addi s1, s1, -1
    bnez s1, outer
    ecall
.data
{_words(table)}
"""


def _hashmix(reps: int, seed: int) -> str:
    rng = random.Random(seed)
    state = rng.randrange(1, 1 << 30)
    mult = rng.randrange(1 << 8, 1 << 15) | 1
    return f"""
# xorshift*-flavored integer mixing, multiply-heavy
    li   s1, {reps}
    li   t0, {state}
    li   t2, {mult}
    li   s2, 0
outer:
    li   s0, 32
loop:
    slli t1, t0, 13
    xor  t0, t0, t1
    srli t1, t0, 17
    xor  t0, t0, t1
    slli t1, t0, 5
    xor  t0, t0, t1
    mul  t0, t0, t2
    add  s2, s2, t0
    addi s0, s0, -1
    bnez s0, loop
    addi s1, s1, -1
    bnez s1, outer
    ecall
"""


def _crc(reps: int, seed: int) -> str:
    rng = random.Random(seed)
    table = [rng.randrange(1 << 31) for _ in range(_TABLE)]
    poly = 0xEDB88320
    return f"""
# bitwise CRC over a word table (data-dependent branch per bit)
    li   s1, {reps}
    li   t5, {poly}
    li   s2, -1
outer:
    li   a0, {DATA_BASE}
    li   s0, {_TABLE}
word:
    lw   t0, 0(a0)
    xor  s2, s2, t0
    li   t3, 8
bit:
    andi t1, s2, 1
    srli s2, s2, 1
    beqz t1, skip
    xor  s2, s2, t5
skip:
    addi t3, t3, -1
    bnez t3, bit
    addi a0, a0, 4
    addi s0, s0, -1
    bnez s0, word
    addi s1, s1, -1
    bnez s1, outer
    ecall
.data
{_words(table)}
"""


def _gcd(reps: int, seed: int) -> str:
    rng = random.Random(seed)
    pairs: list[int] = []
    for _ in range(_TABLE // 2):
        pairs.append(rng.randrange(1, 1 << 16))
        pairs.append(rng.randrange(1, 1 << 16))
    return f"""
# Euclid's gcd over a table of pairs, through a real call/ret
    li   s1, {reps}
    li   s2, 0
outer:
    li   s3, {DATA_BASE}
    li   s0, {_TABLE // 2}
pair:
    lw   a0, 0(s3)
    lw   a1, 4(s3)
    call gcd
    add  s2, s2, a0
    addi s3, s3, 8
    addi s0, s0, -1
    bnez s0, pair
    addi s1, s1, -1
    bnez s1, outer
    ecall

gcd:
    beqz a1, gcd_done
    rem  t0, a0, a1
    mv   a0, a1
    mv   a1, t0
    j    gcd
gcd_done:
    ret
.data
{_words(pairs)}
"""


def _bsearch(reps: int, seed: int) -> str:
    rng = random.Random(seed)
    table = sorted(rng.randrange(1 << 10) for _ in range(_TABLE))
    lcg_a, lcg_c = 1103515245, 12345
    return f"""
# binary search for LCG-generated keys in a sorted table
    li   s1, {reps}
    li   t6, {seed * 2654435761 % (1 << 31) or 1}
    li   s4, {lcg_a}
    li   s5, {lcg_c}
    li   s2, 0
outer:
    mul  t6, t6, s4
    add  t6, t6, s5
    li   t5, {(1 << 10) - 1}
    and  a2, t6, t5
    li   a0, 0
    li   a1, {_TABLE}
search:
    bge  a0, a1, found
    add  t0, a0, a1
    srli t0, t0, 1
    slli t1, t0, 2
    li   t2, {DATA_BASE}
    add  t1, t1, t2
    lw   t3, 0(t1)
    bge  t3, a2, go_left
    addi a0, t0, 1
    j    search
go_left:
    mv   a1, t0
    j    search
found:
    add  s2, s2, a0
    addi s1, s1, -1
    bnez s1, outer
    ecall
.data
{_words(table)}
"""


def _specs() -> list[RvWorkloadSpec]:
    return [
        RvWorkloadSpec(
            "rv.axpy", "stream", "unit-stride y[i] += a*x[i]", _axpy
        ),
        RvWorkloadSpec(
            "rv.stride", "stream", "masked strided gather-sum", _stride
        ),
        RvWorkloadSpec(
            "rv.hashmix", "compute", "xorshift*-style integer mixing", _hashmix
        ),
        RvWorkloadSpec("rv.crc", "compute", "bitwise CRC over a table", _crc),
        RvWorkloadSpec("rv.gcd", "branchy", "Euclid gcd via call/ret", _gcd),
        RvWorkloadSpec(
            "rv.bsearch", "branchy", "binary search, LCG keys", _bsearch
        ),
    ]


#: name -> spec for every RV benchmark.
BENCHMARKS: dict[str, RvWorkloadSpec] = {s.name: s for s in _specs()}
ALL_BENCHMARKS: tuple[str, ...] = tuple(sorted(BENCHMARKS))
TRAIN_BENCHMARKS: tuple[str, ...] = ("rv.axpy", "rv.crc", "rv.gcd", "rv.hashmix")
TEST_BENCHMARKS: tuple[str, ...] = ("rv.bsearch", "rv.stride")

#: benchmark name -> category tag (cross-ISA delta reporting).
CATEGORIES: dict[str, str] = {name: spec.category for name, spec in BENCHMARKS.items()}

_TRACE_CACHE: dict[tuple[str, int, int], Trace] = {}


def build_program(name: str, reps: int, seed: int = 0) -> RvProgram:
    """Assemble benchmark ``name`` (raises ``KeyError`` if unknown)."""
    return BENCHMARKS[name].build(reps, seed)


def get_trace(name: str, max_instructions: int, seed: int | None = None) -> Trace:
    """Memoized canonical trace of benchmark ``name``.

    ``reps`` is set to ``max_instructions`` so the outer loop always
    outlasts the cap — the cap, not loop exit, bounds the trace (the
    mini-ASM ``trace_benchmark`` convention).
    """
    seed = seed or 0
    key = (name, max_instructions, seed)
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        program = build_program(name, reps=max_instructions, seed=seed)
        trace = run_program(program, max_instructions=max_instructions, name=name)
        _TRACE_CACHE[key] = trace
    return trace


def clear_trace_cache() -> None:
    """Drop memoized traces (tests and long-lived workers)."""
    _TRACE_CACHE.clear()
