"""Threaded-code interpreter for assembled RV programs.

Same architecture as the mini-ASM :class:`repro.vm.machine.Machine`:
every static instruction is compiled once into a Python closure
returning ``(next_index, mem_addr, taken, target, fault)``, and the run
loop appends canonical trace records through a
:class:`~repro.vm.trace.TraceBuilder` — so RV traces are
indistinguishable in shape from mini-ASM ones.

Semantics are 32-bit RV32IM: register values wrap to signed 32-bit,
shifts mask to 5 bits, ``divu``/``remu``/``sltu``/``bltu``/``bgeu``
compare unsigned, and division by zero follows the RISC-V value
convention (quotient -1, remainder = numerator) while still flagging the
instruction as faulting in the trace — the mini-ASM feature encoder
treats the flag identically.  Memory is byte-addressable little-endian;
misaligned accesses align down and fault (the mini-ASM convention).
"""

from __future__ import annotations

from typing import Callable

from repro.frontends.rv.assembler import CODE_BASE, DATA_BASE, RvInstruction, RvProgram
from repro.frontends.rv.isa import CANONICAL_OPID, CANONICAL_REG, jump_opid
from repro.isa.instructions import MAX_DST_SLOTS, MAX_SRC_SLOTS
from repro.isa.registers import REG_NONE
from repro.vm.errors import VMError
from repro.vm.trace import Trace, TraceBuilder

#: Initial stack pointer (mirrors the mini-ASM layout so address-range
#: features land in the same buckets).
STACK_TOP = 0x80_0000

_Handler = Callable[[], tuple[int, int, int, int, bool]]

_U32 = 0xFFFFFFFF
_LOAD_SIZE = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4}
_STORE_SIZE = {"sb": 1, "sh": 2, "sw": 4}


def wrap_i32(value: int) -> int:
    """Wrap to signed 32-bit two's complement."""
    value &= _U32
    return value - (1 << 32) if value >> 31 else value


def _u32(value: int) -> int:
    return value & _U32


class RvMemory:
    """Byte-addressable little-endian memory, word-granular storage."""

    def __init__(self) -> None:
        self._words: dict[int, int] = {}

    def load_words(self, base: int, words: tuple[int, ...]) -> None:
        for i, word in enumerate(words):
            self._words[(base + 4 * i) >> 2] = word & _U32

    def read(self, addr: int, size: int, signed: bool) -> int:
        word = self._words.get(addr >> 2, 0)
        shift = (addr & 3) * 8
        value = (word >> shift) & ((1 << (size * 8)) - 1)
        if signed and value >> (size * 8 - 1):
            value -= 1 << (size * 8)
        return value

    def write(self, addr: int, size: int, value: int) -> None:
        key = addr >> 2
        shift = (addr & 3) * 8
        mask = ((1 << (size * 8)) - 1) << shift
        word = self._words.get(key, 0)
        self._words[key] = (word & ~mask) | ((value << shift) & mask)


def _slots(srcs: tuple[int, ...], dsts: tuple[int, ...]) -> tuple[tuple, tuple]:
    """x-register operand lists -> padded canonical slot tuples."""
    src = tuple(CANONICAL_REG[x] for x in srcs)
    dst = tuple(CANONICAL_REG[x] for x in dsts)
    src += (REG_NONE,) * (MAX_SRC_SLOTS - len(src))
    dst += (REG_NONE,) * (MAX_DST_SLOTS - len(dst))
    return src, dst


_R_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "sll": lambda a, b: a << (b & 31),
    "slt": lambda a, b: int(a < b),
    "sltu": lambda a, b: int(_u32(a) < _u32(b)),
    "xor": lambda a, b: a ^ b,
    "srl": lambda a, b: _u32(a) >> (b & 31),
    "sra": lambda a, b: a >> (b & 31),
    "or": lambda a, b: a | b,
    "and": lambda a, b: a & b,
    "mul": lambda a, b: a * b,
    "mulh": lambda a, b: (a * b) >> 32,
}

_I_OPS = {
    "addi": _R_OPS["add"],
    "slti": _R_OPS["slt"],
    "sltiu": _R_OPS["sltu"],
    "xori": _R_OPS["xor"],
    "ori": _R_OPS["or"],
    "andi": _R_OPS["and"],
    "slli": _R_OPS["sll"],
    "srli": _R_OPS["srl"],
    "srai": _R_OPS["sra"],
}

_BRANCH_COND = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: a < b,
    "bge": lambda a, b: a >= b,
    "bltu": lambda a, b: _u32(a) < _u32(b),
    "bgeu": lambda a, b: _u32(a) >= _u32(b),
}


class RvMachine:
    """RV32IM-subset interpreter producing canonical dynamic traces."""

    def __init__(self) -> None:
        self.regs: list[int] = [0] * 32
        self.memory = RvMemory()
        self.halted = False

    def reset(self, program: RvProgram) -> None:
        self.regs = [0] * 32
        self.regs[2] = STACK_TOP  # sp
        self.memory = RvMemory()
        self.memory.load_words(DATA_BASE, program.data)
        self.halted = False

    # ------------------------------------------------------------------
    def _compile(
        self, inst: RvInstruction, index: int, index_of: dict[int, int]
    ) -> _Handler:
        m = inst.mnemonic
        regs = self.regs
        memory = self.memory
        nxt = index + 1
        rd, rs1, rs2, imm = inst.rd, inst.rs1, inst.rs2, inst.imm

        if m in _R_OPS:
            fn = _R_OPS[m]

            def h_r() -> tuple[int, int, int, int, bool]:
                if rd:
                    regs[rd] = wrap_i32(fn(regs[rs1], regs[rs2]))
                return nxt, -1, -1, -1, False

            return h_r
        if m in _I_OPS:
            fn = _I_OPS[m]

            def h_i() -> tuple[int, int, int, int, bool]:
                if rd:
                    regs[rd] = wrap_i32(fn(regs[rs1], imm))
                return nxt, -1, -1, -1, False

            return h_i
        if m in ("div", "divu", "rem", "remu"):
            unsigned = m.endswith("u")
            want_rem = m.startswith("rem")

            def h_div() -> tuple[int, int, int, int, bool]:
                numer, denom = regs[rs1], regs[rs2]
                if unsigned:
                    numer, denom = _u32(numer), _u32(denom)
                if denom == 0:
                    # RISC-V: quotient is all-ones, remainder the numerator.
                    if rd:
                        regs[rd] = wrap_i32(numer) if want_rem else -1
                    return nxt, -1, -1, -1, True
                quot = abs(numer) // abs(denom)
                if (numer < 0) != (denom < 0):
                    quot = -quot
                if rd:
                    value = numer - quot * denom if want_rem else quot
                    regs[rd] = wrap_i32(value)
                return nxt, -1, -1, -1, False

            return h_div
        if m == "lui":
            value = wrap_i32(imm << 12)

            def h_lui() -> tuple[int, int, int, int, bool]:
                if rd:
                    regs[rd] = value
                return nxt, -1, -1, -1, False

            return h_lui
        if m == "auipc":
            value = wrap_i32(inst.pc + (imm << 12))

            def h_auipc() -> tuple[int, int, int, int, bool]:
                if rd:
                    regs[rd] = value
                return nxt, -1, -1, -1, False

            return h_auipc
        if m in _LOAD_SIZE:
            size = _LOAD_SIZE[m]
            signed = m in ("lb", "lh", "lw")

            def h_load() -> tuple[int, int, int, int, bool]:
                addr = _u32(regs[rs1] + imm)
                fault = False
                if addr % size:
                    addr -= addr % size
                    fault = True
                if rd:
                    regs[rd] = memory.read(addr, size, signed)
                return nxt, addr, -1, -1, fault

            return h_load
        if m in _STORE_SIZE:
            size = _STORE_SIZE[m]

            def h_store() -> tuple[int, int, int, int, bool]:
                addr = _u32(regs[rs1] + imm)
                fault = False
                if addr % size:
                    addr -= addr % size
                    fault = True
                memory.write(addr, size, _u32(regs[rs2]))
                return nxt, addr, -1, -1, fault

            return h_store
        if m in _BRANCH_COND:
            cond = _BRANCH_COND[m]
            target_pc = inst.pc + imm
            target_idx = index_of.get(target_pc)
            if target_idx is None:
                raise VMError(f"branch to bad pc {target_pc:#x}")

            def h_branch() -> tuple[int, int, int, int, bool]:
                taken = cond(regs[rs1], regs[rs2])
                return (
                    target_idx if taken else nxt,
                    -1,
                    int(taken),
                    target_pc,
                    False,
                )

            return h_branch
        if m == "jal":
            target_pc = inst.pc + imm
            target_idx = index_of.get(target_pc)
            if target_idx is None:
                raise VMError(f"jump to bad pc {target_pc:#x}")
            link = inst.pc + 4

            def h_jal() -> tuple[int, int, int, int, bool]:
                if rd:
                    regs[rd] = link
                return target_idx, -1, 1, target_pc, False

            return h_jal
        if m == "jalr":
            link = inst.pc + 4

            def h_jalr() -> tuple[int, int, int, int, bool]:
                pc = _u32(regs[rs1] + imm) & ~1
                target_idx = index_of.get(pc)
                if target_idx is None:
                    raise VMError(f"indirect jump to bad pc {pc:#x}")
                if rd:
                    regs[rd] = link
                return target_idx, -1, 1, pc, False

            return h_jalr
        if m == "fence":

            def h_fence() -> tuple[int, int, int, int, bool]:
                return nxt, -1, -1, -1, False

            return h_fence
        if m == "ecall":

            def h_ecall() -> tuple[int, int, int, int, bool]:
                return -1, -1, -1, -1, False

            return h_ecall
        raise VMError(f"no handler for RV opcode {m!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    def run(
        self,
        program: RvProgram,
        max_instructions: int = 1_000_000,
        name: str | None = None,
    ) -> Trace:
        """Execute ``program``, returning its canonical dynamic trace."""
        if max_instructions <= 0:
            raise ValueError("max_instructions must be positive")
        self.reset(program)
        code = program.instructions
        index_of = {inst.pc: i for i, inst in enumerate(code)}
        handlers = [
            self._compile(inst, i, index_of) for i, inst in enumerate(code)
        ]
        opids: list[int] = []
        slot_pairs: list[tuple[tuple, tuple]] = []
        for inst in code:
            opids.append(_canonical_opid(inst))
            slot_pairs.append(_operand_slots(inst))
        builder = TraceBuilder(name or "rv")
        append = builder.append
        idx = 0
        count = 0
        while count < max_instructions:
            inst = code[idx]
            nxt, mem_addr, taken, target, fault = handlers[idx]()
            src, dst = slot_pairs[idx]
            append(inst.pc, opids[idx], src, dst, mem_addr, taken, target, fault)
            count += 1
            if nxt < 0:
                self.halted = True
                break
            if nxt >= len(code):
                raise VMError("execution fell off the end of the code segment")
            idx = nxt
        return builder.finalize()


def _canonical_opid(inst: RvInstruction) -> int:
    if inst.mnemonic in ("jal", "jalr"):
        return jump_opid(inst.mnemonic, inst.rd, inst.rs1)
    return CANONICAL_OPID[inst.mnemonic]


def _operand_slots(inst: RvInstruction) -> tuple[tuple, tuple]:
    """Static operand registers of ``inst`` as padded canonical slots."""
    m, fmt = inst.mnemonic, inst.spec.fmt
    if fmt == "R":
        return _slots((inst.rs1, inst.rs2), (inst.rd,))
    if m == "jalr":
        dsts = (inst.rd,) if inst.rd else ()
        return _slots((inst.rs1,), dsts)
    if fmt == "I":
        return _slots((inst.rs1,), (inst.rd,))
    if fmt == "IL":
        return _slots((inst.rs1,), (inst.rd,))
    if fmt == "S":
        return _slots((inst.rs1, inst.rs2), ())
    if fmt == "B":
        return _slots((inst.rs1, inst.rs2), ())
    if fmt == "U":
        return _slots((), (inst.rd,))
    if fmt == "J":
        dsts = (inst.rd,) if inst.rd else ()
        return _slots((), dsts)
    return _slots((), ())  # SYS


def run_program(
    program: RvProgram, max_instructions: int = 1_000_000, name: str | None = None
) -> Trace:
    """Run ``program`` on a fresh machine and return its trace."""
    return RvMachine().run(program, max_instructions=max_instructions, name=name)


# re-exported for callers that address the layout
__all__ = [
    "CODE_BASE",
    "DATA_BASE",
    "STACK_TOP",
    "RvMachine",
    "RvMemory",
    "run_program",
    "wrap_i32",
]
