"""Scoreboard-style microarchitectural event model for RV traces.

Modeled after the CVA6 cycle-approximate scoreboard (SNIPPETS.md
snippet 2): a single-issue in-order pipeline with per-class execution
latencies, a register scoreboard that surfaces RAW/WAW/WAR hazards, one
unpipelined mul/div unit (STRUCT events while busy) and a 2-bit
saturating branch predictor (BHIT/BMISS).  It consumes the *canonical*
:class:`~repro.vm.trace.Trace` — any frontend's trace can be replayed
through it — and reports cycles plus event counts.

This is deliberately *not* the paper's ground-truth simulator
(:mod:`repro.sim` remains that); it is the RV frontend's native cycle
model, useful for sanity-checking that RV workloads exercise distinct
microarchitectural behaviour and for generating alternative targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.isa.registers import REG_NONE
from repro.vm.trace import OP_CLASS, OP_IS_COND, Trace
from repro.isa.opcodes import OpClass

#: Scoreboard event kinds, CVA6-snippet style.
EventKind = Enum(
    "EventKind",
    ["RAW", "WAW", "WAR", "BHIT", "BMISS", "STRUCT", "ISSUE", "DONE", "COMMIT"],
)


@dataclass(frozen=True)
class Event:
    """One pipeline event at an absolute cycle."""

    kind: EventKind
    cycle: int

    def __repr__(self) -> str:  # "@12: RAW"
        return f"@{self.cycle}: {self.kind.name}"


#: Execution latency per operation class (cycles in EX).
LATENCY: dict[int, int] = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MUL: 3,
    OpClass.INT_DIV: 12,
    OpClass.FP_ADD: 3,
    OpClass.FP_MUL: 4,
    OpClass.FP_DIV: 14,
    OpClass.LOAD: 2,
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.JUMP: 1,
    OpClass.JUMP_IND: 1,
    OpClass.CALL: 1,
    OpClass.BARRIER: 1,
    OpClass.NOP: 1,
    OpClass.HALT: 1,
}

_MULDIV = (int(OpClass.INT_MUL), int(OpClass.INT_DIV))
_BMISS_PENALTY = 4


@dataclass
class ScoreboardReport:
    """Cycle count + event tallies for one trace replay."""

    instructions: int
    cycles: int
    events: dict[str, int] = field(default_factory=dict)

    @property
    def cpi(self) -> float:
        return self.cycles / max(self.instructions, 1)

    def as_dict(self) -> dict[str, float]:
        payload: dict[str, float] = {
            "instructions": float(self.instructions),
            "cycles": float(self.cycles),
            "cpi": self.cpi,
        }
        payload.update({k.lower(): float(v) for k, v in self.events.items()})
        return payload


class Scoreboard:
    """In-order single-issue scoreboard replaying a canonical trace."""

    def __init__(self, record_events: bool = False, max_events: int = 10_000):
        self._record = record_events
        self._max_events = max_events
        self.events: list[Event] = []

    def _emit(self, kind: EventKind, cycle: int, counts: dict[str, int]) -> None:
        counts[kind.name] = counts.get(kind.name, 0) + 1
        if self._record and len(self.events) < self._max_events:
            self.events.append(Event(kind, cycle))

    def run(self, trace: Trace) -> ScoreboardReport:
        opclass = OP_CLASS[trace.opid]
        is_cond = OP_IS_COND[trace.opid]
        taken = trace.branch_taken
        src_slots = trace.src_slots
        dst_slots = trace.dst_slots

        counts: dict[str, int] = {}
        #: register id -> cycle its in-flight write completes
        write_ready = np.zeros(64, dtype=np.int64)
        #: register id -> last cycle it was read (for WAR)
        last_read = np.zeros(64, dtype=np.int64)
        muldiv_free = 0  # cycle the shared mul/div unit frees up
        predictor: dict[int, int] = {}  # pc -> 2-bit counter
        cycle = 0

        for i in range(len(trace)):
            cls = int(opclass[i])
            issue = cycle + 1

            # -- data hazards: stall issue until sources are ready --------
            for reg in src_slots[i]:
                if reg == REG_NONE:
                    break
                ready = int(write_ready[reg])
                if ready > issue:
                    self._emit(EventKind.RAW, issue, counts)
                    issue = ready
            for reg in dst_slots[i]:
                if reg == REG_NONE:
                    break
                ready = int(write_ready[reg])
                if ready > issue:
                    self._emit(EventKind.WAW, issue, counts)
                    issue = ready
                read = int(last_read[reg])
                if read >= issue:
                    self._emit(EventKind.WAR, issue, counts)
                    issue = read + 1

            # -- structural hazard: one unpipelined mul/div unit ----------
            if cls in _MULDIV and muldiv_free > issue:
                self._emit(EventKind.STRUCT, issue, counts)
                issue = muldiv_free

            self._emit(EventKind.ISSUE, issue, counts)
            done = issue + LATENCY.get(cls, 1)

            # -- branch prediction (conditional branches only) ------------
            if is_cond[i]:
                pc = int(trace.pc[i])
                counter = predictor.get(pc, 1)
                predicted = counter >= 2
                actual = taken[i] == 1
                if predicted == actual:
                    self._emit(EventKind.BHIT, done, counts)
                else:
                    self._emit(EventKind.BMISS, done, counts)
                    done += _BMISS_PENALTY
                counter = min(counter + 1, 3) if actual else max(counter - 1, 0)
                predictor[pc] = counter

            self._emit(EventKind.DONE, done, counts)

            # -- retire bookkeeping ---------------------------------------
            for reg in src_slots[i]:
                if reg == REG_NONE:
                    break
                if issue > last_read[reg]:
                    last_read[reg] = issue
            for reg in dst_slots[i]:
                if reg == REG_NONE:
                    break
                write_ready[reg] = done
            if cls in _MULDIV:
                muldiv_free = done
            cycle = issue
            self._emit(EventKind.COMMIT, done, counts)

        total = int(max(write_ready.max(), cycle))
        return ScoreboardReport(
            instructions=len(trace), cycles=total, events=counts
        )


def replay(trace: Trace, record_events: bool = False) -> ScoreboardReport:
    """Replay ``trace`` through a fresh :class:`Scoreboard`."""
    return Scoreboard(record_events=record_events).run(trace)
