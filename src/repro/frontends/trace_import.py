"""External trace ingestion: files in, :class:`TraceDataset`-ready out.

Lets the feature encoders and every model family run on workloads the
in-repo VMs never generated.  Two on-disk formats, both gzip-friendly
(a ``.gz`` suffix switches transparently) and both streamed line by
line:

**JSONL** — one object per dynamic instruction::

    {"pc": 4096, "op": "lw", "srcs": ["a0"], "dsts": ["a1"],
     "addr": 1048576, "taken": null, "target": -1, "fault": false}

**CSV** — header ``pc,op,srcs,dsts,addr,taken,target,fault``; the
``srcs``/``dsts`` cells join operands with ``;``.

Field semantics (JSONL keys == CSV columns):

===========  =========================================================
field        meaning
===========  =========================================================
``pc``       instruction address (required, non-negative int)
``op``       mnemonic in the ``--isa`` frontend's vocabulary, or a
             canonical opcode id given as an int
``srcs``     source operands: register tokens (``"a0"``, ``"r5"``) or
             canonical register ids (ints); at most 8
``dsts``     destination operands, same encoding; at most 6
``addr``     effective memory address (default -1 = not a memory op)
``taken``    ``true``/``false`` for branches, ``null``/empty otherwise
``target``   resolved control-transfer target pc (default -1)
``fault``    execution-fault flag (default false)
===========  =========================================================

Opcode and register names resolve through the ``isa`` frontend's
vocabulary (:meth:`Frontend.operation_id` / :meth:`register_id`), so a
trace recorded against either ISA maps onto the shared operation
classes.  Every malformed input — truncated file, unknown opcode,
out-of-range register, corrupt gzip — raises :class:`TraceImportError`
rendering ``path:line: message``; the file is parsed *completely* before
anything is written, so a failed import never leaves a cache artifact.

Published artifacts live under ``<cache>/imported/<name>/`` as
``trace.npz`` plus a ``manifest.json`` recording the source digest —
re-importing an unchanged file is a cache hit and changes nothing.
"""

from __future__ import annotations

import csv
import gzip
import hashlib
import io
import json
import os
import tempfile
import zlib
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.cache import imported_trace_dir
from repro.core.errors import UnknownExperimentError
from repro.isa.instructions import MAX_DST_SLOTS, MAX_SRC_SLOTS
from repro.isa.opcodes import NUM_OPCODES, OPCODE_BY_ID
from repro.isa.registers import NUM_REGS, REG_NONE
from repro.vm.trace import Trace, TraceBuilder

#: Bumped when the on-disk npz/manifest layout changes.
SCHEMA_VERSION = 1

_CSV_FIELDS = ("pc", "op", "srcs", "dsts", "addr", "taken", "target", "fault")


class TraceImportError(ValueError):
    """Malformed external trace, located as ``path:line: message``."""

    def __init__(
        self, message: str, path: str | None = None, lineno: int | None = None
    ):
        self.path = path
        self.lineno = lineno
        where = ""
        if path is not None:
            where = f"{path}:{lineno}: " if lineno is not None else f"{path}: "
        super().__init__(where + message)


# ---------------------------------------------------------------------------
# parsing
# ---------------------------------------------------------------------------
def _open_text(path: str) -> io.TextIOBase:
    if path.endswith(".gz"):
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def _operand_ids(values, frontend, what: str, limit: int, path, lineno):
    if values is None:
        return ()
    if not isinstance(values, (list, tuple)):
        raise TraceImportError(f"{what} must be a list", path, lineno)
    if len(values) > limit:
        raise TraceImportError(
            f"too many {what} operands ({len(values)} > {limit})", path, lineno
        )
    ids = []
    for value in values:
        if isinstance(value, bool):
            raise TraceImportError(f"bad {what} operand {value!r}", path, lineno)
        if isinstance(value, int):
            reg = value
        elif isinstance(value, str):
            try:
                reg = frontend.register_id(value)
            except ValueError:
                raise TraceImportError(
                    f"unknown register {value!r} in {what}", path, lineno
                ) from None
        else:
            raise TraceImportError(f"bad {what} operand {value!r}", path, lineno)
        if not 0 <= reg < NUM_REGS:
            raise TraceImportError(
                f"register id {reg} out of range [0, {NUM_REGS}) in {what}",
                path,
                lineno,
            )
        ids.append(reg)
    return tuple(ids)


def _int_field(record: dict, key: str, default: int, path, lineno) -> int:
    value = record.get(key, default)
    if value is None:
        return default
    if isinstance(value, bool) or not isinstance(value, int):
        raise TraceImportError(f"field {key!r} must be an int", path, lineno)
    return value


def _append_record(
    builder: TraceBuilder, record: dict, frontend, path: str, lineno: int
) -> None:
    pc = record.get("pc")
    if isinstance(pc, bool) or not isinstance(pc, int) or pc < 0:
        raise TraceImportError("field 'pc' must be a non-negative int", path, lineno)

    op = record.get("op")
    if isinstance(op, int) and not isinstance(op, bool):
        opid = op
        if not 0 <= opid < NUM_OPCODES:
            raise TraceImportError(
                f"opcode id {opid} out of range [0, {NUM_OPCODES})", path, lineno
            )
    elif isinstance(op, str):
        try:
            opid = frontend.operation_id(op)
        except KeyError:
            raise TraceImportError(
                f"unknown opcode {op!r} for isa {frontend.name!r}", path, lineno
            ) from None
    else:
        raise TraceImportError("field 'op' must be a mnemonic or int id", path, lineno)

    srcs = _operand_ids(
        record.get("srcs"), frontend, "srcs", MAX_SRC_SLOTS, path, lineno
    )
    dsts = _operand_ids(
        record.get("dsts"), frontend, "dsts", MAX_DST_SLOTS, path, lineno
    )
    taken = record.get("taken")
    if taken is not None and not isinstance(taken, bool):
        raise TraceImportError("field 'taken' must be a bool or null", path, lineno)
    fault = record.get("fault", False)
    if not isinstance(fault, bool):
        raise TraceImportError("field 'fault' must be a bool", path, lineno)

    builder.append(
        pc,
        opid,
        srcs + (REG_NONE,) * (MAX_SRC_SLOTS - len(srcs)),
        dsts + (REG_NONE,) * (MAX_DST_SLOTS - len(dsts)),
        mem_addr=_int_field(record, "addr", -1, path, lineno),
        taken=-1 if taken is None else int(taken),
        target=_int_field(record, "target", -1, path, lineno),
        fault=fault,
    )


def _jsonl_records(lines: Iterable[str], path: str) -> Iterator[tuple[int, dict]]:
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceImportError(
                f"invalid JSON ({exc.msg}) — truncated file?", path, lineno
            ) from None
        if not isinstance(record, dict):
            raise TraceImportError("each line must be a JSON object", path, lineno)
        yield lineno, record


def _csv_operands(cell: str) -> list:
    cell = (cell or "").strip()
    if not cell:
        return []
    out: list = []
    for token in cell.split(";"):
        token = token.strip()
        try:
            out.append(int(token, 0))
        except ValueError:
            out.append(token)
    return out


def _csv_records(lines: Iterable[str], path: str) -> Iterator[tuple[int, dict]]:
    reader = csv.reader(lines)
    try:
        header = next(reader)
    except StopIteration:
        return
    header = [cell.strip().lower() for cell in header]
    missing = [f for f in ("pc", "op") if f not in header]
    if missing:
        raise TraceImportError(
            f"CSV header missing required column(s) {missing}", path, 1
        )
    unknown = [cell for cell in header if cell not in _CSV_FIELDS]
    if unknown:
        raise TraceImportError(f"CSV header has unknown column(s) {unknown}", path, 1)
    for lineno, row in enumerate(reader, start=2):
        if not row or all(not cell.strip() for cell in row):
            continue
        if len(row) != len(header):
            raise TraceImportError(
                f"expected {len(header)} columns, got {len(row)} — truncated file?",
                path,
                lineno,
            )
        record: dict = {}
        for key, cell in zip(header, row):
            cell = cell.strip()
            if key in ("srcs", "dsts"):
                record[key] = _csv_operands(cell)
            elif key == "op":
                try:
                    record[key] = int(cell, 0)
                except ValueError:
                    record[key] = cell
            elif key == "taken":
                record[key] = None if cell == "" else cell.lower() in ("1", "true")
            elif key == "fault":
                record[key] = cell.lower() in ("1", "true")
            elif cell == "":
                continue
            else:
                try:
                    record[key] = int(cell, 0)
                except ValueError:
                    raise TraceImportError(
                        f"column {key!r} must be an int, got {cell!r}", path, lineno
                    ) from None
        yield lineno, record


def _base_format(path: str) -> str:
    base = path[:-3] if path.endswith(".gz") else path
    ext = os.path.splitext(base)[1].lower()
    if ext in (".jsonl", ".ndjson", ".json"):
        return "jsonl"
    if ext == ".csv":
        return "csv"
    raise TraceImportError(
        f"cannot infer format from extension {ext!r} (use .jsonl/.csv[.gz])", path
    )


def parse_trace(
    path: str,
    isa: str = "mini-asm",
    name: str | None = None,
    fmt: str | None = None,
    streaming: bool = True,
) -> Trace:
    """Parse an external trace file into a canonical :class:`Trace`.

    ``streaming=False`` reads the whole file into memory before parsing
    (measured against streaming by ``benchmarks/bench_frontend.py``);
    both modes produce identical traces.
    """
    from repro.frontends import get_frontend

    frontend = get_frontend(isa)
    if not frontend.has_vocabulary:
        raise TraceImportError(
            f"isa {isa!r} has no instruction vocabulary to map against "
            "(use a concrete ISA frontend such as 'mini-asm' or 'rv')",
            path,
        )
    fmt = fmt or _base_format(path)
    builder = TraceBuilder(name or _default_name(path))
    try:
        with _open_text(path) as handle:
            lines: Iterable[str] = handle if streaming else handle.read().splitlines()
            records = (
                _jsonl_records(lines, path)
                if fmt == "jsonl"
                else _csv_records(lines, path)
            )
            for lineno, record in records:
                _append_record(builder, record, frontend, path, lineno)
    except FileNotFoundError:
        raise TraceImportError("no such file", path) from None
    except (OSError, EOFError, zlib.error) as exc:
        # gzip.BadGzipFile is an OSError; mid-stream truncation is
        # EOFError; a corrupt deflate payload surfaces as zlib.error
        raise TraceImportError(
            f"unreadable input ({exc}) — corrupt gzip?", path, len(builder) + 1
        ) from None
    except UnicodeDecodeError:
        raise TraceImportError(
            "not valid UTF-8 text — corrupt or binary input?", path
        ) from None
    if len(builder) == 0:
        raise TraceImportError("trace contains no instructions", path)
    return builder.finalize()


def _default_name(path: str) -> str:
    base = os.path.basename(path)
    if base.endswith(".gz"):
        base = base[:-3]
    return os.path.splitext(base)[0]


# ---------------------------------------------------------------------------
# publishing (the import cache)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ImportResult:
    """Outcome of one :func:`import_trace` call."""

    name: str
    path: str  # published artifact directory
    rows: int
    digest: str  # sha256 of the source file bytes
    isa: str
    cache_hit: bool


def _file_digest(path: str) -> str:
    h = hashlib.sha256()
    try:
        with open(path, "rb") as handle:
            for chunk in iter(lambda: handle.read(1 << 20), b""):
                h.update(chunk)
    except FileNotFoundError:
        raise TraceImportError("no such file", path) from None
    return h.hexdigest()


def _manifest_path(artifact_dir: str) -> str:
    return os.path.join(artifact_dir, "manifest.json")


def import_trace(
    path: str,
    name: str | None = None,
    isa: str = "mini-asm",
    cache_dir: str | None = None,
    fmt: str | None = None,
    streaming: bool = True,
) -> ImportResult:
    """Validate, parse and publish an external trace under the cache.

    The source is parsed *fully* before any artifact is created, so a
    malformed file never leaves a partial import behind.  Re-importing a
    byte-identical source under the same name and isa is a no-op cache
    hit.  Unknown ``isa`` names raise
    :class:`~repro.core.errors.UnknownExperimentError` with suggestions.
    """
    name = name or _default_name(path)
    root = imported_trace_dir(cache_dir)
    artifact_dir = os.path.join(root, name)
    digest = _file_digest(path)

    manifest = _read_manifest(artifact_dir)
    if (
        manifest is not None
        and manifest.get("source_digest") == digest
        and manifest.get("isa") == isa
        and manifest.get("schema_version") == SCHEMA_VERSION
    ):
        return ImportResult(
            name, artifact_dir, int(manifest["rows"]), digest, isa, cache_hit=True
        )

    trace = parse_trace(path, isa=isa, name=name, fmt=fmt, streaming=streaming)

    os.makedirs(artifact_dir, exist_ok=True)
    _atomic_write(
        os.path.join(artifact_dir, "trace.npz"),
        lambda fh: np.savez_compressed(
            fh,
            pc=trace.pc,
            opid=trace.opid,
            src_slots=trace.src_slots,
            dst_slots=trace.dst_slots,
            mem_addr=trace.mem_addr,
            branch_taken=trace.branch_taken,
            branch_target=trace.branch_target,
            fault=trace.fault,
        ),
        binary=True,
    )
    payload = {
        "schema_version": SCHEMA_VERSION,
        "name": name,
        "isa": isa,
        "rows": len(trace),
        "source": os.path.abspath(path),
        "source_digest": digest,
    }
    # manifest last: its presence is what marks the artifact published
    _atomic_write(
        _manifest_path(artifact_dir),
        lambda fh: fh.write(json.dumps(payload, indent=2, sort_keys=True)),
    )
    return ImportResult(name, artifact_dir, len(trace), digest, isa, cache_hit=False)


def _atomic_write(path: str, writer, binary: bool = False) -> None:
    fd, tmp = tempfile.mkstemp(
        dir=os.path.dirname(path), prefix=os.path.basename(path) + ".tmp"
    )
    try:
        with os.fdopen(fd, "wb" if binary else "w") as handle:
            writer(handle)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def _read_manifest(artifact_dir: str) -> dict | None:
    try:
        with open(_manifest_path(artifact_dir), "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (FileNotFoundError, json.JSONDecodeError):
        return None


def list_imported(cache_dir: str | None = None) -> tuple[str, ...]:
    """Names of every published imported trace, sorted."""
    root = imported_trace_dir(cache_dir)
    if not os.path.isdir(root):
        return ()
    names = [
        entry
        for entry in os.listdir(root)
        if _read_manifest(os.path.join(root, entry)) is not None
    ]
    return tuple(sorted(names))


def load_imported(name: str, cache_dir: str | None = None) -> Trace:
    """Load a published imported trace by name."""
    root = imported_trace_dir(cache_dir)
    manifest = _read_manifest(os.path.join(root, name))
    if manifest is None:
        raise UnknownExperimentError(
            name, list_imported(cache_dir), kind="imported trace"
        )
    with np.load(os.path.join(root, name, "trace.npz")) as data:
        return Trace(
            name=name,
            pc=data["pc"],
            opid=data["opid"],
            src_slots=data["src_slots"],
            dst_slots=data["dst_slots"],
            mem_addr=data["mem_addr"],
            branch_taken=data["branch_taken"],
            branch_target=data["branch_target"],
            fault=data["fault"],
        )


# ---------------------------------------------------------------------------
# the frontend over published imports
# ---------------------------------------------------------------------------
from repro.frontends.base import Frontend  # noqa: E402  (after helpers on purpose)


class ImportedFrontend(Frontend):
    """Trace source backed by the published import cache.

    Benchmark names are the published import names; ``trace`` loads the
    stored arrays and truncates to the instruction cap.  Imports carry
    no instruction vocabulary of their own (their opcodes were already
    mapped at import time), so ``has_vocabulary`` is False and the
    importer refuses ``--isa imported``.
    """

    name = "imported"
    description = "externally produced traces ingested by `repro trace import`"
    has_vocabulary = False

    def benchmarks(self) -> tuple[str, ...]:
        return list_imported()

    def trace(
        self, benchmark: str, max_instructions: int, seed: int | None = None
    ) -> Trace:
        trace = load_imported(benchmark)
        if max_instructions < len(trace):
            return trace.head(max_instructions)
        return trace


# ---------------------------------------------------------------------------
# export (round-trips + example generation)
# ---------------------------------------------------------------------------
def export_trace(trace: Trace, path: str, fmt: str | None = None) -> int:
    """Write ``trace`` to ``path`` in the import schema; returns rows.

    Opcodes are written as canonical mnemonics and registers as
    canonical ids, so the output re-imports under any vocabulary
    frontend (the mini-ASM vocabulary *is* the canonical one).
    """
    fmt = fmt or _base_format(path)
    opener = (
        (lambda: io.TextIOWrapper(gzip.open(path, "wb"), encoding="utf-8"))
        if path.endswith(".gz")
        else (lambda: open(path, "w", encoding="utf-8"))
    )
    taken_map = {-1: None, 0: False, 1: True}
    with opener() as handle:
        if fmt == "csv":
            writer = csv.writer(handle)
            writer.writerow(_CSV_FIELDS)
        for i in range(len(trace)):
            srcs = [int(r) for r in trace.src_slots[i] if r != REG_NONE]
            dsts = [int(r) for r in trace.dst_slots[i] if r != REG_NONE]
            record = {
                "pc": int(trace.pc[i]),
                "op": OPCODE_BY_ID[int(trace.opid[i])].mnemonic,
                "srcs": srcs,
                "dsts": dsts,
                "addr": int(trace.mem_addr[i]),
                "taken": taken_map[int(trace.branch_taken[i])],
                "target": int(trace.branch_target[i]),
                "fault": bool(trace.fault[i]),
            }
            if fmt == "jsonl":
                handle.write(json.dumps(record) + "\n")
            else:
                writer.writerow(
                    [
                        record["pc"],
                        record["op"],
                        ";".join(str(r) for r in srcs),
                        ";".join(str(r) for r in dsts),
                        record["addr"],
                        "" if record["taken"] is None else str(record["taken"]).lower(),
                        record["target"],
                        str(record["fault"]).lower(),
                    ]
                )
    return len(trace)
