"""Instruction set architecture for the reproduction substrate.

The paper compiles SPEC CPU2017 to ARMv8 and traces it with gem5.  Offline we
cannot ship ARM binaries, so this package defines a small RISC-style ISA
("mini-ASM") with the structural properties PerfVec's feature set (Table I of
the paper) relies on:

* typed operation classes (int ALU/mul/div, FP add/mul/div, loads, stores,
  direct/indirect branches, barriers),
* up to 8 source and 6 destination register slots per instruction,
* register categories (zero, general, stack pointer, link, float),
* faults (divide by zero, misalignment) as recordable execution behaviour.

Programs are assembled from text (:class:`~repro.isa.assembler.Assembler`) or
built programmatically (:class:`~repro.workloads.builders.ProgramBuilder`) and
executed by :class:`~repro.vm.machine.Machine` to produce microarchitecture-
independent dynamic traces.
"""

from repro.isa.registers import (
    NUM_INT_REGS,
    NUM_FP_REGS,
    NUM_REGS,
    REG_NONE,
    RegCategory,
    fp_reg,
    int_reg,
    is_fp_reg,
    reg_category,
    reg_name,
    parse_reg,
)
from repro.isa.opcodes import (
    OpClass,
    OpSpec,
    OPCODES,
    OPCODE_IDS,
    OPCODE_BY_ID,
    opcode_id,
)
from repro.isa.instructions import AddressMode, Instruction
from repro.isa.program import CODE_BASE, DATA_BASE, Program
from repro.isa.assembler import Assembler, AssemblyError, assemble

__all__ = [
    "NUM_INT_REGS",
    "NUM_FP_REGS",
    "NUM_REGS",
    "REG_NONE",
    "RegCategory",
    "fp_reg",
    "int_reg",
    "is_fp_reg",
    "reg_category",
    "reg_name",
    "parse_reg",
    "OpClass",
    "OpSpec",
    "OPCODES",
    "OPCODE_IDS",
    "OPCODE_BY_ID",
    "opcode_id",
    "AddressMode",
    "Instruction",
    "CODE_BASE",
    "DATA_BASE",
    "Program",
    "Assembler",
    "AssemblyError",
    "assemble",
]
