"""Two-pass assembler for the mini-ASM.

Syntax example::

    .data
    vec:    .space 1024          ; 1024 zero bytes
    coef:   .double 0.5, 1.5
    n:      .word 128

    .text
    main:   movi r1, 0
            ld   r2, [r0 + n]
    loop:   fld  f1, [r3 + r1*8]
            fadd f2, f2, f1
            addi r1, r1, 1
            blt  r1, r2, loop
            halt

Comments start with ``;`` or ``#``.  Immediates are decimal/hex integers,
float literals (for ``fmovi``) or data/code labels (optionally ``label+N`` /
``label-N``).  Memory operands follow ``[base + index*scale + offset]`` with
any of the parts after ``base`` optional; a bare ``[label]`` or
``[label + r1*8]`` uses the zero register as base.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.isa.instructions import AddressMode, Instruction
from repro.isa.opcodes import OPCODES
from repro.isa.program import CODE_BASE, DATA_BASE, INST_BYTES, Program
from repro.isa.registers import LR, REG_NONE, parse_reg

_LABEL_RE = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")


class AssemblyError(ValueError):
    """Raised with file/line context on any assembly problem."""

    def __init__(self, message: str, lineno: int | None = None):
        prefix = f"line {lineno}: " if lineno is not None else ""
        super().__init__(prefix + message)
        self.lineno = lineno


@dataclass
class _Pending:
    """An instruction awaiting label resolution (pass 2)."""

    mnemonic: str
    operands: list[str]
    lineno: int


def _strip_comment(line: str) -> str:
    for marker in (";", "#"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def _parse_int(token: str) -> int:
    token = token.strip()
    neg = token.startswith("-")
    body = token[1:] if neg else token
    if body.lower().startswith("0x"):
        value = int(body, 16)
    elif body.isdigit():
        value = int(body)
    else:
        raise ValueError(f"not an integer: {token!r}")
    return -value if neg else value


class Assembler:
    """Assemble mini-ASM text into a :class:`Program`."""

    def __init__(self) -> None:
        self._labels: dict[str, int] = {}
        self._data: dict[int, int | float] = {}
        self._pending: list[_Pending] = []
        self._data_cursor = DATA_BASE
        self._section = "text"

    # ------------------------------------------------------------------
    # pass 1: collect labels, data image and raw instructions
    # ------------------------------------------------------------------
    def _define_label(self, label: str, value: int, lineno: int) -> None:
        if not _LABEL_RE.match(label):
            raise AssemblyError(f"invalid label name {label!r}", lineno)
        if label in self._labels:
            raise AssemblyError(f"duplicate label {label!r}", lineno)
        self._labels[label] = value

    def _current_address(self) -> int:
        if self._section == "text":
            return CODE_BASE + len(self._pending) * INST_BYTES
        return self._data_cursor

    def _handle_directive(self, directive: str, rest: str, lineno: int) -> None:
        if directive in (".data", ".text"):
            self._section = directive[1:]
            return
        if self._section != "data":
            raise AssemblyError(f"{directive} only allowed in .data", lineno)
        if directive == ".space":
            size = _parse_int(rest)
            if size < 0:
                raise AssemblyError("negative .space size", lineno)
            self._data_cursor += (size + 7) & ~7  # keep 8-byte alignment
        elif directive == ".word":
            for token in rest.split(","):
                self._data[self._data_cursor] = _parse_int(token)
                self._data_cursor += 8
        elif directive == ".double":
            for token in rest.split(","):
                self._data[self._data_cursor] = float(token.strip())
                self._data_cursor += 8
        elif directive == ".align":
            boundary = _parse_int(rest)
            if boundary <= 0 or boundary & (boundary - 1):
                raise AssemblyError("alignment must be a power of two", lineno)
            mask = boundary - 1
            self._data_cursor = (self._data_cursor + mask) & ~mask
        else:
            raise AssemblyError(f"unknown directive {directive}", lineno)

    def _first_pass(self, text: str) -> None:
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = _strip_comment(raw)
            if not line:
                continue
            # Leading labels (possibly several, e.g. "a: b: add ...").
            while True:
                match = re.match(r"^([A-Za-z_.$][A-Za-z0-9_.$]*)\s*:\s*", line)
                if not match:
                    break
                self._define_label(match.group(1), self._current_address(), lineno)
                line = line[match.end():]
            if not line:
                continue
            parts = line.split(None, 1)
            head, rest = parts[0], (parts[1] if len(parts) > 1 else "")
            if head.startswith("."):
                self._handle_directive(head, rest, lineno)
                continue
            if self._section != "text":
                raise AssemblyError("instruction outside .text", lineno)
            if head not in OPCODES:
                raise AssemblyError(f"unknown opcode {head!r}", lineno)
            operands = [tok.strip() for tok in rest.split(",")] if rest else []
            self._pending.append(_Pending(head, operands, lineno))

    # ------------------------------------------------------------------
    # pass 2: resolve operands
    # ------------------------------------------------------------------
    def _resolve_imm(self, token: str, lineno: int, allow_float: bool) -> int | float:
        token = token.strip()
        try:
            return _parse_int(token)
        except ValueError:
            pass
        if allow_float:
            try:
                return float(token)
            except ValueError:
                pass
        # label, label+N or label-N
        match = re.match(r"^([A-Za-z_.$][A-Za-z0-9_.$]*)\s*([+-]\s*\d+)?$", token)
        if match and match.group(1) in self._labels:
            value = self._labels[match.group(1)]
            if match.group(2):
                value += int(match.group(2).replace(" ", ""))
            return value
        raise AssemblyError(f"cannot resolve immediate {token!r}", lineno)

    def _resolve_target(self, token: str, lineno: int) -> int:
        value = self._resolve_imm(token, lineno, allow_float=False)
        if isinstance(value, float):
            raise AssemblyError("branch target cannot be float", lineno)
        return int(value)

    def _resolve_address(self, token: str, lineno: int) -> AddressMode:
        token = token.strip()
        if not (token.startswith("[") and token.endswith("]")):
            raise AssemblyError(f"expected memory operand, got {token!r}", lineno)
        inner = token[1:-1].strip()
        if not inner:
            raise AssemblyError("empty memory operand", lineno)
        # Split into signed terms on top-level +/-.
        terms = re.findall(r"([+-]?)\s*([^+\-\s][^+\-]*)", inner)
        base = REG_NONE
        index = REG_NONE
        scale = 1
        offset = 0
        for sign, body in terms:
            body = body.strip()
            negative = sign == "-"
            reg_match = re.match(r"^(r\d+|f\d+|sp|lr|zero)(?:\s*\*\s*([1248]))?$", body)
            if reg_match:
                if negative:
                    raise AssemblyError("registers cannot be negated in address", lineno)
                reg = parse_reg(reg_match.group(1))
                if reg_match.group(2):
                    if index != REG_NONE:
                        raise AssemblyError("two scaled index registers", lineno)
                    index, scale = reg, int(reg_match.group(2))
                elif base == REG_NONE:
                    base = reg
                elif index == REG_NONE:
                    index, scale = reg, 1
                else:
                    raise AssemblyError("too many registers in address", lineno)
                continue
            value = self._resolve_imm(body, lineno, allow_float=False)
            offset += -int(value) if negative else int(value)
        if base == REG_NONE:
            base = 0  # absolute addressing through the zero register
        return AddressMode(base=base, index=index, scale=scale, offset=offset)

    def _build(self, pending: _Pending) -> Instruction:
        spec = OPCODES[pending.mnemonic]
        if len(pending.operands) != len(spec.sig):
            raise AssemblyError(
                f"{spec.mnemonic} expects {len(spec.sig)} operands, "
                f"got {len(pending.operands)}",
                pending.lineno,
            )
        dsts: list[int] = []
        srcs: list[int] = []
        imm: int | float | None = None
        target: int | None = None
        mem: AddressMode | None = None
        for kind, token in zip(spec.sig, pending.operands):
            if kind in "dD":
                reg = parse_reg(token)
                expect_fp = kind == "D"
                if (reg >= 32) != expect_fp:
                    raise AssemblyError(
                        f"operand {token!r} has wrong register file", pending.lineno
                    )
                dsts.append(reg)
            elif kind in "sS":
                reg = parse_reg(token)
                expect_fp = kind == "S"
                if (reg >= 32) != expect_fp:
                    raise AssemblyError(
                        f"operand {token!r} has wrong register file", pending.lineno
                    )
                srcs.append(reg)
            elif kind == "i":
                imm = self._resolve_imm(
                    token, pending.lineno, allow_float=spec.mnemonic == "fmovi"
                )
            elif kind == "t":
                target = self._resolve_target(token, pending.lineno)
            elif kind == "m":
                mem = self._resolve_address(token, pending.lineno)
            else:  # pragma: no cover - table is static
                raise AssemblyError(f"bad sig char {kind!r}", pending.lineno)
        # Implicit link-register operands (kept out of the textual syntax).
        if spec.mnemonic == "call":
            dsts.append(LR)
        elif spec.mnemonic == "ret":
            srcs.append(LR)
        return Instruction(
            op=spec, dsts=tuple(dsts), srcs=tuple(srcs), imm=imm, target=target, mem=mem
        )

    # ------------------------------------------------------------------
    def assemble(self, text: str, name: str = "program") -> Program:
        """Assemble ``text`` and return the resulting :class:`Program`."""
        self._first_pass(text)
        if not self._pending:
            raise AssemblyError("no instructions in .text")
        code = [self._build(p) for p in self._pending]
        entry = self._labels.get("main", CODE_BASE)
        return Program(
            code=code, data=dict(self._data), symbols=dict(self._labels),
            entry=entry, name=name,
        )


def assemble(text: str, name: str = "program") -> Program:
    """Convenience wrapper: assemble ``text`` with a fresh :class:`Assembler`."""
    return Assembler().assemble(text, name=name)
