"""Static instruction representation.

An :class:`Instruction` is the assembled, label-resolved form consumed by the
functional VM and the timing simulator.  Source/destination registers are
stored as *global* register ids (see :mod:`repro.isa.registers`); each
instruction additionally precomputes the padded operand-slot tuples used by
the trace recorder so that the per-dynamic-instruction cost stays small.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import OpSpec
from repro.isa.registers import REG_NONE, reg_name

#: Operand-slot capacities from the paper's Table I.
MAX_SRC_SLOTS = 8
MAX_DST_SLOTS = 6


@dataclass(frozen=True)
class AddressMode:
    """``[base + index*scale + offset]`` data-memory addressing.

    ``base`` and ``index`` are global register ids (``index`` may be
    :data:`REG_NONE`), ``scale`` is one of 1/2/4/8 and ``offset`` a signed
    byte displacement.  Absolute addressing uses ``base = r0`` (zero).
    """

    base: int
    index: int = REG_NONE
    scale: int = 1
    offset: int = 0

    def __post_init__(self) -> None:
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"invalid scale: {self.scale}")
        if not 0 <= self.base < 32:
            raise ValueError("address base must be an integer register")
        if self.index != REG_NONE and not 0 <= self.index < 32:
            raise ValueError("address index must be an integer register")

    def registers(self) -> tuple[int, ...]:
        regs = [self.base]
        if self.index != REG_NONE:
            regs.append(self.index)
        return tuple(regs)

    def __str__(self) -> str:
        parts = [reg_name(self.base)]
        if self.index != REG_NONE:
            parts.append(
                reg_name(self.index) + (f"*{self.scale}" if self.scale != 1 else "")
            )
        if self.offset:
            parts.append(str(self.offset))
        return "[" + " + ".join(parts) + "]"


@dataclass(frozen=True)
class Instruction:
    """One static, label-resolved instruction."""

    op: OpSpec
    dsts: tuple[int, ...] = ()
    srcs: tuple[int, ...] = ()
    imm: int | float | None = None
    #: Resolved absolute target pc for direct control transfers.
    target: int | None = None
    mem: AddressMode | None = None
    #: Padded operand slots, precomputed for fast trace recording.
    src_slots: tuple[int, ...] = field(init=False, compare=False, repr=False)
    dst_slots: tuple[int, ...] = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        srcs = list(self.srcs)
        if self.mem is not None:
            srcs.extend(self.mem.registers())
        if len(srcs) > MAX_SRC_SLOTS:
            raise ValueError(f"too many source registers: {srcs}")
        if len(self.dsts) > MAX_DST_SLOTS:
            raise ValueError(f"too many destination registers: {self.dsts}")
        pad_s = tuple(srcs) + (REG_NONE,) * (MAX_SRC_SLOTS - len(srcs))
        pad_d = tuple(self.dsts) + (REG_NONE,) * (MAX_DST_SLOTS - len(self.dsts))
        object.__setattr__(self, "src_slots", pad_s)
        object.__setattr__(self, "dst_slots", pad_d)

    @property
    def all_srcs(self) -> tuple[int, ...]:
        """Explicit sources plus address-mode registers (unpadded)."""
        return tuple(r for r in self.src_slots if r != REG_NONE)

    def to_asm(self, symbols: dict[int, str] | None = None) -> str:
        """Assembly text for this instruction (labels via ``symbols``)."""
        parts: list[str] = []
        parts.extend(reg_name(d) for d in self.dsts)
        parts.extend(reg_name(s) for s in self.srcs)
        if self.imm is not None:
            parts.append(repr(self.imm) if isinstance(self.imm, float) else str(self.imm))
        if self.target is not None:
            if symbols and self.target in symbols:
                parts.append(symbols[self.target])
            else:
                parts.append(hex(self.target))
        if self.mem is not None:
            parts.append(str(self.mem))
        return self.op.mnemonic + (" " + ", ".join(parts) if parts else "")

    def __str__(self) -> str:
        return self.to_asm()
