"""Opcode table.

Every opcode carries an :class:`OpSpec` describing its operation class (used
by the timing models to pick a functional unit), its operand signature (used
by the assembler) and its control/memory behaviour (used by the feature
encoder to derive the 15 operation features of Table I).

Operand signature mini-language (``sig``):

=========  =====================================================
token      meaning
=========  =====================================================
``d``      integer destination register
``D``      fp destination register
``s``      integer source register
``S``      fp source register
``i``      immediate (integers or resolved data/code labels)
``m``      memory operand ``[base (+ index*scale) (+ offset)]``
``t``      branch target label (direct control transfer)
=========  =====================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class OpClass(enum.IntEnum):
    """Functional class of an instruction; selects execution resources."""

    INT_ALU = 0
    INT_MUL = 1
    INT_DIV = 2
    FP_ADD = 3
    FP_MUL = 4
    FP_DIV = 5
    LOAD = 6
    STORE = 7
    BRANCH = 8  # conditional, direct target
    JUMP = 9  # unconditional, direct target
    JUMP_IND = 10  # unconditional, indirect target (jr/ret)
    CALL = 11  # direct call, writes the link register
    BARRIER = 12  # memory barrier
    NOP = 13
    HALT = 14


#: Operation classes that transfer control.
CONTROL_CLASSES = frozenset(
    {OpClass.BRANCH, OpClass.JUMP, OpClass.JUMP_IND, OpClass.CALL}
)
#: Operation classes that access data memory.
MEMORY_CLASSES = frozenset({OpClass.LOAD, OpClass.STORE})


@dataclass(frozen=True)
class OpSpec:
    """Static description of one opcode."""

    mnemonic: str
    opclass: OpClass
    sig: str
    #: Condition evaluated by conditional branches ("eq", "ne", "lt", "ge").
    cond: str | None = None
    #: Loads/stores move fp data when True (``fld``/``fst``).
    fp_data: bool = False
    #: Filled in at registration time.
    opid: int = field(default=-1, compare=False)

    @property
    def is_branch(self) -> bool:
        return self.opclass in CONTROL_CLASSES

    @property
    def is_conditional(self) -> bool:
        return self.opclass is OpClass.BRANCH

    @property
    def is_direct(self) -> bool:
        return self.opclass in (OpClass.BRANCH, OpClass.JUMP, OpClass.CALL)

    @property
    def is_indirect(self) -> bool:
        return self.opclass is OpClass.JUMP_IND

    @property
    def is_mem(self) -> bool:
        return self.opclass in MEMORY_CLASSES

    @property
    def is_load(self) -> bool:
        return self.opclass is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.opclass is OpClass.STORE


def _specs() -> list[OpSpec]:
    A = OpClass.INT_ALU
    return [
        # --- integer ALU, register form -------------------------------
        OpSpec("add", A, "dss"),
        OpSpec("sub", A, "dss"),
        OpSpec("and", A, "dss"),
        OpSpec("or", A, "dss"),
        OpSpec("xor", A, "dss"),
        OpSpec("shl", A, "dss"),
        OpSpec("shr", A, "dss"),
        OpSpec("slt", A, "dss"),  # rd = rs1 < rs2 (signed)
        OpSpec("seq", A, "dss"),  # rd = rs1 == rs2
        OpSpec("min", A, "dss"),
        OpSpec("max", A, "dss"),
        OpSpec("mov", A, "ds"),
        # --- integer ALU, immediate form ------------------------------
        OpSpec("addi", A, "dsi"),
        OpSpec("subi", A, "dsi"),
        OpSpec("andi", A, "dsi"),
        OpSpec("ori", A, "dsi"),
        OpSpec("xori", A, "dsi"),
        OpSpec("shli", A, "dsi"),
        OpSpec("shri", A, "dsi"),
        OpSpec("slti", A, "dsi"),
        OpSpec("movi", A, "di"),
        # --- integer multiply / divide --------------------------------
        OpSpec("mul", OpClass.INT_MUL, "dss"),
        OpSpec("muli", OpClass.INT_MUL, "dsi"),
        OpSpec("div", OpClass.INT_DIV, "dss"),
        OpSpec("rem", OpClass.INT_DIV, "dss"),
        # --- floating point --------------------------------------------
        OpSpec("fadd", OpClass.FP_ADD, "DSS"),
        OpSpec("fsub", OpClass.FP_ADD, "DSS"),
        OpSpec("fmin", OpClass.FP_ADD, "DSS"),
        OpSpec("fmax", OpClass.FP_ADD, "DSS"),
        OpSpec("fneg", OpClass.FP_ADD, "DS"),
        OpSpec("fabs", OpClass.FP_ADD, "DS"),
        OpSpec("fmov", OpClass.FP_ADD, "DS"),
        OpSpec("fmul", OpClass.FP_MUL, "DSS"),
        OpSpec("fma", OpClass.FP_MUL, "DSSS"),  # fd = fa * fb + fc
        OpSpec("fdiv", OpClass.FP_DIV, "DSS"),
        OpSpec("fsqrt", OpClass.FP_DIV, "DS"),
        OpSpec("itof", OpClass.FP_ADD, "Ds"),  # int -> fp convert
        OpSpec("ftoi", OpClass.FP_ADD, "dS"),  # fp -> int (truncate)
        OpSpec("fcmplt", OpClass.FP_ADD, "dSS"),  # rd = fs1 < fs2
        OpSpec("fmovi", OpClass.FP_ADD, "Di"),  # fp load-immediate
        # --- memory -----------------------------------------------------
        OpSpec("ld", OpClass.LOAD, "dm"),
        OpSpec("fld", OpClass.LOAD, "Dm", fp_data=True),
        OpSpec("st", OpClass.STORE, "sm"),
        OpSpec("fst", OpClass.STORE, "Sm", fp_data=True),
        # --- control ----------------------------------------------------
        OpSpec("beq", OpClass.BRANCH, "sst", cond="eq"),
        OpSpec("bne", OpClass.BRANCH, "sst", cond="ne"),
        OpSpec("blt", OpClass.BRANCH, "sst", cond="lt"),
        OpSpec("bge", OpClass.BRANCH, "sst", cond="ge"),
        OpSpec("beqz", OpClass.BRANCH, "st", cond="eqz"),
        OpSpec("bnez", OpClass.BRANCH, "st", cond="nez"),
        OpSpec("jmp", OpClass.JUMP, "t"),
        OpSpec("jr", OpClass.JUMP_IND, "s"),
        OpSpec("call", OpClass.CALL, "t"),
        OpSpec("ret", OpClass.JUMP_IND, ""),
        # --- misc -------------------------------------------------------
        OpSpec("fence", OpClass.BARRIER, ""),
        OpSpec("nop", OpClass.NOP, ""),
        OpSpec("halt", OpClass.HALT, ""),
    ]


def _register() -> tuple[dict[str, OpSpec], dict[str, int], list[OpSpec]]:
    table: dict[str, OpSpec] = {}
    ids: dict[str, int] = {}
    by_id: list[OpSpec] = []
    for opid, spec in enumerate(_specs()):
        object.__setattr__(spec, "opid", opid)
        table[spec.mnemonic] = spec
        ids[spec.mnemonic] = opid
        by_id.append(spec)
    return table, ids, by_id


#: mnemonic -> OpSpec
OPCODES, OPCODE_IDS, OPCODE_BY_ID = _register()

#: Total number of opcodes (used for feature scaling and embeddings).
NUM_OPCODES = len(OPCODE_BY_ID)


def opcode_id(mnemonic: str) -> int:
    """Numeric id of a mnemonic (raises ``KeyError`` for unknown ops)."""
    return OPCODE_IDS[mnemonic]
