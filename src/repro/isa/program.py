"""Program container: code, initial data image and symbols.

Layout mirrors a conventional flat binary: code starts at :data:`CODE_BASE`
with 4-byte instruction slots; the data segment starts at :data:`DATA_BASE`
and holds 8-byte words.  The VM loads the data image before execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import Instruction

#: Base virtual address of the code segment (instructions are 4 bytes).
CODE_BASE = 0x1000
#: Base virtual address of the data segment (8-byte words).
DATA_BASE = 0x10_0000
#: Default top-of-stack; the VM initialises ``sp`` here (grows down).
STACK_TOP = 0x80_0000

#: Instruction size in bytes (fixed-width encoding).
INST_BYTES = 4


@dataclass
class Program:
    """An assembled program ready for execution."""

    code: list[Instruction]
    #: Initial data image: byte address -> 64-bit word value (ints are raw,
    #: floats are stored bit-cast by the VM's memory).
    data: dict[int, int | float] = field(default_factory=dict)
    #: label -> address (code labels map into the code segment).
    symbols: dict[str, int] = field(default_factory=dict)
    entry: int = CODE_BASE
    name: str = "program"

    def __post_init__(self) -> None:
        if not self.code:
            raise ValueError("program has no instructions")

    def __len__(self) -> int:
        return len(self.code)

    def pc_of(self, index: int) -> int:
        """Virtual pc of the instruction at ``index``."""
        return CODE_BASE + index * INST_BYTES

    def index_of(self, pc: int) -> int:
        """Code index of a virtual pc (raises for out-of-segment pcs)."""
        offset = pc - CODE_BASE
        index, rem = divmod(offset, INST_BYTES)
        if rem or not 0 <= index < len(self.code):
            raise ValueError(f"pc outside code segment: {pc:#x}")
        return index

    def symbol(self, name: str) -> int:
        return self.symbols[name]

    def listing(self) -> str:
        """Human-readable disassembly with resolved label names."""
        by_addr = {addr: lbl for lbl, addr in self.symbols.items()}
        lines = []
        for i, inst in enumerate(self.code):
            pc = self.pc_of(i)
            label = by_addr.get(pc)
            if label is not None:
                lines.append(f"{label}:")
            lines.append(f"  {pc:#08x}  {inst.to_asm(by_addr)}")
        return "\n".join(lines)
