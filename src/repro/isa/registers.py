"""Register file specification.

The ISA exposes 32 integer registers (``r0``-``r31``) and 32 floating-point
registers (``f0``-``f31``).  Register *categories* mirror the paper's Table I,
which feeds "indices and categories for 8 source and 6 destination registers"
to the instruction representation model:

==========  =========================================
category    registers
==========  =========================================
ZERO        ``r0`` (hardwired zero; writes discarded)
GENERAL     ``r1``-``r27``, ``r29``, ``r30``
STACK       ``r28`` (conventional stack pointer)
LINK        ``r31`` (link register written by ``call``)
FLOAT       ``f0``-``f31``
==========  =========================================

Registers are referred to throughout the code base by a single *global id*:
integer register ``i`` has id ``i`` and floating-point register ``i`` has id
``32 + i``.  The sentinel :data:`REG_NONE` (-1) pads unused operand slots.
"""

from __future__ import annotations

import enum

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_REGS = NUM_INT_REGS + NUM_FP_REGS

#: Sentinel for "no register in this operand slot".
REG_NONE = -1

#: Conventional stack pointer (matches the workload builders).
SP = 28
#: Link register written by ``call`` and read by ``ret``.
LR = 31


class RegCategory(enum.IntEnum):
    """Coarse register role, one of the per-slot features of Table I."""

    NONE = 0
    ZERO = 1
    GENERAL = 2
    STACK = 3
    LINK = 4
    FLOAT = 5


def int_reg(index: int) -> int:
    """Global id of integer register ``index``."""
    if not 0 <= index < NUM_INT_REGS:
        raise ValueError(f"integer register index out of range: {index}")
    return index


def fp_reg(index: int) -> int:
    """Global id of floating-point register ``index``."""
    if not 0 <= index < NUM_FP_REGS:
        raise ValueError(f"fp register index out of range: {index}")
    return NUM_INT_REGS + index


def is_fp_reg(reg: int) -> bool:
    """Whether global register id ``reg`` names a floating-point register."""
    return NUM_INT_REGS <= reg < NUM_REGS


def reg_category(reg: int) -> RegCategory:
    """Category of a global register id (``REG_NONE`` maps to ``NONE``)."""
    if reg == REG_NONE:
        return RegCategory.NONE
    if reg == 0:
        return RegCategory.ZERO
    if reg == SP:
        return RegCategory.STACK
    if reg == LR:
        return RegCategory.LINK
    if is_fp_reg(reg):
        return RegCategory.FLOAT
    if 0 < reg < NUM_INT_REGS:
        return RegCategory.GENERAL
    raise ValueError(f"invalid register id: {reg}")


def reg_name(reg: int) -> str:
    """Assembly name of a global register id."""
    if reg == REG_NONE:
        return "-"
    if is_fp_reg(reg):
        return f"f{reg - NUM_INT_REGS}"
    if 0 <= reg < NUM_INT_REGS:
        return f"r{reg}"
    raise ValueError(f"invalid register id: {reg}")


def parse_reg(token: str) -> int:
    """Parse an assembly register token (``r5``, ``f12``, ``sp``, ``lr``)."""
    token = token.strip().lower()
    if token == "sp":
        return SP
    if token == "lr":
        return LR
    if token == "zero":
        return 0
    if len(token) >= 2 and token[0] in "rf" and token[1:].isdigit():
        index = int(token[1:])
        return int_reg(index) if token[0] == "r" else fp_reg(index)
    raise ValueError(f"not a register: {token!r}")
