"""``repro.jit`` — a trace-and-specialize compilation tier for the ML hot
loops.

The hand-written numpy LSTM/GRU kernels in :mod:`repro.ml.inference`
are interpreter-bound per timestep: every step pays python-level
slicing, temporary allocation and generic-shape dispatch.  This package
removes that tax the way a tracing JIT would — by **specializing**: the
first time a kernel shape ``(op kind, layer dims, batch, seq, dtype)``
is dispatched, a fused, shape-specialized Python/numpy module is
generated (:mod:`repro.jit.codegen`), ``exec``-compiled once and served
from a two-level cache (:mod:`repro.jit.cache`) — an in-process
registry plus a content-addressed on-disk tier under ``<cache>/jit/``
that spawned cluster workers and :class:`~repro.runtime.pool.ParallelMap`
children reuse instead of re-specializing.

The numpy reference kernels stay the always-on fallback: JIT off, an
unsupported shape, or a failed compile all serve reference results, and
the parity suite pins compiled outputs to the reference at ≤ 1e-6.

Control surface (highest priority first):

1. a :func:`context` override — ``Session(jit=...)`` wraps its engine
   calls in one, scoped to the calling thread;
2. the ``REPRO_JIT`` environment variable (``0``/``false``/``no``/
   ``off`` disable; anything else enables) — exported by the CLI's
   ``--jit/--no-jit`` so spawned workers inherit it;
3. the default: **enabled**.

Observability: :func:`stats` snapshots compile counts, registry/disk
hits and per-signature call timings (surfaced via ``GET /v1/stats`` and
``repro models show``); :func:`disk_summary` lists what is published
under the cache root.
"""

from __future__ import annotations

import contextlib
import os
import threading
from typing import Callable, Iterator

from repro.jit.cache import (
    clear_registry,
    disk_path,
    disk_summary,
    registry_size,
)
from repro.jit.cache import kernel_for as _cached_kernel_for
from repro.jit.codegen import UNROLL_LIMIT, generate
from repro.jit.signature import GENERATOR_VERSION, KernelSignature
from repro.jit.stats import STATS

#: Environment variable controlling the process-wide default.
JIT_ENV = "REPRO_JIT"

#: Values of :data:`JIT_ENV` that disable the compiled tier.
_FALSY = ("0", "false", "no", "off")

_local = threading.local()


def _stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def enabled() -> bool:
    """Is the compiled tier on for the current thread right now?"""
    for override, _root in reversed(_stack()):
        if override is not None:
            return override
    value = os.environ.get(JIT_ENV)
    if value is not None:
        return value.strip().lower() not in _FALSY
    return True


def active_cache_root() -> str | None:
    """Scoped cache-root override (``Session(cache_dir=...)``), if any."""
    for _override, root in reversed(_stack()):
        if root is not None:
            return root
    return None


@contextlib.contextmanager
def context(
    enabled: bool | None = None, cache_dir: str | None = None
) -> Iterator[None]:
    """Scope a JIT enable/disable and/or cache root to a ``with`` block.

    ``None`` leaves the surrounding setting in force, so callers can
    thread optional per-session knobs straight through.  Thread-local:
    concurrent serving threads don't see each other's overrides.
    """
    _stack().append((enabled, cache_dir))
    try:
        yield
    finally:
        _stack().pop()


def set_enabled(value: bool | None) -> None:
    """Process-wide default (the CLI's ``--jit/--no-jit``).

    Exported through :data:`JIT_ENV` so worker processes spawned by
    :mod:`repro.runtime` and :mod:`repro.serving.cluster` resolve the
    same setting.  ``None`` is a no-op (flag not given)."""
    if value is None:
        return
    os.environ[JIT_ENV] = "1" if value else "0"


def kernel_for(
    kind: str,
    input_size: int,
    hidden_size: int,
    batch: int,
    time: int,
    dtype: str = "float32",
) -> Callable | None:
    """The compiled kernel for a dispatch site — or None for "use the
    reference path" (JIT off, unsupported signature, failed compile)."""
    if not enabled():
        STATS.record_disabled()
        return None
    try:
        sig = KernelSignature(
            kind=kind, input_size=input_size, hidden_size=hidden_size,
            batch=batch, time=time, dtype=dtype,
        )
    except ValueError:
        return None
    return _cached_kernel_for(sig, cache_root=active_cache_root())


def stats() -> dict:
    """JSON-ready snapshot of this process's JIT activity."""
    return {"enabled": enabled(), **STATS.snapshot()}


def reset_stats() -> None:
    STATS.reset()


__all__ = [
    "GENERATOR_VERSION",
    "JIT_ENV",
    "KernelSignature",
    "UNROLL_LIMIT",
    "active_cache_root",
    "clear_registry",
    "context",
    "disk_path",
    "disk_summary",
    "enabled",
    "generate",
    "kernel_for",
    "registry_size",
    "reset_stats",
    "set_enabled",
    "stats",
]
