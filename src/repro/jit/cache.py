"""Two-level kernel cache: in-process registry + ``<cache>/jit/`` on disk.

Lookup order for a signature:

1. **registry** — compiled callables living in this process, keyed by
   the signature's content address.  Every later call in the process is
   a dict hit;
2. **disk** — ``<cache>/jit/<key>.py`` holds the *published source* of
   a previously generated kernel.  A hit is exec-compiled (cheap)
   without re-running the generator, which is what lets spawned cluster
   workers and :class:`~repro.runtime.pool.ParallelMap` children reuse
   the parent's specializations;
3. **generate** — :mod:`repro.jit.codegen` emits fresh source, which is
   compiled, registered and atomically published (tmp file +
   ``os.replace``, the :mod:`repro.ml.serialize` pattern) so concurrent
   writers race benignly: one wins the rename, the rest overwrite with
   byte-identical content.

Disk entries are validated by the meta line the generator embeds
(signature + generator version): stale-version, foreign-signature or
corrupt files are *ignored* — treated as a miss and overwritten — never
an error.  The cache directory respects ``REPRO_CACHE_DIR`` /
``--cache-dir`` through :func:`repro.cache.jit_cache_dir`, exactly like
``features/`` and ``stages/``.

A signature whose generation or compilation fails is blacklisted for
the life of the process (the reference kernels serve it) and counted in
the stats — the compiled tier must never take serving down.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Callable

from repro.cache import jit_cache_dir
from repro.jit.codegen import META_PREFIX, generate
from repro.jit.signature import GENERATOR_VERSION, KernelSignature
from repro.jit.stats import STATS

_registry: dict[str, Callable] = {}
_failed: set[str] = set()
_lock = threading.Lock()


def clear_registry() -> None:
    """Drop every in-process kernel (tests; disk entries survive)."""
    with _lock:
        _registry.clear()
        _failed.clear()


def registry_size() -> int:
    with _lock:
        return len(_registry)


def disk_path(sig: KernelSignature, cache_root: str | None = None) -> str:
    """Where ``sig``'s published source lives under the cache root."""
    return os.path.join(jit_cache_dir(cache_root), f"{sig.key()}.py")


def _parse_meta(source: str) -> dict | None:
    for line in source.splitlines()[:16]:
        if line.startswith(META_PREFIX):
            try:
                return json.loads(line[len(META_PREFIX):])
            except ValueError:
                return None
    return None


def _load_source(path: str, sig: KernelSignature) -> str | None:
    """Published source for ``sig`` — or None when missing, written by a
    different generator version, mismatched or corrupt (all misses)."""
    try:
        with open(path) as fh:
            source = fh.read()
    except OSError:
        return None
    meta = _parse_meta(source)
    if not meta or meta.get("generator_version") != GENERATOR_VERSION:
        return None
    if meta.get("signature") != sig.to_dict():
        return None
    return source


def _publish(path: str, source: str) -> None:
    """Atomic publish: a reader sees the whole module or nothing."""
    os.makedirs(os.path.dirname(path), exist_ok=True)
    tmp = f"{path}.{os.getpid()}.{threading.get_ident()}.tmp"
    try:
        with open(tmp, "w") as fh:
            fh.write(source)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)


def _compile(source: str, key: str) -> Callable:
    namespace: dict = {}
    code = compile(source, f"<repro-jit:{key}>", "exec")
    exec(code, namespace)
    return namespace["kernel"]


def _timed(sig: KernelSignature, fn: Callable) -> Callable:
    def kernel(*args):
        start = time.perf_counter()
        out = fn(*args)
        STATS.record_call(sig, time.perf_counter() - start)
        return out

    return kernel


def kernel_for(
    sig: KernelSignature, cache_root: str | None = None
) -> Callable | None:
    """The compiled kernel for ``sig`` — or None when compilation failed
    (callers fall back to the reference path)."""
    key = sig.key()
    with _lock:
        fn = _registry.get(key)
        if fn is not None:
            STATS.record_registry_hit()
            return fn
        if key in _failed:
            return None
    # Compile outside the lock: compiles are rare and a racing duplicate
    # produces byte-identical source, so the work is merely redundant.
    start = time.perf_counter()
    try:
        path = disk_path(sig, cache_root)
        source = _load_source(path, sig)
        from_disk = source is not None
        if source is None:
            source = generate(sig)
        raw = _compile(source, key)
        if not from_disk:
            try:
                _publish(path, source)
            except OSError:
                pass  # the disk tier is an optimization, not a dependency
    except Exception:
        STATS.record_error()
        with _lock:
            _failed.add(key)
        return None
    STATS.record_compile(sig, time.perf_counter() - start, from_disk)
    wrapped = _timed(sig, raw)
    with _lock:
        return _registry.setdefault(key, wrapped)


def disk_summary(cache_root: str | None = None) -> dict:
    """What's published under ``<cache>/jit/`` (for ``repro models show``).

    Stale or unreadable entries are counted, not raised."""
    directory = jit_cache_dir(cache_root)
    kernels: list[dict] = []
    stale = 0
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        names = []
    for name in names:
        if not name.endswith(".py"):
            continue
        path = os.path.join(directory, name)
        try:
            with open(path) as fh:
                meta = _parse_meta(fh.read())
            size = os.path.getsize(path)
        except OSError:
            continue
        if not meta or meta.get("generator_version") != GENERATOR_VERSION:
            stale += 1
            continue
        try:
            sig = KernelSignature.from_dict(meta["signature"])
        except (KeyError, TypeError, ValueError):
            stale += 1
            continue
        kernels.append({
            "key": name[:-3],
            "label": sig.label,
            "signature": sig.to_dict(),
            "bytes": size,
        })
    return {
        "dir": directory,
        "generator_version": GENERATOR_VERSION,
        "kernels": kernels,
        "stale": stale,
    }
