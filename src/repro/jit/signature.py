"""Kernel signatures: the unit of specialization.

A :class:`KernelSignature` pins everything the code generator bakes into
an emitted module — op kind, layer dimensions, batch and sequence
length, dtype — plus the generator version.  Two call sites with equal
signatures share one compiled kernel; anything else is a different
kernel.  The signature's :meth:`key` is the content address used by both
cache levels (the in-process registry and ``<cache>/jit/`` on disk), so
bumping :data:`GENERATOR_VERSION` retires every previously published
artifact without touching it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass

#: Bump whenever generated code changes shape or numerics: old disk
#: entries stop matching any key and are ignored (never loaded, never a
#: crash).
GENERATOR_VERSION = 2

#: Op kinds the generator knows how to emit.
KINDS = ("lstm", "gru")


@dataclass(frozen=True)
class KernelSignature:
    """One shape-specialized kernel: ``(kind, dims, batch, seq, dtype)``."""

    kind: str  # "lstm" | "gru"
    input_size: int
    hidden_size: int
    batch: int
    time: int
    dtype: str = "float32"

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown kernel kind {self.kind!r}; "
                             f"expected one of {KINDS}")
        for field in ("input_size", "hidden_size", "batch", "time"):
            if getattr(self, field) < 1:
                raise ValueError(f"{field} must be positive")
        if self.dtype != "float32":
            raise ValueError(
                f"unsupported dtype {self.dtype!r}: the ml substrate is "
                "float32 end to end"
            )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "KernelSignature":
        return cls(**payload)

    def key(self, generator_version: int = GENERATOR_VERSION) -> str:
        """Content address: signature fields + generator version."""
        identity = json.dumps(
            {**self.to_dict(), "generator_version": generator_version},
            sort_keys=True,
        )
        return hashlib.sha256(identity.encode()).hexdigest()[:16]

    @property
    def label(self) -> str:
        """Human-readable form (stats, ``repro models show``)."""
        return (f"{self.kind} f{self.input_size} h{self.hidden_size} "
                f"b{self.batch} t{self.time} {self.dtype}")
