"""Process-local JIT counters: compiles, cache hits, per-signature timing.

One global, lock-guarded :class:`JitStats` instance records what the
compilation tier did in this process.  It is surfaced through
``GET /v1/stats`` (per serving worker), ``repro models show`` and the
benchmark reports, so a run can always answer "did this actually serve
compiled kernels, and how often did the disk cache save a compile?".
"""

from __future__ import annotations

import threading

from repro.jit.signature import KernelSignature
from repro.obs.metrics import REGISTRY


def _event(kind: str):
    return REGISTRY.counter(
        "repro_jit_events_total",
        "JIT tier events by kind (compiles, cache hits, fallbacks).",
        kind=kind,
    )


class JitStats:
    """Counters + per-signature call/compile timings (thread-safe)."""

    def __init__(self):
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        with self._lock:
            self.compiles = 0  # generated + exec-compiled here
            self.registry_hits = 0  # served from the in-process registry
            self.disk_hits = 0  # source reused from <cache>/jit/
            self.errors = 0  # codegen/compile failures (fell back)
            self.disabled_calls = 0  # dispatches while JIT was off
            self._signatures: dict[str, dict] = {}

    # -- recording --------------------------------------------------------
    def _entry(self, sig: KernelSignature) -> dict:
        key = sig.key()
        entry = self._signatures.get(key)
        if entry is None:
            entry = self._signatures[key] = {
                "signature": sig.to_dict(),
                "label": sig.label,
                "calls": 0,
                "seconds": 0.0,
                "compile_seconds": 0.0,
                "source": None,  # "compiled" | "disk"
            }
        return entry

    def record_compile(
        self, sig: KernelSignature, seconds: float, from_disk: bool
    ) -> None:
        with self._lock:
            entry = self._entry(sig)
            entry["compile_seconds"] += seconds
            entry["source"] = "disk" if from_disk else "compiled"
            if from_disk:
                self.disk_hits += 1
            else:
                self.compiles += 1
        _event("disk_hit" if from_disk else "compile").inc()
        REGISTRY.histogram(
            "repro_jit_compile_seconds",
            "Time to produce (or reload) one compiled kernel.",
        ).observe(seconds)

    def record_call(self, sig: KernelSignature, seconds: float) -> None:
        with self._lock:
            entry = self._entry(sig)
            entry["calls"] += 1
            entry["seconds"] += seconds
        REGISTRY.histogram(
            "repro_jit_call_seconds",
            "Compiled kernel call durations.",
        ).observe(seconds)

    def record_registry_hit(self) -> None:
        with self._lock:
            self.registry_hits += 1
        _event("registry_hit").inc()

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1
        _event("error").inc()

    def record_disabled(self) -> None:
        with self._lock:
            self.disabled_calls += 1
        _event("disabled_call").inc()

    # -- reporting --------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-ready copy of every counter and per-signature row."""
        with self._lock:
            return {
                "compiles": self.compiles,
                "registry_hits": self.registry_hits,
                "disk_hits": self.disk_hits,
                "errors": self.errors,
                "disabled_calls": self.disabled_calls,
                "kernel_calls": sum(
                    entry["calls"] for entry in self._signatures.values()
                ),
                "signatures": {
                    key: dict(entry)
                    for key, entry in self._signatures.items()
                },
            }


#: The process-wide instance (see :func:`repro.jit.stats`).
STATS = JitStats()
