"""A small NumPy deep-learning framework.

The paper trains PerfVec with PyTorch on A100 GPUs; that stack is not
available offline, so this package implements the required subset from
scratch: a reverse-mode autodiff engine (:mod:`~repro.ml.autograd`), the
layer zoo the paper's architecture ablation sweeps (Linear, MLP, LSTM, GRU,
biLSTM, Transformer encoder), Adam with step decay, sequence data loaders
and a best-on-validation training loop.  Gradients are verified against
finite differences in the test suite.
"""

from repro.ml.autograd import Tensor, concat, no_grad, stack
from repro.ml.inference import (
    gru_infer,
    iter_chunk_batches,
    lstm_infer,
    stable_sigmoid,
)
from repro.ml.layers import (
    MLP,
    Dropout,
    LayerNorm,
    Linear,
    Module,
    ReLU,
    Sequential,
    Tanh,
)
from repro.ml.recurrent import GRU, LSTM
from repro.ml.attention import MultiHeadAttention, TransformerEncoder
from repro.ml.optim import SGD, Adam, StepLR
from repro.ml.data import ChunkBatches, split_chunks
from repro.ml.trainer import TrainConfig, Trainer
from repro.ml.serialize import load_state, save_state

__all__ = [
    "Tensor", "concat", "no_grad", "stack",
    "gru_infer", "iter_chunk_batches", "lstm_infer", "stable_sigmoid",
    "MLP", "Dropout", "LayerNorm", "Linear", "Module", "ReLU", "Sequential",
    "Tanh",
    "GRU", "LSTM",
    "MultiHeadAttention", "TransformerEncoder",
    "SGD", "Adam", "StepLR",
    "ChunkBatches", "split_chunks",
    "TrainConfig", "Trainer",
    "load_state", "save_state",
]
