"""Shared gate math: the single source of truth for activation kernels.

Three consumers need *identical* numerics for the recurrent gate
nonlinearities:

* the autograd engine (:meth:`repro.ml.autograd.Tensor.sigmoid`) — the
  training forward;
* the hand-fused reference kernels in :mod:`repro.ml.inference` — the
  always-on no-grad serving path;
* the code generator in :mod:`repro.jit` — whose emitted modules import
  the in-place variants below directly.

Keeping every formulation here means a numerical change lands in all
three paths at once (and the parity suite pins them to each other).
:func:`stable_sigmoid_` performs exactly the same element-wise
operations as the allocating :func:`stable_sigmoid` — ``where(x >= 0,
1/(1+e), e/(1+e))`` with ``e = exp(-|x|)``.  The JIT tier uses
:func:`fast_sigmoid_`, the direct form, which trades a few ulps (and an
exact 0.0 where the stable form returns a denormal) for half the
operation count — well inside the suite's 1e-6 parity bar.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "fast_sigmoid_",
    "sigmoid_scratch",
    "stable_sigmoid",
    "stable_sigmoid_",
]


def stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable sigmoid matching ``Tensor.sigmoid`` exactly.

    Piecewise formulation that never exponentiates a positive argument:
    ``1 / (1 + e)`` for ``x >= 0`` and ``e / (1 + e)`` otherwise, with
    ``e = exp(-|x|)``.
    """
    e = np.exp(-np.abs(x))
    out = np.where(x >= 0, 1.0 / (1.0 + e), e / (1.0 + e))
    return out.astype(x.dtype, copy=False)


def sigmoid_scratch(
    shape: tuple[int, ...], dtype=np.float32
) -> tuple[np.ndarray, np.ndarray]:
    """Preallocated ``(e, mask)`` scratch for :func:`stable_sigmoid_`."""
    return np.empty(shape, dtype=dtype), np.empty(shape, dtype=bool)


def stable_sigmoid_(
    x: np.ndarray, e: np.ndarray, mask: np.ndarray
) -> np.ndarray:
    """In-place :func:`stable_sigmoid` over ``x`` using caller scratch.

    ``e`` (same shape/dtype as ``x``) and ``mask`` (same shape, bool)
    are scratch buffers so repeated calls — one per timestep in a
    compiled kernel — allocate nothing.  Element-for-element the same
    operations as :func:`stable_sigmoid`: the numerator is 1 where
    ``x >= 0`` and ``e`` elsewhere, then one division by ``1 + e``.
    """
    np.abs(x, out=e)
    np.negative(e, out=e)
    np.exp(e, out=e)  # e = exp(-|x|)
    np.greater_equal(x, 0.0, out=mask)
    np.copyto(x, e)
    np.copyto(x, 1.0, where=mask)  # numerator: 1 where x >= 0, else e
    e += 1.0  # denominator: 1 + e
    x /= e
    return x


def fast_sigmoid_(x: np.ndarray, e: np.ndarray) -> np.ndarray:
    """In-place direct sigmoid ``1 / (1 + exp(-x))`` — the JIT-tier gate.

    Half the operation count of :func:`stable_sigmoid_` (no piecewise
    select), at the cost of overflowing ``exp`` for very negative gate
    pre-activations: there ``exp(-x)`` saturates to ``inf`` and the
    reciprocal returns exactly ``0.0``, while the stable form returns a
    denormal ``~1e-40`` — an absolute difference far below the 1e-6
    parity bar.  Everywhere else the two differ by at most a couple of
    ulps.  Callers must run under ``np.errstate(over="ignore")`` (the
    generated kernels wrap their whole time loop in one).

    ``e`` is same-shape scratch; the result lands in ``x``.
    """
    np.negative(x, out=e)
    np.exp(e, out=e)
    e += 1.0
    np.reciprocal(e, out=x)
    return x
