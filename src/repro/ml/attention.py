"""Transformer encoder (one of the paper's Fig. 6 ablation architectures)."""

from __future__ import annotations

import math

import numpy as np

from repro.ml.autograd import Tensor
from repro.ml.layers import LayerNorm, Linear, Module, Sequential, ReLU


def sinusoidal_positions(length: int, dim: int) -> np.ndarray:
    """Standard sinusoidal positional encoding (length, dim), float32."""
    position = np.arange(length, dtype=np.float64)[:, None]
    div = np.exp(np.arange(0, dim, 2, dtype=np.float64) * (-math.log(10000.0) / dim))
    enc = np.zeros((length, dim), dtype=np.float64)
    enc[:, 0::2] = np.sin(position * div)
    enc[:, 1::2] = np.cos(position * div[: enc[:, 1::2].shape[1]])
    return enc.astype(np.float32)


class MultiHeadAttention(Module):
    """Causal multi-head self-attention over (B, T, D)."""

    def __init__(self, dim: int, num_heads: int,
                 rng: np.random.Generator | None = None, causal: bool = True):
        super().__init__()
        if dim % num_heads:
            raise ValueError("dim must be divisible by num_heads")
        rng = rng or np.random.default_rng(0)
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.causal = causal
        self.q_proj = Linear(dim, dim, rng=rng)
        self.k_proj = Linear(dim, dim, rng=rng)
        self.v_proj = Linear(dim, dim, rng=rng)
        self.out_proj = Linear(dim, dim, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, time: int) -> Tensor:
        # (B, T, D) -> (B, H, T, Dh)
        return x.reshape(batch, time, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor) -> Tensor:
        batch, time, _ = x.shape
        q = self._split_heads(self.q_proj(x), batch, time)
        k = self._split_heads(self.k_proj(x), batch, time)
        v = self._split_heads(self.v_proj(x), batch, time)
        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / math.sqrt(self.head_dim))
        if self.causal:
            mask = np.triu(np.full((time, time), -1e9, dtype=np.float32), k=1)
            scores = scores + Tensor(mask)
        weights = scores.softmax(axis=-1)
        context = weights @ v  # (B, H, T, Dh)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, time, self.dim)
        return self.out_proj(merged)


class TransformerEncoderLayer(Module):
    """Pre-norm transformer block: MHA + feed-forward, residuals."""

    def __init__(self, dim: int, num_heads: int, ff_dim: int | None = None,
                 rng: np.random.Generator | None = None, causal: bool = True):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        ff_dim = ff_dim or 4 * dim
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadAttention(dim, num_heads, rng=rng, causal=causal)
        self.norm2 = LayerNorm(dim)
        self.ff = Sequential(
            Linear(dim, ff_dim, rng=rng), ReLU(), Linear(ff_dim, dim, rng=rng)
        )

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.norm1(x))
        return x + self.ff(self.norm2(x))


class TransformerEncoder(Module):
    """Input projection + positional encoding + N encoder layers.

    Causal masking keeps the model's receptive field "the current
    instruction and its predecessors", matching the paper's instruction
    model; the interface mirrors :class:`~repro.ml.recurrent.LSTM` (state is
    accepted and returned for API compatibility but unused — attention is
    chunk-local).
    """

    def __init__(self, input_size: int, dim: int, num_layers: int = 2,
                 num_heads: int = 4, max_len: int = 1024,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.dim = dim
        self.input_proj = Linear(input_size, dim, rng=rng)
        self.layers = [
            TransformerEncoderLayer(dim, num_heads, rng=rng) for _ in range(num_layers)
        ]
        self.final_norm = LayerNorm(dim)
        self._positions = sinusoidal_positions(max_len, dim)

    @property
    def output_size(self) -> int:
        return self.dim

    def initial_state(self, batch: int):
        return None

    def forward(self, x: Tensor, state=None) -> tuple[Tensor, None]:
        batch, time, _ = x.shape
        if time > len(self._positions):
            self._positions = sinusoidal_positions(time, self.dim)
        h = self.input_proj(x) + Tensor(self._positions[:time])
        for layer in self.layers:
            h = layer(h)
        return self.final_norm(h), None
