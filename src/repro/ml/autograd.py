"""Reverse-mode automatic differentiation over NumPy arrays.

Design: a :class:`Tensor` wraps a float32/float64 ndarray; every operation
records its parents and a backward closure.  ``Tensor.backward()`` runs the
closures in reverse topological order, accumulating into ``.grad``.

Broadcasting follows NumPy semantics; backward passes reduce gradients back
to the parent shapes (``_unbroadcast``).  Only the ops the PerfVec models
need are implemented, each kept as a single fused NumPy expression per
direction — the vectorization idiom the HPC guides prescribe (no Python
loops inside ops; loops only over time steps at the layer level).
"""

from __future__ import annotations

import contextlib
from typing import Iterable

import numpy as np

from repro.ml.activations import stable_sigmoid

_grad_enabled = True


def grad_enabled() -> bool:
    """Whether graph construction is currently on (False under
    :func:`no_grad`) — layers use this to route no-grad forwards onto
    the fused inference kernels."""
    return _grad_enabled


@contextlib.contextmanager
def no_grad():
    """Disable graph construction (inference / target preparation)."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # sum out prepended axes
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # sum axes that were broadcast from size 1
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad


class Tensor:
    """A node in the autodiff graph."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward")

    def __init__(self, data, requires_grad: bool = False):
        if isinstance(data, Tensor):
            raise TypeError("cannot wrap a Tensor in a Tensor")
        self.data = np.asarray(data, dtype=np.float32 if not isinstance(
            data, np.ndarray) or data.dtype.kind != "f" else data.dtype)
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad and _grad_enabled
        self._parents: tuple[Tensor, ...] = ()
        self._backward = None

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, grad={self.requires_grad})"

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    @staticmethod
    def _result(data, parents: tuple["Tensor", ...], backward) -> "Tensor":
        out = Tensor.__new__(Tensor)
        out.data = data
        out.grad = None
        needs = _grad_enabled and any(p.requires_grad for p in parents)
        out.requires_grad = needs
        out._parents = tuple(p for p in parents if p.requires_grad) if needs else ()
        out._backward = backward if needs else None
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            # Always own the storage: the incoming array may be (or alias)
            # another node's gradient, and later += would corrupt it.
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor (default seed: ones)."""
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
        # topological order via iterative DFS
        order: list[Tensor] = []
        visited: set[int] = set()
        stack_ = [(self, False)]
        while stack_:
            node, processed = stack_.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack_.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack_.append((parent, False))
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                # free interior graph references eagerly
                if node is not self:
                    node._backward = None
                    node._parents = ()

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(np.asarray(value, dtype=np.float32))

    def __add__(self, other):
        other = Tensor._coerce(other)
        out_data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._result(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self):
        def backward(grad):
            self._accumulate(-grad)

        return Tensor._result(-self.data, (self,), backward)

    def __sub__(self, other):
        other = Tensor._coerce(other)
        out_data = self.data - other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-grad, other.shape))

        return Tensor._result(out_data, (self, other), backward)

    def __rsub__(self, other):
        return Tensor._coerce(other) - self

    def __mul__(self, other):
        other = Tensor._coerce(other)
        out_data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._result(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = Tensor._coerce(other)
        out_data = self.data / other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * out_data / other.data, other.shape)
                )

        return Tensor._result(out_data, (self, other), backward)

    def __rtruediv__(self, other):
        return Tensor._coerce(other) / self

    def __pow__(self, exponent: float):
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents supported")
        out_data = self.data ** exponent

        def backward(grad):
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._result(out_data, (self,), backward)

    def __matmul__(self, other):
        other = Tensor._coerce(other)
        out_data = self.data @ other.data

        def backward(grad):
            if self.requires_grad:
                g = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                g = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(g, other.shape))

        return Tensor._result(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # nonlinearities
    # ------------------------------------------------------------------
    def tanh(self):
        out_data = np.tanh(self.data)

        def backward(grad):
            self._accumulate(grad * (1.0 - out_data * out_data))

        return Tensor._result(out_data, (self,), backward)

    def sigmoid(self):
        # numerically stable piecewise formulation (shared gate math)
        out_data = stable_sigmoid(self.data)

        def backward(grad):
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._result(out_data, (self,), backward)

    def relu(self):
        out_data = np.maximum(self.data, 0.0)

        def backward(grad):
            self._accumulate(grad * (self.data > 0.0))

        return Tensor._result(out_data, (self,), backward)

    def exp(self):
        out_data = np.exp(self.data)

        def backward(grad):
            self._accumulate(grad * out_data)

        return Tensor._result(out_data, (self,), backward)

    def log(self):
        out_data = np.log(self.data)

        def backward(grad):
            self._accumulate(grad / self.data)

        return Tensor._result(out_data, (self,), backward)

    def sqrt(self):
        out_data = np.sqrt(self.data)

        def backward(grad):
            self._accumulate(grad * 0.5 / out_data)

        return Tensor._result(out_data, (self,), backward)

    def softmax(self, axis: int = -1):
        """Numerically stable softmax along ``axis``."""
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        e = np.exp(shifted)
        out_data = e / e.sum(axis=axis, keepdims=True)

        def backward(grad):
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            self._accumulate(out_data * (grad - dot))

        return Tensor._result(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # reductions / shape
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False):
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).astype(self.data.dtype))

        return Tensor._result(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False):
        count = self.size if axis is None else self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad):
            self._accumulate(grad.reshape(original))

        return Tensor._result(out_data, (self,), backward)

    def transpose(self, *axes):
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        inverse = tuple(np.argsort(axes))

        def backward(grad):
            self._accumulate(grad.transpose(inverse))

        return Tensor._result(out_data, (self,), backward)

    def __getitem__(self, key):
        out_data = self.data[key]

        def backward(grad):
            full = np.zeros_like(self.data)
            # np.add.at accumulates on repeated indices (embedding lookups
            # index the same row many times; plain assignment would drop
            # all but the last contribution)
            np.add.at(full, key, grad)
            self._accumulate(full)

        return Tensor._result(out_data, (self,), backward)


def concat(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = list(tensors)
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        for t, start, end in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, end)
                t._accumulate(grad[tuple(index)])

    return Tensor._result(out_data, tuple(tensors), backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (differentiable)."""
    tensors = list(tensors)
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        parts = np.split(grad, len(tensors), axis=axis)
        for t, g in zip(tensors, parts):
            if t.requires_grad:
                t._accumulate(np.squeeze(g, axis=axis))

    return Tensor._result(out_data, tuple(tensors), backward)


def mse_loss(prediction: Tensor, target: np.ndarray | Tensor) -> Tensor:
    """Mean squared error (the paper's training loss)."""
    target_data = target.data if isinstance(target, Tensor) else np.asarray(target)
    diff = prediction - Tensor(target_data.astype(prediction.data.dtype))
    return (diff * diff).mean()
