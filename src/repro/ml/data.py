"""Sequence chunking and batching for streaming trace training.

PerfVec treats each benchmark trace as a long stream.  For truncated-BPTT
training, each benchmark segment is cut into contiguous chunks of length
``chunk_len``; chunks are grouped into batches and shuffled per epoch.  A
90/5/5 train/validation/test split over chunks mirrors the paper (Sec.
IV-C: "roughly 90% of them are dedicated for training, 5% for validation,
and 5% for testing").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Chunk:
    """One contiguous slice of one benchmark's rows."""

    segment: str
    start: int  # absolute row into the dataset
    length: int


def make_chunks(
    segments: tuple[tuple[str, int, int], ...], chunk_len: int
) -> list[Chunk]:
    """Cut each segment into full-length contiguous chunks.

    The ragged tail of each segment (< chunk_len rows) is dropped, keeping
    every training sequence the same length.
    """
    if chunk_len < 1:
        raise ValueError("chunk_len must be >= 1")
    chunks = []
    for name, start, end in segments:
        for pos in range(start, end - chunk_len + 1, chunk_len):
            chunks.append(Chunk(name, pos, chunk_len))
    return chunks


def split_chunks(
    chunks: list[Chunk],
    val_frac: float = 0.05,
    test_frac: float = 0.05,
    seed: int = 0,
) -> tuple[list[Chunk], list[Chunk], list[Chunk]]:
    """Shuffled train/val/test split over chunks."""
    if val_frac < 0 or test_frac < 0 or val_frac + test_frac >= 1:
        raise ValueError("invalid split fractions")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(chunks))
    n_val = int(round(len(chunks) * val_frac))
    n_test = int(round(len(chunks) * test_frac))
    val = [chunks[i] for i in order[:n_val]]
    test = [chunks[i] for i in order[n_val : n_val + n_test]]
    train = [chunks[i] for i in order[n_val + n_test :]]
    return train, val, test


class ChunkBatches:
    """Iterable over (features (B, L, F), targets (B, L, K)) batches."""

    def __init__(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        chunks: list[Chunk],
        batch_size: int,
        shuffle: bool = True,
        seed: int = 0,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not chunks:
            raise ValueError("no chunks to iterate")
        lengths = {c.length for c in chunks}
        if len(lengths) != 1:
            raise ValueError("all chunks must share one length")
        self.features = features
        self.targets = targets
        self.chunks = chunks
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.chunk_len = next(iter(lengths))
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return (len(self.chunks) + self.batch_size - 1) // self.batch_size

    def __iter__(self):
        order = (
            self._rng.permutation(len(self.chunks))
            if self.shuffle
            else np.arange(len(self.chunks))
        )
        L = self.chunk_len
        for b in range(0, len(order), self.batch_size):
            batch = [self.chunks[i] for i in order[b : b + self.batch_size]]
            x = np.stack([self.features[c.start : c.start + L] for c in batch])
            y = np.stack([self.targets[c.start : c.start + L] for c in batch])
            yield x, y
