"""Finite-difference gradient verification for the autodiff engine."""

from __future__ import annotations

import numpy as np

from repro.ml.autograd import Tensor


def numeric_gradient(fn, tensor: Tensor, eps: float = 1e-4) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``tensor``."""
    grad = np.zeros_like(tensor.data, dtype=np.float64)
    flat = tensor.data.reshape(-1)
    out = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn().data)
        flat[i] = original - eps
        minus = float(fn().data)
        flat[i] = original
        out[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradients(fn, tensors: list[Tensor], atol: float = 2e-2,
                    rtol: float = 2e-2) -> None:
    """Assert autodiff gradients of scalar ``fn()`` match finite differences.

    ``fn`` must rebuild the graph each call from the given leaf tensors.
    Uses float64 copies of the leaves to keep finite differences meaningful.
    """
    for t in tensors:
        t.data = t.data.astype(np.float64)
    for t in tensors:
        t.zero_grad()
    loss = fn()
    loss.backward()
    for idx, t in enumerate(tensors):
        expected = numeric_gradient(fn, t)
        actual = t.grad
        assert actual is not None, f"tensor {idx} received no gradient"
        np.testing.assert_allclose(
            actual, expected, atol=atol, rtol=rtol,
            err_msg=f"gradient mismatch on tensor {idx}",
        )
