"""Batched no-grad inference kernels (the serving-side forward pass).

Training builds an autograd graph: every LSTM timestep allocates gate
Tensors, backward closures and parent tuples.  Serving needs none of that,
so this module re-implements the forward pass of the recurrent layers as
fused NumPy kernels over raw ndarrays:

* the input-to-gate projection of *every* timestep is computed in one
  ``(B*T, F) @ (F, 4H)`` BLAS call before the time loop starts;
* the time loop performs exactly one recurrent matmul per step, writing
  hidden states into a preallocated ``(B, T, H)`` output buffer;
* gate nonlinearities reuse the autograd engine's numerically-stable
  formulations, so inference outputs match the training-mode forward to
  float32 precision (the parity suite asserts ≤ 1e-6).

:func:`iter_chunk_batches` is the multi-sequence batcher underneath
:meth:`repro.core.perfvec.PerfVec.program_representations` and the serving
layer: it slices any number of feature streams into fixed-length chunks and
groups them — across requests — into dense batches, so one BLAS call per
timestep serves every queued request at once.

Layer modules expose this path as ``Module.infer`` (see
:mod:`repro.ml.layers`); modules without a hand-fused kernel fall back to
running ``forward`` under :func:`repro.ml.autograd.no_grad`.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

# the one shared formulation of the gate math (autograd, these reference
# kernels and the repro.jit code generator all import it from there)
from repro.ml.activations import stable_sigmoid

__all__ = [
    "stable_sigmoid",
    "lstm_infer",
    "gru_infer",
    "iter_chunk_batches",
]


def _jit_kernel(kind: str, cell, batch: int, time: int):
    """The compiled kernel for one cell dispatch — or None (reference).

    The signature is read off the live call: the cell's layer dims plus
    the chunk's batch and sequence length.  :mod:`repro.jit` owns every
    policy question (enabled? cached? compilable?); a None answer keeps
    the numpy reference path below as the always-on fallback.
    """
    from repro import jit

    return jit.kernel_for(
        kind,
        input_size=cell.xw.weight.data.shape[0],
        hidden_size=cell.hidden_size,
        batch=batch,
        time=time,
    )


def _as_f32(x: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(x, dtype=np.float32)


def _lstm_cell_infer(
    cell, x: np.ndarray, h0: np.ndarray, c0: np.ndarray, out: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Run one LSTM cell over ``x (B, T, F)``, writing hiddens into ``out``.

    The input projection for all T steps is hoisted into a single matmul;
    the loop body is one ``(B, H) @ (H, 4H)`` matmul plus element-wise gate
    math on preallocated scratch buffers.
    """
    batch, time, feat = x.shape
    H = cell.hidden_size
    wx = cell.xw.weight.data
    bx = cell.xw.bias.data
    wh = cell.hw.weight.data
    gates = x.reshape(batch * time, feat) @ wx
    gates += bx
    gates = gates.reshape(batch, time, 4 * H)
    h = _as_f32(h0)
    c = np.array(c0, dtype=np.float32, copy=True)  # mutated in place below
    z = np.empty((batch, 4 * H), dtype=np.float32)
    tmp = np.empty((batch, H), dtype=np.float32)
    for t in range(time):
        np.matmul(h, wh, out=z)
        z += gates[:, t]
        i = stable_sigmoid(z[:, 0:H])
        f = stable_sigmoid(z[:, H : 2 * H])
        g = np.tanh(z[:, 2 * H : 3 * H])
        o = stable_sigmoid(z[:, 3 * H : 4 * H])
        np.multiply(f, c, out=c)
        np.multiply(i, g, out=tmp)
        c += tmp
        np.tanh(c, out=tmp)
        h = np.multiply(o, tmp, out=out[:, t])
    return h, c


def lstm_infer(
    lstm, x: np.ndarray, state=None
) -> tuple[np.ndarray, list[tuple[np.ndarray, np.ndarray]]]:
    """Inference forward of :class:`repro.ml.recurrent.LSTM` on ndarrays.

    Mirrors ``LSTM.forward`` (multi-layer, optionally bidirectional; the
    reverse direction always starts from zero state within the chunk) and
    returns ``(outputs (B, T, D), final state per layer)``.
    """
    x = _as_f32(x)
    if x.ndim != 3:
        raise ValueError("LSTM expects (batch, time, features)")
    batch, time = x.shape[0], x.shape[1]
    H = lstm.hidden_size
    if state is None:
        state = lstm.initial_state(batch)
    final_state: list[tuple[np.ndarray, np.ndarray]] = []
    inputs = x
    for layer in range(lstm.num_layers):
        h0, c0 = state[layer]
        cell = lstm.cells[layer]
        out = np.empty((batch, time, H), dtype=np.float32)
        kernel = _jit_kernel("lstm", cell, batch, time)
        if kernel is not None:
            h, c = kernel(
                cell.xw.weight.data, cell.xw.bias.data, cell.hw.weight.data,
                inputs, h0, c0, out,
            )
        else:
            h, c = _lstm_cell_infer(cell, inputs, h0, c0, out)
        final_state.append((h.copy(), c.copy()))
        if lstm.bidirectional:
            rev_cell = lstm.cells_rev[layer]
            zeros = np.zeros((batch, H), dtype=np.float32)
            rev = np.empty_like(out)
            kernel = _jit_kernel("lstm", rev_cell, batch, time)
            if kernel is not None:
                kernel(
                    rev_cell.xw.weight.data, rev_cell.xw.bias.data,
                    rev_cell.hw.weight.data, inputs[:, ::-1], zeros, zeros,
                    rev,
                )
            else:
                _lstm_cell_infer(rev_cell, inputs[:, ::-1], zeros, zeros, rev)
            inputs = np.concatenate([out, rev[:, ::-1]], axis=-1)
        else:
            inputs = out
    return inputs, final_state


def _gru_cell_infer(
    cell, x: np.ndarray, h0: np.ndarray, out: np.ndarray
) -> np.ndarray:
    batch, time, feat = x.shape
    H = cell.hidden_size
    wx = cell.xw.weight.data
    bx = cell.xw.bias.data
    wh = cell.hw.weight.data
    gates = x.reshape(batch * time, feat) @ wx
    gates += bx
    gates = gates.reshape(batch, time, 3 * H)
    h = _as_f32(h0)
    hz = np.empty((batch, 3 * H), dtype=np.float32)
    for t in range(time):
        np.matmul(h, wh, out=hz)
        xz = gates[:, t]
        r = stable_sigmoid(xz[:, 0:H] + hz[:, 0:H])
        z = stable_sigmoid(xz[:, H : 2 * H] + hz[:, H : 2 * H])
        n = np.tanh(xz[:, 2 * H : 3 * H] + r * hz[:, 2 * H : 3 * H])
        np.multiply(1.0 - z, n, out=out[:, t])
        out[:, t] += z * h
        h = out[:, t]
    return h


def gru_infer(gru, x: np.ndarray, state=None) -> tuple[np.ndarray, list[np.ndarray]]:
    """Inference forward of :class:`repro.ml.recurrent.GRU` on ndarrays."""
    x = _as_f32(x)
    if x.ndim != 3:
        raise ValueError("GRU expects (batch, time, features)")
    batch, time = x.shape[0], x.shape[1]
    if state is None:
        state = gru.initial_state(batch)
    final_state: list[np.ndarray] = []
    inputs = x
    for layer in range(gru.num_layers):
        cell = gru.cells[layer]
        out = np.empty((batch, time, gru.hidden_size), dtype=np.float32)
        kernel = _jit_kernel("gru", cell, batch, time)
        if kernel is not None:
            h = kernel(
                cell.xw.weight.data, cell.xw.bias.data, cell.hw.weight.data,
                inputs, state[layer], out,
            )
        else:
            h = _gru_cell_infer(cell, inputs, state[layer], out)
        final_state.append(h.copy())
        inputs = out
    return inputs, final_state


#: One batched engine work item: rows ``start : start + length`` of stream
#: ``stream`` occupy one row of the batch.
Placement = tuple[int, int, int]


def iter_chunk_batches(
    streams: Sequence[np.ndarray],
    chunk_len: int,
    batch_size: int,
) -> Iterator[tuple[list[Placement], np.ndarray]]:
    """Slice feature streams into dense ``(b, L, F)`` inference batches.

    Every stream is cut into contiguous ``chunk_len``-row chunks (fresh
    recurrent state per chunk, mirroring training).  Full chunks from *all*
    streams batch together, ``batch_size`` at a time; ragged tails batch
    with tails of equal length.  Yields ``(placements, batch)`` where
    ``placements[i] = (stream index, start row, length)`` locates batch row
    ``i`` in its source stream.  Together the yielded placements cover every
    row of every stream exactly once.
    """
    if chunk_len < 1:
        raise ValueError("chunk_len must be positive")
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    if not streams:
        return
    feat = streams[0].shape[1]
    full: list[tuple[int, int]] = []
    tails: dict[int, list[tuple[int, int]]] = {}
    for s, stream in enumerate(streams):
        n = len(stream)
        if n == 0:
            raise ValueError(f"empty feature stream (index {s})")
        n_full = n // chunk_len
        full.extend((s, i * chunk_len) for i in range(n_full))
        rem = n - n_full * chunk_len
        if rem:
            tails.setdefault(rem, []).append((s, n_full * chunk_len))
    groups = [(chunk_len, full)] + sorted(tails.items())
    for length, places in groups:
        for i in range(0, len(places), batch_size):
            group = places[i : i + batch_size]
            batch = np.empty((len(group), length, feat), dtype=np.float32)
            for row, (s, start) in enumerate(group):
                batch[row] = streams[s][start : start + length]
            yield [(s, start, length) for s, start in group], batch
