"""Neural-network layers on top of the autodiff engine."""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.ml.autograd import Tensor, no_grad


def _unwrap(value):
    """Tensor(s) -> ndarray(s), preserving tuple/list structure."""
    if isinstance(value, Tensor):
        return value.data
    if isinstance(value, (tuple, list)):
        return type(value)(_unwrap(v) for v in value)
    return value


class Module:
    """Base class: parameter discovery, train/eval mode, state dicts."""

    def __init__(self) -> None:
        self.training = True

    # -- parameter / submodule discovery --------------------------------
    def parameters(self) -> Iterator[Tensor]:
        seen: set[int] = set()
        for _, p in self.named_parameters():
            if id(p) not in seen:
                seen.add(id(p))
                yield p

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Tensor) and value.requires_grad:
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(f"{full}.")
            elif isinstance(value, (list, tuple)):
                for k, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{full}.{k}.")
                    elif isinstance(item, Tensor) and item.requires_grad:
                        yield f"{full}.{k}", item

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- modes ------------------------------------------------------------
    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in vars(self).values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    # -- state ------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        extra = set(state) - set(own)
        if missing or extra:
            raise KeyError(f"state mismatch: missing={missing}, extra={extra}")
        for name, p in own.items():
            value = np.asarray(state[name], dtype=p.data.dtype)
            if value.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {value.shape} vs {p.data.shape}"
                )
            if value is state[name] and not value.flags.writeable:
                # read-only state (an mmap'd artifact) is aliased, not
                # copied: N serving workers share one physical copy of
                # the weights, and numpy blocks in-place mutation
                p.data = value
            else:
                p.data = value.copy()

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    # -- inference ---------------------------------------------------------
    def infer(self, *args, **kwargs):
        """Inference-mode forward on raw ndarrays: no autograd graph.

        The generic fallback wraps ndarray arguments in graph-free Tensors,
        runs :meth:`forward` under ``no_grad()`` in eval mode and unwraps
        the result.  Hot layers (Linear, MLP, LSTM, GRU) override this with
        fused kernels from :mod:`repro.ml.inference`; both paths match the
        training-mode forward numerically.
        """
        was_training = self.training
        if was_training:
            self.eval()
        try:
            with no_grad():
                out = self.forward(
                    *[
                        Tensor(a) if isinstance(a, np.ndarray) else a
                        for a in args
                    ],
                    **kwargs,
                )
        finally:
            if was_training:
                self.train()
        return _unwrap(out)


def _init_uniform(rng: np.random.Generator, shape, fan_in: int) -> np.ndarray:
    bound = 1.0 / math.sqrt(max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


class Linear(Module):
    """Affine map ``y = x W + b`` (bias optional).

    PerfVec's performance predictor is a :class:`Linear` with ``bias=False``
    — the compositionality proof of Sec. III-B requires a bias-free linear
    predictor.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            _init_uniform(rng, (in_features, out_features), in_features),
            requires_grad=True,
        )
        self.bias = (
            Tensor(np.zeros(out_features, dtype=np.float32), requires_grad=True)
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def infer(self, x: np.ndarray) -> np.ndarray:
        out = x @ self.weight.data
        if self.bias is not None:
            out += self.bias.data
        return out


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def infer(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def infer(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)


class Sequential(Module):
    def __init__(self, *modules: Module):
        super().__init__()
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x

    def infer(self, x: np.ndarray) -> np.ndarray:
        for module in self.modules:
            x = module.infer(x)
        return x


class MLP(Module):
    """Multilayer perceptron with ReLU activations between layers."""

    def __init__(self, sizes: list[int], rng: np.random.Generator | None = None,
                 bias: bool = True):
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        rng = rng or np.random.default_rng(0)
        layers: list[Module] = []
        for a, b in zip(sizes[:-1], sizes[1:]):
            layers.append(Linear(a, b, bias=bias, rng=rng))
            layers.append(ReLU())
        layers.pop()  # no activation after the output layer
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)

    def infer(self, x: np.ndarray) -> np.ndarray:
        return self.net.infer(x)


class LayerNorm(Module):
    """Layer normalization over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.gamma = Tensor(np.ones(dim, dtype=np.float32), requires_grad=True)
        self.beta = Tensor(np.zeros(dim, dtype=np.float32), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        inv = (var + self.eps) ** -0.5
        return centered * inv * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.1, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self.rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self.rng.random(x.shape) < keep).astype(np.float32) / keep
        return x * Tensor(mask)

    def infer(self, x: np.ndarray) -> np.ndarray:
        return x  # inference is always eval-mode: dropout is the identity
