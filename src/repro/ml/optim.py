"""Optimizers and learning-rate schedules.

The paper's recipe (Sec. IV-D): Adam, initial learning rate 0.001, decayed
10x every 10 epochs, MSE loss, best-on-validation model selection.
"""

from __future__ import annotations

import numpy as np

from repro.ml.autograd import Tensor


class Optimizer:
    def __init__(self, parameters, lr: float):
        self.parameters: list[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters, lr: float = 0.01, momentum: float = 0.0):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v -= self.lr * p.grad
                p.data += v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(self, parameters, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        correction1 = 1.0 - b1 ** self._t
        correction2 = 1.0 - b2 ** self._t
        scale = self.lr * np.sqrt(correction2) / correction1
        for p, m, v in zip(self.parameters, self._m, self._v):
            g = p.grad
            if g is None:
                continue
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * (g * g)
            p.data -= scale * m / (np.sqrt(v) + self.eps)


class StepLR:
    """Decay the optimizer's learning rate by ``gamma`` every ``step_size``
    epochs (the paper uses step_size=10, gamma=0.1)."""

    def __init__(self, optimizer: Optimizer, step_size: int = 10, gamma: float = 0.1):
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        """Advance one epoch and update the learning rate."""
        self.epoch += 1
        self.optimizer.lr = self.base_lr * self.gamma ** (self.epoch // self.step_size)
