"""Recurrent layers: LSTM (uni/bi-directional, multi-layer) and GRU.

Cells are fused: one matmul produces all gate pre-activations per step, so
the per-step graph stays small and the heavy lifting is BLAS.  Layers accept
and return explicit hidden state, enabling the truncated-BPTT streaming that
PerfVec training uses (each contiguous trace chunk continues from the
detached final state of the previous chunk — the causal analogue of the
paper's c-instruction context window).
"""

from __future__ import annotations

import numpy as np

from repro.ml.autograd import Tensor, concat, grad_enabled, stack
from repro.ml.inference import gru_infer, lstm_infer
from repro.ml.layers import Linear, Module


def _raw(x) -> np.ndarray:
    """The ndarray behind a forward input (Tensor or already raw)."""
    return x.data if isinstance(x, Tensor) else x


class LSTMCell(Module):
    """Fused LSTM cell: gates = x@Wx + h@Wh + b, order [i, f, g, o]."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.hidden_size = hidden_size
        self.xw = Linear(input_size, 4 * hidden_size, bias=True, rng=rng)
        self.hw = Linear(hidden_size, 4 * hidden_size, bias=False, rng=rng)
        # forget-gate bias init to 1: standard trick for gradient flow
        self.xw.bias.data[hidden_size : 2 * hidden_size] = 1.0

    def forward(self, x: Tensor, h: Tensor, c: Tensor) -> tuple[Tensor, Tensor]:
        H = self.hidden_size
        z = self.xw(x) + self.hw(h)
        i = z[:, 0:H].sigmoid()
        f = z[:, H : 2 * H].sigmoid()
        g = z[:, 2 * H : 3 * H].tanh()
        o = z[:, 3 * H : 4 * H].sigmoid()
        c_new = f * c + i * g
        h_new = o * c_new.tanh()
        return h_new, c_new


class GRUCell(Module):
    """Fused GRU cell: gates [r, z] plus candidate n."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.hidden_size = hidden_size
        self.xw = Linear(input_size, 3 * hidden_size, bias=True, rng=rng)
        self.hw = Linear(hidden_size, 3 * hidden_size, bias=False, rng=rng)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        H = self.hidden_size
        xz = self.xw(x)
        hz = self.hw(h)
        r = (xz[:, 0:H] + hz[:, 0:H]).sigmoid()
        z = (xz[:, H : 2 * H] + hz[:, H : 2 * H]).sigmoid()
        n = (xz[:, 2 * H : 3 * H] + r * hz[:, 2 * H : 3 * H]).tanh()
        return (1.0 - z) * n + z * h


class LSTM(Module):
    """Multi-layer (optionally bidirectional) LSTM over (B, T, F) input."""

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1,
                 bidirectional: bool = False,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = rng or np.random.default_rng(0)
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.bidirectional = bidirectional
        dirs = 2 if bidirectional else 1
        self.cells = []
        self.cells_rev = []
        for layer in range(num_layers):
            in_size = input_size if layer == 0 else hidden_size * dirs
            self.cells.append(LSTMCell(in_size, hidden_size, rng=rng))
            if bidirectional:
                self.cells_rev.append(LSTMCell(in_size, hidden_size, rng=rng))

    @property
    def output_size(self) -> int:
        return self.hidden_size * (2 if self.bidirectional else 1)

    def initial_state(self, batch: int) -> list[tuple[np.ndarray, np.ndarray]]:
        """Zero (h, c) per layer for the forward direction."""
        H = self.hidden_size
        return [
            (np.zeros((batch, H), dtype=np.float32),
             np.zeros((batch, H), dtype=np.float32))
            for _ in range(self.num_layers)
        ]

    def _run_direction(self, cell, steps: list[Tensor], h0, c0):
        h, c = h0, c0
        outputs = []
        for x in steps:
            h, c = cell(x, h, c)
            outputs.append(h)
        return outputs, h, c

    def forward(
        self, x: Tensor, state: list[tuple[np.ndarray, np.ndarray]] | None = None
    ) -> tuple[Tensor, list[tuple[np.ndarray, np.ndarray]]]:
        """Returns (outputs (B, T, D), final detached state per layer)."""
        if x.ndim != 3:
            raise ValueError("LSTM expects (batch, time, features)")
        if not grad_enabled():
            # no graph wanted: the fused kernels (and, when enabled, the
            # repro.jit compiled tier) serve the training-code call sites
            out, final_state = lstm_infer(self, _raw(x), state)
            return Tensor(out), final_state
        batch, time, _ = x.shape
        if state is None:
            state = self.initial_state(batch)
        steps = [x[:, t, :] for t in range(time)]
        final_state: list[tuple[np.ndarray, np.ndarray]] = []
        for layer in range(self.num_layers):
            h0, c0 = state[layer]
            fwd, h_last, c_last = self._run_direction(
                self.cells[layer], steps, Tensor(h0), Tensor(c0)
            )
            final_state.append((h_last.data.copy(), c_last.data.copy()))
            if self.bidirectional:
                # reverse direction always starts from zero within the chunk
                H = self.hidden_size
                z = Tensor(np.zeros((batch, H), dtype=np.float32))
                rev, _, _ = self._run_direction(
                    self.cells_rev[layer], steps[::-1], z, z
                )
                rev = rev[::-1]
                steps = [concat([f, r], axis=-1) for f, r in zip(fwd, rev)]
            else:
                steps = fwd
        outputs = stack(steps, axis=1)
        return outputs, final_state

    def infer(self, x, state=None):
        """Fused no-grad forward (see :func:`repro.ml.inference.lstm_infer`)."""
        return lstm_infer(self, x, state)


class GRU(Module):
    """Multi-layer unidirectional GRU over (B, T, F) input."""

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = rng or np.random.default_rng(0)
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.cells = []
        for layer in range(num_layers):
            in_size = input_size if layer == 0 else hidden_size
            self.cells.append(GRUCell(in_size, hidden_size, rng=rng))

    @property
    def output_size(self) -> int:
        return self.hidden_size

    def initial_state(self, batch: int) -> list[np.ndarray]:
        H = self.hidden_size
        return [np.zeros((batch, H), dtype=np.float32) for _ in range(self.num_layers)]

    def forward(
        self, x: Tensor, state: list[np.ndarray] | None = None
    ) -> tuple[Tensor, list[np.ndarray]]:
        if x.ndim != 3:
            raise ValueError("GRU expects (batch, time, features)")
        if not grad_enabled():
            out, final_state = gru_infer(self, _raw(x), state)
            return Tensor(out), final_state
        batch, time, _ = x.shape
        if state is None:
            state = self.initial_state(batch)
        steps = [x[:, t, :] for t in range(time)]
        final_state: list[np.ndarray] = []
        for layer in range(self.num_layers):
            h = Tensor(state[layer])
            outs = []
            cell = self.cells[layer]
            for xt in steps:
                h = cell(xt, h)
                outs.append(h)
            final_state.append(h.data.copy())
            steps = outs
        return stack(steps, axis=1), final_state

    def infer(self, x, state=None):
        """Fused no-grad forward (see :func:`repro.ml.inference.gru_infer`)."""
        return gru_infer(self, x, state)
