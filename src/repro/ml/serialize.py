"""Model state persistence (npz).

All writes are atomic (tmp file + rename), so an interrupted save can
never leave a truncated artifact behind — readers either see the old
complete file or the new complete file.
"""

from __future__ import annotations

import os

import numpy as np

from repro.ml.layers import Module


def save_arrays(path: str, arrays: dict[str, np.ndarray]) -> str:
    """Atomically write named arrays to ``path`` (npz); returns the path.

    Mirrors ``np.savez_compressed``'s naming: a ``.npz`` suffix is added
    when missing.
    """
    if not path.endswith(".npz"):
        path = f"{path}.npz"
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    tmp = f"{path}.{os.getpid()}.tmp.npz"
    try:
        np.savez_compressed(tmp, **arrays)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)
    return path


def load_arrays(path: str) -> dict[str, np.ndarray]:
    """Load every array saved by :func:`save_arrays`."""
    with np.load(path) as data:
        return {k: data[k] for k in data.files}


def save_state(model: Module, path: str) -> None:
    """Save a model's parameters to ``path`` (npz, atomic)."""
    save_arrays(path, model.state_dict())


def load_state(model: Module, path: str) -> None:
    """Load parameters saved by :func:`save_state` into ``model``."""
    model.load_state_dict(load_arrays(path))
