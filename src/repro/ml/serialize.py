"""Model state persistence (npz)."""

from __future__ import annotations

import os

import numpy as np

from repro.ml.layers import Module


def save_state(model: Module, path: str) -> None:
    """Save a model's parameters to ``path`` (npz)."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    np.savez_compressed(path, **model.state_dict())


def load_state(model: Module, path: str) -> None:
    """Load parameters saved by :func:`save_state` into ``model``."""
    with np.load(path) as data:
        model.load_state_dict({k: data[k] for k in data.files})
