"""Model state persistence (npz) with an optional zero-copy mmap path.

All writes are atomic (tmp file + rename), so an interrupted save can
never leave a truncated artifact behind — readers either see the old
complete file or the new complete file.

:func:`load_arrays` has two modes:

* **eager** (default) — decompress the npz into private in-memory
  arrays, exactly as before;
* **mmap** (``mmap=True``) — serve every array as a *read-only view over
  an OS page-cache mapping*.  Compressed npz members cannot be mapped
  directly, so the first mmap load extracts the archive into a sidecar
  directory (``<path>.mmap/``, one raw ``.npy`` per array plus an
  ``index.json`` recording the source file's identity) and atomically
  publishes it; every later load — from any process — maps those files.
  N serving workers loading the same artifact therefore share **one**
  physical copy of the weights instead of paying N decompressed copies.

The mmap invariants (relied on by :mod:`repro.serving.cluster`):

* returned arrays are **read-only** (``flags.writeable`` is False) —
  mutating shared weights would corrupt every mapped process, so numpy
  refuses in-place writes outright;
* values are bit-identical to the eager load (the sidecar is a lossless
  re-encoding; ``tests/ml/test_serialize_mmap.py`` asserts this for
  every model family);
* the sidecar is invalidated and rebuilt whenever the source npz changes
  (size or mtime), and concurrent extraction from several processes is
  safe — the atomic directory rename means one wins and the rest adopt
  the published copy.
"""

from __future__ import annotations

import json
import os
import shutil

import numpy as np

from repro.ml.layers import Module

#: Sidecar directory suffix for the mmap extraction of an npz file.
MMAP_SUFFIX = ".mmap"

#: Name of the sidecar's manifest (written last: its presence marks a
#: complete extraction).
MMAP_INDEX = "index.json"


def save_arrays(path: str, arrays: dict[str, np.ndarray]) -> str:
    """Atomically write named arrays to ``path`` (npz); returns the path.

    Mirrors ``np.savez_compressed``'s naming: a ``.npz`` suffix is added
    when missing.
    """
    if not path.endswith(".npz"):
        path = f"{path}.npz"
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    tmp = f"{path}.{os.getpid()}.tmp.npz"
    try:
        np.savez_compressed(tmp, **arrays)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)
    return path


def _source_identity(path: str) -> dict:
    stat = os.stat(path)
    return {"size": stat.st_size, "mtime_ns": stat.st_mtime_ns}


def _sidecar_valid(sidecar: str, identity: dict) -> dict | None:
    """The sidecar's index when it matches ``identity``, else None."""
    try:
        with open(os.path.join(sidecar, MMAP_INDEX)) as fh:
            index = json.load(fh)
    except (OSError, ValueError):
        return None
    if index.get("source") != identity:
        return None
    return index


def _extract_sidecar(path: str, sidecar: str, identity: dict) -> dict:
    """Extract ``path``'s arrays into ``sidecar`` (atomic publish).

    Several processes may race here; the directory rename picks one
    winner and everyone else adopts its copy.
    """
    tmp = f"{sidecar}.{os.getpid()}.tmp"
    os.makedirs(tmp, exist_ok=True)
    try:
        files: dict[str, str] = {}
        with np.load(path) as data:
            for i, name in enumerate(data.files):
                filename = f"a{i}.npy"
                np.save(os.path.join(tmp, filename), data[name])
                files[name] = filename
        index = {"source": identity, "arrays": files}
        with open(os.path.join(tmp, MMAP_INDEX), "w") as fh:
            json.dump(index, fh, indent=2, sort_keys=True)
        if os.path.isdir(sidecar):  # stale extraction of an older npz
            shutil.rmtree(sidecar)
        try:
            os.replace(tmp, sidecar)
        except OSError:
            # another process published first; use its (valid) copy
            published = _sidecar_valid(sidecar, identity)
            if published is None:
                raise
            return published
        return index
    finally:
        if os.path.isdir(tmp):
            shutil.rmtree(tmp, ignore_errors=True)


def load_arrays(path: str, mmap: bool = False) -> dict[str, np.ndarray]:
    """Load every array saved by :func:`save_arrays`.

    With ``mmap=True`` each array is a **read-only** view over a shared
    OS page-cache mapping of the sidecar extraction (see the module
    docstring) — values are bit-identical to the eager load, but N
    processes loading the same file share one physical copy.
    """
    if not mmap:
        with np.load(path) as data:
            return {k: data[k] for k in data.files}
    sidecar = f"{path}{MMAP_SUFFIX}"
    identity = _source_identity(path)
    index = _sidecar_valid(sidecar, identity)
    if index is None:
        index = _extract_sidecar(path, sidecar, identity)
    arrays: dict[str, np.ndarray] = {}
    for name, filename in index["arrays"].items():
        mapped = np.load(os.path.join(sidecar, filename), mmap_mode="r")
        # a plain-ndarray view: callers never see the np.memmap subclass
        # (which would otherwise propagate through every computation),
        # but the read-only flag and the shared mapping are preserved
        view = mapped.view(np.ndarray)
        view.flags.writeable = False
        arrays[name] = view
    return arrays


def save_state(model: Module, path: str) -> None:
    """Save a model's parameters to ``path`` (npz, atomic)."""
    save_arrays(path, model.state_dict())


def load_state(model: Module, path: str) -> None:
    """Load parameters saved by :func:`save_state` into ``model``."""
    model.load_state_dict(load_arrays(path))
