"""Generic training loop with best-on-validation selection.

Implements the paper's recipe (Sec. IV-D): Adam at lr=0.001 decayed 10x
every 10 epochs, MSE loss, and "the validation set is used to choose the
model with the lowest validation loss among all epochs".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.ml.layers import Module
from repro.ml.optim import Adam, StepLR


@dataclass
class TrainConfig:
    epochs: int = 50
    lr: float = 1e-3
    lr_step: int = 10
    lr_gamma: float = 0.1
    verbose: bool = False


@dataclass
class TrainHistory:
    train_losses: list[float] = field(default_factory=list)
    val_losses: list[float] = field(default_factory=list)
    best_epoch: int = -1
    best_val_loss: float = float("inf")
    seconds: float = 0.0


class Trainer:
    """Drives epochs over a loss callback; restores the best weights.

    The caller supplies ``train_step(batch) -> Tensor`` (a loss tensor the
    trainer backpropagates) and ``val_loss() -> float``.  This indirection
    lets PerfVec training (which reuses instruction representations across
    k microarchitectures per step) and baseline training share one loop.
    """

    def __init__(self, model: Module, config: TrainConfig | None = None):
        self.model = model
        self.config = config or TrainConfig()
        self.optimizer = Adam(model.parameters(), lr=self.config.lr)
        self.scheduler = StepLR(
            self.optimizer, step_size=self.config.lr_step, gamma=self.config.lr_gamma
        )

    def fit(
        self,
        batches_fn: Callable[[], "object"],
        train_step: Callable[[object], "object"],
        val_loss_fn: Callable[[], float],
    ) -> TrainHistory:
        history = TrainHistory()
        best_state = self.model.state_dict()
        start = time.perf_counter()
        for epoch in range(self.config.epochs):
            self.model.train()
            epoch_losses = []
            for batch in batches_fn():
                self.optimizer.zero_grad()
                loss = train_step(batch)
                loss.backward()
                self.optimizer.step()
                epoch_losses.append(loss.item())
            self.scheduler.step()
            self.model.eval()
            val = float(val_loss_fn())
            train_mean = float(np.mean(epoch_losses)) if epoch_losses else float("nan")
            history.train_losses.append(train_mean)
            history.val_losses.append(val)
            if val < history.best_val_loss:
                history.best_val_loss = val
                history.best_epoch = epoch
                best_state = self.model.state_dict()
            if self.config.verbose:
                print(
                    f"epoch {epoch:3d}  train={train_mean:.5f}  val={val:.5f}"
                    f"  lr={self.optimizer.lr:.2e}"
                )
        self.model.load_state_dict(best_state)
        self.model.eval()
        history.seconds = time.perf_counter() - start
        return history
