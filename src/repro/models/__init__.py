"""Unified model-facing public API.

* :mod:`~repro.models.base` — the :class:`PerformanceModel` estimator
  protocol every family implements (``fit`` / ``predict`` / ``evaluate``
  / ``save`` / ``load`` plus ``spec`` / ``metadata``).
* :mod:`~repro.models.adapters` — thin adapters putting
  :class:`repro.core.perfvec.PerfVec` and the five baselines behind the
  protocol (the low-level modules are untouched).
* :mod:`~repro.models.registry` — family name → factory; the CLI,
  experiments and :class:`repro.api.Session` construct models here.
* :mod:`~repro.models.store` — the versioned, content-addressed artifact
  store (``ModelStore``) with dataset-fingerprint provenance checks.
"""

from repro.core.errors import PredictionError, UnknownBenchmarkError
from repro.models.base import (
    NotFittedError,
    PerformanceModel,
    PredictRequest,
    load_model,
)
from repro.models.registry import available, create, get_family, register
from repro.models.store import FingerprintMismatch, ModelStore, StoreError
from repro.models.adapters import (
    ActBoostAdapter,
    CrossProgramAdapter,
    IthemalAdapter,
    PerfVecModel,
    ProgramSpecificAdapter,
    SimNetAdapter,
)

__all__ = [
    "PerformanceModel",
    "PredictRequest",
    "PredictionError",
    "UnknownBenchmarkError",
    "NotFittedError",
    "load_model",
    "register",
    "create",
    "available",
    "get_family",
    "ModelStore",
    "StoreError",
    "FingerprintMismatch",
    "PerfVecModel",
    "IthemalAdapter",
    "SimNetAdapter",
    "ProgramSpecificAdapter",
    "CrossProgramAdapter",
    "ActBoostAdapter",
]
