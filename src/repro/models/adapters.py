"""Thin :class:`~repro.models.base.PerformanceModel` adapters.

One adapter per model family, wrapping the untouched low-level modules:
``perfvec`` wraps :func:`repro.core.training.train_foundation` /
:class:`repro.core.perfvec.PerfVec`; ``ithemal``, ``simnet``,
``program_specific``, ``cross_program`` and ``actboost`` wrap their
:mod:`repro.baselines` counterparts.

Prediction is the shared batched path of the protocol: the base class
turns a dataset into :class:`~repro.models.base.PredictRequest` items and
each adapter implements one ``_predict_batch``; the ``spec`` dict is
likewise generic (``spec_fields`` names the constructor arguments).

Families that consume microarchitecture *parameters* (``simnet``,
``program_specific``, ``cross_program``, ``actboost``) need the
:class:`~repro.uarch.config.MicroarchConfig` objects behind the dataset's
columns at fit time (``configs=``) and snapshot whatever they need from
them, so stored artifacts predict without the objects.  Trace-walking
families (``ithemal``, ``simnet``) regenerate each benchmark's trace
deterministically from the request's trace length, keeping traces out of
the artifact.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.actboost import AdaBoostR2
from repro.baselines.cross_program import CrossProgramPredictor
from repro.baselines.ithemal import IthemalModel, extract_basic_blocks
from repro.baselines.program_specific import ProgramSpecificMLP
from repro.baselines.simnet import SIMNET_FEATURES, SimNetModel, simnet_features
from repro.baselines.trees import RegressionTree
from repro.core.errors import PredictionError
from repro.core.foundation import make_foundation
from repro.core.perfvec import PerfVec
from repro.core.predictor import MicroarchTable
from repro.core.training import FoundationTrainConfig, train_foundation
from repro.features.dataset import TraceDataset
from repro.ml.layers import MLP
from repro.ml.trainer import TrainHistory
from repro.models.base import (
    PerformanceModel,
    PredictRequest,
    coalesce_streams,
)
from repro.models.registry import register
from repro.frontends import DEFAULT_FRONTEND, get_frontend
from repro.uarch.config import MicroarchConfig, config_from_dict


def _require_configs(
    family: str,
    dataset: TraceDataset,
    configs: list[MicroarchConfig] | None,
) -> list[MicroarchConfig]:
    if configs is None:
        raise ValueError(
            f"the {family!r} family consumes microarchitecture parameters: "
            "pass configs= (the MicroarchConfig list behind the dataset "
            "columns) to fit()"
        )
    names = tuple(c.name for c in configs)
    if names != dataset.config_names:
        raise ValueError(
            "configs must match the dataset's config columns in order: "
            f"{names} vs {dataset.config_names}"
        )
    return configs


def _config_params(configs: list[MicroarchConfig]) -> np.ndarray:
    return np.stack([c.to_feature_vector() for c in configs]).astype(np.float64)


def _resolve_column(dataset: TraceDataset, config_name: str | None) -> int:
    """Target column of a one-uarch family (first column by default)."""
    return dataset.config_names.index(config_name) if config_name else 0


def _prefixed(prefix: str, arrays: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    return {f"{prefix}{k}": v for k, v in arrays.items()}


def _unprefixed(prefix: str, arrays: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    return {
        k[len(prefix):]: v for k, v in arrays.items() if k.startswith(prefix)
    }


class _BaselineAdapter(PerformanceModel):
    """Shared baseline plumbing: fitted state lives in ``_model`` and the
    prediction columns in ``_config_names`` (overridable)."""

    _model = None
    _config_names: tuple[str, ...] = ()

    @property
    def is_fitted(self) -> bool:
        return self._model is not None

    @property
    def config_names(self) -> tuple[str, ...]:
        return self._config_names


# ---------------------------------------------------------------------------
# PerfVec
# ---------------------------------------------------------------------------
@register
class PerfVecModel(PerformanceModel):
    """The paper's model: foundation + microarchitecture table."""

    family = "perfvec"
    spec_fields = (
        "arch", "chunk_len", "batch_size", "epochs", "lr", "lr_step",
        "lr_gamma", "seed",
    )
    serve_inputs = ("features",)

    def __init__(self, arch: str = "lstm-2-256", chunk_len: int = 64,
                 batch_size: int = 16, epochs: int = 50, lr: float = 1e-3,
                 lr_step: int = 10, lr_gamma: float = 0.1, seed: int = 0):
        self.arch = arch
        self.chunk_len = chunk_len
        self.batch_size = batch_size
        self.epochs = epochs
        self.lr = lr
        self.lr_step = lr_step
        self.lr_gamma = lr_gamma
        self.seed = seed
        self.perfvec: PerfVec | None = None
        self.history: TrainHistory | None = None

    @property
    def metadata(self) -> dict:
        if self.perfvec is None:
            return {}
        meta: dict = {"config_names": list(self.perfvec.table.config_names)}
        if self.history is not None:
            meta["history"] = {
                "train_losses": self.history.train_losses,
                "val_losses": self.history.val_losses,
                "best_epoch": self.history.best_epoch,
                "best_val_loss": self.history.best_val_loss,
                "seconds": self.history.seconds,
            }
        return meta

    @property
    def config_names(self) -> tuple[str, ...]:
        return self.perfvec.table.config_names if self.perfvec else ()

    @property
    def is_fitted(self) -> bool:
        return self.perfvec is not None

    def fit(self, dataset: TraceDataset,
            configs: list[MicroarchConfig] | None = None) -> "PerfVecModel":
        config = FoundationTrainConfig(
            spec=self.arch, chunk_len=self.chunk_len,
            batch_size=self.batch_size, epochs=self.epochs, lr=self.lr,
            lr_step=self.lr_step, lr_gamma=self.lr_gamma, seed=self.seed,
        )
        self.perfvec, self.history = train_foundation(dataset, config)
        return self

    #: Engine batch size for serving (bigger than training's: inference
    #: batches cost no gradient memory, so wider BLAS calls win).
    infer_batch = 256

    def _predict_batch(
        self, requests: list[PredictRequest]
    ) -> list[np.ndarray]:
        # one no-grad engine pass per *unique* stream (duplicates
        # coalesce onto it).  Chunk batching stays within a stream on
        # purpose: packing chunks of co-batched requests into shared
        # BLAS calls makes results depend on traffic composition at the
        # ULP level, and serving promises answers bitwise identical to
        # the solo path no matter what else is in the batch.
        streams, rows = coalesce_streams(requests)
        times = [
            self.perfvec.predict_many_program_times(
                [stream], chunk_len=self.chunk_len,
                batch_size=self.infer_batch,
            )[0]
            for stream in streams
        ]
        return [times[row] for row in rows]

    def predict_features(self, features: np.ndarray) -> np.ndarray:
        """Total time (ticks) on every known config from a ``[n, 51]``
        feature stream — no simulation involved (the serving path)."""
        self._require_fitted()
        return self._predict_batch(
            [PredictRequest(benchmark="<stream>", features=features)]
        )[0]

    def state_arrays(self) -> dict[str, np.ndarray]:
        self._require_fitted()
        return self.perfvec.state_dict()

    def restore(self, arrays: dict[str, np.ndarray], metadata: dict) -> None:
        names = tuple(metadata["config_names"])
        foundation = make_foundation(self.arch, seed=self.seed)
        table = MicroarchTable(len(names), foundation.dim, config_names=names)
        model = PerfVec(foundation, table)
        model.load_state_dict(arrays)
        model.eval()
        self.perfvec = model
        history = metadata.get("history")
        self.history = TrainHistory(**history) if history else None


# ---------------------------------------------------------------------------
# Ithemal (basic-block LSTM, per microarchitecture)
# ---------------------------------------------------------------------------
@register
class IthemalAdapter(_BaselineAdapter):
    """Basic-block walker; one model per microarchitecture."""

    family = "ithemal"
    spec_fields = (
        "config_name", "embed_dim", "hidden", "epochs", "batch_size", "lr",
        "seed", "max_block_len", "trace_seed",
    )
    serve_inputs = ("length",)

    def __init__(self, config_name: str | None = None, embed_dim: int = 8,
                 hidden: int = 16, epochs: int = 4, batch_size: int = 64,
                 lr: float = 5e-3, seed: int = 0, max_block_len: int = 16,
                 trace_seed: int | None = None):
        self.config_name = config_name
        self.embed_dim = embed_dim
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self.max_block_len = max_block_len
        self.trace_seed = trace_seed
        self._model: IthemalModel | None = None
        self._resolved_config: str | None = None
        self._isa: str = DEFAULT_FRONTEND

    @property
    def metadata(self) -> dict:
        if self._model is None:
            return {}
        return {
            "config_name": self._resolved_config,
            "scale": self._model._scale,
            "isa": self._isa,
        }

    @property
    def config_names(self) -> tuple[str, ...]:
        return (self._resolved_config,) if self._resolved_config else ()

    def _blocks(
        self, name: str, n_instructions: int,
        latencies: np.ndarray | None, isa: str | None = None,
    ):
        trace = get_frontend(isa or self._isa).trace(
            name, n_instructions, seed=self.trace_seed
        )
        if latencies is None:
            # serving: block structure only — sized to the trace the
            # frontend actually produced (imports may be shorter than
            # the requested budget)
            latencies = np.zeros(len(trace))
        return extract_basic_blocks(trace, latencies, self.max_block_len)

    def fit(self, dataset: TraceDataset,
            configs: list[MicroarchConfig] | None = None) -> "IthemalAdapter":
        column = _resolve_column(dataset, self.config_name)
        self._resolved_config = dataset.config_names[column]
        self._isa = dataset.isa
        blocks = []
        for name, start, end in dataset.segments:
            latencies = dataset.targets[start:end, column].astype(np.float64)
            blocks.extend(self._blocks(name, end - start, latencies))
        self._model = IthemalModel(
            embed_dim=self.embed_dim, hidden=self.hidden, seed=self.seed
        ).fit(blocks, epochs=self.epochs, batch_size=self.batch_size,
              lr=self.lr, seed=self.seed)
        return self

    def _predict_batch(
        self, requests: list[PredictRequest]
    ) -> list[np.ndarray]:
        out = []
        for request in requests:
            n = request.require_length()
            # block structure depends only on the trace, not on latencies
            blocks = self._blocks(
                request.benchmark, n, None, isa=request.isa
            )
            out.append(np.array([float(self._model.predict(blocks).sum())]))
        return out

    def state_arrays(self) -> dict[str, np.ndarray]:
        self._require_fitted()
        return self._model.state_dict()

    def restore(self, arrays: dict[str, np.ndarray], metadata: dict) -> None:
        model = IthemalModel(
            embed_dim=self.embed_dim, hidden=self.hidden, seed=self.seed
        )
        model.load_state_dict(arrays)
        model._scale = float(metadata["scale"])
        self._model = model
        self._resolved_config = metadata["config_name"]
        self._isa = metadata.get("isa", DEFAULT_FRONTEND)


# ---------------------------------------------------------------------------
# SimNet (per-instruction MLP over uarch-dependent features)
# ---------------------------------------------------------------------------
@register
class SimNetAdapter(_BaselineAdapter):
    """Per-instruction walker over microarchitecture-dependent features."""

    family = "simnet"
    spec_fields = (
        "config_name", "hidden", "layers", "epochs", "batch_size", "lr",
        "seed", "trace_seed",
    )
    serve_inputs = ("length",)

    def __init__(self, config_name: str | None = None, hidden: int = 16,
                 layers: int = 2, epochs: int = 3, batch_size: int = 512,
                 lr: float = 3e-3, seed: int = 0,
                 trace_seed: int | None = None):
        self.config_name = config_name
        self.hidden = hidden
        self.layers = layers
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self.trace_seed = trace_seed
        self._model: SimNetModel | None = None
        self._config: MicroarchConfig | None = None
        self._isa: str = DEFAULT_FRONTEND

    @property
    def metadata(self) -> dict:
        if self._model is None:
            return {}
        return {
            "config": self._config.to_dict(),
            "scale": self._model._scale,
            "isa": self._isa,
        }

    @property
    def config_names(self) -> tuple[str, ...]:
        return (self._config.name,) if self._config else ()

    def fit(self, dataset: TraceDataset,
            configs: list[MicroarchConfig] | None = None) -> "SimNetAdapter":
        configs = _require_configs(self.family, dataset, configs)
        column = _resolve_column(dataset, self.config_name)
        self._config = configs[column]
        self._isa = dataset.isa
        frontend = get_frontend(dataset.isa)
        features, latencies = [], []
        for name, start, end in dataset.segments:
            trace = frontend.trace(name, end - start, seed=self.trace_seed)
            features.append(simnet_features(trace, self._config))
            latencies.append(
                dataset.targets[start:end, column].astype(np.float64)
            )
        self._model = SimNetModel(
            hidden=self.hidden, layers=self.layers, epochs=self.epochs,
            batch_size=self.batch_size, lr=self.lr, seed=self.seed,
        ).fit(np.concatenate(features), np.concatenate(latencies))
        return self

    def _predict_batch(
        self, requests: list[PredictRequest]
    ) -> list[np.ndarray]:
        out = []
        for request in requests:
            trace = get_frontend(request.isa or self._isa).trace(
                request.benchmark, request.require_length(),
                seed=self.trace_seed,
            )
            feats = simnet_features(trace, self._config)
            out.append(np.array([self._model.predict_total_time(feats)]))
        return out

    def state_arrays(self) -> dict[str, np.ndarray]:
        self._require_fitted()
        return self._model._net.state_dict()

    def restore(self, arrays: dict[str, np.ndarray], metadata: dict) -> None:
        model = SimNetModel(
            hidden=self.hidden, layers=self.layers, epochs=self.epochs,
            batch_size=self.batch_size, lr=self.lr, seed=self.seed,
        )
        sizes = [SIMNET_FEATURES] + [self.hidden] * (self.layers - 1) + [1]
        model._net = MLP(sizes, rng=np.random.default_rng(self.seed))
        model._net.load_state_dict(arrays)
        model._scale = float(metadata["scale"])
        self._model = model
        self._config = config_from_dict(metadata["config"])
        self._isa = metadata.get("isa", DEFAULT_FRONTEND)


class _SingleBenchmarkAdapter(_BaselineAdapter):
    """Shared shape of the per-program parameter families.

    These models are fitted to *one* benchmark's times over the sampled
    microarchitectures; a prediction request is only answerable for that
    benchmark, and the answer comes entirely from fitted state.
    """

    _resolved_benchmark: str | None = None

    def dataset_requests(self, dataset: TraceDataset) -> list[PredictRequest]:
        return [PredictRequest(benchmark=self._resolved_benchmark)]

    def _predict_one(self) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def _predict_batch(
        self, requests: list[PredictRequest]
    ) -> list[np.ndarray]:
        out = []
        for request in requests:
            if request.benchmark != self._resolved_benchmark:
                raise PredictionError(
                    f"{type(self).__name__} is fitted to benchmark "
                    f"{self._resolved_benchmark!r}, not {request.benchmark!r}"
                )
            out.append(self._predict_one())
        return out


# ---------------------------------------------------------------------------
# Program-specific MLP (Ipek-style, one model per program)
# ---------------------------------------------------------------------------
@register
class ProgramSpecificAdapter(_SingleBenchmarkAdapter):
    """uarch parameters -> execution time, for one program."""

    family = "program_specific"
    spec_fields = ("benchmark", "hidden", "layers", "epochs", "lr", "seed")

    def __init__(self, benchmark: str | None = None, hidden: int = 32,
                 layers: int = 2, epochs: int = 500, lr: float = 5e-3,
                 seed: int = 0):
        self.benchmark = benchmark
        self.hidden = hidden
        self.layers = layers
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self._model: ProgramSpecificMLP | None = None
        self._resolved_benchmark: str | None = None
        self._config_names: tuple[str, ...] = ()
        self._params: np.ndarray | None = None

    @property
    def metadata(self) -> dict:
        if self._model is None:
            return {}
        return {
            "benchmark": self._resolved_benchmark,
            "config_names": list(self._config_names),
            "scale": self._model._scale,
        }

    def fit(self, dataset: TraceDataset,
            configs: list[MicroarchConfig] | None = None,
            ) -> "ProgramSpecificAdapter":
        configs = _require_configs(self.family, dataset, configs)
        bench = self.benchmark or dataset.segments[0][0]
        times = dataset.total_times()[bench]
        self._model = ProgramSpecificMLP(
            hidden=self.hidden, layers=self.layers, epochs=self.epochs,
            lr=self.lr, seed=self.seed,
        ).fit(configs, times)
        self._resolved_benchmark = bench
        self._config_names = dataset.config_names
        self._params = ProgramSpecificMLP.encode(configs)
        return self

    def _predict_one(self) -> np.ndarray:
        return self._model.predict_params(self._params)

    def state_arrays(self) -> dict[str, np.ndarray]:
        self._require_fitted()
        arrays = _prefixed("net.", self._model._net.state_dict())
        arrays["config_params"] = self._params
        return arrays

    def restore(self, arrays: dict[str, np.ndarray], metadata: dict) -> None:
        params = arrays["config_params"]
        model = ProgramSpecificMLP(
            hidden=self.hidden, layers=self.layers, epochs=self.epochs,
            lr=self.lr, seed=self.seed,
        )
        sizes = [params.shape[1]] + [self.hidden] * (self.layers - 1) + [1]
        model._net = MLP(sizes, rng=np.random.default_rng(self.seed))
        model._net.load_state_dict(_unprefixed("net.", arrays))
        model._scale = float(metadata["scale"])
        self._model = model
        self._resolved_benchmark = metadata["benchmark"]
        self._config_names = tuple(metadata["config_names"])
        self._params = params


# ---------------------------------------------------------------------------
# Cross-program (Dubach-style transferable linear predictor)
# ---------------------------------------------------------------------------
@register
class CrossProgramAdapter(_BaselineAdapter):
    """Shared ridge model over uarch parameters + program signatures.

    Per the baseline's semantics, prediction for a program uses its
    *measured* times on the few signature configurations — so requests
    carry ``signature_times``, read from the evaluation dataset's
    simulated ground truth (the signature runs are always simulations).
    """

    family = "cross_program"
    spec_fields = ("n_signature", "ridge")
    serve_inputs = ("signature_times",)

    def __init__(self, n_signature: int = 3, ridge: float = 1e-3):
        self.n_signature = n_signature
        self.ridge = ridge
        self._model: CrossProgramPredictor | None = None
        self._config_names: tuple[str, ...] = ()
        self._params: np.ndarray | None = None

    @property
    def metadata(self) -> dict:
        if self._model is None:
            return {}
        return {
            "config_names": list(self._config_names),
            "signature_indices": self._model.signature_indices,
        }

    def fit(self, dataset: TraceDataset,
            configs: list[MicroarchConfig] | None = None,
            ) -> "CrossProgramAdapter":
        configs = _require_configs(self.family, dataset, configs)
        self._model = CrossProgramPredictor(
            n_signature=self.n_signature, ridge=self.ridge
        ).fit(configs, dataset.total_times())
        self._config_names = dataset.config_names
        self._params = _config_params(configs)
        return self

    def dataset_requests(self, dataset: TraceDataset) -> list[PredictRequest]:
        self._require_fitted()
        indices = self._model.signature_indices
        return [
            PredictRequest(benchmark=name, signature_times=times[indices])
            for name, times in dataset.total_times().items()
        ]

    def _predict_batch(
        self, requests: list[PredictRequest]
    ) -> list[np.ndarray]:
        out = []
        for request in requests:
            if request.signature_times is None:
                raise PredictionError(
                    f"request for {request.benchmark!r} carries no "
                    "signature-configuration times"
                )
            out.append(
                self._model.predict_from_params(
                    self._params, request.signature_times
                )
            )
        return out

    def state_arrays(self) -> dict[str, np.ndarray]:
        self._require_fitted()
        return {
            "weights": self._model._weights,
            "config_params": self._params,
        }

    def restore(self, arrays: dict[str, np.ndarray], metadata: dict) -> None:
        self._model = CrossProgramPredictor.from_state(
            arrays["weights"], metadata["signature_indices"], ridge=self.ridge
        )
        self._config_names = tuple(metadata["config_names"])
        self._params = arrays["config_params"]


# ---------------------------------------------------------------------------
# ActBoost (AdaBoost.R2 over regression trees)
# ---------------------------------------------------------------------------
@register
class ActBoostAdapter(_SingleBenchmarkAdapter):
    """Boosted trees: uarch parameters -> execution time, per program."""

    family = "actboost"
    spec_fields = ("benchmark", "n_estimators", "max_depth", "seed")

    def __init__(self, benchmark: str | None = None, n_estimators: int = 20,
                 max_depth: int = 3, seed: int = 0):
        self.benchmark = benchmark
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.seed = seed
        self._model: AdaBoostR2 | None = None
        self._resolved_benchmark: str | None = None
        self._config_names: tuple[str, ...] = ()
        self._params: np.ndarray | None = None

    @property
    def metadata(self) -> dict:
        if self._model is None:
            return {}
        return {
            "benchmark": self._resolved_benchmark,
            "config_names": list(self._config_names),
            "n_trees": len(self._model.trees),
        }

    def fit(self, dataset: TraceDataset,
            configs: list[MicroarchConfig] | None = None,
            ) -> "ActBoostAdapter":
        configs = _require_configs(self.family, dataset, configs)
        bench = self.benchmark or dataset.segments[0][0]
        params = _config_params(configs)
        self._model = AdaBoostR2(
            n_estimators=self.n_estimators, max_depth=self.max_depth,
            seed=self.seed,
        ).fit(params, dataset.total_times()[bench])
        self._resolved_benchmark = bench
        self._config_names = dataset.config_names
        self._params = params
        return self

    def _predict_one(self) -> np.ndarray:
        return self._model.predict(self._params)

    def state_arrays(self) -> dict[str, np.ndarray]:
        self._require_fitted()
        arrays: dict[str, np.ndarray] = {
            "betas": np.asarray(self._model.betas, dtype=np.float64),
            "config_params": self._params,
        }
        for i, tree in enumerate(self._model.trees):
            arrays.update(_prefixed(f"tree{i}.", tree.to_arrays()))
        return arrays

    def restore(self, arrays: dict[str, np.ndarray], metadata: dict) -> None:
        model = AdaBoostR2(
            n_estimators=self.n_estimators, max_depth=self.max_depth,
            seed=self.seed,
        )
        model.trees = [
            RegressionTree.from_arrays(
                _unprefixed(f"tree{i}.", arrays),
                max_depth=self.max_depth, min_leaf=1,
            )
            for i in range(int(metadata["n_trees"]))
        ]
        model.betas = [float(b) for b in arrays["betas"]]
        self._model = model
        self._resolved_benchmark = metadata["benchmark"]
        self._config_names = tuple(metadata["config_names"])
        self._params = arrays["config_params"]
