"""The ``PerformanceModel`` protocol: one estimator shape for every family.

Every performance model in this repo — PerfVec and the five baselines —
implements the same surface:

* ``fit(dataset, configs=None)`` — train on a
  :class:`~repro.features.dataset.TraceDataset` (families that consume
  microarchitecture *parameters* additionally need the
  :class:`~repro.uarch.config.MicroarchConfig` objects behind the
  dataset's columns).
* ``predict(dataset)`` — per-benchmark predicted **total execution
  times** (0.1 ns ticks), one value per entry of :attr:`config_names`.
* ``evaluate(dataset)`` — :class:`~repro.core.errors.ErrorSummary` per
  benchmark against the dataset's simulated ground truth.
* ``save(path)`` / :func:`load_model` — artifact persistence: a
  directory holding ``model.json`` (family + spec + metadata) and
  ``weights.npz`` (every learned array, written atomically via
  :mod:`repro.ml.serialize`). Reloaded models produce **byte-identical**
  predictions.
* ``spec`` / ``metadata`` — the constructor hyper-parameters and the
  fitted-state summary, both JSON-serializable; together with the weight
  arrays they fully determine the model.

The low-level modules (:mod:`repro.core`, :mod:`repro.baselines`) stay
untouched; adapters in :mod:`repro.models.adapters` wrap them.
"""

from __future__ import annotations

import abc
import json
import os
from typing import ClassVar

import numpy as np

from repro.core.errors import ErrorSummary, error_summary
from repro.features.dataset import TraceDataset
from repro.uarch.config import MicroarchConfig

#: Name of the JSON half of an artifact directory.
MODEL_JSON = "model.json"
#: Name of the array half of an artifact directory.
WEIGHTS_NPZ = "weights.npz"


class NotFittedError(RuntimeError):
    """Raised when predicting or saving with an unfitted model."""


class PerformanceModel(abc.ABC):
    """Uniform estimator protocol over all model families."""

    #: Registry key of the family (set by each adapter class).
    family: ClassVar[str] = ""

    # -- identity ---------------------------------------------------------
    @property
    @abc.abstractmethod
    def spec(self) -> dict:
        """Constructor hyper-parameters (JSON-serializable)."""

    @property
    def metadata(self) -> dict:
        """Fitted-state summary (JSON-serializable); empty before fit."""
        return {}

    @property
    @abc.abstractmethod
    def config_names(self) -> tuple[str, ...]:
        """Microarchitectures this model predicts, in prediction order."""

    @property
    @abc.abstractmethod
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` (or a restore) has produced usable state."""

    # -- estimator --------------------------------------------------------
    @abc.abstractmethod
    def fit(
        self,
        dataset: TraceDataset,
        configs: list[MicroarchConfig] | None = None,
    ) -> "PerformanceModel":
        """Train on ``dataset``; returns ``self`` for chaining."""

    @abc.abstractmethod
    def predict(self, dataset: TraceDataset) -> dict[str, np.ndarray]:
        """Per-benchmark predicted total times, aligned with
        :attr:`config_names`."""

    def evaluate(self, dataset: TraceDataset) -> dict[str, ErrorSummary]:
        """Prediction-error summary per benchmark vs the dataset's truth."""
        columns = [dataset.config_names.index(n) for n in self.config_names]
        truths = dataset.total_times()
        return {
            name: error_summary(pred, truths[name][columns])
            for name, pred in self.predict(dataset).items()
        }

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise NotFittedError(
                f"{type(self).__name__} has not been fitted"
            )

    # -- persistence ------------------------------------------------------
    @abc.abstractmethod
    def state_arrays(self) -> dict[str, np.ndarray]:
        """Every learned array; with ``spec`` + ``metadata`` this fully
        reconstructs the model."""

    @abc.abstractmethod
    def restore(self, arrays: dict[str, np.ndarray], metadata: dict) -> None:
        """Rebuild fitted state from :meth:`state_arrays` output and the
        saved :attr:`metadata`."""

    def save(self, path: str) -> str:
        """Write this model as an artifact directory; returns ``path``."""
        from repro.ml.serialize import save_arrays

        self._require_fitted()
        os.makedirs(path, exist_ok=True)
        save_arrays(os.path.join(path, WEIGHTS_NPZ), self.state_arrays())
        payload = {
            "family": self.family,
            "spec": self.spec,
            "metadata": self.metadata,
        }
        write_json(os.path.join(path, MODEL_JSON), payload)
        return path


def write_json(path: str, payload: dict) -> None:
    """Atomic JSON write (tmp + rename), matching the npz convention."""
    tmp = f"{path}.{os.getpid()}.tmp"
    try:
        with open(tmp, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)


def read_json(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def load_model(path: str) -> PerformanceModel:
    """Load any artifact directory written by :meth:`PerformanceModel.save`.

    The family recorded in ``model.json`` selects the adapter class via
    :mod:`repro.models.registry`; the spec rebuilds it and the weight
    arrays restore its fitted state.
    """
    from repro.ml.serialize import load_arrays
    from repro.models.registry import create

    payload = read_json(os.path.join(path, MODEL_JSON))
    model = create(payload["family"], **payload["spec"])
    model.restore(
        load_arrays(os.path.join(path, WEIGHTS_NPZ)), payload["metadata"]
    )
    return model
