"""The ``PerformanceModel`` protocol: one estimator shape for every family.

Every performance model in this repo — PerfVec and the five baselines —
implements the same surface:

* ``fit(dataset, configs=None)`` — train on a
  :class:`~repro.features.dataset.TraceDataset` (families that consume
  microarchitecture *parameters* additionally need the
  :class:`~repro.uarch.config.MicroarchConfig` objects behind the
  dataset's columns).
* ``predict(dataset)`` — per-benchmark predicted **total execution
  times** (0.1 ns ticks), one value per entry of :attr:`config_names`.
  Implemented once, on the base class, over the batched
  ``predict_batch(requests)`` path: the dataset is turned into
  :class:`PredictRequest` items and every family answers the whole batch
  at once (PerfVec runs all feature streams through one no-grad engine
  pass; parameter families answer from their fitted state).
* ``evaluate(dataset)`` — :class:`~repro.core.errors.ErrorSummary` per
  benchmark against the dataset's simulated ground truth.
* ``save(path)`` / :func:`load_model` — artifact persistence: a
  directory holding ``model.json`` (family + spec + metadata) and
  ``weights.npz`` (every learned array, written atomically via
  :mod:`repro.ml.serialize`). Reloaded models produce **byte-identical**
  predictions.
* ``spec`` / ``metadata`` — the constructor hyper-parameters and the
  fitted-state summary, both JSON-serializable; together with the weight
  arrays they fully determine the model.

The low-level modules (:mod:`repro.core`, :mod:`repro.baselines`) stay
untouched; adapters in :mod:`repro.models.adapters` wrap them.
"""

from __future__ import annotations

import abc
import json
import os
from dataclasses import dataclass
from typing import ClassVar, Sequence

import numpy as np

from repro.core.errors import ErrorSummary, PredictionError, error_summary
from repro.features.dataset import TraceDataset
from repro.uarch.config import MicroarchConfig

#: Name of the JSON half of an artifact directory.
MODEL_JSON = "model.json"
#: Name of the array half of an artifact directory.
WEIGHTS_NPZ = "weights.npz"


class NotFittedError(RuntimeError):
    """Raised when predicting or saving with an unfitted model."""


@dataclass(frozen=True)
class PredictRequest:
    """One unit of batched prediction work.

    Families consume the fields they need and ignore the rest:

    * ``features`` — the ``[n, 51]`` encoded stream (PerfVec's serving
      input; :meth:`PerformanceModel.dataset_requests` fills it from the
      dataset, the serving layer from the feature cache);
    * ``n_instructions`` — trace length, for trace-walking families that
      regenerate the benchmark's trace deterministically;
    * ``signature_times`` — measured times on the signature
      configurations (the cross-program baseline's extra input);
    * ``isa`` — the trace frontend the benchmark name resolves against
      (``None`` means "whatever the model was fitted on"); trace-walking
      families use it to fetch traces through :mod:`repro.frontends`.
    """

    benchmark: str
    features: np.ndarray | None = None
    n_instructions: int | None = None
    signature_times: np.ndarray | None = None
    isa: str | None = None

    def require_features(self) -> np.ndarray:
        if self.features is None:
            raise PredictionError(
                f"request for {self.benchmark!r} carries no feature stream"
            )
        return self.features

    def require_length(self) -> int:
        if self.n_instructions is None:
            raise PredictionError(
                f"request for {self.benchmark!r} carries no trace length"
            )
        return self.n_instructions


def coalesce_streams(
    requests: Sequence[PredictRequest],
) -> tuple[list[np.ndarray], list[int]]:
    """Unique feature streams + per-request row indices into them.

    Deduplication is by object identity: the feature caches hand repeated
    requests for one benchmark the same ndarray, so a hot benchmark
    becomes one engine work item, not N.  Returns ``(streams, rows)``
    with ``streams[rows[i]]`` being request ``i``'s stream.
    """
    streams: list[np.ndarray] = []
    index_of: dict[int, int] = {}
    rows = []
    for request in requests:
        features = request.require_features()
        position = index_of.get(id(features))
        if position is None:
            position = len(streams)
            index_of[id(features)] = position
            streams.append(features)
        rows.append(position)
    return streams, rows


class PerformanceModel(abc.ABC):
    """Uniform estimator protocol over all model families."""

    #: Registry key of the family (set by each adapter class).
    family: ClassVar[str] = ""

    #: Constructor hyper-parameter names; drives the generic :attr:`spec`.
    spec_fields: ClassVar[tuple[str, ...]] = ()

    #: What the serving layer must attach to a :class:`PredictRequest`
    #: for this family, drawn from ``{"features", "length",
    #: "signature_times"}`` — ``"features"`` is the encoded feature
    #: stream, ``"length"`` the deterministic trace length,
    #: ``"signature_times"`` the caller-measured times on the signature
    #: configurations.  Empty means the family answers purely from
    #: fitted state (the per-program baselines).
    serve_inputs: ClassVar[tuple[str, ...]] = ()

    # -- identity ---------------------------------------------------------
    @property
    def spec(self) -> dict:
        """Constructor hyper-parameters (JSON-serializable).

        Built generically from :attr:`spec_fields` — every adapter stores
        its constructor arguments as same-named attributes.
        """
        if not self.spec_fields:
            raise NotImplementedError(
                f"{type(self).__name__} must define spec_fields"
            )
        return {name: getattr(self, name) for name in self.spec_fields}

    @property
    def metadata(self) -> dict:
        """Fitted-state summary (JSON-serializable); empty before fit."""
        return {}

    @property
    @abc.abstractmethod
    def config_names(self) -> tuple[str, ...]:
        """Microarchitectures this model predicts, in prediction order."""

    @property
    @abc.abstractmethod
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` (or a restore) has produced usable state."""

    # -- estimator --------------------------------------------------------
    @abc.abstractmethod
    def fit(
        self,
        dataset: TraceDataset,
        configs: list[MicroarchConfig] | None = None,
    ) -> "PerformanceModel":
        """Train on ``dataset``; returns ``self`` for chaining."""

    def dataset_requests(self, dataset: TraceDataset) -> list[PredictRequest]:
        """The :class:`PredictRequest` batch equivalent to ``dataset``.

        The default covers every segment; families whose predictions are
        bound to other inputs (a single fitted benchmark, signature
        measurements) override this.
        """
        return [
            PredictRequest(
                benchmark=name,
                features=dataset.features[start:end],
                n_instructions=end - start,
                isa=dataset.isa,
            )
            for name, start, end in dataset.segments
        ]

    def predict(self, dataset: TraceDataset) -> dict[str, np.ndarray]:
        """Per-benchmark predicted total times, aligned with
        :attr:`config_names` (the batched path over the whole dataset)."""
        requests = self.dataset_requests(dataset)
        results = self.predict_batch(requests)
        return {
            request.benchmark: result
            for request, result in zip(requests, results)
        }

    def predict_batch(
        self, requests: Sequence[PredictRequest]
    ) -> list[np.ndarray]:
        """Answer a whole batch of requests at once.

        Returns one ``(len(config_names),)`` prediction array per request,
        in request order.  This is the single predict implementation every
        family provides (``_predict_batch``); the serving layer calls it
        directly so queued requests share batched inference.
        """
        self._require_fitted()
        requests = list(requests)
        results = self._predict_batch(requests)
        if len(results) != len(requests):
            raise PredictionError(
                f"{type(self).__name__} returned {len(results)} results "
                f"for {len(requests)} requests"
            )
        return results

    @abc.abstractmethod
    def _predict_batch(
        self, requests: list[PredictRequest]
    ) -> list[np.ndarray]:
        """Family-specific batched prediction (fitted state guaranteed)."""

    def evaluate(self, dataset: TraceDataset) -> dict[str, ErrorSummary]:
        """Prediction-error summary per benchmark vs the dataset's truth."""
        columns = [dataset.config_names.index(n) for n in self.config_names]
        truths = dataset.total_times()
        return {
            name: error_summary(pred, truths[name][columns])
            for name, pred in self.predict(dataset).items()
        }

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise NotFittedError(
                f"{type(self).__name__} has not been fitted"
            )

    # -- persistence ------------------------------------------------------
    @abc.abstractmethod
    def state_arrays(self) -> dict[str, np.ndarray]:
        """Every learned array; with ``spec`` + ``metadata`` this fully
        reconstructs the model."""

    @abc.abstractmethod
    def restore(self, arrays: dict[str, np.ndarray], metadata: dict) -> None:
        """Rebuild fitted state from :meth:`state_arrays` output and the
        saved :attr:`metadata`."""

    def save(self, path: str) -> str:
        """Write this model as an artifact directory; returns ``path``."""
        from repro.ml.serialize import save_arrays

        self._require_fitted()
        os.makedirs(path, exist_ok=True)
        save_arrays(os.path.join(path, WEIGHTS_NPZ), self.state_arrays())
        payload = {
            "family": self.family,
            "spec": self.spec,
            "metadata": self.metadata,
        }
        write_json(os.path.join(path, MODEL_JSON), payload)
        return path


def write_json(path: str, payload: dict) -> None:
    """Atomic JSON write (tmp + rename), matching the npz convention."""
    tmp = f"{path}.{os.getpid()}.tmp"
    try:
        with open(tmp, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)


def read_json(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def load_model(path: str) -> PerformanceModel:
    """Load any artifact directory written by :meth:`PerformanceModel.save`.

    The family recorded in ``model.json`` selects the adapter class via
    :mod:`repro.models.registry`; the spec rebuilds it and the weight
    arrays restore its fitted state.
    """
    from repro.ml.serialize import load_arrays
    from repro.models.registry import create

    payload = read_json(os.path.join(path, MODEL_JSON))
    model = create(payload["family"], **payload["spec"])
    model.restore(
        load_arrays(os.path.join(path, WEIGHTS_NPZ)), payload["metadata"]
    )
    return model
