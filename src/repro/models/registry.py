"""Model registry: family name -> adapter factory.

Experiments, the :class:`repro.api.Session` facade and the CLI construct
models through :func:`create` instead of hard-coding imports, so a new
family only needs a ``@register`` decoration to appear everywhere —
``repro models list``, ``repro train --model <family>``, artifact
loading, the round-trip test matrix.
"""

from __future__ import annotations

from typing import Callable, Type

from repro.models.base import PerformanceModel

_REGISTRY: dict[str, Type[PerformanceModel]] = {}


def register(cls: Type[PerformanceModel]) -> Type[PerformanceModel]:
    """Class decorator: register ``cls`` under its ``family`` name."""
    if not cls.family:
        raise ValueError(f"{cls.__name__} must set a non-empty `family`")
    if cls.family in _REGISTRY:
        raise ValueError(f"model family {cls.family!r} already registered")
    _REGISTRY[cls.family] = cls
    return cls


def available() -> list[str]:
    """Registered family names, sorted."""
    _ensure_adapters()
    return sorted(_REGISTRY)


def get_family(family: str) -> Type[PerformanceModel]:
    """The adapter class for ``family``."""
    _ensure_adapters()
    if family not in _REGISTRY:
        raise KeyError(
            f"unknown model family {family!r}; known: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[family]


def create(family: str, **spec) -> PerformanceModel:
    """Construct an unfitted model of ``family`` from spec kwargs."""
    return get_family(family)(**spec)


def _ensure_adapters() -> None:
    # The built-in adapters register on import; defer it so that
    # base/registry stay import-cycle-free.
    import repro.models.adapters  # noqa: F401


Factory = Callable[..., PerformanceModel]
