"""Versioned, content-addressed model artifact store.

Layout (under the :mod:`repro.cache` root, ``<root>/models/`` by
default)::

    <store root>/
        perfvec-3f9ab2c41d0e55aa/
            manifest.json       # identity + provenance (see below)
            model.json          # family, spec, metadata (load_model format)
            weights.npz         # every learned array, written atomically

The artifact id is **content-addressed**: a hash over the family, the
spec, the training config, the dataset fingerprint and a digest of the
weight arrays. Storing the same trained model twice is therefore
idempotent, and two different trainings can never collide.

The manifest records the :meth:`~repro.features.dataset.TraceDataset.fingerprint`
of the training data; :meth:`ModelStore.load` rejects an artifact whose
recorded fingerprint does not match the caller's expectation
(:class:`FingerprintMismatch`), so a stored model can never silently be
reused against data it was not trained on. Weight integrity is verified
on every load against the manifest's ``weights_digest``.
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np

from repro.cache import model_store_dir
from repro.ml.serialize import load_arrays
from repro.models.base import (
    MODEL_JSON,
    WEIGHTS_NPZ,
    PerformanceModel,
    read_json,
    write_json,
)

#: Provenance record inside each artifact directory.
MANIFEST_JSON = "manifest.json"

#: Bump when the artifact layout changes incompatibly.
STORE_FORMAT = 1


class StoreError(RuntimeError):
    """Missing, unreadable or corrupt artifact."""


class FingerprintMismatch(StoreError):
    """Artifact was trained on different data than the caller expects."""


def _canonical(payload) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def training_provenance(
    scale: str, family: str, benchmarks, isa: str | None = None
) -> dict:
    """The canonical ``train_config`` dict artifacts are keyed by.

    :meth:`repro.api.Session.train` and
    :func:`repro.experiments.common.trained_model` both build it here, so
    a model trained by one is found — byte-identically — by the other.
    ``isa`` (the trace frontend) enters the key only when it is not the
    default, keeping every pre-frontend artifact findable.
    """
    from repro.frontends import DEFAULT_FRONTEND

    config = {"scale": scale, "family": family, "benchmarks": list(benchmarks)}
    if isa is not None and isa != DEFAULT_FRONTEND:
        config["isa"] = isa
    return config


def _digest_arrays(arrays: dict[str, np.ndarray]) -> str:
    """Order-independent content hash of named arrays."""
    h = hashlib.sha256()
    for name in sorted(arrays):
        a = np.ascontiguousarray(arrays[name])
        h.update(name.encode())
        h.update(str(a.dtype).encode())
        h.update(repr(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()[:16]


class ModelStore:
    """Content-addressed artifact directory for fitted models."""

    def __init__(self, root: str | None = None):
        self.root = root or model_store_dir()

    def path(self, artifact_id: str) -> str:
        return os.path.join(self.root, artifact_id)

    # -- write ------------------------------------------------------------
    def put(
        self,
        model: PerformanceModel,
        dataset_fingerprint: str | None = None,
        train_config: dict | None = None,
        tag: str | None = None,
    ) -> str:
        """Store a fitted model; returns its content-addressed id.

        ``dataset_fingerprint`` should be the training dataset's
        :meth:`~repro.features.dataset.TraceDataset.fingerprint`;
        ``train_config`` any extra provenance (scale name, benchmark
        split, ...) worth finding the artifact by later.
        """
        arrays = model.state_arrays()
        weights_digest = _digest_arrays(arrays)
        identity = {
            "family": model.family,
            "spec": model.spec,
            "train_config": train_config,
            "dataset_fingerprint": dataset_fingerprint,
            "weights_digest": weights_digest,
        }
        digest = hashlib.sha256(_canonical(identity)).hexdigest()[:16]
        artifact_id = f"{model.family}-{digest}"
        path = self.path(artifact_id)
        if tag is None and self.exists(artifact_id):
            # re-putting identical content must not erase an earlier tag
            tag = self.manifest(artifact_id).get("tag")
        model.save(path)
        manifest = {
            "format": STORE_FORMAT,
            "id": artifact_id,
            "family": model.family,
            "spec": model.spec,
            "metadata": model.metadata,
            "train_config": train_config,
            "dataset_fingerprint": dataset_fingerprint,
            "weights_digest": weights_digest,
            "tag": tag,
        }
        write_json(os.path.join(path, MANIFEST_JSON), manifest)
        return artifact_id

    # -- read -------------------------------------------------------------
    def exists(self, artifact_id: str) -> bool:
        return os.path.exists(os.path.join(self.path(artifact_id), MANIFEST_JSON))

    def manifest(self, artifact_id: str) -> dict:
        path = os.path.join(self.path(artifact_id), MANIFEST_JSON)
        if not os.path.exists(path):
            raise StoreError(f"no artifact {artifact_id!r} under {self.root}")
        return read_json(path)

    def load(
        self,
        artifact_id: str,
        expect_fingerprint: str | None = None,
        mmap: bool = False,
    ) -> PerformanceModel:
        """Rebuild the stored model, verifying integrity and provenance.

        With ``expect_fingerprint`` the load is refused unless the
        artifact was trained on exactly that dataset.  With ``mmap=True``
        the weight arrays are **read-only views over a shared page-cache
        mapping** (see :func:`repro.ml.serialize.load_arrays`): serving
        workers loading the same artifact share one physical copy.
        Values — and therefore predictions — are bit-identical to the
        eager load.
        """
        from repro.models.registry import create

        manifest = self.manifest(artifact_id)
        if (
            expect_fingerprint is not None
            and manifest.get("dataset_fingerprint") != expect_fingerprint
        ):
            raise FingerprintMismatch(
                f"artifact {artifact_id!r} was trained on dataset "
                f"{manifest.get('dataset_fingerprint')!r}, expected "
                f"{expect_fingerprint!r}"
            )
        arrays = load_arrays(
            os.path.join(self.path(artifact_id), WEIGHTS_NPZ), mmap=mmap
        )
        if _digest_arrays(arrays) != manifest["weights_digest"]:
            raise StoreError(f"artifact {artifact_id!r} weights are corrupt")
        model = create(manifest["family"], **manifest["spec"])
        model.restore(arrays, manifest["metadata"])
        return model

    # -- query ------------------------------------------------------------
    def list(self) -> list[dict]:
        """Every stored manifest, newest first."""
        if not os.path.isdir(self.root):
            return []
        entries = []
        for name in os.listdir(self.root):
            path = os.path.join(self.root, name, MANIFEST_JSON)
            if os.path.exists(path):
                entries.append((os.path.getmtime(path), read_json(path)))
        entries.sort(key=lambda item: item[0], reverse=True)
        return [manifest for _, manifest in entries]

    def find(
        self,
        family: str | None = None,
        dataset_fingerprint: str | None = None,
        train_config: dict | None = None,
        spec: dict | None = None,
        tag: str | None = None,
    ) -> str | None:
        """Id of the newest artifact matching every given filter, if any."""
        for manifest in self.list():
            if family is not None and manifest["family"] != family:
                continue
            if (
                dataset_fingerprint is not None
                and manifest.get("dataset_fingerprint") != dataset_fingerprint
            ):
                continue
            if train_config is not None and _canonical(
                manifest.get("train_config")
            ) != _canonical(train_config):
                continue
            if spec is not None and _canonical(manifest["spec"]) != _canonical(spec):
                continue
            if tag is not None and manifest.get("tag") != tag:
                continue
            return manifest["id"]
        return None

    def delete(self, artifact_id: str) -> None:
        """Remove one artifact directory."""
        import shutil

        path = self.path(artifact_id)
        if not os.path.isdir(path):
            raise StoreError(f"no artifact {artifact_id!r} under {self.root}")
        shutil.rmtree(path)


# re-exported for convenience alongside the store
__all__ = [
    "MANIFEST_JSON",
    "MODEL_JSON",
    "STORE_FORMAT",
    "FingerprintMismatch",
    "ModelStore",
    "StoreError",
    "training_provenance",
]
