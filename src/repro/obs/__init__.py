"""``repro.obs`` — tracing, metrics, and profiling for the whole stack.

The first layer that sees every other layer: serving requests, cluster
workers, pipeline stages, queue claims, JIT compiles, and cache lookups
all report here.  Three pieces:

* :mod:`repro.obs.trace` — structured spans with cross-process
  propagation and an append-only JSONL log (``REPRO_OBS``-gated; the
  disabled path is a single env lookup returning a shared no-op);
* :mod:`repro.obs.metrics` — the process-wide :data:`REGISTRY` of
  counters/gauges/histograms, always on, exported as Prometheus text
  via ``GET /v1/metrics`` and as a ``metrics`` block in benchmarks;
* :mod:`repro.obs.viewer` — ``repro obs trace|top|list`` renderers
  over the on-disk span log.

Typical instrumentation::

    from repro import obs

    with obs.span("stage.run", stage=name) as sp:
        ...
        sp.set("rows", len(out))
    obs.REGISTRY.counter("repro_stage_total", stage=name).inc()
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    REGISTRY,
    SIZE_BUCKETS,
    MetricsRegistry,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.trace import (
    MESSAGE_KEY,
    NOOP_SPAN,
    OBS_ENV,
    SLOW_MS_ENV,
    TRACE_ENV,
    Span,
    TraceContext,
    ambient_context,
    current_context,
    current_span,
    dump_flight,
    enabled,
    extract_message,
    flight_snapshot,
    inject_env,
    inject_message,
    reset_for_tests,
    set_enabled,
    slow_threshold_s,
    span,
)
from repro.obs.viewer import (
    SpanRecord,
    build_tree,
    group_traces,
    hot_paths,
    list_traces,
    load_spans,
    render_top,
    render_trace,
)


def metrics_snapshot() -> dict:
    """This process's registry, JSON-ready (tests, stats endpoints)."""
    return REGISTRY.snapshot()


__all__ = [
    "DEFAULT_BUCKETS",
    "MESSAGE_KEY",
    "MetricsRegistry",
    "NOOP_SPAN",
    "OBS_ENV",
    "REGISTRY",
    "SIZE_BUCKETS",
    "SLOW_MS_ENV",
    "Span",
    "SpanRecord",
    "TRACE_ENV",
    "TraceContext",
    "ambient_context",
    "build_tree",
    "current_context",
    "current_span",
    "dump_flight",
    "enabled",
    "extract_message",
    "flight_snapshot",
    "group_traces",
    "hot_paths",
    "inject_env",
    "inject_message",
    "list_traces",
    "load_spans",
    "metrics_snapshot",
    "parse_prometheus",
    "render_prometheus",
    "render_top",
    "render_trace",
    "reset_for_tests",
    "set_enabled",
    "set_slow_threshold",
    "slow_threshold_s",
    "span",
]


def set_slow_threshold(ms: float | None) -> None:
    """Process-wide slow-request threshold for flight dumps (``None``
    clears it).  Exported via :data:`SLOW_MS_ENV` so workers inherit."""
    import os

    if ms is None:
        os.environ.pop(SLOW_MS_ENV, None)
    else:
        os.environ[SLOW_MS_ENV] = str(float(ms))
