"""Process-local metrics registry: counters, gauges, bucketed histograms.

One global :data:`REGISTRY` absorbs the counters that used to live as
ad-hoc dicts scattered across the stack — dispatcher shed/hedge counts,
micro-batch sizes and flush latency, jit compile/hit activity, feature
and stage-store cache hits/misses/corruption, queue lease steals and
expiries.  Everything is recorded unconditionally (a counter bump is a
lock + dict update — the same cost the old ad-hoc dicts paid), while
the *expensive* observability surfaces — span logging, flight dumps —
are gated by ``REPRO_OBS`` in :mod:`repro.obs.trace`.

Exposed three ways:

* ``GET /v1/metrics`` on the serving HTTP layer renders the registry in
  Prometheus text format (a cluster frontend merges every worker's
  snapshot under a ``worker`` label);
* a ``metrics`` block in benchmark reports (``BENCH_*.json``);
* :func:`repro.obs.metrics_snapshot` for tests and tooling.

Histograms use fixed bucket bounds (no per-observation allocation) and
read out p50/p95/p99 by linear interpolation inside the owning bucket —
coarse by construction, but stable, mergeable across processes, and
cheap enough for per-request recording.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

#: Default histogram bounds (seconds): 100µs .. 60s, roughly log-spaced.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Bounds for size-like histograms (batch sizes, span counts).
SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing count for one labeled series."""

    __slots__ = ("_registry", "_name", "_labels", "value")

    def __init__(self, registry, name, labels):
        self._registry = registry
        self._name = name
        self._labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._registry._lock:
            self.value += amount


class Gauge:
    """A point-in-time value for one labeled series."""

    __slots__ = ("_registry", "_name", "_labels", "value")

    def __init__(self, registry, name, labels):
        self._registry = registry
        self._name = name
        self._labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._registry._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._registry._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram:
    """Fixed-bucket histogram with percentile readout.

    ``bounds`` are upper bucket edges; an implicit ``+Inf`` bucket
    catches the tail.  ``counts[i]`` is the number of observations with
    ``value <= bounds[i]`` (cumulative at render time, per-bucket here).
    """

    __slots__ = ("_registry", "_name", "_labels", "bounds", "counts",
                 "total", "count")

    def __init__(self, registry, name, labels, bounds):
        self._registry = registry
        self._name = name
        self._labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._registry._lock:
            self.counts[index] += 1
            self.total += value
            self.count += 1

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile (0..100) from the buckets."""
        with self._registry._lock:
            counts = list(self.counts)
            count = self.count
        if count == 0:
            return 0.0
        rank = max(1.0, q / 100.0 * count)
        seen = 0
        for i, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= rank:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = (self.bounds[i] if i < len(self.bounds)
                      else max(self.bounds[-1], lo) * 2 or 1.0)
                frac = (rank - seen) / bucket_count
                return lo + frac * (hi - lo)
            seen += bucket_count
        return self.bounds[-1]

    def summary(self) -> dict:
        with self._registry._lock:
            count, total = self.count, self.total
        return {
            "count": count,
            "sum": round(total, 9),
            "mean": round(total / count, 9) if count else 0.0,
            "p50": round(self.percentile(50), 9),
            "p95": round(self.percentile(95), 9),
            "p99": round(self.percentile(99), 9),
        }


class MetricsRegistry:
    """Named metric families, each holding labeled series."""

    def __init__(self):
        self._lock = threading.RLock()
        self._families: dict[str, dict] = {}

    # -- get-or-create ----------------------------------------------------
    def _family(self, name: str, kind: str, help_text: str) -> dict:
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = {
                "kind": kind, "help": help_text, "series": {},
            }
        elif family["kind"] != kind:
            raise ValueError(
                f"metric {name!r} is a {family['kind']}, not a {kind}"
            )
        return family

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        with self._lock:
            family = self._family(name, "counter", help)
            key = _label_key(labels)
            series = family["series"].get(key)
            if series is None:
                series = family["series"][key] = Counter(self, name, labels)
            return series

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        with self._lock:
            family = self._family(name, "gauge", help)
            key = _label_key(labels)
            series = family["series"].get(key)
            if series is None:
                series = family["series"][key] = Gauge(self, name, labels)
            return series

    def histogram(
        self, name: str, help: str = "",
        buckets: tuple = DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        with self._lock:
            family = self._family(name, "histogram", help)
            key = _label_key(labels)
            series = family["series"].get(key)
            if series is None:
                series = family["series"][key] = Histogram(
                    self, name, labels, buckets
                )
            return series

    # -- export -----------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-ready copy of every family and series (mergeable)."""
        out: dict = {}
        with self._lock:  # RLock: summary() re-enters safely
            for name, family in sorted(self._families.items()):
                rows = []
                for key, series in family["series"].items():
                    row: dict = {"labels": dict(key)}
                    if family["kind"] == "histogram":
                        row["bounds"] = list(series.bounds)
                        row["counts"] = list(series.counts)
                        row["sum"] = series.total
                        row["count"] = series.count
                        row["summary"] = series.summary()
                    else:
                        row["value"] = series.value
                    rows.append(row)
                out[name] = {
                    "kind": family["kind"],
                    "help": family["help"],
                    "series": rows,
                }
        return out

    def reset(self) -> None:
        with self._lock:
            self._families.clear()


def _fmt_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def _fmt_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{str(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def render_prometheus(snapshots) -> str:
    """Prometheus text exposition over one or more snapshots.

    ``snapshots`` is an iterable of ``(extra_labels, snapshot)`` pairs —
    a cluster frontend passes its own snapshot with no extra labels plus
    each worker's snapshot under ``{"worker": id}``, so one scrape sees
    the whole cluster.
    """
    families: dict[str, dict] = {}
    for extra, snap in snapshots:
        for name, family in snap.items():
            merged = families.setdefault(
                name, {"kind": family["kind"], "help": family["help"],
                       "rows": []},
            )
            for row in family["series"]:
                labels = {**row["labels"], **(extra or {})}
                merged["rows"].append({**row, "labels": labels})
    lines: list[str] = []
    for name, family in sorted(families.items()):
        if family["help"]:
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {family['kind']}")
        for row in family["rows"]:
            labels = row["labels"]
            if family["kind"] == "histogram":
                cumulative = 0
                bounds = list(row["bounds"]) + [float("inf")]
                for bound, count in zip(bounds, row["counts"]):
                    cumulative += count
                    le = "+Inf" if bound == float("inf") else f"{bound:g}"
                    lines.append(
                        f"{name}_bucket"
                        f"{_fmt_labels({**labels, 'le': le})}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{name}_sum{_fmt_labels(labels)} "
                    f"{repr(float(row['sum']))}"
                )
                lines.append(
                    f"{name}_count{_fmt_labels(labels)} {row['count']}"
                )
            else:
                lines.append(
                    f"{name}{_fmt_labels(labels)} "
                    f"{_fmt_value(row['value'])}"
                )
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[str, float]:
    """Minimal parser for the exposition format (tests and CI gates).

    Returns ``{"name{label=\"v\"}": value}`` for every sample line.
    Raises ``ValueError`` on a malformed non-comment line.
    """
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            series, value = line.rsplit(" ", 1)
            samples[series] = float(value)
        except ValueError as exc:
            raise ValueError(f"bad metrics line: {line!r}") from exc
    return samples


#: The process-wide registry (see :mod:`repro.obs`).
REGISTRY = MetricsRegistry()
