"""Structured tracing: nested spans, cross-process propagation, JSONL log.

A *span* is one named, timed region of work.  Spans nest through a
contextvar (safe across threads — each serving thread sees only its own
stack), carry free-form attributes, and belong to a *trace* identified
by a 16-hex-digit id.  A trace crosses process boundaries through three
propagation channels:

* **request envelopes** — the cluster frontend injects the current
  ``(trace, span)`` pair into each dispatched request payload
  (:func:`inject_message`) and the worker adopts it as the parent of
  its serving span (:func:`extract_message`);
* **queue task files** — the sweep coordinator injects into every task
  message it enqueues; the claiming worker parents its stage span on
  the coordinator's run span, whichever host it runs on;
* **spawn environment** — :class:`repro.runtime.workers.WorkerProcess`
  exports ``REPRO_OBS_TRACE`` around ``Process.start()`` so a child's
  root spans join the spawning trace even before any message arrives.

Every finished span appends one JSON line to a per-process log file
under ``<cache>/obs/`` (``spans-<host>-<pid>.jsonl``).  Appends are
single ``os.write`` calls on an ``O_APPEND`` descriptor, so concurrent
processes sharing a file never interleave mid-record, and a SIGKILLed
process leaves at worst one truncated *line* — the reader skips it and
every complete record survives.  Span *starts* are logged too, so a
span that never finishes (its process died) is visible as truncated
rather than silently absent.

Everything here is **off by default**: when ``REPRO_OBS`` is unset (or
falsy) :func:`span` returns a shared no-op object and no file is ever
opened — the fast path is one environment lookup.
"""

from __future__ import annotations

import contextvars
import json
import os
import socket
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass

from repro.cache import obs_dir

#: Environment variable enabling span capture (off by default).
OBS_ENV = "REPRO_OBS"

#: Environment variable carrying ``<trace>:<span>`` into spawned workers.
TRACE_ENV = "REPRO_OBS_TRACE"

#: Milliseconds after which a request is "slow" (flight-dump trigger);
#: unset disables the slow trigger (failures still dump).
SLOW_MS_ENV = "REPRO_OBS_SLOW_MS"

#: Key under which trace context rides request/task message dicts.
MESSAGE_KEY = "_obs"

#: Finished spans retained in the in-process flight ring.
FLIGHT_CAPACITY = 512

_FALSY = ("0", "false", "no", "off")


def enabled() -> bool:
    """Is span capture on for this process right now?"""
    value = os.environ.get(OBS_ENV)
    if value is None:
        return False
    return value.strip().lower() not in _FALSY


def set_enabled(value: bool | None) -> None:
    """Process-wide default (the CLI's ``--obs``).  Exported through
    :data:`OBS_ENV` so spawned workers resolve the same setting;
    ``None`` is a no-op (flag not given)."""
    if value is None:
        return
    os.environ[OBS_ENV] = "1" if value else "0"


def slow_threshold_s() -> float | None:
    """The flight recorder's slow-request threshold, or ``None`` (off)."""
    value = os.environ.get(SLOW_MS_ENV)
    if not value:
        return None
    try:
        return float(value) / 1e3
    except ValueError:
        return None


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of a trace position: ids only, no timing."""

    trace_id: str
    span_id: str

    def to_wire(self) -> dict:
        return {"trace": self.trace_id, "span": self.span_id}

    @classmethod
    def from_wire(cls, payload) -> "TraceContext | None":
        if not isinstance(payload, dict):
            return None
        trace_id = payload.get("trace")
        span_id = payload.get("span")
        if not trace_id or not span_id:
            return None
        return cls(trace_id=str(trace_id), span_id=str(span_id))


def _new_id(bits: int = 64) -> str:
    return uuid.uuid4().hex[: bits // 4]


# ---------------------------------------------------------------------------
# the per-process trace log
# ---------------------------------------------------------------------------
class _TraceLog:
    """Append-only JSONL writer (one file per process under ``<obs>/``)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._fd: int | None = None
        self._root: str | None = None
        self._pid: int | None = None

    def _reopen(self, root: str) -> None:
        if self._fd is not None:
            try:
                os.close(self._fd)
            except OSError:
                pass
        os.makedirs(root, exist_ok=True)
        name = f"spans-{socket.gethostname()}-{os.getpid()}.jsonl"
        self._fd = os.open(
            os.path.join(root, name),
            os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644,
        )
        self._root = root
        self._pid = os.getpid()

    def write(self, record: dict) -> None:
        line = (
            json.dumps(record, separators=(",", ":"), default=str) + "\n"
        ).encode()
        with self._lock:
            root = obs_dir()
            if (self._fd is None or root != self._root
                    or os.getpid() != self._pid):
                self._reopen(root)
            try:
                os.write(self._fd, line)
            except OSError:
                pass  # tracing must never take the workload down

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                try:
                    os.close(self._fd)
                except OSError:
                    pass
                self._fd = None
                self._root = None


_LOG = _TraceLog()

#: Ring of recently finished span records (the flight recorder).
_FLIGHT: deque = deque(maxlen=FLIGHT_CAPACITY)

_CURRENT: contextvars.ContextVar = contextvars.ContextVar(
    "repro_obs_span", default=None
)

_HOST = socket.gethostname()


def ambient_context() -> TraceContext | None:
    """The spawn-environment parent (``REPRO_OBS_TRACE``), if any."""
    value = os.environ.get(TRACE_ENV)
    if not value or ":" not in value:
        return None
    trace_id, _, span_id = value.partition(":")
    if not trace_id or not span_id:
        return None
    return TraceContext(trace_id=trace_id, span_id=span_id)


def current_span() -> "Span | None":
    return _CURRENT.get()


def current_context() -> TraceContext | None:
    """Where a child span (or a propagated message) would attach now."""
    span = _CURRENT.get()
    if span is not None:
        return TraceContext(trace_id=span.trace_id, span_id=span.span_id)
    return ambient_context()


# ---------------------------------------------------------------------------
# spans
# ---------------------------------------------------------------------------
class Span:
    """One open span; use via ``with repro.obs.span(...) as sp``."""

    __slots__ = (
        "trace_id", "span_id", "parent_id", "name", "attrs", "status",
        "_t_wall", "_t_perf", "_t_cpu", "_token",
    )

    def __init__(self, name: str, parent: TraceContext | None, attrs: dict):
        active = _CURRENT.get()
        if parent is None and active is not None:
            parent = TraceContext(
                trace_id=active.trace_id, span_id=active.span_id
            )
        if parent is None:
            parent = ambient_context()
        self.trace_id = parent.trace_id if parent else _new_id()
        self.parent_id = parent.span_id if parent else None
        self.span_id = _new_id()
        self.name = name
        self.attrs = dict(attrs)
        self.status = "ok"
        self._t_wall = 0.0
        self._t_perf = 0.0
        self._t_cpu = 0.0
        self._token = None

    def set(self, key: str, value) -> None:
        """Attach/overwrite one attribute while the span is open."""
        self.attrs[key] = value

    @property
    def context(self) -> TraceContext:
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def __enter__(self) -> "Span":
        self._t_wall = time.time()
        self._t_perf = time.perf_counter()
        self._t_cpu = time.process_time()
        self._token = _CURRENT.set(self)
        _LOG.write({
            "ev": "start",
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "ts": self._t_wall,
            "pid": os.getpid(),
            "host": _HOST,
        })
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if self._token is not None:
            _CURRENT.reset(self._token)
        if exc is not None:
            self.status = f"error: {exc_type.__name__}: {exc}"
        record = {
            "ev": "span",
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "ts": self._t_wall,
            "dur_s": round(time.perf_counter() - self._t_perf, 9),
            "cpu_s": round(time.process_time() - self._t_cpu, 9),
            "status": self.status,
            "pid": os.getpid(),
            "host": _HOST,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        _LOG.write(record)
        _FLIGHT.append(record)
        return False  # never swallow the exception


class _NoopSpan:
    """The disabled fast path: one shared, allocation-free object."""

    __slots__ = ()
    trace_id = None
    span_id = None
    parent_id = None
    status = "ok"

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *_exc_info) -> bool:
        return False

    def set(self, key: str, value) -> None:
        pass

    @property
    def context(self) -> None:
        return None


NOOP_SPAN = _NoopSpan()


def span(name: str, parent: TraceContext | dict | None = None, **attrs):
    """Open a span (a context manager) — or the shared no-op when
    tracing is disabled.

    ``parent`` overrides the ambient parent with an explicitly
    propagated :class:`TraceContext` (or its wire dict) — the
    cross-process hook.  Any other keyword becomes a span attribute.
    """
    if not enabled():
        return NOOP_SPAN
    if isinstance(parent, dict):
        parent = TraceContext.from_wire(parent)
    return Span(name, parent, attrs)


# ---------------------------------------------------------------------------
# propagation
# ---------------------------------------------------------------------------
def inject_message(message: dict) -> dict:
    """Attach the current trace context to an outgoing message dict."""
    if enabled():
        ctx = current_context()
        if ctx is not None:
            message[MESSAGE_KEY] = ctx.to_wire()
    return message


def extract_message(message: dict) -> TraceContext | None:
    """Pop and return a message's propagated context (``None`` if absent).

    Popping keeps the wire key out of downstream schema validation
    (``ServeRequest.from_dict`` rejects unknown fields).
    """
    if not isinstance(message, dict):
        return None
    return TraceContext.from_wire(message.pop(MESSAGE_KEY, None))


def inject_env(env=None):
    """Export the current context into ``env`` (default ``os.environ``)
    for a child process about to spawn; returns a zero-argument restore
    callable undoing the mutation (call it once the child has started —
    spawn snapshots the environment at ``Process.start()``)."""
    env = os.environ if env is None else env
    if not enabled():
        return lambda: None
    ctx = current_context()
    if ctx is None:
        return lambda: None
    previous = env.get(TRACE_ENV)
    env[TRACE_ENV] = f"{ctx.trace_id}:{ctx.span_id}"

    def restore() -> None:
        if previous is None:
            env.pop(TRACE_ENV, None)
        else:
            env[TRACE_ENV] = previous

    return restore


# ---------------------------------------------------------------------------
# flight recorder
# ---------------------------------------------------------------------------
def flight_snapshot() -> list[dict]:
    """The ring's current contents, oldest first."""
    return list(_FLIGHT)


def dump_flight(reason: str, extra: dict | None = None) -> str | None:
    """Persist the span ring to ``<obs>/flight/`` (slow/failed requests).

    Returns the dump path, or ``None`` when tracing is disabled or the
    ring is empty.  Never raises: the recorder is a diagnostic aid, not
    a dependency of the request path.
    """
    if not enabled():
        return None
    spans = flight_snapshot()
    if not spans:
        return None
    try:
        directory = os.path.join(obs_dir(), "flight")
        os.makedirs(directory, exist_ok=True)
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
        safe = "".join(c if c.isalnum() or c in "-_" else "-"
                       for c in reason)[:48]
        path = os.path.join(
            directory,
            f"{stamp}-{safe}-{os.getpid()}-{_new_id(32)}.json",
        )
        payload = {
            "reason": reason,
            "time": time.time(),
            "pid": os.getpid(),
            "host": _HOST,
            "spans": spans,
        }
        if extra:
            payload["extra"] = extra
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, default=str)
        return path
    except OSError:
        return None


def reset_for_tests() -> None:
    """Close the log fd and clear the flight ring (test isolation)."""
    _LOG.close()
    _FLIGHT.clear()
