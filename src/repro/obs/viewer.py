"""Read-side of the trace log: load, stitch, and render span trees.

The writers in :mod:`repro.obs.trace` append two record kinds per span
(``start`` when it opens, ``span`` when it closes) to per-process JSONL
files under ``<cache>/obs/``.  This module is the consumer: it reads
*every* file in that directory, groups records by trace id, pairs starts
with ends (a start without an end means the process died mid-span — the
span is kept and marked truncated), and renders either a parent-indented
tree for one trace (``repro obs trace``) or an aggregate hot-path table
across all of them (``repro obs top``).

Nothing here imports numpy or the rest of the stack; the viewers work on
any obs directory, including one copied off another machine.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.cache import obs_dir


@dataclass
class SpanRecord:
    """One stitched span (or a truncated start-only span)."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    ts: float
    dur_s: float | None
    cpu_s: float | None
    status: str
    pid: int | None
    host: str
    attrs: dict = field(default_factory=dict)
    children: list = field(default_factory=list)

    @property
    def truncated(self) -> bool:
        """Started but never finished — its process died mid-span."""
        return self.dur_s is None


def _iter_records(root: str | None = None):
    """Yield every parseable JSON record in the obs directory.

    Skips unreadable files and malformed lines (a SIGKILLed writer may
    leave one truncated final line) — the reader's contract is "every
    complete record survives", not "the file is pristine".
    """
    directory = root or obs_dir()
    if not os.path.isdir(directory):
        return
    for entry in sorted(os.listdir(directory)):
        if not (entry.startswith("spans-") and entry.endswith(".jsonl")):
            continue
        path = os.path.join(directory, entry)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue  # torn tail write
                    if isinstance(record, dict):
                        yield record
        except OSError:
            continue


def load_spans(root: str | None = None) -> list[SpanRecord]:
    """All spans across every log file, stitched start+end, by time."""
    open_spans: dict[str, SpanRecord] = {}
    done: dict[str, SpanRecord] = {}
    for record in _iter_records(root):
        span_id = record.get("span")
        trace_id = record.get("trace")
        if not span_id or not trace_id:
            continue
        if record.get("ev") == "start":
            if span_id not in done:
                open_spans[span_id] = SpanRecord(
                    trace_id=str(trace_id),
                    span_id=str(span_id),
                    parent_id=record.get("parent"),
                    name=str(record.get("name", "?")),
                    ts=float(record.get("ts", 0.0)),
                    dur_s=None,
                    cpu_s=None,
                    status="truncated",
                    pid=record.get("pid"),
                    host=str(record.get("host", "?")),
                )
        elif record.get("ev") == "span":
            open_spans.pop(span_id, None)
            done[span_id] = SpanRecord(
                trace_id=str(trace_id),
                span_id=str(span_id),
                parent_id=record.get("parent"),
                name=str(record.get("name", "?")),
                ts=float(record.get("ts", 0.0)),
                dur_s=float(record.get("dur_s", 0.0)),
                cpu_s=float(record.get("cpu_s", 0.0)),
                status=str(record.get("status", "ok")),
                pid=record.get("pid"),
                host=str(record.get("host", "?")),
                attrs=record.get("attrs") or {},
            )
    spans = list(done.values()) + list(open_spans.values())
    spans.sort(key=lambda s: s.ts)
    return spans


def group_traces(spans: list[SpanRecord]) -> dict[str, list[SpanRecord]]:
    """Spans bucketed by trace id (each bucket time-ordered)."""
    traces: dict[str, list[SpanRecord]] = {}
    for span in spans:
        traces.setdefault(span.trace_id, []).append(span)
    return traces


def list_traces(root: str | None = None) -> list[dict]:
    """One summary row per trace, newest first (``repro obs list``)."""
    rows = []
    for trace_id, spans in group_traces(load_spans(root)).items():
        roots = [s for s in spans if s.parent_id is None]
        top = roots[0] if roots else spans[0]
        durations = [s.dur_s for s in spans if s.dur_s is not None]
        rows.append({
            "trace": trace_id,
            "root": top.name,
            "spans": len(spans),
            "processes": len({(s.host, s.pid) for s in spans}),
            "start": min(s.ts for s in spans),
            "duration_s": max(durations) if durations else None,
            "truncated": sum(1 for s in spans if s.truncated),
            "errors": sum(
                1 for s in spans if s.status.startswith("error")
            ),
        })
    rows.sort(key=lambda r: r["start"], reverse=True)
    return rows


def build_tree(spans: list[SpanRecord]) -> list[SpanRecord]:
    """Wire up ``children`` lists; returns the roots, time-ordered.

    A span whose parent is missing from the log (it lives in another
    trace fragment, or its record was lost) becomes a root — the tree
    renders whatever survived rather than refusing.
    """
    by_id = {s.span_id: s for s in spans}
    for span in spans:
        span.children = []
    roots = []
    for span in spans:
        parent = by_id.get(span.parent_id) if span.parent_id else None
        if parent is not None and parent is not span:
            parent.children.append(span)
        else:
            roots.append(span)
    for span in spans:
        span.children.sort(key=lambda s: s.ts)
    roots.sort(key=lambda s: s.ts)
    return roots


def _fmt_dur(seconds: float | None) -> str:
    if seconds is None:
        return "   ...   "
    if seconds >= 1.0:
        return f"{seconds:8.3f}s"
    return f"{seconds * 1e3:7.2f}ms"


def render_trace(
    trace_id: str, spans: list[SpanRecord] | None = None,
    root: str | None = None,
) -> str:
    """The span tree of one trace as indented text."""
    if spans is None:
        spans = group_traces(load_spans(root)).get(trace_id, [])
    if not spans:
        return f"trace {trace_id}: no spans found"
    lines = [
        f"trace {trace_id}  "
        f"({len(spans)} spans, "
        f"{len({(s.host, s.pid) for s in spans})} processes)"
    ]

    def walk(span: SpanRecord, depth: int) -> None:
        marks = []
        if span.truncated:
            marks.append("TRUNCATED")
        elif span.status != "ok":
            marks.append(span.status)
        attrs = ""
        if span.attrs:
            attrs = "  " + " ".join(
                f"{k}={v}" for k, v in sorted(span.attrs.items())
            )
        mark = ("  [" + "; ".join(marks) + "]") if marks else ""
        lines.append(
            f"{_fmt_dur(span.dur_s)}  "
            f"{'  ' * depth}{span.name}"
            f"  <{span.host}:{span.pid}>{attrs}{mark}"
        )
        for child in span.children:
            walk(child, depth + 1)

    for tree_root in build_tree(spans):
        walk(tree_root, 0)
    return "\n".join(lines)


def hot_paths(
    spans: list[SpanRecord] | None = None, root: str | None = None,
    limit: int = 20,
) -> list[dict]:
    """Aggregate *self time* per span name across all traces.

    Self time is a span's duration minus its children's — the classic
    hot-path attribution, so a long parent doesn't shadow the child
    actually burning the time.  Truncated spans contribute nothing
    (their duration is unknown).
    """
    if spans is None:
        spans = load_spans(root)
    stats: dict[str, dict] = {}
    build_tree(spans)  # populate children
    for span in spans:
        if span.dur_s is None:
            continue
        child_time = sum(
            c.dur_s for c in span.children if c.dur_s is not None
        )
        self_time = max(0.0, span.dur_s - child_time)
        row = stats.setdefault(span.name, {
            "name": span.name, "count": 0, "total_s": 0.0,
            "self_s": 0.0, "cpu_s": 0.0, "max_s": 0.0, "errors": 0,
        })
        row["count"] += 1
        row["total_s"] += span.dur_s
        row["self_s"] += self_time
        row["cpu_s"] += span.cpu_s or 0.0
        row["max_s"] = max(row["max_s"], span.dur_s)
        if span.status.startswith("error"):
            row["errors"] += 1
    rows = sorted(stats.values(), key=lambda r: r["self_s"], reverse=True)
    return rows[:limit]


def render_top(
    spans: list[SpanRecord] | None = None, root: str | None = None,
    limit: int = 20,
) -> str:
    """The hot-path table as aligned text (``repro obs top``)."""
    rows = hot_paths(spans, root, limit)
    if not rows:
        return "no spans recorded"
    header = (
        f"{'self(s)':>10}  {'total(s)':>10}  {'cpu(s)':>10}  "
        f"{'count':>7}  {'max(s)':>10}  {'err':>4}  name"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['self_s']:>10.4f}  {row['total_s']:>10.4f}  "
            f"{row['cpu_s']:>10.4f}  {row['count']:>7d}  "
            f"{row['max_s']:>10.4f}  {row['errors']:>4d}  {row['name']}"
        )
    return "\n".join(lines)
