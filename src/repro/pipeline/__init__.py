"""Declarative pipeline & scenario API.

Experiments are expressed as **specs** — named DAGs of typed stages
(workload → trace/dataset → train-or-reuse → predict/evaluate → report)
— and executed by a :class:`Runner` with content-addressed, resumable
per-stage artifacts: a re-run only executes stages whose inputs changed.

>>> from repro.pipeline import load_spec, run_spec
>>> result = run_spec("fig3_seen_unseen", scale="smoke")   # preset spec
>>> result.summary()                     # '... 0 executed, 5 cached ...'
>>> custom = load_spec("examples/pipeline_spec.toml")      # user spec
>>> run_spec(custom, scale="smoke").result.render()

``repro pipeline run/sweep/list`` and
:meth:`repro.api.Session.run_pipeline` are the CLI/facade front ends.
"""

from repro.pipeline.executors import (
    BACKENDS,
    ExecutorBackend,
    LocalBackend,
    QueueBackend,
    make_backend,
)
from repro.pipeline.report import (
    ExperimentResult,
    render_surface,
    render_table,
)
from repro.pipeline.runner import (
    PipelineResult,
    Runner,
    StageFailure,
    StageOutcome,
    SweepResult,
    run_spec,
    run_sweep,
)
from repro.pipeline.spec import (
    ExperimentSpec,
    SpecError,
    StageSpec,
    SweepSpec,
    load_spec,
    spec_from_dict,
    stage,
)
from repro.pipeline.stages import (
    ANALYSES,
    STAGE_KINDS,
    StageContext,
    analysis,
)


def get_spec(name: str):
    """A registered preset spec by name (with close-match suggestions)."""
    from repro.pipeline.presets import get_spec as _get

    return _get(name)


def available_specs() -> dict:
    """Every registered preset spec, keyed by name."""
    from repro.pipeline.presets import SPECS

    return dict(SPECS)


__all__ = [
    "ANALYSES",
    "BACKENDS",
    "STAGE_KINDS",
    "ExecutorBackend",
    "ExperimentResult",
    "ExperimentSpec",
    "LocalBackend",
    "PipelineResult",
    "QueueBackend",
    "Runner",
    "SpecError",
    "StageContext",
    "StageFailure",
    "StageOutcome",
    "StageSpec",
    "SweepResult",
    "SweepSpec",
    "analysis",
    "available_specs",
    "get_spec",
    "load_spec",
    "make_backend",
    "render_surface",
    "render_table",
    "run_spec",
    "run_sweep",
    "spec_from_dict",
    "stage",
]
