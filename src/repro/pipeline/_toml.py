"""Minimal TOML reader used when :mod:`tomllib` is unavailable (< 3.11).

Spec files exercise a small, regular subset of TOML — tables, arrays of
tables, dotted headers, scalars and flat arrays — and this module parses
exactly that subset.  On Python 3.11+ :func:`loads` delegates to the
stdlib parser, so the fallback only ever runs on 3.10 and its behaviour
is pinned by tests against the stdlib on newer interpreters.
"""

from __future__ import annotations

import json
import re

try:  # Python 3.11+
    import tomllib as _tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised on 3.10 CI
    _tomllib = None


class TOMLError(ValueError):
    """Malformed TOML input (mirrors ``tomllib.TOMLDecodeError``)."""


_BARE_KEY = re.compile(r"^[A-Za-z0-9_-]+$")


def _parse_key(text: str, line_no: int) -> list[str]:
    """A (possibly dotted, possibly quoted) key into its parts."""
    parts = []
    for part in _split_top_level(text, ".", line_no):
        part = part.strip()
        if part.startswith('"') and part.endswith('"') and len(part) >= 2:
            parts.append(part[1:-1])
        elif _BARE_KEY.match(part):
            parts.append(part)
        else:
            raise TOMLError(f"line {line_no}: invalid key {text!r}")
    if not parts:
        raise TOMLError(f"line {line_no}: empty key")
    return parts


def _split_top_level(text: str, sep: str, line_no: int) -> list[str]:
    """Split on ``sep`` outside quotes and brackets."""
    parts, depth, quote, start = [], 0, None, 0
    for i, ch in enumerate(text):
        if quote:
            if ch == quote:
                quote = None
            continue
        if ch in "\"'":
            quote = ch
        elif ch in "[{":
            depth += 1
        elif ch in "]}":
            depth -= 1
            if depth < 0:
                raise TOMLError(f"line {line_no}: unbalanced brackets")
        elif ch == sep and depth == 0:
            parts.append(text[start:i])
            start = i + 1
    if quote or depth:
        raise TOMLError(f"line {line_no}: unterminated value")
    parts.append(text[start:])
    return parts


def _parse_value(text: str, line_no: int):
    text = text.strip()
    if not text:
        raise TOMLError(f"line {line_no}: missing value")
    if text.startswith('"') or text.startswith("'"):
        if len(text) < 2 or text[-1] != text[0]:
            raise TOMLError(f"line {line_no}: unterminated string {text!r}")
        body = text[1:-1]
        if text[0] == "'":
            return body
        try:  # basic strings share JSON's escape rules closely enough
            return json.loads(f'"{body}"')
        except json.JSONDecodeError as exc:
            raise TOMLError(f"line {line_no}: bad string {text!r}") from exc
    if text == "true":
        return True
    if text == "false":
        return False
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1].strip()
        if not inner:
            return []
        items = _split_top_level(inner, ",", line_no)
        if items and not items[-1].strip():  # trailing comma
            items = items[:-1]
        return [_parse_value(item, line_no) for item in items]
    if text.startswith("{") and text.endswith("}"):
        table: dict = {}
        inner = text[1:-1].strip()
        if not inner:
            return table
        for item in _split_top_level(inner, ",", line_no):
            key, _, value = item.partition("=")
            if not _:
                raise TOMLError(f"line {line_no}: bad inline table {text!r}")
            _assign(table, _parse_key(key, line_no),
                    _parse_value(value, line_no), line_no)
        return table
    try:
        cleaned = text.replace("_", "")
        if re.fullmatch(r"[+-]?\d+", cleaned):
            return int(cleaned)
        return float(cleaned)
    except ValueError:
        raise TOMLError(f"line {line_no}: unsupported value {text!r}") from None


def _descend(root: dict, parts: list[str], line_no: int) -> dict:
    node = root
    for part in parts:
        child = node.setdefault(part, {})
        if isinstance(child, list):  # [[x]] ... then [x.y]
            child = child[-1]
        if not isinstance(child, dict):
            raise TOMLError(f"line {line_no}: {part!r} is not a table")
        node = child
    return node


def _assign(node: dict, parts: list[str], value, line_no: int) -> None:
    node = _descend(node, parts[:-1], line_no)
    if parts[-1] in node:
        raise TOMLError(f"line {line_no}: duplicate key {parts[-1]!r}")
    node[parts[-1]] = value


def _fallback_loads(text: str) -> dict:
    root: dict = {}
    current = root
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        line_no = i + 1
        line = lines[i].strip()
        i += 1
        if not line or line.startswith("#"):
            continue
        if line.startswith("[["):
            if not line.endswith("]]"):
                raise TOMLError(f"line {line_no}: bad table header {line!r}")
            parts = _parse_key(line[2:-2], line_no)
            parent = _descend(root, parts[:-1], line_no)
            array = parent.setdefault(parts[-1], [])
            if not isinstance(array, list):
                raise TOMLError(
                    f"line {line_no}: {parts[-1]!r} is not an array of tables"
                )
            current = {}
            array.append(current)
            continue
        if line.startswith("["):
            if not line.endswith("]"):
                raise TOMLError(f"line {line_no}: bad table header {line!r}")
            parts = _parse_key(line[1:-1], line_no)
            current = _descend(root, parts, line_no)
            continue
        key, eq, value = line.partition("=")
        if not eq:
            raise TOMLError(f"line {line_no}: expected `key = value`: {line!r}")
        value = value.strip()
        # multiline array: keep consuming lines until brackets balance
        while value.count("[") > value.count("]") and i < len(lines):
            value += " " + lines[i].split("#", 1)[0].strip()
            i += 1
        if "#" in value and not value.startswith(('"', "'")):
            value = _split_top_level(value, "#", line_no)[0].strip()
        _assign(current, _parse_key(key, line_no),
                _parse_value(value, line_no), line_no)
    return root


def loads(text: str) -> dict:
    """Parse TOML text; raises :class:`TOMLError` on malformed input."""
    if _tomllib is not None:
        try:
            return _tomllib.loads(text)
        except _tomllib.TOMLDecodeError as exc:
            raise TOMLError(str(exc)) from exc
    return _fallback_loads(text)
