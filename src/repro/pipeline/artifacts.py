"""Content-addressed, resumable per-stage artifacts.

Every executed stage persists its (JSON) payload under the cache root at
``<root>/stages/<key>.json``.  The key is a hash over the stage's kind +
version, its resolved parameters, the full scale identity and the keys
of every upstream stage — so a change anywhere upstream transparently
invalidates everything downstream, while an untouched prefix of the DAG
is served from disk without executing.

Heavy data never lives here: dataset stages reference the npz dataset
cache by fingerprint and train stages reference the
:class:`~repro.models.store.ModelStore` by artifact id.  A stage artifact
is therefore small, diff-able provenance — what ran, with which inputs,
producing which references.

The store is safe for **concurrent writers and readers** (the
distributed queue backend runs many worker processes against one root):
publication is an atomic tmp-write + ``os.replace`` so readers only ever
see whole records, a corrupt or partial record reads as a miss (the
stage recomputes), racing writers of one key converge on a single record
with the first publisher winning by default (``overwrite=False``), and
temp files orphaned by a killed writer are reaped on store init.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import time

from repro.cache import stage_store_dir
from repro.obs.metrics import REGISTRY

log = logging.getLogger(__name__)

#: Bump when the artifact record layout changes incompatibly.
STAGE_STORE_FORMAT = 1

#: A ``.tmp`` file older than this is an orphan from a dead writer —
#: live writers hold theirs for milliseconds — and is reaped on init.
STALE_TMP_SECONDS = 600.0


def _canonical(payload) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=str).encode()


def stage_key(
    stage, scale, upstream_keys: dict[str, str], version: int,
    extra: dict | None = None,
) -> str:
    """Content address of one stage execution.

    ``extra`` carries kind-specific identity beyond the declared params —
    the analysis kind passes its function's source fingerprint here so
    code edits invalidate cached payloads.
    """
    identity = {
        "format": STAGE_STORE_FORMAT,
        "kind": stage.kind,
        "kind_version": version,
        "params": dict(stage.params),
        "scale": dataclasses.asdict(scale),
        "upstream": dict(sorted(upstream_keys.items())),
    }
    if extra:
        identity["extra"] = extra
    return hashlib.sha256(_canonical(identity)).hexdigest()[:16]


class StageArtifactStore:
    """Flat directory of ``<key>.json`` stage records."""

    def __init__(self, root: str | None = None,
                 tmp_ttl_s: float = STALE_TMP_SECONDS):
        self.root = root or stage_store_dir()
        self.tmp_ttl_s = tmp_ttl_s
        self.reap_stale_tmp()

    def path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def get(self, key: str) -> dict | None:
        """The stored record, or ``None`` on miss/corruption (recompute).

        Corruption still reads as a miss — the stage recomputes and
        republishes — but is counted and logged instead of silently
        indistinguishable from "never ran".
        """
        path = self.path(key)
        if not os.path.exists(path):
            self._count("miss")
            return None
        try:
            with open(path, encoding="utf-8") as fh:
                record = json.load(fh)
        except OSError:
            self._count("miss")
            return None
        except json.JSONDecodeError as exc:
            self._corrupt(key, f"unparseable JSON: {exc}")
            return None
        if not isinstance(record, dict) or record.get("format") != STAGE_STORE_FORMAT:
            self._corrupt(key, "wrong format marker")
            return None
        if "payload" not in record:
            self._corrupt(key, "record has no payload")
            return None
        self._count("hit")
        return record

    @staticmethod
    def _count(outcome: str) -> None:
        REGISTRY.counter(
            "repro_stage_store_lookups_total",
            "Stage artifact store lookups by outcome.",
            outcome=outcome,
        ).inc()

    def _corrupt(self, key: str, reason: str) -> None:
        self._count("corrupt")
        log.warning(
            "corrupt stage record %s (%s): treating as miss, stage "
            "will recompute", self.path(key), reason,
        )

    def put(
        self,
        key: str,
        stage_name: str,
        kind: str,
        spec_name: str,
        payload: dict,
        seconds: float | None = None,
        cpu_seconds: float | None = None,
        worker: str | None = None,
        overwrite: bool = True,
    ) -> str:
        """Persist one stage record atomically; returns its path.

        With ``overwrite=False`` an existing valid record wins and this
        publication is discarded — the protocol queue workers use so two
        workers racing on one key converge without a rewrite.  The write
        itself is tmp + ``os.replace``, so readers never observe a
        partial record regardless of who wins.
        """
        path = self.path(key)
        if not overwrite and self.get(key) is not None:
            return path
        os.makedirs(self.root, exist_ok=True)
        record = {
            "format": STAGE_STORE_FORMAT,
            "key": key,
            "stage": stage_name,
            "kind": kind,
            "spec": spec_name,
            "payload": payload,
        }
        if seconds is not None:
            record["seconds"] = round(float(seconds), 6)
        if cpu_seconds is not None:
            record["cpu_seconds"] = round(float(cpu_seconds), 6)
        if worker is not None:
            record["worker"] = worker
        tmp = f"{path}.{os.getpid()}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=2, default=str)
        os.replace(tmp, path)
        return path

    def drop(self, key: str) -> None:
        try:
            os.remove(self.path(key))
        except OSError:
            pass

    def reap_stale_tmp(self) -> int:
        """Delete ``.tmp`` files orphaned by dead writers; returns count.

        A worker SIGKILLed between its tmp write and the ``os.replace``
        leaves ``<key>.json.<pid>.tmp`` behind forever.  Anything older
        than ``tmp_ttl_s`` cannot belong to a live writer, so init sweeps
        it.  Fresh tmp files (a concurrent writer mid-publish) are left
        alone.
        """
        if not os.path.isdir(self.root):
            return 0
        now = time.time()
        reaped = 0
        for name in os.listdir(self.root):
            if not name.endswith(".tmp"):
                continue
            path = os.path.join(self.root, name)
            try:
                if now - os.stat(path).st_mtime > self.tmp_ttl_s:
                    os.remove(path)
                    reaped += 1
            except OSError:
                continue  # vanished under us: another reaper won
        return reaped
