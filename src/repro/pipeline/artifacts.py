"""Content-addressed, resumable per-stage artifacts.

Every executed stage persists its (JSON) payload under the cache root at
``<root>/stages/<key>.json``.  The key is a hash over the stage's kind +
version, its resolved parameters, the full scale identity and the keys
of every upstream stage — so a change anywhere upstream transparently
invalidates everything downstream, while an untouched prefix of the DAG
is served from disk without executing.

Heavy data never lives here: dataset stages reference the npz dataset
cache by fingerprint and train stages reference the
:class:`~repro.models.store.ModelStore` by artifact id.  A stage artifact
is therefore small, diff-able provenance — what ran, with which inputs,
producing which references.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os

from repro.cache import stage_store_dir

#: Bump when the artifact record layout changes incompatibly.
STAGE_STORE_FORMAT = 1


def _canonical(payload) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=str).encode()


def stage_key(
    stage, scale, upstream_keys: dict[str, str], version: int,
    extra: dict | None = None,
) -> str:
    """Content address of one stage execution.

    ``extra`` carries kind-specific identity beyond the declared params —
    the analysis kind passes its function's source fingerprint here so
    code edits invalidate cached payloads.
    """
    identity = {
        "format": STAGE_STORE_FORMAT,
        "kind": stage.kind,
        "kind_version": version,
        "params": dict(stage.params),
        "scale": dataclasses.asdict(scale),
        "upstream": dict(sorted(upstream_keys.items())),
    }
    if extra:
        identity["extra"] = extra
    return hashlib.sha256(_canonical(identity)).hexdigest()[:16]


class StageArtifactStore:
    """Flat directory of ``<key>.json`` stage records."""

    def __init__(self, root: str | None = None):
        self.root = root or stage_store_dir()

    def path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def get(self, key: str) -> dict | None:
        """The stored record, or ``None`` on miss/corruption (recompute)."""
        path = self.path(key)
        if not os.path.exists(path):
            return None
        try:
            with open(path, encoding="utf-8") as fh:
                record = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if record.get("format") != STAGE_STORE_FORMAT:
            return None
        return record

    def put(self, key: str, stage_name: str, kind: str, spec_name: str,
            payload: dict) -> str:
        """Persist one stage record atomically; returns its path."""
        os.makedirs(self.root, exist_ok=True)
        record = {
            "format": STAGE_STORE_FORMAT,
            "key": key,
            "stage": stage_name,
            "kind": kind,
            "spec": spec_name,
            "payload": payload,
        }
        path = self.path(key)
        tmp = f"{path}.{os.getpid()}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=2, default=str)
        os.replace(tmp, path)
        return path

    def drop(self, key: str) -> None:
        try:
            os.remove(self.path(key))
        except OSError:
            pass
