"""Cache-DSE as a sweep: one pipeline stage per (L1, L2, seed) point.

The paper's Sec. VI-A design-space exploration is a natural stress test
for distributed sweep execution: the grid is embarrassingly parallel
(every point is one short simulation), the points share nothing, and
multiplying the 6x6 cache grid by trace seeds scales the sweep to
thousands of independent stages.  :func:`cache_dse_sweep` builds that
sweep as a :class:`~repro.pipeline.SweepSpec` whose scenarios each hold
a single ``dse_point`` analysis stage — submitted to the queue backend,
the union DAG is a flat pile of ready tasks that idle workers steal
from freely, which is exactly the shape ``benchmarks/bench_sweep.py``
measures.

This module lives in the package (not in a test or script) so spawned
queue workers can import its analyses by name; it is imported by
:mod:`repro.pipeline.presets`, which every worker loads.

``synthetic_point`` is the test/bench analogue: a deterministic kernel
with a controllable duration, for exercising the queue machinery
without paying for simulation.
"""

from __future__ import annotations

from repro.pipeline.spec import ExperimentSpec, SweepSpec, stage
from repro.pipeline.stages import analysis

#: Default benchmark for DSE point stages (fast to trace, cache-bound).
DEFAULT_BENCHMARK = "505.mcf"


@analysis("dse_point")
def dse_point(ctx, params, inputs) -> dict:
    """Simulate one cache-grid point; returns its time and objective.

    Parameters: ``benchmark``, ``l1_kb``, ``l2_kb``, optional ``seed``
    (trace variation) and ``instructions`` (defaults to the scale's
    ``dse_instructions``).  Each point is self-contained — no upstream
    stages — so a sweep over the grid parallelizes perfectly.
    """
    from repro.core.dse import cache_objective
    from repro.sim.cpu import simulate
    from repro.uarch.presets import cortex_a7_like
    from repro.workloads.suite import get_trace

    benchmark = params.get("benchmark", DEFAULT_BENCHMARK)
    l1_kb = int(params["l1_kb"])
    l2_kb = int(params["l2_kb"])
    seed = int(params.get("seed", 0))
    instructions = int(params.get("instructions")
                       or ctx.scale.dse_instructions)
    config = cortex_a7_like().with_cache_sizes(l1d_kb=l1_kb, l2_kb=l2_kb)
    trace = get_trace(benchmark, instructions, seed=seed)
    result = simulate(trace, config)
    time_ns = float(result.total_time_ns)
    objective = cache_objective(l1_kb, l2_kb, time_ns)
    return {
        "headers": ["benchmark", "L1 kB", "L2 kB", "time (ns)", "objective"],
        "rows": [[benchmark, l1_kb, l2_kb,
                  f"{time_ns:.0f}", f"{objective:.3g}"]],
        "metrics": {
            "benchmark_seed": float(seed),
            "l1_kb": float(l1_kb),
            "l2_kb": float(l2_kb),
            "time_ns": time_ns,
            "objective": objective,
            "ipc": float(result.ipc),
        },
    }


@analysis("synthetic_point")
def synthetic_point(ctx, params, inputs) -> dict:
    """A deterministic busy-loop point for queue tests and benchmarks.

    ``work`` iterations of an integer mix (so the payload depends on
    every parameter), plus an optional ``sleep_s`` to emulate stages
    long enough for lease/steal machinery to engage.
    """
    import time

    point = int(params.get("point", 0))
    work = int(params.get("work", 1000))
    sleep_s = float(params.get("sleep_s", 0.0))
    if sleep_s:
        time.sleep(sleep_s)
    acc = point * 2654435761 % 2**32
    for i in range(work):
        acc = (acc * 1103515245 + 12345 + i) % 2**31
    return {
        "headers": ["point", "value"],
        "rows": [[point, acc]],
        "metrics": {"point": float(point), "value": float(acc)},
    }


def cache_dse_sweep(
    benchmark: str = DEFAULT_BENCHMARK,
    l1_sizes: tuple[int, ...] | None = None,
    l2_sizes: tuple[int, ...] | None = None,
    seeds: int = 1,
    instructions: int | None = None,
    scale: str = "smoke",
) -> SweepSpec:
    """The cache-DSE grid as a sweep: |l1| x |l2| x ``seeds`` points.

    ``seeds`` multiplies the 36-point paper grid to arbitrary size
    (trace-seed variation), which is how the benchmark reaches
    thousands of points.
    """
    from repro.core.dse import DEFAULT_L1_SIZES, DEFAULT_L2_SIZES

    l1 = tuple(l1_sizes or DEFAULT_L1_SIZES)
    l2 = tuple(l2_sizes or DEFAULT_L2_SIZES)
    params = {"benchmark": benchmark, "l1_kb": l1[0], "l2_kb": l2[0],
              "seed": 0}
    if instructions is not None:
        params["instructions"] = int(instructions)
    base = ExperimentSpec(
        name="cache_dse_sweep",
        title="Cache-size DSE grid, one stage per point",
        description="L1D x L2 (x seed) grid as independent dse_point stages",
        scale=scale,
        stages=(stage("point", "analysis", fn="dse_point", **params),),
    )
    return SweepSpec(base=base, matrix={
        "point.l1_kb": l1,
        "point.l2_kb": l2,
        "point.seed": tuple(range(seeds)),
    })
