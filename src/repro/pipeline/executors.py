"""Pluggable stage-execution backends: local pool and distributed queue.

The :class:`~repro.pipeline.runner.Runner` no longer executes stages
itself — it builds an :class:`ExecutionPlan` (the deduplicated union DAG
of one or many specs, every stage's content key precomputed) and hands
it to an :class:`ExecutorBackend`:

``local``
    The in-process backend: wave scheduling over the plan with
    :class:`repro.runtime.ParallelMap` fan-out, exactly the semantics
    the runner always had (cached stages skipped, a failed stage raises
    after its wave-mates persist).

``queue``
    The distributed backend: a coordinator enqueues ready stages into
    the filesystem :class:`~repro.pipeline.queue.WorkQueue` under the
    cache root and harvests results as workers publish them to the
    shared artifact store.  Workers are spawned children, external
    ``repro pipeline worker`` processes on any host sharing the cache
    root, or both.  Scheduling is work-stealing by construction: every
    ready stage of every sweep point sits in one queue, so an idle
    worker takes whatever is ready regardless of which point it belongs
    to, and stale leases (dead workers) are re-issued.

Because stage keys are content addresses, two scenarios that share a
stage collapse to **one** task in the plan, and two workers racing on
one key resolve by first atomic publish — the queue needs no global
lock to be exactly-once in effect.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Protocol

from repro import obs
from repro.pipeline.artifacts import StageArtifactStore, stage_key
from repro.pipeline.spec import ExperimentSpec, StageSpec
from repro.runtime.progress import NULL_PROGRESS

#: Queue poll cadence for the coordinator loop (seconds).
DEFAULT_POLL_S = 0.05


# ---------------------------------------------------------------------------
# the execution plan: union DAG with precomputed keys
# ---------------------------------------------------------------------------
def _scale_message(scale):
    """Wire form of a scale: its registered name, or the full field dict
    for ad-hoc :class:`ScaleConfig` instances (custom sweep scales)."""
    from repro.experiments.common import SCALES

    if SCALES.get(scale.name) == scale:
        return scale.name
    return dataclasses.asdict(scale)


@dataclass(frozen=True)
class StageTask:
    """One unit of work: a stage pinned to its content key and scale."""

    key: str
    stage: StageSpec
    spec_name: str
    scale: object  # resolved ScaleConfig
    upstream: dict  # stage-name -> upstream task key
    force: bool = False

    def to_message(self) -> dict:
        """The JSON task file a queue worker rebuilds the stage from."""
        return {
            "key": self.key,
            "stage": {
                "name": self.stage.name,
                "kind": self.stage.kind,
                "needs": list(self.stage.needs),
                "params": dict(self.stage.params),
            },
            "spec": self.spec_name,
            "scale": _scale_message(self.scale),
            "upstream": dict(self.upstream),
            "jobs": 1,  # workers are the fan-out; stages run serial
            "force": self.force,
        }


@dataclass
class TaskResult:
    """How one task finished: payload plus execution provenance."""

    key: str
    payload: dict
    cached: bool
    seconds: float = 0.0
    worker: str | None = None


@dataclass
class ExecutionReport:
    """Everything a backend hands back to the runner."""

    results: dict = field(default_factory=dict)  # key -> TaskResult
    failure: tuple | None = None  # (spec_name, stage_name, detail)
    stats: dict | None = None  # backend telemetry (queue backend)


@dataclass
class ExecutionPlan:
    """A deduplicated, topologically ordered union DAG plus run context."""

    tasks: list  # [StageTask] — insertion order is a valid topo order
    index: list  # [(ExperimentSpec, {stage name -> key})] for assembly
    store: StageArtifactStore
    jobs: int = 1
    cache_dir: str | None = None
    results_dir: str | None = None
    progress: object = NULL_PROGRESS
    on_outcome: Callable | None = None  # (StageTask, TaskResult) -> None

    def notify(self, task: StageTask, result: TaskResult) -> None:
        if self.on_outcome is not None:
            self.on_outcome(task, result)


def build_plan(
    specs: list[ExperimentSpec],
    scale=None,
    store: StageArtifactStore | None = None,
    jobs: int = 1,
    cache_dir: str | None = None,
    results_dir: str | None = None,
    force: bool = False,
    force_stages: tuple[str, ...] = (),
    progress=None,
    on_outcome: Callable | None = None,
) -> ExecutionPlan:
    """The union DAG of ``specs``, deduplicated by stage content key.

    ``scale`` overrides every spec's own scale when given (name or
    :class:`ScaleConfig`); otherwise each spec resolves its own — a
    sweep with a ``scale`` axis plans correctly.  A stage shared by
    several specs (same key) becomes one task; forcing it anywhere
    forces the single task.
    """
    from repro.experiments.common import get_scale
    from repro.pipeline.stages import STAGE_KINDS, analysis_fingerprint

    tasks: dict[str, StageTask] = {}
    index: list[tuple[ExperimentSpec, dict[str, str]]] = []
    for spec in specs:
        spec_scale = get_scale(scale or spec.scale or "bench")
        keys: dict[str, str] = {}
        for st in spec.stages:
            extra = None
            if st.kind == "analysis":
                extra = {"fn_source": analysis_fingerprint(st.params["fn"])}
            key = stage_key(
                st, spec_scale, {n: keys[n] for n in st.needs},
                STAGE_KINDS[st.kind].version, extra=extra,
            )
            keys[st.name] = key
            forced = force or st.name in force_stages
            existing = tasks.get(key)
            if existing is None:
                tasks[key] = StageTask(
                    key=key, stage=st, spec_name=spec.name, scale=spec_scale,
                    upstream={n: keys[n] for n in st.needs}, force=forced,
                )
            elif forced and not existing.force:
                tasks[key] = replace(existing, force=True)
        index.append((spec, keys))
    return ExecutionPlan(
        tasks=list(tasks.values()), index=index,
        store=store if store is not None else StageArtifactStore(),
        jobs=jobs, cache_dir=cache_dir, results_dir=results_dir,
        progress=progress or NULL_PROGRESS, on_outcome=on_outcome,
    )


# ---------------------------------------------------------------------------
# the backend protocol
# ---------------------------------------------------------------------------
class ExecutorBackend(Protocol):
    """Anything that can run an :class:`ExecutionPlan` to completion."""

    name: str

    def execute(self, plan: ExecutionPlan) -> ExecutionReport:
        """Run every task; report payloads, provenance, first failure."""
        ...  # pragma: no cover - protocol


def _serve_cached(plan: ExecutionPlan, report: ExecutionReport) -> None:
    """Resolve every unforced task already in the store (no execution)."""
    for task in plan.tasks:
        if task.force:
            continue
        record = plan.store.get(task.key)
        if record is not None:
            result = TaskResult(key=task.key, payload=record["payload"],
                                cached=True)
            report.results[task.key] = result
            plan.notify(task, result)


def _stage_job(item) -> tuple:
    """Top-level (picklable) pool entry point for one local stage.

    Returns ``(payload, seconds, cpu_seconds)`` so the backend records
    per-stage wall/CPU timing even when stages fan out across pool
    processes (the parent's clock can't see a child's CPU time).
    """
    stage, ctx, inputs = item
    import repro.pipeline.presets  # noqa: F401 — registers preset analyses

    from repro.pipeline.stages import STAGE_KINDS

    start = time.perf_counter()
    cpu_start = time.process_time()
    with obs.span("stage.run", stage=stage.name, kind=stage.kind):
        payload = STAGE_KINDS[stage.kind].run(ctx, stage, inputs)
    return (
        payload,
        time.perf_counter() - start,
        time.process_time() - cpu_start,
    )


# ---------------------------------------------------------------------------
# local backend: in-process waves over ParallelMap
# ---------------------------------------------------------------------------
class LocalBackend:
    """Wave-scheduled execution in this process (the historical path)."""

    name = "local"

    def execute(self, plan: ExecutionPlan) -> ExecutionReport:
        with obs.span(
            "pipeline.run", backend=self.name, tasks=len(plan.tasks),
        ):
            return self._execute(plan)

    def _execute(self, plan: ExecutionPlan) -> ExecutionReport:
        report = ExecutionReport()
        _serve_cached(plan, report)
        pending = [t for t in plan.tasks if t.key not in report.results]
        while pending:
            wave = [
                t for t in pending
                if all(k in report.results for k in t.upstream.values())
            ]
            assert wave, "spec validation guarantees progress"
            self._execute_wave(plan, wave, report)
            if report.failure is not None:
                return report
            pending = [t for t in pending if t.key not in report.results]
        return report

    def _context(self, plan: ExecutionPlan, task: StageTask, jobs: int):
        from repro.pipeline.stages import StageContext

        return StageContext(
            scale=task.scale, spec_name=task.spec_name,
            cache_dir=plan.cache_dir, results_dir=plan.results_dir,
            jobs=jobs,
        )

    def _execute_wave(self, plan: ExecutionPlan, wave: list,
                      report: ExecutionReport) -> None:
        from repro.runtime import ParallelMap
        from repro.runtime.pool import JobResult

        parallel = plan.jobs > 1 and len(wave) > 1
        inner_jobs = 1 if parallel else plan.jobs
        items = [
            (
                task.stage,
                self._context(plan, task, inner_jobs),
                {n: report.results[k].payload
                 for n, k in task.upstream.items()},
            )
            for task in wave
        ]
        start = time.perf_counter()
        if parallel:
            pool = ParallelMap(jobs=min(plan.jobs, len(wave)), chunksize=1,
                               progress=plan.progress)
            results = pool.map(
                _stage_job, items, return_errors=True,
                labels=[t.stage.name for t in wave],
            )
        else:
            results = []
            for item in items:
                try:
                    results.append(JobResult(index=0, value=_stage_job(item)))
                except Exception:
                    import traceback

                    results.append(JobResult(index=0,
                                             error=traceback.format_exc()))
        elapsed = time.perf_counter() - start
        for task, res in zip(wave, results):
            if res.error is not None:
                if report.failure is None:
                    report.failure = (task.spec_name, task.stage.name,
                                      res.error)
                continue
            payload, seconds, cpu_seconds = res.value
            if not seconds:
                seconds = elapsed / max(len(wave), 1)
            plan.store.put(
                task.key, task.stage.name, task.stage.kind, task.spec_name,
                payload, seconds=seconds, cpu_seconds=cpu_seconds,
            )
            result = TaskResult(key=task.key, payload=payload,
                                cached=False, seconds=seconds)
            report.results[task.key] = result
            plan.notify(task, result)


# ---------------------------------------------------------------------------
# queue backend: filesystem coordinator + worker processes
# ---------------------------------------------------------------------------
class QueueBackend:
    """Coordinate a run over the shared filesystem work queue.

    ``workers`` children are spawned on this host (0 relies entirely on
    external ``repro pipeline worker`` processes).  Dead spawned workers
    are respawned so a chaos kill cannot starve the run; their expired
    leases are reaped/stolen so their in-flight stages are re-issued.
    ``on_tick`` is a test/chaos hook called every coordinator loop with
    ``(backend, queue, report)``.
    """

    name = "queue"

    def __init__(
        self,
        workers: int = 2,
        lease_ttl_s: float | None = None,
        poll_s: float = DEFAULT_POLL_S,
        queue_root: str | None = None,
        worker_poll_s: float | None = None,
        note_every_s: float = 2.0,
        on_tick: Callable | None = None,
    ):
        from repro.pipeline.queue import DEFAULT_LEASE_TTL_S

        self.workers = workers
        self.lease_ttl_s = (DEFAULT_LEASE_TTL_S if lease_ttl_s is None
                            else lease_ttl_s)
        self.poll_s = poll_s
        self.queue_root = queue_root
        self.worker_poll_s = (worker_poll_s if worker_poll_s is not None
                              else poll_s)
        self.note_every_s = note_every_s
        self.on_tick = on_tick
        self.spawned: list = []  # live WorkerProcess handles (chaos hook)
        self._respawns = 0
        self._run_nonce = ""  # per-execute id suffix for spawned workers

    # -- worker lifecycle --------------------------------------------------
    def _spawn_worker(self, queue, ordinal: int):
        from repro.pipeline.queue import default_worker_id
        from repro.runtime.workers import WorkerProcess

        # the nonce keeps this run's stats files distinct from a previous
        # run's in the same coordinator process (same pid, same ordinals)
        worker_id = f"{default_worker_id()}-{self._run_nonce}w{ordinal}"
        options = {
            "lease_ttl_s": self.lease_ttl_s,
            "poll_s": self.worker_poll_s,
        }
        from repro.pipeline.worker import worker_entry

        return WorkerProcess(
            worker_entry, args=(queue.root, worker_id, options),
            name=f"pipeline-worker-{ordinal}",
        )

    def _respawn_dead(self, queue) -> None:
        budget = max(3 * self.workers, 8)
        for i, proc in enumerate(self.spawned):
            if proc is not None and not proc.is_alive():
                if self._respawns >= budget:
                    raise RuntimeError(
                        f"queue backend: spawned workers died "
                        f"{self._respawns} times (budget {budget}); "
                        "giving up instead of respawning forever"
                    )
                self.spawned[i] = self._spawn_worker(queue, i)
                self._respawns += 1

    # -- the coordinator loop ----------------------------------------------
    def execute(self, plan: ExecutionPlan) -> ExecutionReport:
        # the run span stays open across spawn + the whole loop, so the
        # context stamped into task files (and the spawn env) parents
        # every worker's stage spans on this coordinator
        with obs.span(
            "pipeline.run", backend=self.name, tasks=len(plan.tasks),
        ):
            return self._execute(plan)

    def _execute(self, plan: ExecutionPlan) -> ExecutionReport:
        import uuid

        from repro.pipeline.queue import WorkQueue

        self._run_nonce = uuid.uuid4().hex[:6]
        queue = WorkQueue(self.queue_root, lease_ttl_s=self.lease_ttl_s)
        queue.ensure()
        queue.clear_stop()
        queue.clear_failures()
        queue.reap_tmp()

        report = ExecutionReport()
        start = time.perf_counter()
        stats_before = queue.read_stats()

        # forced keys must not be answerable from stale records: drop
        # them before any worker can see the task
        for task in plan.tasks:
            if task.force:
                plan.store.drop(task.key)
        _serve_cached(plan, report)
        for key in report.results:
            queue.discard(key)  # stale task files from an aborted run

        tasks_by_key = {t.key: t for t in plan.tasks}
        remaining = {t.key for t in plan.tasks if t.key not in report.results}
        enqueued: set[str] = set()
        total = len(plan.tasks)
        if plan.progress is not NULL_PROGRESS and not plan.progress.total:
            plan.progress.total = total
        peak = {"ready": 0, "leased": 0}
        reclaimed = 0
        last_note = 0.0
        try:
            self.spawned = [self._spawn_worker(queue, i)
                            for i in range(self.workers)]
            while remaining:
                progressed = False
                for key in list(remaining):
                    task = tasks_by_key[key]
                    if key not in enqueued and all(
                        k in report.results for k in task.upstream.values()
                    ):
                        # the trace context rides the task file so the
                        # claiming worker — spawned child or a process
                        # on another host — joins this run's trace
                        queue.enqueue(obs.inject_message(task.to_message()))
                        enqueued.add(key)
                for key in list(enqueued):
                    record = plan.store.get(key)
                    if record is None:
                        continue
                    task = tasks_by_key[key]
                    result = TaskResult(
                        key=key, payload=record["payload"], cached=False,
                        seconds=float(record.get("seconds", 0.0)),
                        worker=record.get("worker"),
                    )
                    report.results[key] = result
                    remaining.discard(key)
                    enqueued.discard(key)
                    queue.discard(key)
                    plan.notify(task, result)
                    plan.progress.task_done(
                        f"{task.spec_name}:{task.stage.name}"
                    )
                    progressed = True
                failure = queue.first_failure()
                if failure is not None:
                    report.failure = (failure.get("spec", "?"),
                                      failure.get("stage", "?"),
                                      failure.get("error", ""))
                    return report
                reclaimed += queue.reap_stale()
                self._respawn_dead(queue)
                if self.on_tick is not None:
                    self.on_tick(self, queue, report)
                now = time.perf_counter()
                depth = queue.depth()
                peak["ready"] = max(peak["ready"], depth["ready"])
                peak["leased"] = max(peak["leased"], depth["leased"])
                if (plan.progress is not NULL_PROGRESS
                        and now - last_note >= self.note_every_s):
                    plan.progress.note(
                        f"queue: {depth['ready']} ready, "
                        f"{depth['leased']} running, "
                        f"{len(report.results)}/{total} stages done"
                    )
                    last_note = now
                if not progressed and remaining:
                    time.sleep(self.poll_s)
        finally:
            queue.stop()
            for proc in self.spawned:
                if proc is not None:
                    proc.stop(timeout_s=10.0)
            self.spawned = []
            report.stats = self._gather_stats(
                queue, stats_before, time.perf_counter() - start,
                peak, reclaimed,
            )
        return report

    def _gather_stats(self, queue, before: dict, wall_s: float,
                      peak: dict, reclaimed: int) -> dict:
        """Per-worker deltas over this run, plus coordinator telemetry."""
        workers = {}
        for worker_id, after in queue.read_stats().items():
            base = before.get(worker_id, {})
            executed = after.get("executed", 0) - base.get("executed", 0)
            busy = after.get("busy_s", 0.0) - base.get("busy_s", 0.0)
            row = {
                "executed": executed,
                "stolen": after.get("stolen", 0) - base.get("stolen", 0),
                "dedup_skips": (after.get("dedup_skips", 0)
                                - base.get("dedup_skips", 0)),
                "failures": after.get("failures", 0) - base.get("failures", 0),
                "busy_s": round(busy, 3),
                "stages_per_s": round(executed / wall_s, 3) if wall_s else 0.0,
            }
            if any(row[k] for k in
                   ("executed", "stolen", "dedup_skips", "failures")):
                workers[worker_id] = row
        return {
            "backend": self.name,
            "workers": workers,
            "reclaimed_leases": reclaimed,
            "respawns": self._respawns,
            "peak_ready": peak["ready"],
            "peak_leased": peak["leased"],
            "wall_s": round(wall_s, 3),
        }


#: Registered backend constructors, keyed by ``--backend`` name.
BACKENDS: dict[str, type] = {
    "local": LocalBackend,
    "queue": QueueBackend,
}


def make_backend(backend, workers: int = 0, **options):
    """Resolve a backend argument: instance, or registered name + options.

    ``workers``/keyword options only apply to backends that take them
    (the queue backend); the local backend accepts none.
    """
    if hasattr(backend, "execute"):  # pre-built (tests pass hooks)
        return backend
    cls = BACKENDS.get(backend)
    if cls is None:
        from repro.core.errors import UnknownExperimentError

        raise UnknownExperimentError(backend, BACKENDS,
                                     kind="executor backend")
    if cls is LocalBackend:
        return LocalBackend()
    return cls(workers=workers, **options)


def render_executor_stats(stats: dict | None) -> list[str]:
    """Human lines for a queue run's telemetry (CLI/render output)."""
    if not stats or stats.get("backend") != "queue":
        return []
    lines = [
        f"queue: peak depth {stats['peak_ready']} ready / "
        f"{stats['peak_leased']} leased, "
        f"{stats['reclaimed_leases']} lease(s) reclaimed, "
        f"{stats['respawns']} worker respawn(s), "
        f"{stats['wall_s']:.1f}s wall"
    ]
    for worker_id, row in sorted(stats.get("workers", {}).items()):
        extras = []
        if row["stolen"]:
            extras.append(f"{row['stolen']} stolen")
        if row["dedup_skips"]:
            extras.append(f"{row['dedup_skips']} deduped")
        if row["failures"]:
            extras.append(f"{row['failures']} failed")
        suffix = f" ({', '.join(extras)})" if extras else ""
        lines.append(
            f"  worker {worker_id}: {row['executed']} stage(s){suffix}, "
            f"{row['busy_s']:.1f}s busy, {row['stages_per_s']:.2f} stages/s"
        )
    return lines
