"""The preset spec registry: every paper experiment as a pipeline spec.

Importing this module imports each experiment module (registering its
analysis function) and collects its ``SPEC``.  The registry keys are the
historical experiment names, so ``repro run fig3_seen_unseen`` and
``repro pipeline run fig3_seen_unseen`` execute the same DAG.
"""

from __future__ import annotations

from repro.core.errors import UnknownExperimentError
from repro.experiments import (
    fig3_seen_unseen,
    fig4_retrain_lbm,
    fig5_unseen_uarch,
    fig6_ablation_arch,
    fig7_cache_dse,
    fig8_loop_tiling,
    sec4b_reuse,
    sec5b_data_volume,
    sec5b_features,
    table3_comparison,
    table4_dse_methods,
)
from repro.pipeline.spec import ExperimentSpec

#: Spec name -> ExperimentSpec (ordered as in the paper's evaluation).
SPECS: dict[str, ExperimentSpec] = {
    module.SPEC.name: module.SPEC
    for module in (
        fig3_seen_unseen,
        fig4_retrain_lbm,
        fig5_unseen_uarch,
        fig6_ablation_arch,
        sec4b_reuse,
        sec5b_data_volume,
        sec5b_features,
        table3_comparison,
        table4_dse_methods,
        fig7_cache_dse,
        fig8_loop_tiling,
    )
}


def get_spec(name: str) -> ExperimentSpec:
    """A registered spec by name, or :class:`UnknownExperimentError` with
    close-match suggestions."""
    spec = SPECS.get(name)
    if spec is None:
        raise UnknownExperimentError(name, SPECS, kind="spec")
    return spec
