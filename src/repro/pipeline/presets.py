"""The preset spec registry: every paper experiment as a pipeline spec.

Importing this module imports each experiment module (registering its
analysis function) and collects its ``SPEC``.  The registry keys are the
historical experiment names, so ``repro run fig3_seen_unseen`` and
``repro pipeline run fig3_seen_unseen`` execute the same DAG.
"""

from __future__ import annotations

from repro.core.errors import UnknownExperimentError
from repro.experiments import (
    cross_isa,
    fig3_seen_unseen,
    fig4_retrain_lbm,
    fig5_unseen_uarch,
    fig6_ablation_arch,
    fig7_cache_dse,
    fig8_loop_tiling,
    sec4b_reuse,
    sec5b_data_volume,
    sec5b_features,
    table3_comparison,
    table4_dse_methods,
)
from repro.pipeline import dse
from repro.pipeline.spec import ExperimentSpec, SweepSpec

#: Spec name -> ExperimentSpec (ordered as in the paper's evaluation).
SPECS: dict[str, ExperimentSpec] = {
    module.SPEC.name: module.SPEC
    for module in (
        fig3_seen_unseen,
        fig4_retrain_lbm,
        fig5_unseen_uarch,
        fig6_ablation_arch,
        sec4b_reuse,
        sec5b_data_volume,
        sec5b_features,
        table3_comparison,
        table4_dse_methods,
        fig7_cache_dse,
        fig8_loop_tiling,
        cross_isa,
    )
}


#: Sweep name -> zero-argument builder (sweeps are built on demand so a
#: preset can expose its default grid without freezing it at import).
SWEEP_BUILDERS: dict[str, callable] = {
    "cache_dse_sweep": dse.cache_dse_sweep,
}


def get_spec(name: str) -> ExperimentSpec | SweepSpec:
    """A registered spec (or sweep preset) by name, or
    :class:`UnknownExperimentError` with close-match suggestions."""
    spec = SPECS.get(name)
    if spec is not None:
        return spec
    builder = SWEEP_BUILDERS.get(name)
    if builder is not None:
        return builder()
    raise UnknownExperimentError(
        name, list(SPECS) + list(SWEEP_BUILDERS), kind="spec"
    )
