"""Filesystem work queue: claim files, leases, and stealing.

The distributed executor backend coordinates over nothing but a shared
directory — ``<cache>/queue/`` — so any process that can see the cache
root (same host, or a shared filesystem across hosts) can serve as a
worker via ``repro pipeline worker``.  No sockets, no broker:

``tasks/<key>.json``
    One ready-to-run stage (its spec fragment, scale, upstream artifact
    keys).  Written atomically by the coordinator once every upstream
    key has been published to the :class:`StageArtifactStore`; removed
    by whichever worker completes it.

``leases/<key>.json``
    An exclusive claim.  Creation is ``O_CREAT | O_EXCL`` so exactly one
    claimer wins; the owner heartbeats by touching the file's mtime.  A
    lease whose mtime is older than the TTL belongs to a dead or wedged
    worker and may be **stolen**: the thief atomically replaces the
    lease with its own token and re-reads to confirm it won.  A doomed
    double-execution window exists by design (two thieves can both pass
    the confirm read) — correctness is preserved because publication to
    the artifact store is atomic and first-writer-wins, so the loser's
    work is discarded, never interleaved.

``failed/<key>.json``
    A worker-side traceback.  The coordinator converts the first one
    into a :class:`~repro.pipeline.runner.StageFailure` after persisting
    everything else that completed.

``stats/<worker>.json``
    Per-worker lifetime counters (claimed/executed/stolen/...), written
    atomically after every task so the coordinator can report per-worker
    throughput and steal counts.

``stop``
    Shutdown sentinel.  The coordinator writes it when the run finishes
    (or fails); workers exit when they see it, which is how remote
    ``repro pipeline worker`` processes learn the sweep is over.
"""

from __future__ import annotations

import json
import logging
import os
import socket
import time
import uuid
from dataclasses import dataclass

from repro.cache import queue_dir
from repro.obs.metrics import REGISTRY

log = logging.getLogger(__name__)

_TASKS = "tasks"
_LEASES = "leases"
_FAILED = "failed"
_STATS = "stats"
_STOP = "stop"

#: Default seconds of missed heartbeats before a lease is stealable.
DEFAULT_LEASE_TTL_S = 30.0


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def _write_json_atomic(path: str, data: dict) -> None:
    tmp = f"{path}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(data, fh, default=str)
    os.replace(tmp, path)


def _read_json(path: str) -> dict | None:
    """A whole JSON object, or ``None`` for missing/corrupt (= retry).

    Corrupt files (present but unparseable — a torn write or a flipped
    bit) are counted and logged rather than silently folded into
    "missing": a retry still recovers, but the corruption is visible.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError:
        return None
    except json.JSONDecodeError as exc:
        REGISTRY.counter(
            "repro_queue_corrupt_total",
            "Queue files present but unparseable.",
        ).inc()
        log.warning("corrupt queue file %s: %s", path, exc)
        return None
    return data if isinstance(data, dict) else None


@dataclass
class Claim:
    """One successfully claimed task: the work plus our lease token."""

    task: dict
    token: str
    stolen: bool

    @property
    def key(self) -> str:
        return self.task["key"]


class WorkQueue:
    """The shared-directory protocol both coordinator and workers speak."""

    def __init__(self, root: str | None = None,
                 lease_ttl_s: float = DEFAULT_LEASE_TTL_S):
        self.root = root or queue_dir()
        self.lease_ttl_s = lease_ttl_s

    # -- paths -------------------------------------------------------------
    def _dir(self, name: str) -> str:
        return os.path.join(self.root, name)

    def task_path(self, key: str) -> str:
        return os.path.join(self._dir(_TASKS), f"{key}.json")

    def lease_path(self, key: str) -> str:
        return os.path.join(self._dir(_LEASES), f"{key}.json")

    def ensure(self) -> None:
        for name in (_TASKS, _LEASES, _FAILED, _STATS):
            os.makedirs(self._dir(name), exist_ok=True)

    @staticmethod
    def _unlink(path: str) -> bool:
        try:
            os.remove(path)
            return True
        except OSError:
            return False

    def _keys(self, dirname: str) -> list[str]:
        try:
            names = os.listdir(self._dir(dirname))
        except OSError:
            return []
        return sorted(n[:-5] for n in names if n.endswith(".json"))

    # -- enqueue / claim / complete ---------------------------------------
    def enqueue(self, task: dict) -> bool:
        """Publish one ready task; no-op if it is already enqueued."""
        self.ensure()
        path = self.task_path(task["key"])
        if os.path.exists(path):
            return False
        _write_json_atomic(path, task)
        return True

    def task_keys(self) -> list[str]:
        return self._keys(_TASKS)

    def _lease_age(self, key: str) -> float | None:
        """Seconds since the lease's last heartbeat, or ``None`` if unleased."""
        try:
            return time.time() - os.stat(self.lease_path(key)).st_mtime
        except OSError:
            return None

    def claim(self, worker_id: str) -> Claim | None:
        """Claim one task: unleased first, then stale leases (stealing).

        The scan order is rotated by a per-worker offset so concurrent
        workers don't all fight over the lexicographically first task.
        """
        keys = self.task_keys()
        if not keys:
            return None
        offset = hash(worker_id) % len(keys)
        for key in keys[offset:] + keys[:offset]:
            age = self._lease_age(key)
            if age is not None and age <= self.lease_ttl_s:
                continue  # live owner
            claim = self._try_claim(key, worker_id, steal=age is not None)
            if claim is not None:
                return claim
        return None

    def _try_claim(self, key: str, worker_id: str, steal: bool) -> Claim | None:
        self.ensure()
        lease_path = self.lease_path(key)
        token = uuid.uuid4().hex
        lease = {
            "worker": worker_id,
            "token": token,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "claimed_at": time.time(),
            "stolen": steal,
        }
        if not steal:
            try:
                fd = os.open(lease_path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return None  # another claimer beat us
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(lease, fh)
        else:
            # Steal: atomically replace the stale lease, then confirm we
            # are the one the file now names (two thieves can race; the
            # replace is atomic so exactly one token survives).
            _write_json_atomic(lease_path, lease)
            current = _read_json(lease_path)
            if current is None or current.get("token") != token:
                return None
        task = _read_json(self.task_path(key))
        if task is None:
            # completed (or corrupt) between scan and claim: release
            self._unlink(lease_path)
            return None
        REGISTRY.counter(
            "repro_queue_claims_total",
            "Successful task claims by kind.",
            kind="steal" if steal else "fresh",
        ).inc()
        return Claim(task=task, token=token, stolen=steal)

    def heartbeat(self, claim: Claim) -> None:
        """Refresh the lease so it is not mistaken for a dead worker's."""
        try:
            os.utime(self.lease_path(claim.key))
        except OSError:
            pass  # lease stolen or completed elsewhere; publish decides

    def complete(self, claim: Claim) -> None:
        """Retire a finished task: its result lives in the artifact store."""
        self.discard(claim.key)

    def discard(self, key: str) -> None:
        """Drop a task's queue files (done, or cached before enqueue)."""
        self._unlink(self.task_path(key))
        self._unlink(self.lease_path(key))

    def fail(self, claim: Claim, error: str) -> None:
        """Record a worker-side stage failure for the coordinator."""
        self.ensure()
        stage = claim.task.get("stage", {})
        _write_json_atomic(
            os.path.join(self._dir(_FAILED), f"{claim.key}.json"),
            {
                "key": claim.key,
                "stage": stage.get("name", "?"),
                "spec": claim.task.get("spec", "?"),
                "error": error,
            },
        )
        self.discard(claim.key)

    def first_failure(self) -> dict | None:
        for key in self._keys(_FAILED):
            failure = _read_json(os.path.join(self._dir(_FAILED),
                                              f"{key}.json"))
            if failure is not None:
                return failure
        return None

    def clear_failures(self) -> None:
        for key in self._keys(_FAILED):
            self._unlink(os.path.join(self._dir(_FAILED), f"{key}.json"))

    # -- lease hygiene -----------------------------------------------------
    def reap_stale(self) -> int:
        """Drop expired leases so their tasks become claimable again.

        Workers steal stale leases on their own; the coordinator calls
        this as a backstop so a task whose claimer died is re-issued
        even when every surviving worker is busy at scan time.  Orphan
        leases whose task already completed are dropped too.
        """
        reaped = 0
        for key in self._keys(_LEASES):
            age = self._lease_age(key)
            has_task = os.path.exists(self.task_path(key))
            if age is not None and (age > self.lease_ttl_s or not has_task):
                if self._unlink(self.lease_path(key)):
                    reaped += 1
        if reaped:
            REGISTRY.counter(
                "repro_queue_leases_reaped_total",
                "Expired or orphaned leases dropped by the coordinator.",
            ).inc(reaped)
        return reaped

    def reap_tmp(self, ttl_s: float = 600.0) -> int:
        """Delete orphaned ``.tmp`` files from killed writers."""
        reaped = 0
        now = time.time()
        for name in (_TASKS, _LEASES, _FAILED, _STATS):
            directory = self._dir(name)
            if not os.path.isdir(directory):
                continue
            for entry in os.listdir(directory):
                if not entry.endswith(".tmp"):
                    continue
                path = os.path.join(directory, entry)
                try:
                    if now - os.stat(path).st_mtime > ttl_s:
                        os.remove(path)
                        reaped += 1
                except OSError:
                    continue
        return reaped

    # -- depth / stats / shutdown -----------------------------------------
    def depth(self) -> dict:
        """Queue composition right now: ready vs leased task counts."""
        ready = leased = 0
        for key in self.task_keys():
            age = self._lease_age(key)
            if age is not None and age <= self.lease_ttl_s:
                leased += 1
            else:
                ready += 1
        return {"ready": ready, "leased": leased}

    def write_stats(self, worker_id: str, stats: dict) -> None:
        self.ensure()
        _write_json_atomic(
            os.path.join(self._dir(_STATS), f"{worker_id}.json"), stats
        )

    def read_stats(self) -> dict[str, dict]:
        """Every worker's latest counters, keyed by worker id."""
        out: dict[str, dict] = {}
        for worker_id in self._keys(_STATS):
            stats = _read_json(os.path.join(self._dir(_STATS),
                                            f"{worker_id}.json"))
            if stats is not None:
                out[worker_id] = stats
        return out

    def stop(self) -> None:
        """Raise the shutdown sentinel (idempotent)."""
        self.ensure()
        with open(os.path.join(self.root, _STOP), "w",
                  encoding="utf-8") as fh:
            fh.write(str(time.time()))

    def clear_stop(self) -> None:
        self._unlink(os.path.join(self.root, _STOP))

    def stopped(self) -> bool:
        return os.path.exists(os.path.join(self.root, _STOP))
