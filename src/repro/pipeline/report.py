"""Result container and plain-text rendering for experiments/pipelines.

:class:`ExperimentResult` is the uniform terminal payload of every
pipeline: the ``report`` stage assembles one, the stage-artifact store
persists its JSON form, and a fully cached re-run reconstructs it with
:meth:`ExperimentResult.from_payload` without executing anything.
(Previously lived in ``repro.experiments.common``, which still re-exports
everything here for compatibility.)
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.cache import results_dir as resolve_results_dir


@dataclass
class ExperimentResult:
    """Uniform result record: printable and JSON-serializable."""

    experiment: str
    title: str
    scale: str
    headers: list[str]
    rows: list[list]
    notes: list[str] = field(default_factory=list)
    metrics: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        out = [f"== {self.experiment}: {self.title} (scale={self.scale}) =="]
        out.append(render_table(self.headers, self.rows))
        for key, value in sorted(self.metrics.items()):
            out.append(f"  {key} = {value:.4g}")
        for note in self.notes:
            out.append(f"  note: {note}")
        return "\n".join(out)

    def payload(self) -> dict:
        """JSON-serializable dict (inverse of :meth:`from_payload`)."""
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: dict) -> "ExperimentResult":
        return cls(**{k: payload[k] for k in (
            "experiment", "title", "scale", "headers", "rows", "notes",
            "metrics",
        )})

    def save(self, results_dir: str | None = None) -> str:
        """Write the result JSON; default dir follows the cache root
        (``REPRO_RESULTS_DIR`` / ``--results-dir`` / ``<root>/results``)."""
        results_dir = resolve_results_dir(results_dir)
        os.makedirs(results_dir, exist_ok=True)
        path = os.path.join(results_dir, f"{self.experiment}_{self.scale}.json")
        with open(path, "w") as fh:
            json.dump(self.payload(), fh, indent=2, default=str)
        return path


def render_table(headers: list[str], rows: list[list]) -> str:
    """Plain-text table with per-column widths."""
    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_surface(
    surface: np.ndarray, row_labels: list[str], col_labels: list[str],
    title: str,
) -> str:
    """6x6-style numeric heatmap (Fig. 7's objective surfaces) with the
    minimum cell marked."""
    surface = np.asarray(surface, dtype=np.float64)
    best = np.unravel_index(surface.argmin(), surface.shape)
    lines = [title]
    header = " " * 8 + "  ".join(f"{c:>8s}" for c in col_labels)
    lines.append(header)
    for i, label in enumerate(row_labels):
        cells = []
        for j in range(surface.shape[1]):
            mark = "*" if (i, j) == best else " "
            cells.append(f"{surface[i, j]:8.3g}{mark}")
        lines.append(f"{label:>6s}  " + " ".join(cells))
    return "\n".join(lines)
