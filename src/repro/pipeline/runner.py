"""The pipeline runner: plan a spec's stage DAG, hand it to a backend.

The runner itself no longer executes stages.  It builds an
:class:`~repro.pipeline.executors.ExecutionPlan` — the deduplicated
union DAG with every stage's content key precomputed — checks the
:class:`~repro.pipeline.artifacts.StageArtifactStore` for hits, and
delegates the rest to an :class:`~repro.pipeline.executors.ExecutorBackend`:
``local`` (in-process waves over :class:`repro.runtime.ParallelMap`, the
historical behavior) or ``queue`` (the distributed work-stealing queue,
see :mod:`repro.pipeline.queue`).

A failed stage raises :class:`StageFailure` *after* every other
completed stage persisted its artifact, so a re-run resumes from the
failure point instead of from scratch.  Sweeps executed on the queue
backend submit the union DAG of every expanded scenario at once, so
idle workers steal ready stages from any sweep point.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

from repro.pipeline.artifacts import StageArtifactStore
from repro.pipeline.executors import (
    ExecutionReport,
    StageTask,
    TaskResult,
    build_plan,
    make_backend,
    render_executor_stats,
)
from repro.pipeline.report import ExperimentResult
from repro.pipeline.spec import ExperimentSpec, SweepSpec


class StageFailure(RuntimeError):
    """A stage raised; carries the stage name and the (worker) traceback."""

    def __init__(self, spec_name: str, stage_name: str, detail: str):
        self.spec_name = spec_name
        self.stage_name = stage_name
        self.detail = detail
        super().__init__(
            f"pipeline {spec_name!r} failed at stage {stage_name!r}:\n{detail}"
        )


@dataclass(frozen=True)
class StageOutcome:
    """One stage of a finished run: where its payload came from."""

    name: str
    kind: str
    key: str
    cached: bool
    seconds: float
    payload: dict

    def row(self) -> str:
        state = "cached " if self.cached else "executed"
        return f"{self.name:<20s} [{self.kind:<8s}] {state} ({self.seconds:.2f}s)"


@dataclass
class PipelineResult:
    """Everything a finished pipeline run produced."""

    spec_name: str
    scale: str
    outcomes: list[StageOutcome] = field(default_factory=list)
    saved: list[str] = field(default_factory=list)
    stats: dict | None = None  # executor telemetry (queue backend runs)

    @property
    def executed(self) -> int:
        return sum(not o.cached for o in self.outcomes)

    @property
    def cached(self) -> int:
        return sum(o.cached for o in self.outcomes)

    @property
    def fully_cached(self) -> bool:
        return self.executed == 0

    @property
    def seconds(self) -> float:
        """Total execution seconds attributed to this run's stages."""
        return sum(o.seconds for o in self.outcomes)

    def outcome(self, name: str) -> StageOutcome:
        for o in self.outcomes:
            if o.name == name:
                return o
        from repro.core.errors import UnknownExperimentError

        raise UnknownExperimentError(
            name, [o.name for o in self.outcomes], kind="stage"
        )

    @property
    def payload(self) -> dict:
        """The terminal stage's payload."""
        return self.outcomes[-1].payload if self.outcomes else {}

    @property
    def result(self) -> ExperimentResult | None:
        """The report stage's :class:`ExperimentResult`, if the spec has one."""
        for o in reversed(self.outcomes):
            if o.kind == "report":
                return ExperimentResult.from_payload(o.payload)
        return None

    def summary(self) -> str:
        return (
            f"pipeline {self.spec_name} (scale={self.scale}): "
            f"{self.executed} executed, {self.cached} cached "
            f"(of {len(self.outcomes)} stages)"
        )

    def render(self) -> str:
        lines = [self.summary()]
        lines += [f"  {o.row()}" for o in self.outcomes]
        result = self.result
        if result is not None:
            lines.append(result.render())
        for path in self.saved:
            lines.append(f"saved: {path}")
        lines += render_executor_stats(self.stats)
        return "\n".join(lines)


@dataclass
class SweepResult:
    """Every point of a finished sweep, plus executor telemetry.

    Behaves like the list of per-point :class:`PipelineResult` it wraps
    (iteration, indexing, ``len``), and renders a compact per-point
    summary table instead of one stage listing per scenario.
    """

    points: list = field(default_factory=list)  # [PipelineResult]
    stats: dict | None = None

    def __iter__(self):
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    def __getitem__(self, index):
        return self.points[index]

    @property
    def executed(self) -> int:
        return sum(p.executed for p in self.points)

    @property
    def cached(self) -> int:
        return sum(p.cached for p in self.points)

    @property
    def fully_cached(self) -> bool:
        return self.executed == 0

    def table(self) -> list[str]:
        """The per-point summary rows (``point  executed cached seconds``)."""
        if not self.points:
            return []
        width = max(len(p.spec_name) for p in self.points)
        width = max(width, len("point"))
        lines = [f"  {'point':<{width}s}  executed  cached  seconds"]
        for p in self.points:
            lines.append(
                f"  {p.spec_name:<{width}s}  {p.executed:>8d}  "
                f"{p.cached:>6d}  {p.seconds:>7.2f}"
            )
        return lines

    def render(self) -> str:
        lines = self.table()
        for p in self.points:
            for path in p.saved:
                lines.append(f"saved: {path}")
        lines += render_executor_stats(self.stats)
        lines.append(
            f"sweep total: {self.executed} executed, {self.cached} cached"
        )
        return "\n".join(lines)


@contextlib.contextmanager
def execution_env(cache_dir: str | None, jobs: int | None):
    """Export ``cache_dir``/``jobs`` process-wide for one run's duration.

    ``cache_dir`` travels as ``REPRO_CACHE_DIR`` so worker processes and
    the common-helper stores resolve the same root; ``jobs`` installs
    the simulation fan-out default.  Both are restored on exit.  Yields
    the resolved job count.
    """
    import os

    from repro.cache import CACHE_DIR_ENV, set_cache_root
    from repro.experiments.common import get_default_jobs, set_default_jobs
    from repro.runtime import resolve_jobs

    previous_root = os.environ.get(CACHE_DIR_ENV)
    set_cache_root(cache_dir)
    previous_jobs = None
    if jobs is not None:
        previous_jobs = set_default_jobs(jobs)
    try:
        yield resolve_jobs(jobs) if jobs is not None else get_default_jobs()
    finally:
        if previous_jobs is not None:
            set_default_jobs(previous_jobs)
        if cache_dir:
            if previous_root is None:
                os.environ.pop(CACHE_DIR_ENV, None)
            else:
                os.environ[CACHE_DIR_ENV] = previous_root


def assemble_result(
    spec: ExperimentSpec,
    scale_name: str,
    keys: dict[str, str],
    report: ExecutionReport,
    save: bool = False,
    results_dir: str | None = None,
    seen_executed: set | None = None,
    stats: dict | None = None,
) -> PipelineResult:
    """One spec's :class:`PipelineResult` out of an execution report.

    ``seen_executed`` threads through a sweep's scenarios so a stage
    shared by several points is attributed *executed* exactly once (the
    first point, in expansion order) and *cached* everywhere else.
    """
    seen = seen_executed if seen_executed is not None else set()
    outcomes = []
    for stage in spec.stages:
        key = keys[stage.name]
        res = report.results[key]
        cached = res.cached or key in seen
        if not res.cached:
            seen.add(key)
        outcomes.append(StageOutcome(
            name=stage.name, kind=stage.kind, key=key, cached=cached,
            seconds=0.0 if cached else res.seconds, payload=res.payload,
        ))
    result = PipelineResult(spec_name=spec.name, scale=scale_name,
                            outcomes=outcomes, stats=stats)
    if save:
        for outcome in result.outcomes:
            if outcome.kind == "report":
                saved = ExperimentResult.from_payload(outcome.payload)
                result.saved.append(saved.save(results_dir))
    return result


class Runner:
    """Execute one :class:`ExperimentSpec` with per-stage artifact reuse.

    ``jobs=None`` inherits the process-wide simulation fan-out (like the
    legacy ``run_experiment``); an explicit value installs it for the
    duration of the run.  ``cache_dir`` is exported process-wide (like
    the CLI's ``--cache-dir``) so every store a stage opens — in this
    process or a worker — resolves the same root.  ``force`` re-executes
    every stage; ``force_stages`` re-executes just the named ones.

    ``backend`` picks the executor: ``"local"`` (default), ``"queue"``
    (``workers`` spawned queue workers plus any external ``repro
    pipeline worker`` processes sharing the cache root), or a pre-built
    backend object.  ``backend_options`` are extra keyword arguments for
    the backend constructor (e.g. ``lease_ttl_s`` for the queue).
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        scale: str | None = None,
        cache_dir: str | None = None,
        results_dir: str | None = None,
        jobs: int | None = None,
        save: bool = False,
        force: bool = False,
        force_stages: tuple[str, ...] = (),
        store: StageArtifactStore | None = None,
        progress=None,
        backend="local",
        workers: int = 0,
        backend_options: dict | None = None,
    ):
        from repro.experiments.common import get_scale

        self.spec = spec
        self.scale = get_scale(scale or spec.scale or "bench")
        self.cache_dir = cache_dir
        self.results_dir = results_dir
        self.jobs = jobs
        self.save = save
        self.force = force
        self.force_stages = tuple(force_stages)
        for name in self.force_stages:
            spec.stage(name)  # fail fast with suggestions
        self._store = store
        self.progress = progress
        self.backend = backend
        self.workers = workers
        self.backend_options = dict(backend_options or {})

    @property
    def store(self) -> StageArtifactStore:
        if self._store is None:
            self._store = StageArtifactStore()
        return self._store

    def run(self) -> PipelineResult:
        with execution_env(self.cache_dir, self.jobs) as resolved_jobs:
            return self._run(resolved_jobs)

    def _run(self, resolved_jobs: int) -> PipelineResult:
        plan = build_plan(
            [self.spec], scale=self.scale, store=self.store,
            jobs=resolved_jobs, cache_dir=self.cache_dir,
            results_dir=self.results_dir, force=self.force,
            force_stages=self.force_stages,
            progress=self.progress, on_outcome=self._on_outcome,
        )
        backend = make_backend(self.backend, workers=self.workers,
                               **self.backend_options)
        report = backend.execute(plan)
        if report.failure is not None:
            raise StageFailure(*report.failure)
        spec, keys = plan.index[0]
        return assemble_result(
            spec, self.scale.name, keys, report,
            save=self.save, results_dir=self.results_dir,
            stats=report.stats,
        )

    def _on_outcome(self, task: StageTask, result: TaskResult) -> None:
        if self.progress is not None and hasattr(self.progress, "stream"):
            outcome = StageOutcome(
                name=task.stage.name, kind=task.stage.kind, key=task.key,
                cached=result.cached, seconds=result.seconds,
                payload=result.payload,
            )
            self.progress.stream.write(f"{outcome.row()}\n")


# ---------------------------------------------------------------------------
# convenience entry points
# ---------------------------------------------------------------------------
def run_spec(
    spec: ExperimentSpec | str,
    scale: str | None = None,
    jobs: int | None = None,
    cache_dir: str | None = None,
    results_dir: str | None = None,
    save: bool = False,
    force: bool = False,
    backend="local",
    workers: int = 0,
    backend_options: dict | None = None,
) -> PipelineResult:
    """Run one spec (by object or registered name)."""
    if isinstance(spec, str):
        from repro.pipeline.presets import get_spec

        spec = get_spec(spec)
    return Runner(
        spec, scale=scale, jobs=jobs, cache_dir=cache_dir,
        results_dir=results_dir, save=save, force=force,
        backend=backend, workers=workers, backend_options=backend_options,
    ).run()


def run_sweep(
    sweep: SweepSpec,
    scale: str | None = None,
    jobs: int | None = None,
    cache_dir: str | None = None,
    results_dir: str | None = None,
    save: bool = False,
    force: bool = False,
    backend="local",
    workers: int = 0,
    backend_options: dict | None = None,
    progress=None,
) -> SweepResult:
    """Run every scenario of a sweep grid, in expansion order.

    Scenarios share stage artifacts wherever their grid point leaves a
    stage's parameters (and upstream) untouched, so a sweep's cost is
    proportional to what actually varies.

    On the ``local`` backend, scenarios run sequentially in-process.
    Any other backend receives the **union DAG** of every expanded
    scenario in one submission — with the queue backend that means idle
    workers steal ready stages from any sweep point (work-stealing
    across the whole grid), and a stage shared by several points
    executes once.
    """
    scenarios = sweep.expand()
    if backend == "local":
        points = [
            Runner(
                scenario, scale=scale, jobs=jobs, cache_dir=cache_dir,
                results_dir=results_dir, save=save, force=force,
                progress=progress,
            ).run()
            for scenario in scenarios
        ]
        return SweepResult(points=points)
    with execution_env(cache_dir, jobs) as resolved_jobs:
        store = StageArtifactStore()
        plan = build_plan(
            scenarios, scale=scale, store=store, jobs=resolved_jobs,
            cache_dir=cache_dir, results_dir=results_dir, force=force,
            progress=progress,
        )
        backend_obj = make_backend(backend, workers=workers,
                                   **(backend_options or {}))
        report = backend_obj.execute(plan)
        if report.failure is not None:
            raise StageFailure(*report.failure)
        seen: set[str] = set()
        points = []
        for spec, keys in plan.index:
            points.append(assemble_result(
                spec, plan_scale_name(spec, scale), keys, report,
                save=save, results_dir=results_dir, seen_executed=seen,
            ))
        return SweepResult(points=points, stats=report.stats)


def plan_scale_name(spec: ExperimentSpec, scale) -> str:
    """The scale name a spec resolves to under an optional override."""
    from repro.experiments.common import get_scale

    return get_scale(scale or spec.scale or "bench").name
