"""The pipeline runner: execute a spec's stage DAG with artifact reuse.

Execution is wave-based over the validated DAG: every stage whose
dependencies are resolved forms a wave; waves with more than one pending
stage fan out across processes through
:class:`repro.runtime.ParallelMap` (each stage then simulates serially,
exactly like the experiment runner's worker rule), single-stage waves
run in-process with the full simulation fan-out.

Before running anything, each stage's content key is checked against the
:class:`~repro.pipeline.artifacts.StageArtifactStore`; hits return the
stored payload without executing.  A failed stage raises
:class:`StageFailure` *after* persisting every other completed stage of
its wave, so a re-run resumes from the failure point instead of from
scratch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.pipeline.artifacts import StageArtifactStore, stage_key
from repro.pipeline.report import ExperimentResult
from repro.pipeline.spec import ExperimentSpec, StageSpec, SweepSpec
from repro.pipeline.stages import STAGE_KINDS, StageContext


class StageFailure(RuntimeError):
    """A stage raised; carries the stage name and the (worker) traceback."""

    def __init__(self, spec_name: str, stage_name: str, detail: str):
        self.spec_name = spec_name
        self.stage_name = stage_name
        self.detail = detail
        super().__init__(
            f"pipeline {spec_name!r} failed at stage {stage_name!r}:\n{detail}"
        )


@dataclass(frozen=True)
class StageOutcome:
    """One stage of a finished run: where its payload came from."""

    name: str
    kind: str
    key: str
    cached: bool
    seconds: float
    payload: dict

    def row(self) -> str:
        state = "cached " if self.cached else "executed"
        return f"{self.name:<20s} [{self.kind:<8s}] {state} ({self.seconds:.2f}s)"


@dataclass
class PipelineResult:
    """Everything a finished pipeline run produced."""

    spec_name: str
    scale: str
    outcomes: list[StageOutcome] = field(default_factory=list)
    saved: list[str] = field(default_factory=list)

    @property
    def executed(self) -> int:
        return sum(not o.cached for o in self.outcomes)

    @property
    def cached(self) -> int:
        return sum(o.cached for o in self.outcomes)

    @property
    def fully_cached(self) -> bool:
        return self.executed == 0

    def outcome(self, name: str) -> StageOutcome:
        for o in self.outcomes:
            if o.name == name:
                return o
        from repro.core.errors import UnknownExperimentError

        raise UnknownExperimentError(
            name, [o.name for o in self.outcomes], kind="stage"
        )

    @property
    def payload(self) -> dict:
        """The terminal stage's payload."""
        return self.outcomes[-1].payload if self.outcomes else {}

    @property
    def result(self) -> ExperimentResult | None:
        """The report stage's :class:`ExperimentResult`, if the spec has one."""
        for o in reversed(self.outcomes):
            if o.kind == "report":
                return ExperimentResult.from_payload(o.payload)
        return None

    def summary(self) -> str:
        return (
            f"pipeline {self.spec_name} (scale={self.scale}): "
            f"{self.executed} executed, {self.cached} cached "
            f"(of {len(self.outcomes)} stages)"
        )

    def render(self) -> str:
        lines = [self.summary()]
        lines += [f"  {o.row()}" for o in self.outcomes]
        result = self.result
        if result is not None:
            lines.append(result.render())
        for path in self.saved:
            lines.append(f"saved: {path}")
        return "\n".join(lines)


def _stage_job(item) -> dict:
    """Top-level (picklable) worker entry point for one stage."""
    stage, ctx, inputs = item
    import repro.pipeline.presets  # noqa: F401 — registers preset analyses

    return STAGE_KINDS[stage.kind].run(ctx, stage, inputs)


class Runner:
    """Execute one :class:`ExperimentSpec` with per-stage artifact reuse.

    ``jobs=None`` inherits the process-wide simulation fan-out (like the
    legacy ``run_experiment``); an explicit value installs it for the
    duration of the run.  ``cache_dir`` is exported process-wide (like
    the CLI's ``--cache-dir``) so every store a stage opens — in this
    process or a worker — resolves the same root.  ``force`` re-executes
    every stage; ``force_stages`` re-executes just the named ones (and,
    through key invalidation, everything downstream of them is *not*
    invalidated — their inputs did not change — so forcing is cheap).
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        scale: str | None = None,
        cache_dir: str | None = None,
        results_dir: str | None = None,
        jobs: int | None = None,
        save: bool = False,
        force: bool = False,
        force_stages: tuple[str, ...] = (),
        store: StageArtifactStore | None = None,
        progress=None,
    ):
        from repro.experiments.common import get_scale

        self.spec = spec
        self.scale = get_scale(scale or spec.scale or "bench")
        self.cache_dir = cache_dir
        self.results_dir = results_dir
        self.jobs = jobs
        self.save = save
        self.force = force
        self.force_stages = tuple(force_stages)
        for name in self.force_stages:
            spec.stage(name)  # fail fast with suggestions
        self._store = store
        self.progress = progress

    @property
    def store(self) -> StageArtifactStore:
        if self._store is None:
            self._store = StageArtifactStore()
        return self._store

    def _context(self, inner_jobs: int) -> StageContext:
        return StageContext(
            scale=self.scale,
            spec_name=self.spec.name,
            cache_dir=self.cache_dir,
            results_dir=self.results_dir,
            jobs=inner_jobs,
        )

    def _forced(self, stage: StageSpec) -> bool:
        return self.force or stage.name in self.force_stages

    def run(self) -> PipelineResult:
        import os

        from repro.cache import CACHE_DIR_ENV, set_cache_root
        from repro.experiments.common import get_default_jobs, set_default_jobs
        from repro.runtime import resolve_jobs

        # cache_dir is exported as REPRO_CACHE_DIR so worker processes and
        # the common-helper stores resolve the same root — but only for
        # the duration of this run, like the jobs override below
        previous_root = os.environ.get(CACHE_DIR_ENV)
        set_cache_root(self.cache_dir)
        previous_jobs = None
        if self.jobs is not None:
            previous_jobs = set_default_jobs(self.jobs)
        try:
            resolved_jobs = (
                resolve_jobs(self.jobs) if self.jobs is not None
                else get_default_jobs()
            )
            return self._run(resolved_jobs)
        finally:
            if previous_jobs is not None:
                set_default_jobs(previous_jobs)
            if self.cache_dir:
                if previous_root is None:
                    os.environ.pop(CACHE_DIR_ENV, None)
                else:
                    os.environ[CACHE_DIR_ENV] = previous_root

    def _run(self, resolved_jobs: int) -> PipelineResult:
        result = PipelineResult(spec_name=self.spec.name, scale=self.scale.name)
        keys: dict[str, str] = {}
        payloads: dict[str, dict] = {}
        done: dict[str, StageOutcome] = {}

        pending = list(self.spec.stages)
        while pending:
            wave = [s for s in pending if all(n in done for n in s.needs)]
            assert wave, "spec validation guarantees progress"
            to_execute: list[StageSpec] = []
            for stage in wave:
                extra = None
                if stage.kind == "analysis":
                    from repro.pipeline.stages import analysis_fingerprint

                    extra = {
                        "fn_source": analysis_fingerprint(stage.params["fn"])
                    }
                key = stage_key(
                    stage, self.scale,
                    {n: keys[n] for n in stage.needs},
                    STAGE_KINDS[stage.kind].version,
                    extra=extra,
                )
                keys[stage.name] = key
                record = None if self._forced(stage) else self.store.get(key)
                if record is not None:
                    outcome = StageOutcome(
                        name=stage.name, kind=stage.kind, key=key,
                        cached=True, seconds=0.0, payload=record["payload"],
                    )
                    done[stage.name] = outcome
                    payloads[stage.name] = outcome.payload
                    self._report(outcome)
                else:
                    to_execute.append(stage)
            if to_execute:
                self._execute_wave(to_execute, keys, payloads, done,
                                   resolved_jobs)
            pending = [s for s in pending if s.name not in done]

        result.outcomes = [done[s.name] for s in self.spec.stages]
        if self.save:
            for outcome in result.outcomes:
                if outcome.kind == "report":
                    saved = ExperimentResult.from_payload(outcome.payload)
                    result.saved.append(saved.save(self.results_dir))
        return result

    def _execute_wave(
        self,
        stages: list[StageSpec],
        keys: dict[str, str],
        payloads: dict[str, dict],
        done: dict[str, StageOutcome],
        resolved_jobs: int,
    ) -> None:
        from repro.runtime import ParallelMap

        parallel = resolved_jobs > 1 and len(stages) > 1
        inner_jobs = 1 if parallel else resolved_jobs
        ctx = self._context(inner_jobs)
        items = [
            (stage, ctx, {n: payloads[n] for n in stage.needs})
            for stage in stages
        ]
        start = time.perf_counter()
        if parallel:
            pool = ParallelMap(jobs=min(resolved_jobs, len(stages)),
                               chunksize=1, progress=self.progress)
            results = pool.map(
                _stage_job, items, return_errors=True,
                labels=[s.name for s in stages],
            )
        else:
            results = [self._run_inline(item) for item in items]
        elapsed = time.perf_counter() - start
        failure: tuple[str, str] | None = None
        for stage, res in zip(stages, results):
            if res.error is not None:
                if failure is None:
                    failure = (stage.name, res.error)
                continue
            key = keys[stage.name]
            self.store.put(key, stage.name, stage.kind, self.spec.name,
                           res.value)
            outcome = StageOutcome(
                name=stage.name, kind=stage.kind, key=key, cached=False,
                seconds=elapsed / max(len(stages), 1), payload=res.value,
            )
            done[stage.name] = outcome
            payloads[stage.name] = res.value
            self._report(outcome)
        if failure is not None:
            raise StageFailure(self.spec.name, failure[0], failure[1])

    def _run_inline(self, item):
        """Serial execution with the same error envelope as the pool."""
        import traceback

        from repro.runtime.pool import JobResult

        try:
            return JobResult(index=0, value=_stage_job(item))
        except Exception:
            return JobResult(index=0, error=traceback.format_exc())

    def _report(self, outcome: StageOutcome) -> None:
        if self.progress is not None and hasattr(self.progress, "stream"):
            self.progress.stream.write(f"{outcome.row()}\n")


# ---------------------------------------------------------------------------
# convenience entry points
# ---------------------------------------------------------------------------
def run_spec(
    spec: ExperimentSpec | str,
    scale: str | None = None,
    jobs: int | None = None,
    cache_dir: str | None = None,
    results_dir: str | None = None,
    save: bool = False,
    force: bool = False,
) -> PipelineResult:
    """Run one spec (by object or registered name)."""
    if isinstance(spec, str):
        from repro.pipeline.presets import get_spec

        spec = get_spec(spec)
    return Runner(
        spec, scale=scale, jobs=jobs, cache_dir=cache_dir,
        results_dir=results_dir, save=save, force=force,
    ).run()


def run_sweep(
    sweep: SweepSpec,
    scale: str | None = None,
    jobs: int | None = None,
    cache_dir: str | None = None,
    results_dir: str | None = None,
    save: bool = False,
    force: bool = False,
) -> list[PipelineResult]:
    """Run every scenario of a sweep grid, in expansion order.

    Scenarios share stage artifacts wherever their grid point leaves a
    stage's parameters (and upstream) untouched, so a sweep's cost is
    proportional to what actually varies.
    """
    return [
        Runner(
            scenario, scale=scale, jobs=jobs, cache_dir=cache_dir,
            results_dir=results_dir, save=save, force=force,
        ).run()
        for scenario in sweep.expand()
    ]
