"""Declarative pipeline specs: stages, experiments, sweeps, file loading.

An :class:`ExperimentSpec` is a named DAG of :class:`StageSpec` nodes
(workload → trace/dataset → train-or-reuse → predict/evaluate → report);
a :class:`SweepSpec` wraps one and a parameter grid, expanding to one
scenario spec per grid point.  Both are plain data — loadable from TOML
or JSON files (``load_spec``), buildable in Python (``stage(...)``), and
hashable content for the runner's per-stage artifact keys.

Validation is eager and specific: duplicate or unknown stage names,
unknown stage kinds and unknown parameters all fail at spec-build time
with close-match suggestions, not deep inside a run.
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

from repro.core.errors import UnknownExperimentError


class SpecError(ValueError):
    """A pipeline spec that cannot be interpreted as written."""


@dataclass(frozen=True)
class StageSpec:
    """One node of the pipeline DAG.

    ``params`` are the stage kind's inputs (validated against the kind's
    declared parameter set); ``needs`` names upstream stages whose
    outputs this stage consumes and whose artifact keys feed this
    stage's content address.
    """

    name: str
    kind: str
    needs: tuple[str, ...] = ()
    params: Mapping = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(self, "needs", tuple(self.needs))
        object.__setattr__(self, "params", dict(self.params))

    def with_params(self, **overrides) -> "StageSpec":
        return replace(self, params={**self.params, **overrides})


def stage(name: str, kind: str, needs: Sequence[str] = (), **params) -> StageSpec:
    """Shorthand constructor used by the preset specs."""
    return StageSpec(name=name, kind=kind, needs=tuple(needs), params=params)


@dataclass(frozen=True)
class ExperimentSpec:
    """A named, validated stage DAG plus presentation metadata."""

    name: str
    stages: tuple[StageSpec, ...]
    title: str = ""
    scale: str | None = None  # default scale; run-time argument wins
    description: str = ""

    def __post_init__(self):
        object.__setattr__(self, "stages", tuple(self.stages))
        self.validate()

    # -- structure ---------------------------------------------------------
    def validate(self) -> None:
        from repro.pipeline.stages import STAGE_KINDS, validate_stage_params

        if not self.name:
            raise SpecError("spec needs a non-empty name")
        if not self.stages:
            raise SpecError(f"spec {self.name!r} declares no stages")
        seen: set[str] = set()
        for st in self.stages:
            if not st.name:
                raise SpecError(f"spec {self.name!r} has an unnamed stage")
            if st.name in seen:
                raise SpecError(
                    f"spec {self.name!r}: duplicate stage name {st.name!r}"
                )
            if st.kind not in STAGE_KINDS:
                raise UnknownExperimentError(
                    st.kind, STAGE_KINDS, kind="stage kind"
                )
            validate_stage_params(self.name, st)
            for need in st.needs:
                if need not in seen:
                    raise SpecError(
                        f"spec {self.name!r}: stage {st.name!r} needs "
                        f"{need!r}, which is not an earlier stage"
                    )
            seen.add(st.name)

    def stage(self, name: str) -> StageSpec:
        for st in self.stages:
            if st.name == name:
                return st
        raise UnknownExperimentError(
            name, [s.name for s in self.stages], kind="stage"
        )

    def override(self, overrides: Mapping) -> "ExperimentSpec":
        """New spec with ``{"stage.param": value}`` parameter overrides.

        A bare ``"scale"`` key overrides the spec's default scale; every
        other key must be ``<stage>.<param>`` for an existing stage.
        """
        scale = self.scale
        per_stage: dict[str, dict] = {}
        for key, value in overrides.items():
            if key == "scale":
                scale = value
                continue
            stage_name, dot, param = key.partition(".")
            if not dot:
                raise SpecError(
                    f"override key {key!r} must be 'scale' or '<stage>.<param>'"
                )
            self.stage(stage_name)  # raises with suggestions when unknown
            per_stage.setdefault(stage_name, {})[param] = value
        stages = tuple(
            st.with_params(**per_stage[st.name]) if st.name in per_stage else st
            for st in self.stages
        )
        return replace(self, stages=stages, scale=scale)


@dataclass(frozen=True)
class SweepSpec:
    """A base spec plus a parameter grid.

    ``matrix`` maps override keys (``"<stage>.<param>"`` or ``"scale"``)
    to value lists; :meth:`expand` emits the cartesian product as one
    scenario spec per grid point.  Shared upstream stages keep identical
    artifact keys across scenarios, so a sweep re-simulates and retrains
    only what each grid point actually changes.
    """

    base: ExperimentSpec
    matrix: Mapping[str, tuple] = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(
            self, "matrix", {k: tuple(v) for k, v in dict(self.matrix).items()}
        )
        if not self.matrix:
            raise SpecError(
                f"sweep over {self.base.name!r} has an empty matrix; "
                "declare at least one [sweep.matrix] axis"
            )
        for axis, values in self.matrix.items():
            if not values:
                raise SpecError(
                    f"sweep axis {axis!r} has no values: the grid expands "
                    "to zero scenarios"
                )
            if axis != "scale":
                stage_name, dot, _ = axis.partition(".")
                if not dot:
                    raise SpecError(
                        f"sweep axis {axis!r} must be 'scale' or "
                        "'<stage>.<param>'"
                    )
                self.base.stage(stage_name)

    @property
    def name(self) -> str:
        return self.base.name

    def __len__(self) -> int:
        size = 1
        for values in self.matrix.values():
            size *= len(values)
        return size

    def expand(self) -> list[ExperimentSpec]:
        """One scenario spec per grid point, named ``base__k=v__k=v``."""
        axes = sorted(self.matrix)
        scenarios = []
        for point in itertools.product(*(self.matrix[a] for a in axes)):
            overrides = dict(zip(axes, point))
            label = "__".join(
                f"{a.split('.')[-1]}={v}" for a, v in zip(axes, point)
            )
            scenario = self.base.override(overrides)
            scenarios.append(
                replace(scenario, name=f"{self.base.name}__{label}")
            )
        return scenarios


# ---------------------------------------------------------------------------
# dict / file loading
# ---------------------------------------------------------------------------
_TOP_LEVEL_KEYS = {"name", "title", "scale", "description", "stage", "sweep"}


def spec_from_dict(data: Mapping, source: str = "<dict>"):
    """Build an :class:`ExperimentSpec` (or :class:`SweepSpec`) from
    parsed TOML/JSON data, rejecting unknown keys loudly."""
    if not isinstance(data, Mapping):
        raise SpecError(f"{source}: spec must be a table/object, got "
                        f"{type(data).__name__}")
    unknown = set(data) - _TOP_LEVEL_KEYS
    if unknown:
        raise SpecError(
            f"{source}: unknown top-level key(s) {sorted(unknown)}; "
            f"known: {sorted(_TOP_LEVEL_KEYS)}"
        )
    if "name" not in data:
        raise SpecError(f"{source}: spec needs a 'name'")
    raw_stages = data.get("stage")
    if not isinstance(raw_stages, list) or not raw_stages:
        raise SpecError(
            f"{source}: spec needs at least one [[stage]] entry"
        )
    stages = []
    for i, entry in enumerate(raw_stages):
        if not isinstance(entry, Mapping):
            raise SpecError(f"{source}: stage #{i + 1} must be a table")
        entry = dict(entry)
        name = entry.pop("name", None)
        kind = entry.pop("kind", None)
        needs = entry.pop("needs", [])
        if not name or not kind:
            raise SpecError(
                f"{source}: stage #{i + 1} needs both 'name' and 'kind'"
            )
        if isinstance(needs, str):
            needs = [needs]
        stages.append(
            StageSpec(name=name, kind=kind, needs=tuple(needs), params=entry)
        )
    spec = ExperimentSpec(
        name=data["name"],
        title=data.get("title", ""),
        scale=data.get("scale"),
        description=data.get("description", ""),
        stages=tuple(stages),
    )
    sweep = data.get("sweep")
    if sweep is None:
        return spec
    if not isinstance(sweep, Mapping) or set(sweep) != {"matrix"}:
        raise SpecError(
            f"{source}: [sweep] must contain exactly a [sweep.matrix] table"
        )
    matrix = sweep["matrix"]
    if not isinstance(matrix, Mapping):
        raise SpecError(f"{source}: [sweep.matrix] must be a table")
    bad = [k for k, v in matrix.items() if not isinstance(v, (list, tuple))]
    if bad:
        raise SpecError(
            f"{source}: sweep axis(es) {sorted(bad)} must map to value lists"
        )
    return SweepSpec(base=spec, matrix={k: tuple(v) for k, v in matrix.items()})


def load_spec(path: str):
    """Load a spec from a ``.toml`` or ``.json`` file."""
    from repro.pipeline._toml import TOMLError, loads as toml_loads

    if not os.path.exists(path):
        raise SpecError(f"no spec file at {path!r}")
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    ext = os.path.splitext(path)[1].lower()
    if ext == ".json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"{path}: malformed JSON: {exc}") from exc
    elif ext == ".toml":
        try:
            data = toml_loads(text)
        except TOMLError as exc:
            raise SpecError(f"{path}: malformed TOML: {exc}") from exc
    else:
        raise SpecError(
            f"{path}: unsupported spec extension {ext!r} (use .toml or .json)"
        )
    return spec_from_dict(data, source=path)
