"""Built-in stage kinds and the analysis-function registry.

A stage kind is a typed unit of pipeline work: it declares the parameter
names it accepts (unknown parameters are a spec error with suggestions),
a version (bump to invalidate cached artifacts when semantics change)
and a run function ``(ctx, stage, inputs) -> payload``.

Stage payloads are **JSON-serializable references, not heavyweight
objects**: a ``dataset`` stage materializes trace simulations into the
npz dataset cache and returns the dataset's fingerprint; a ``train``
stage materializes a model into the :class:`~repro.models.store.ModelStore`
and returns the artifact id.  Downstream stages re-open those stores —
which makes every stage restartable, parallelizable across processes and
resumable from its on-disk artifact alone.

Built-in kinds::

    dataset   warm the (benchmarks x configs) simulation cache
    train     train-or-reuse a model artifact in the ModelStore
    evaluate  stored-model error vs simulated ground truth
    predict   batched feature-stream serving through a stored model
    analysis  a registered analysis function (the bespoke figure logic)
    report    assemble the ExperimentResult payload (and optionally save)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping

from repro.core.errors import UnknownExperimentError

if TYPE_CHECKING:  # import cycle: experiments.common re-exports our report
    from repro.experiments.common import ScaleConfig


@dataclass(frozen=True)
class StageContext:
    """Everything a stage run needs besides its params and inputs.

    Picklable by construction so stages can execute in worker processes.
    ``jobs`` is the simulation fan-out *within* this stage (the runner
    sets it to 1 when stages themselves run concurrently).
    """

    scale: ScaleConfig
    spec_name: str
    cache_dir: str | None = None
    results_dir: str | None = None
    jobs: int = 1


@dataclass(frozen=True)
class StageKind:
    """A registered stage type: allowed params + executable behaviour."""

    kind: str
    run: Callable[[StageContext, "StageSpec", dict], dict]  # noqa: F821
    params: frozenset = frozenset()
    required: frozenset = frozenset()
    #: free-form extras allowed (analysis fns take arbitrary params)
    open_params: bool = False
    version: int = 1


STAGE_KINDS: dict[str, StageKind] = {}

#: Registered analysis callables: name -> fn(ctx, params, inputs) -> dict.
ANALYSES: dict[str, Callable] = {}


def register_kind(kind: StageKind) -> StageKind:
    STAGE_KINDS[kind.kind] = kind
    return kind


def analysis(name: str):
    """Decorator registering a pipeline analysis function under ``name``."""

    def register(fn: Callable) -> Callable:
        ANALYSES[name] = fn
        return fn

    return register


def analysis_fingerprint(name: str) -> str:
    """Content hash of a registered analysis function's source.

    Part of every analysis stage's artifact key, so editing an analysis
    function automatically invalidates its cached payloads — no manual
    version bump, no ``--force`` needed after a code change.  (Edits to
    helpers the function *calls* are not seen; force those runs.)
    """
    import hashlib
    import inspect

    fn = ANALYSES.get(name)
    if fn is None:
        import repro.pipeline.presets  # noqa: F401 — registers presets

        fn = ANALYSES.get(name)
    if fn is None:
        # let the stage execution raise the suggestion-bearing error
        return "unregistered"
    try:
        source = inspect.getsource(fn)
    except (OSError, TypeError):
        source = fn.__code__.co_code.hex()
    return hashlib.sha256(source.encode()).hexdigest()[:16]


def validate_stage_params(spec_name: str, stage) -> None:
    """Reject unknown/missing stage parameters at spec-build time."""
    kind = STAGE_KINDS[stage.kind]
    missing = kind.required - set(stage.params)
    if missing:
        raise_spec_error(
            f"spec {spec_name!r}: stage {stage.name!r} ({stage.kind}) is "
            f"missing required parameter(s) {sorted(missing)}"
        )
    if not kind.open_params:
        unknown = set(stage.params) - kind.params
        if unknown:
            raise_spec_error(
                f"spec {spec_name!r}: stage {stage.name!r} ({stage.kind}) "
                f"got unknown parameter(s) {sorted(unknown)}; "
                f"allowed: {sorted(kind.params)}"
            )


def raise_spec_error(message: str) -> None:
    from repro.pipeline.spec import SpecError

    raise SpecError(message)


# ---------------------------------------------------------------------------
# shared resolution helpers
# ---------------------------------------------------------------------------
#: Named benchmark splits usable wherever a spec takes ``benchmarks``.
BENCHMARK_ALIASES = ("train", "test", "all", "updated-train", "updated-test")


def resolve_benchmarks(value, isa: str | None = None) -> tuple[str, ...]:
    """A spec's ``benchmarks`` value (alias or explicit list) to names.

    With ``isa``, the ``train``/``test``/``all`` aliases resolve against
    that frontend's suite instead of the mini-ASM workloads.
    """
    from repro.frontends import DEFAULT_FRONTEND, get_frontend
    from repro.workloads import ALL_BENCHMARKS, TEST_BENCHMARKS, TRAIN_BENCHMARKS

    if isinstance(value, str):
        if isa is not None and isa != DEFAULT_FRONTEND:
            frontend = get_frontend(isa)
            if value == "train":
                return tuple(frontend.train_benchmarks())
            if value == "test":
                return tuple(frontend.test_benchmarks())
            if value == "all":
                return tuple(frontend.benchmarks())
            raise UnknownExperimentError(
                value, ("train", "test", "all"),
                kind=f"benchmark alias for isa {isa!r}",
            )
        if value == "train":
            return tuple(TRAIN_BENCHMARKS)
        if value == "test":
            return tuple(TEST_BENCHMARKS)
        if value == "all":
            return tuple(ALL_BENCHMARKS)
        if value in ("updated-train", "updated-test"):
            from repro.experiments.fig4_retrain_lbm import (
                UPDATED_TEST,
                UPDATED_TRAIN,
            )

            return tuple(UPDATED_TRAIN if value == "updated-train" else UPDATED_TEST)
        raise UnknownExperimentError(
            value, BENCHMARK_ALIASES, kind="benchmark alias"
        )
    return tuple(value)


def resolve_configs(ctx: StageContext, stage) -> list:
    """The stage's microarchitecture list (``seen``/``unseen`` source)."""
    from repro.experiments.common import seen_configs, unseen_configs

    source = stage.params.get("configs", "seen")
    if source == "seen":
        return seen_configs(ctx.scale)
    if source == "unseen":
        return unseen_configs(ctx.scale, int(stage.params.get("count", 10)))
    raise UnknownExperimentError(
        source, ("seen", "unseen"), kind="config source"
    )


def _model_artifact(stage, inputs: Mapping) -> str:
    """The model artifact id produced by this stage's upstream train stage."""
    for need in stage.needs:
        payload = inputs.get(need) or {}
        if "artifact" in payload:
            return payload["artifact"]
    raise_spec_error(
        f"stage {stage.name!r} ({stage.kind}) needs an upstream 'train' "
        "stage providing a model artifact"
    )


# ---------------------------------------------------------------------------
# built-in kinds
# ---------------------------------------------------------------------------
def _stage_isa(stage) -> str | None:
    """The stage's ``isa`` parameter (``None`` means the default frontend)."""
    return stage.params.get("isa")


def _run_dataset(ctx: StageContext, stage, inputs) -> dict:
    from repro.experiments.common import benchmark_dataset

    isa = _stage_isa(stage)
    benchmarks = resolve_benchmarks(stage.params["benchmarks"], isa=isa)
    configs = resolve_configs(ctx, stage)
    instructions = stage.params.get("instructions")
    ds = benchmark_dataset(
        ctx.scale, benchmarks, configs=configs, instructions=instructions,
        isa=isa,
    )
    payload = {
        "benchmarks": list(benchmarks),
        "config_names": list(ds.config_names),
        "rows": len(ds),
        "fingerprint": ds.fingerprint(),
    }
    if isa is not None:
        payload["isa"] = ds.isa
    return payload


def _run_train(ctx: StageContext, stage, inputs) -> dict:
    from repro.frontends import DEFAULT_FRONTEND

    family = stage.params.get("family", "perfvec")
    isa = _stage_isa(stage)
    benchmarks = resolve_benchmarks(stage.params["benchmarks"], isa=isa)
    if family == "perfvec" and (isa is None or isa == DEFAULT_FRONTEND):
        from repro.experiments.common import trained_artifact

        artifact = trained_artifact(
            ctx.scale, benchmarks,
            spec=stage.params.get("arch"),
            epochs=stage.params.get("epochs"),
        )
        return {"artifact": artifact, "family": family}
    # other families (and non-default frontends) ride the Session
    # train-or-reuse path
    from repro.api import Session

    session = Session(
        scale=ctx.scale, cache_dir=ctx.cache_dir, jobs=ctx.jobs,
        frontend=isa or DEFAULT_FRONTEND,
    )
    overrides: dict = {}
    if family == "perfvec":
        if stage.params.get("arch") is not None:
            overrides["arch"] = stage.params["arch"]
        if stage.params.get("epochs") is not None:
            overrides["epochs"] = stage.params["epochs"]
    result = session.train(
        family=family, benchmarks=benchmarks, evaluate=False, **overrides
    )
    payload = {"artifact": result.artifact_id, "family": family,
               "reused": result.reused}
    if isa is not None:
        payload["isa"] = session.frontend
    return payload


def _run_evaluate(ctx: StageContext, stage, inputs) -> dict:
    from repro.api import Session
    from repro.frontends import DEFAULT_FRONTEND

    isa = _stage_isa(stage)
    benchmarks = resolve_benchmarks(stage.params["benchmarks"], isa=isa)
    artifact = _model_artifact(stage, inputs)
    session = Session(
        scale=ctx.scale, cache_dir=ctx.cache_dir, jobs=ctx.jobs,
        frontend=isa or DEFAULT_FRONTEND,
    )
    errors = session.evaluate(benchmarks, artifact=artifact)
    rows = [
        [name, f"{s.mean:.1%}", f"{s.std:.1%}", f"{s.min:.1%}", f"{s.max:.1%}"]
        for name, s in errors.items()
    ]
    means = [s.mean for s in errors.values()]
    return {
        "title": f"Stored-model error ({len(benchmarks)} benchmarks)",
        "headers": ["benchmark", "mean", "std", "min", "max"],
        "rows": rows,
        "metrics": {"avg_error": sum(means) / len(means)},
        "artifact": artifact,
    }


def _run_predict(ctx: StageContext, stage, inputs) -> dict:
    from repro.api import Session
    from repro.frontends import DEFAULT_FRONTEND

    isa = _stage_isa(stage)
    benchmarks = resolve_benchmarks(stage.params["benchmarks"], isa=isa)
    artifact = _model_artifact(stage, inputs)
    session = Session(
        scale=ctx.scale, cache_dir=ctx.cache_dir, jobs=ctx.jobs,
        frontend=isa or DEFAULT_FRONTEND,
    )
    times = session.predict_many(benchmarks, artifact=artifact)
    rows = [
        [name, len(per_config), float(min(per_config.values())),
         float(max(per_config.values()))]
        for name, per_config in times.items()
    ]
    return {
        "title": f"Predicted times ({len(benchmarks)} benchmarks)",
        "headers": ["benchmark", "configs", "min ticks", "max ticks"],
        "rows": rows,
        "metrics": {},
        "times": {k: dict(v) for k, v in times.items()},
        "artifact": artifact,
    }


def _run_analysis(ctx: StageContext, stage, inputs) -> dict:
    name = stage.params["fn"]
    fn = ANALYSES.get(name)
    if fn is None:
        # specs loaded from files reference preset analyses by name
        # without importing the defining module; pull them in once
        import repro.pipeline.presets  # noqa: F401

        fn = ANALYSES.get(name)
    if fn is None:
        raise UnknownExperimentError(name, ANALYSES, kind="analysis")
    params = {k: v for k, v in stage.params.items() if k != "fn"}
    out = fn(ctx, params, inputs)
    if "rows" not in out:
        raise_spec_error(
            f"analysis {name!r} returned no 'rows' (got {sorted(out)})"
        )
    return out


def _run_report(ctx: StageContext, stage, inputs) -> dict:
    from repro.pipeline.report import ExperimentResult

    source = None
    for need in stage.needs:
        payload = inputs.get(need) or {}
        if "rows" in payload:
            source = payload
            break
    if source is None:
        raise_spec_error(
            f"report stage {stage.name!r} needs an upstream stage that "
            "produced rows (analysis/evaluate/predict)"
        )
    result = ExperimentResult(
        experiment=stage.params.get("experiment", ctx.spec_name),
        title=stage.params.get("title") or source.get("title", ctx.spec_name),
        scale=ctx.scale.name,
        headers=list(source.get("headers", [])),
        rows=list(source["rows"]),
        notes=list(source.get("notes", [])),
        metrics=dict(source.get("metrics", {})),
    )
    return result.payload()


register_kind(StageKind(
    kind="dataset", run=_run_dataset,
    params=frozenset({"benchmarks", "configs", "count", "instructions",
                      "isa"}),
    required=frozenset({"benchmarks"}),
))
register_kind(StageKind(
    kind="train", run=_run_train,
    params=frozenset({"benchmarks", "family", "arch", "epochs", "isa"}),
    required=frozenset({"benchmarks"}),
))
register_kind(StageKind(
    kind="evaluate", run=_run_evaluate,
    params=frozenset({"benchmarks", "isa"}),
    required=frozenset({"benchmarks"}),
))
register_kind(StageKind(
    kind="predict", run=_run_predict,
    params=frozenset({"benchmarks", "isa"}),
    required=frozenset({"benchmarks"}),
))
register_kind(StageKind(
    kind="analysis", run=_run_analysis,
    params=frozenset({"fn"}),
    required=frozenset({"fn"}),
    open_params=True,
))
register_kind(StageKind(
    kind="report", run=_run_report,
    params=frozenset({"experiment", "title"}),
))
