"""Queue worker: claim a stage, execute it, publish the artifact.

One worker process serves any number of pipeline runs: it loops claiming
tasks from the shared :class:`~repro.pipeline.queue.WorkQueue`, rebuilds
the stage from the task message (stage spec fragment + scale name +
upstream artifact *keys* — payloads are re-read from the shared
:class:`~repro.pipeline.artifacts.StageArtifactStore`, which is what
makes a task self-contained), executes it, and publishes the result with
first-writer-wins semantics.  A daemon heartbeat thread refreshes the
lease while the stage runs; if the worker is SIGKILLed, the heartbeat
stops with it and the lease expires, so another worker steals the task.

Workers run in three shapes off this one loop:

* spawned children of the coordinator (``QueueBackend(workers=N)``),
  via :class:`repro.runtime.workers.WorkerProcess`;
* standalone CLI processes — ``repro pipeline worker`` — on any host
  sharing the cache root;
* inline in the current process (tests, drain helpers).

``REPRO_PIPELINE_MODULES`` (``os.pathsep``-separated module names or
``.py`` file paths) is imported at startup so user analyses registered
outside the preset modules are available in spawned workers.
"""

from __future__ import annotations

import importlib
import importlib.util
import os
import sys
import threading
import time
import traceback
from dataclasses import dataclass, field

from repro import obs
from repro.pipeline.artifacts import StageArtifactStore
from repro.pipeline.queue import (
    DEFAULT_LEASE_TTL_S,
    Claim,
    WorkQueue,
    default_worker_id,
)

#: Extra modules (names or file paths) imported before executing stages.
MODULES_ENV = "REPRO_PIPELINE_MODULES"


def load_extra_modules(value: str | None = None) -> list[str]:
    """Import every entry of ``REPRO_PIPELINE_MODULES``; returns names.

    Entries are dotted module names or paths to ``.py`` files.  File
    paths cover the common test/plugin case where the defining module is
    not importable from the worker's ``sys.path``.
    """
    value = value if value is not None else os.environ.get(MODULES_ENV, "")
    loaded = []
    for entry in filter(None, (e.strip() for e in value.split(os.pathsep))):
        if entry.endswith(".py") or os.path.sep in entry:
            name = os.path.splitext(os.path.basename(entry))[0]
            if name in sys.modules:
                loaded.append(name)
                continue
            spec = importlib.util.spec_from_file_location(name, entry)
            if spec is None or spec.loader is None:
                raise ImportError(f"cannot load pipeline module {entry!r}")
            module = importlib.util.module_from_spec(spec)
            sys.modules[name] = module
            spec.loader.exec_module(module)
            loaded.append(name)
        else:
            importlib.import_module(entry)
            loaded.append(entry)
    return loaded


@dataclass
class WorkerStats:
    """Lifetime counters for one worker, mirrored to ``stats/<id>.json``."""

    worker: str
    claimed: int = 0
    executed: int = 0
    stolen: int = 0
    dedup_skips: int = 0
    failures: int = 0
    busy_s: float = 0.0
    started_at: float = field(default_factory=time.time)

    def as_dict(self) -> dict:
        return {
            "worker": self.worker,
            "claimed": self.claimed,
            "executed": self.executed,
            "stolen": self.stolen,
            "dedup_skips": self.dedup_skips,
            "failures": self.failures,
            "busy_s": round(self.busy_s, 6),
            "started_at": self.started_at,
            "updated_at": time.time(),
        }


def execute_task(
    task: dict, store: StageArtifactStore
) -> tuple[dict, float, float]:
    """Run one task's stage; returns ``(payload, seconds, cpu_seconds)``.

    ``seconds`` is wall time, ``cpu_seconds`` this process's CPU time
    over the same window — both are persisted on the stage record so
    sweeps can tell "slow because busy" from "slow because waiting".

    Upstream payloads are resolved from the artifact store by key — the
    coordinator only enqueues a task once every upstream key has been
    published, so a miss here means the shared store was tampered with.
    """
    import repro.pipeline.presets  # noqa: F401 — registers preset analyses

    from repro.experiments.common import ScaleConfig, get_scale
    from repro.pipeline.spec import StageSpec
    from repro.pipeline.stages import STAGE_KINDS, StageContext

    fragment = task["stage"]
    stage = StageSpec(
        name=fragment["name"], kind=fragment["kind"],
        needs=tuple(fragment.get("needs", ())),
        params=fragment.get("params", {}),
    )
    raw_scale = task["scale"]
    ctx = StageContext(
        scale=(get_scale(raw_scale) if isinstance(raw_scale, str)
               else ScaleConfig(**raw_scale)),
        spec_name=task.get("spec", "?"),
        cache_dir=None,  # workers resolve REPRO_CACHE_DIR like everyone
        results_dir=None,
        jobs=int(task.get("jobs", 1)),
    )
    inputs = {}
    for name, dep_key in dict(task.get("upstream", {})).items():
        record = store.get(dep_key)
        if record is None:
            raise RuntimeError(
                f"stage {stage.name!r} needs upstream artifact {dep_key} "
                f"({name!r}), which is not in the store at {store.root}"
            )
        inputs[name] = record["payload"]
    start = time.perf_counter()
    cpu_start = time.process_time()
    payload = STAGE_KINDS[stage.kind].run(ctx, stage, inputs)
    return (
        payload,
        time.perf_counter() - start,
        time.process_time() - cpu_start,
    )


def _heartbeat_loop(queue: WorkQueue, claim: Claim,
                    stop: threading.Event) -> None:
    interval = max(queue.lease_ttl_s / 4.0, 0.02)
    while not stop.wait(interval):
        queue.heartbeat(claim)


def run_claim(queue: WorkQueue, store: StageArtifactStore, claim: Claim,
              stats: WorkerStats, worker_id: str) -> None:
    """Execute one claimed task end to end (dedup, heartbeat, publish)."""
    task = claim.task
    # the coordinator's trace context rides the task file; popping it
    # here parents this worker's stage span on the coordinator's run
    # span (and keeps the wire key out of the stage identity)
    ctx = obs.extract_message(task)
    force = bool(task.get("force"))
    if not force and store.get(claim.key) is not None:
        # someone else (a racing thief, or a previous run) already
        # published this key — drop our claim without executing
        queue.complete(claim)
        stats.dedup_skips += 1
        return
    stop = threading.Event()
    heartbeat = threading.Thread(
        target=_heartbeat_loop, args=(queue, claim, stop), daemon=True
    )
    heartbeat.start()
    try:
        stage = task["stage"]
        with obs.span(
            "stage.run", parent=ctx, stage=stage["name"],
            kind=stage["kind"], key=claim.key, worker=worker_id,
            stolen=claim.stolen,
        ):
            payload, seconds, cpu_seconds = execute_task(task, store)
        store.put(
            claim.key, stage["name"], stage["kind"], task.get("spec", "?"),
            payload, seconds=seconds, cpu_seconds=cpu_seconds,
            worker=worker_id, overwrite=force,
        )
    except Exception:
        stop.set()
        heartbeat.join()
        queue.fail(claim, traceback.format_exc())
        stats.failures += 1
        return
    stop.set()
    heartbeat.join()
    queue.complete(claim)
    stats.executed += 1
    stats.busy_s += seconds


def run_worker(
    root: str | None = None,
    worker_id: str | None = None,
    store: StageArtifactStore | None = None,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    poll_s: float = 0.05,
    idle_timeout_s: float | None = None,
    max_tasks: int | None = None,
    stop_on_sentinel: bool = True,
) -> WorkerStats:
    """The worker main loop; returns this worker's final counters.

    Exits when the queue's stop sentinel appears (``stop_on_sentinel``),
    after ``idle_timeout_s`` seconds without claimable work (``None``:
    wait forever), or after ``max_tasks`` claims.
    """
    load_extra_modules()
    queue = WorkQueue(root, lease_ttl_s=lease_ttl_s)
    queue.ensure()
    store = store or StageArtifactStore()
    worker_id = worker_id or default_worker_id()
    stats = WorkerStats(worker=worker_id)
    queue.write_stats(worker_id, stats.as_dict())
    idle_since = time.monotonic()
    while True:
        if stop_on_sentinel and queue.stopped():
            break
        if max_tasks is not None and stats.claimed >= max_tasks:
            break
        claim = queue.claim(worker_id)
        if claim is None:
            if (idle_timeout_s is not None
                    and time.monotonic() - idle_since > idle_timeout_s):
                break
            time.sleep(poll_s)
            continue
        stats.claimed += 1
        if claim.stolen:
            stats.stolen += 1
        run_claim(queue, store, claim, stats, worker_id)
        queue.write_stats(worker_id, stats.as_dict())
        idle_since = time.monotonic()
    queue.write_stats(worker_id, stats.as_dict())
    return stats


def worker_entry(conn, root: str, worker_id: str, options: dict) -> None:
    """Spawn target for coordinator-managed workers (WorkerProcess)."""
    conn.close()  # lifecycle is filesystem-driven (stop sentinel)
    run_worker(root=root, worker_id=worker_id, **options)
