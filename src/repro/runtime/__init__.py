"""Parallel execution layer for simulation fan-out and experiment runs.

Everything expensive in this reproduction is embarrassingly parallel: one
trace is timed on every sampled microarchitecture (Sec. IV-B
"representation reuse"), and the experiments of Figs. 3-8 are independent
once the shared dataset cache is warm.  This package provides the process
pool that exploits that:

* :mod:`~repro.runtime.pool` — :class:`ParallelMap`, a chunked
  ``ProcessPoolExecutor`` wrapper with a serial fallback, deterministic
  result ordering and worker-side exception capture.
* :mod:`~repro.runtime.progress` — :class:`ProgressReporter`, per-job
  completion lines for long fan-outs.

The ``--jobs N`` CLI flag (default: all cores) threads through here.
"""

from repro.runtime.pool import (
    JobError,
    JobResult,
    ParallelMap,
    parallel_map,
    resolve_jobs,
)
from repro.runtime.progress import NULL_PROGRESS, ProgressReporter

__all__ = [
    "JobError",
    "JobResult",
    "ParallelMap",
    "parallel_map",
    "resolve_jobs",
    "ProgressReporter",
    "NULL_PROGRESS",
]
