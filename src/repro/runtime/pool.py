"""Chunked process-pool map with a serial fallback.

:class:`ParallelMap` is the single execution primitive used by dataset
construction (:mod:`repro.features.dataset`) and the experiment runner
(:mod:`repro.experiments.registry`).  Design constraints:

* **Determinism** — results come back in input order regardless of worker
  scheduling, so parallel and serial runs are interchangeable.
* **Serial fallback** — ``jobs=1`` runs in-process with no executor, no
  pickling and no subprocesses; the test suite and single-core boxes pay
  zero overhead.
* **Worker-side exception capture** — a failing job is returned as a
  :class:`JobResult` carrying the formatted worker traceback instead of
  poisoning the pool; callers either get a :class:`JobError` (default) or
  the raw per-job results (``return_errors=True``).
* **Chunking** — work items are submitted in contiguous chunks so that
  per-task IPC overhead amortizes and workers keep benchmark locality
  (consecutive jobs usually share a trace).

Job functions must be picklable top-level callables and must not depend on
mutable global state: they may run in a fresh process.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.runtime.progress import NULL_PROGRESS, ProgressReporter


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means all cores."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 1 (got {jobs})")
    return jobs


@dataclass(frozen=True)
class JobResult:
    """Outcome of one work item: exactly one of value/error is meaningful."""

    index: int
    value: Any = None
    error: str | None = None  # formatted worker traceback

    @property
    def ok(self) -> bool:
        return self.error is None


class JobError(RuntimeError):
    """A job raised in a worker; carries the worker-side traceback."""

    def __init__(self, index: int, item: Any, worker_traceback: str):
        self.index = index
        self.item = item
        self.worker_traceback = worker_traceback
        super().__init__(
            f"job {index} ({item!r}) failed in worker:\n{worker_traceback}"
        )


def _run_chunk(
    fn: Callable[[Any], Any], chunk: Sequence[tuple[int, Any]]
) -> list[JobResult]:
    """Execute one chunk of (index, item) pairs, capturing per-job errors."""
    results = []
    for index, item in chunk:
        try:
            results.append(JobResult(index=index, value=fn(item)))
        except Exception:
            results.append(JobResult(index=index, error=traceback.format_exc()))
    return results


def _chunked(
    pairs: list[tuple[int, Any]], jobs: int, chunksize: int | None
) -> list[list[tuple[int, Any]]]:
    if chunksize is None:
        # ~4 chunks per worker bounds idle tail time without flooding the
        # task queue; chunks stay contiguous to preserve benchmark locality.
        chunksize = max(1, len(pairs) // (jobs * 4) or 1)
    return [pairs[i : i + chunksize] for i in range(0, len(pairs), chunksize)]


class ParallelMap:
    """Map a picklable function over items, serially or across processes.

    Parameters
    ----------
    jobs:
        Worker count; ``None``/``0`` resolves to ``os.cpu_count()``, ``1``
        runs serially in-process.
    chunksize:
        Items per submitted task (parallel mode only).  Default: enough
        for ~4 chunks per worker.
    progress:
        A :class:`~repro.runtime.progress.ProgressReporter`; defaults to
        the silent reporter.
    """

    def __init__(
        self,
        jobs: int | None = 1,
        chunksize: int | None = None,
        progress: ProgressReporter | None = None,
    ):
        self.jobs = resolve_jobs(jobs)
        self.chunksize = chunksize
        self.progress = progress or NULL_PROGRESS

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        return_errors: bool = False,
        labels: Sequence[str] | None = None,
    ) -> list[Any]:
        """Apply ``fn`` to every item; results ordered like ``items``.

        With ``return_errors=False`` (default) the first failed job —
        first by *input order*, not completion order — raises
        :class:`JobError` after all work finishes.  With
        ``return_errors=True`` the full :class:`JobResult` list is
        returned and the caller triages.
        """
        pairs = list(enumerate(items))
        if labels is not None and len(labels) != len(pairs):
            raise ValueError("labels must match items length")

        if self.jobs == 1 or len(pairs) <= 1:
            results = self._map_serial(fn, pairs, labels)
        else:
            results = self._map_parallel(fn, pairs, labels)

        if return_errors:
            return results
        for res in results:
            if not res.ok:
                raise JobError(res.index, pairs[res.index][1], res.error)
        return [res.value for res in results]

    def _map_serial(
        self,
        fn: Callable[[Any], Any],
        pairs: list[tuple[int, Any]],
        labels: Sequence[str] | None,
    ) -> list[JobResult]:
        results = []
        for index, item in pairs:
            (result,) = _run_chunk(fn, [(index, item)])
            results.append(result)
            self._report(result, pairs, labels)
        return results

    def _map_parallel(
        self,
        fn: Callable[[Any], Any],
        pairs: list[tuple[int, Any]],
        labels: Sequence[str] | None,
    ) -> list[JobResult]:
        results: list[JobResult | None] = [None] * len(pairs)
        chunks = _chunked(pairs, self.jobs, self.chunksize)
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            pending = {pool.submit(_run_chunk, fn, chunk) for chunk in chunks}
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    for result in future.result():
                        results[result.index] = result
                        self._report(result, pairs, labels)
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def _report(
        self,
        result: JobResult,
        pairs: list[tuple[int, Any]],
        labels: Sequence[str] | None,
    ) -> None:
        if labels is not None:
            label = labels[result.index]
        else:
            label = repr(pairs[result.index][1])
        self.progress.task_done(label, ok=result.ok)


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    jobs: int | None = 1,
    chunksize: int | None = None,
    progress: ProgressReporter | None = None,
    return_errors: bool = False,
    labels: Sequence[str] | None = None,
) -> list[Any]:
    """One-shot convenience wrapper around :class:`ParallelMap`."""
    pool = ParallelMap(jobs=jobs, chunksize=chunksize, progress=progress)
    return pool.map(fn, items, return_errors=return_errors, labels=labels)
