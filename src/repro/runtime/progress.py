"""Per-job completion reporting for long parallel fan-outs.

A :class:`ProgressReporter` prints one line per finished job::

    [  3/42] sim 505.mcf @ ooo-7            12.4s
    [  4/42] sim 519.lbm @ inorder-1 FAILED 13.0s

It is deliberately dumb — no curses, no redraw — so the output survives
log files, CI capture and pytest ``-s`` alike.  The module-level
:data:`NULL_PROGRESS` singleton swallows everything and is the default
everywhere, keeping library call sites quiet unless a CLI opts in.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import TextIO


class ProgressReporter:
    """Thread-safe counter that prints a completion line per job."""

    def __init__(
        self,
        total: int,
        prefix: str = "",
        stream: TextIO | None = None,
        enabled: bool = True,
    ):
        self.total = total
        self.prefix = prefix
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self._done = 0
        self._start = time.perf_counter()
        self._lock = threading.Lock()

    @property
    def done(self) -> int:
        return self._done

    def task_done(self, label: str, ok: bool = True) -> None:
        """Record one finished job and print its completion line."""
        with self._lock:
            self._done += 1
            done = self._done
        if not self.enabled:
            return
        elapsed = time.perf_counter() - self._start
        width = len(str(self.total)) if self.total else 1
        status = "" if ok else " FAILED"
        self.stream.write(
            f"{self.prefix}[{done:>{width}}/{self.total}] "
            f"{label}{status} {elapsed:.1f}s\n"
        )
        self.stream.flush()

    def note(self, message: str) -> None:
        """Print a free-form status line (queue depth, worker counts...).

        Notes do not advance the counter — they exist so long-running
        coordinators (the pipeline queue backend) can report liveness
        between task completions instead of going silent.
        """
        if not self.enabled:
            return
        with self._lock:
            self.stream.write(f"{self.prefix}{message}\n")
            self.stream.flush()


class _NullProgress(ProgressReporter):
    """Reporter that records nothing and prints nothing."""

    def __init__(self):
        super().__init__(total=0, enabled=False)

    def task_done(self, label: str, ok: bool = True) -> None:  # noqa: ARG002
        pass


#: Shared silent reporter (safe: it holds no state).
NULL_PROGRESS = _NullProgress()
