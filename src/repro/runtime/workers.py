"""Long-lived message-passing worker processes.

:class:`~repro.runtime.pool.ParallelMap` covers run-to-completion
fan-out; the serving cluster instead needs *resident* workers that hold
warm model/feature caches and answer a stream of messages over a pipe.
:class:`WorkerProcess` is that primitive: a spawned child process plus
the parent end of a duplex pipe, with explicit lifecycle control
(including an ungraceful :meth:`kill` for crash-recovery tests).

The ``spawn`` start method is used unconditionally: the parent runs
threads (lane senders, pipe readers, the dispatcher watchdog), and
forking a threaded process can deadlock the child on locks held by
threads that do not survive the fork.  Spawned children re-import the
code fresh, so ``target`` must be a module-level function.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection


def mp_context():
    """The multiprocessing context for resident workers (``spawn``)."""
    return multiprocessing.get_context("spawn")


class WorkerProcess:
    """One resident child process speaking over a duplex pipe.

    ``target`` (module-level, picklable) is called in the child as
    ``target(conn, *args)`` where ``conn`` is the child end of the pipe.
    The parent talks through :meth:`send` / :meth:`recv`.  Callers
    manage their own threading: :meth:`send` from one thread and
    :meth:`recv` from another is safe (a duplex pipe's directions are
    independent), but concurrent sends are not.
    """

    def __init__(self, target, args: tuple = (), name: str | None = None):
        from repro.obs.trace import inject_env

        ctx = mp_context()
        parent, child = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=target, args=(child, *args), name=name, daemon=True
        )
        # spawn snapshots os.environ at start(): export the current
        # trace context for the child's lifetime, then restore ours, so
        # the child's root spans join the spawning trace
        restore = inject_env()
        try:
            self.process.start()
        finally:
            restore()
        child.close()  # the child's end lives in the child now
        self.conn: multiprocessing.connection.Connection = parent

    @property
    def pid(self) -> int | None:
        return self.process.pid

    def is_alive(self) -> bool:
        return self.process.is_alive()

    def send(self, message) -> None:
        """Ship one picklable message (raises ``OSError`` when dead)."""
        self.conn.send(message)

    def recv(self):
        """Block for the next message (raises ``EOFError`` when dead)."""
        return self.conn.recv()

    def kill(self) -> None:
        """SIGKILL the child — the crash-injection hook; no cleanup runs."""
        self.process.kill()
        self.process.join()

    def stop(self, shutdown_message=None, timeout_s: float = 5.0) -> None:
        """Graceful stop: optional farewell message, join, then escalate."""
        if shutdown_message is not None:
            try:
                self.conn.send(shutdown_message)
            except (OSError, BrokenPipeError):
                pass
        self.process.join(timeout=timeout_s)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.kill()
            self.process.join()
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


__all__ = ["WorkerProcess", "mp_context"]
