"""Model serving: batched prediction as a long-lived service.

* :mod:`~repro.serving.service` — :class:`PredictionService`: hot models
  and feature streams in LRU caches, a micro-batching request queue, and
  batched no-grad inference underneath (every queued request shares one
  engine pass per batch).
* :mod:`~repro.serving.dispatch` — :class:`Dispatcher`: per-model
  routing, bounded queues with timeout/rejection, request hedging and
  crash fail-over across worker lanes (transport-agnostic).
* :mod:`~repro.serving.cluster` — :class:`PredictionCluster`: N worker
  processes (each a ``PredictionService`` over mmap-shared weights)
  behind one dispatcher, with graceful model hot-swap.
* :mod:`~repro.serving.http` — a dependency-free HTTP/JSON endpoint over
  either backend (``repro serve [--workers N]``).
"""

from repro.serving.dispatch import (
    Dispatcher,
    DispatchPolicy,
    NoWorkersAvailable,
    QueueFull,
    RequestTimeout,
    ServingUnavailable,
    WorkerError,
)
from repro.serving.service import (
    PredictionService,
    ServeRequest,
    ServeResult,
)
from repro.serving.cluster import PredictionCluster
from repro.serving.http import make_server, run_server

__all__ = [
    "Dispatcher",
    "DispatchPolicy",
    "NoWorkersAvailable",
    "PredictionCluster",
    "PredictionService",
    "QueueFull",
    "RequestTimeout",
    "ServeRequest",
    "ServeResult",
    "ServingUnavailable",
    "WorkerError",
    "make_server",
    "run_server",
]
