"""Model serving: batched prediction as a long-lived service.

* :mod:`~repro.serving.service` — :class:`PredictionService`: hot models
  and feature streams in LRU caches, a micro-batching request queue, and
  batched no-grad inference underneath (every queued request shares one
  engine pass per batch).
* :mod:`~repro.serving.http` — a dependency-free HTTP/JSON endpoint over
  the service (``repro serve``).
"""

from repro.serving.service import (
    PredictionService,
    ServeRequest,
    ServeResult,
)
from repro.serving.http import make_server, run_server

__all__ = [
    "PredictionService",
    "ServeRequest",
    "ServeResult",
    "make_server",
    "run_server",
]
