"""Multi-worker prediction cluster: N processes, one dispatcher.

Topology::

    clients -> PredictionCluster.submit
                 |  resolve family -> concrete artifact id (routes table)
                 v
               Dispatcher (repro.serving.dispatch)
                 |  per-model rendezvous routing, bounded lanes,
                 |  timeout/rejection, hedging, fail-over
                 v
               worker processes (repro.runtime.workers.WorkerProcess)
                 each: PredictionService(mmap=True) answering batches

Workers load model weights with ``mmap=True`` — read-only views over
the artifact's extracted ``.npy`` sidecar — so all N processes share
**one** physical copy of each model through the OS page cache instead of
N private copies.

**Routing is by concrete artifact id.**  The frontend resolves a
request's family to an artifact id *once, at submit time* (the routes
table), and ships the pinned id to the worker.  Workers never resolve
"newest" themselves, which is what makes :meth:`PredictionCluster.swap`
atomic: a model hot-swap preloads the new artifact on every worker
(register), waits for every acknowledgement (drain — in-flight requests
keep their old pinned id and finish against the old model), then
switches the routes entry in one assignment.  No request can ever
observe a half-loaded model: every request is answered entirely by the
artifact id it was pinned to.

Crash recovery: a worker that dies mid-request is detected by its pipe
reader (EOF); the dispatcher re-dispatches everything the worker owed to
the survivors and the cluster spawns a replacement.  :meth:`kill_worker`
exposes that failure path to tests (SIGKILL, no cleanup).
"""

from __future__ import annotations

import dataclasses
import threading
from concurrent.futures import Future

from repro import obs
from repro.api import Session
from repro.serving.dispatch import (
    Dispatcher,
    DispatchPolicy,
    WorkerError,
    WorkerLink,
)
from repro.serving.service import (
    PredictionService,
    ServeRequest,
    ServeResult,
)

#: Worker error classification -> HTTP status at the frontend.
ERROR_STATUS = {"not-found": 404, "bad-request": 400, "internal": 500}


def _classify(exc: Exception) -> str:
    """Map a worker-side exception to a wire error kind."""
    from repro.core.errors import PredictionError, UnknownBenchmarkError
    from repro.models import StoreError

    if isinstance(exc, (UnknownBenchmarkError, StoreError, KeyError)):
        return "not-found"
    if isinstance(exc, (PredictionError, TypeError, ValueError)):
        return "bad-request"
    return "internal"


def _worker_main(conn, options: dict) -> None:
    """Worker process entry point (module-level: spawn pickles it).

    Wire protocol (tuples, first element tags the kind)::

        parent -> worker: ("predict", [(rid, request dict), ...])
                          ("ctl", cid, {"op": ...})
                          ("stop",)
        worker -> parent: ("ok", rid, result dict)
                          ("err", rid, kind, message)
                          ("ctl-ok", cid, payload) / ("ctl-err", cid, msg)
    """
    service = PredictionService(
        scale=options["scale"],
        cache_dir=options["cache_dir"],
        model_cache=options["model_cache"],
        feature_cache=options["feature_cache"],
        mmap=options["mmap"],
        jit=options.get("jit"),
    )
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        kind = message[0]
        if kind == "stop":
            conn.close()
            return
        if kind == "ctl":
            _, cid, payload = message
            conn.send(_handle_control(service, cid, payload))
            continue
        # ("predict", items) — parse failures answer per request, the
        # parseable remainder runs through the service's per-request
        # error-isolating batch path.
        parsed: list[tuple[int, ServeRequest]] = []
        parent = None
        for rid, payload in message[1]:
            # the frontend's trace context rides the envelope; pop it
            # before schema validation and parent this worker's span on
            # it so the request stitches across the process boundary
            ctx = obs.extract_message(payload)
            parent = parent or ctx
            try:
                parsed.append((rid, ServeRequest.from_dict(payload)))
            except (ValueError, TypeError) as exc:
                conn.send(("err", rid, "bad-request", str(exc)))
        with obs.span(
            "worker.predict", parent=parent, requests=len(parsed),
        ):
            outcomes = service.predict_each([req for _, req in parsed])
        for (rid, _), outcome in zip(parsed, outcomes):
            if isinstance(outcome, Exception):
                conn.send(
                    ("err", rid, _classify(outcome), str(outcome))
                )
            else:
                conn.send(("ok", rid, outcome.to_dict()))


def _handle_control(service: PredictionService, cid: int, payload: dict):
    import os

    op = payload.get("op")
    try:
        if op == "ping":
            return ("ctl-ok", cid, {"pid": os.getpid()})
        if op == "stats":
            # the worker's own service counters — including its jit
            # section, so the frontend can report whether this process
            # answered from compiled or reference kernels
            return ("ctl-ok", cid, service.stats())
        if op == "metrics":
            # this worker's registry snapshot; the frontend merges it
            # into /v1/metrics under a {"worker": id} label
            return ("ctl-ok", cid, obs.metrics_snapshot())
        if op == "swap":
            # preload: after the ack this artifact is warm in the LRU,
            # so switching the route never serves a cold/partial model
            artifact_id, model = service.model(
                family=payload["family"], artifact=payload["artifact"]
            )
            return ("ctl-ok", cid, {
                "artifact": artifact_id, "family": model.family,
            })
        return ("ctl-err", cid, f"unknown control op {op!r}")
    except Exception as exc:
        return ("ctl-err", cid, f"{type(exc).__name__}: {exc}")


class _PipeLink(WorkerLink):
    """Dispatcher-facing transport over one worker's pipe."""

    def __init__(self, proc):
        self.proc = proc

    def send_requests(self, items: list) -> None:
        self.proc.send(("predict", items))

    def send_control(self, cid: int, payload: dict) -> None:
        self.proc.send(("ctl", cid, payload))

    def close(self) -> None:
        try:
            self.proc.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


class PredictionCluster:
    """N resident worker processes behind one dispatching frontend.

    Offers the same ``submit``/``predict`` surface as
    :class:`PredictionService`, so the HTTP frontend and the load
    harness drive either interchangeably.
    """

    def __init__(
        self,
        workers: int = 2,
        scale: str = "bench",
        cache_dir: str | None = None,
        session: Session | None = None,
        policy: DispatchPolicy | None = None,
        model_cache: int = 4,
        feature_cache: int = 64,
        mmap: bool = True,
        jit: bool | None = None,
    ):
        if workers < 1:
            raise ValueError("a cluster needs at least one worker")
        self.session = session or Session(
            scale=scale, cache_dir=cache_dir, jit=jit
        )
        self.workers = workers
        self._options = {
            "scale": self.session.scale.name,
            "cache_dir": self.session.cache_dir,
            "model_cache": model_cache,
            "feature_cache": feature_cache,
            "mmap": mmap,
            # None defers to the REPRO_JIT environment the worker
            # inherits; True/False pins the compiled tier per worker
            "jit": self.session.jit,
        }
        self.dispatcher = Dispatcher(
            policy=policy, on_worker_lost=self._on_worker_lost
        )
        self._lock = threading.Lock()
        self._procs: dict[int, object] = {}
        self._readers: dict[int, threading.Thread] = {}
        self._routes: dict[str, str] = {}  # family -> pinned artifact id
        self._closing = False
        self._started = False

    # -- lifecycle --------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker processes (idempotent)."""
        with self._lock:
            if self._started:
                return
            self._started = True
        for _ in range(self.workers):
            self._spawn_worker()

    def stop(self) -> None:
        """Fail pending requests, stop workers, join readers."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
            procs = dict(self._procs)
            readers = dict(self._readers)
            self._procs.clear()
            self._readers.clear()
        self.dispatcher.close()
        for proc in procs.values():
            proc.stop(shutdown_message=("stop",))
        for reader in readers.values():
            reader.join(timeout=5.0)

    def __enter__(self) -> "PredictionCluster":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- serving ----------------------------------------------------------
    def submit(self, request: ServeRequest) -> Future:
        """Dispatch one request; the future resolves to a
        :class:`ServeResult` (or raises — see
        :mod:`repro.serving.dispatch` for the 503 family)."""
        self.start()
        artifact = request.artifact or self._route(request.family)
        concrete = (
            request if request.artifact == artifact
            else dataclasses.replace(request, artifact=artifact)
        )
        key = (concrete.family, concrete.artifact)
        # stamp the current trace context onto the envelope so the
        # worker's spans join this request's trace (multi-process stitch)
        payload = obs.inject_message(concrete.to_dict())
        return self.dispatcher.submit(payload, key=key)

    def predict(
        self, request: ServeRequest, timeout: float | None = None
    ) -> ServeResult:
        return self.submit(request).result(timeout=timeout)

    def _route(self, family: str) -> str:
        with self._lock:
            pinned = self._routes.get(family)
        if pinned is not None:
            return pinned
        resolved = self.session.resolve_artifact(family)
        with self._lock:
            return self._routes.setdefault(family, resolved)

    # -- hot swap ---------------------------------------------------------
    def swap(
        self, artifact: str, family: str | None = None,
        timeout_s: float = 60.0,
    ) -> dict:
        """Atomically switch a family's route to ``artifact``.

        Register (verify the artifact exists), preload it on every
        worker, await every acknowledgement, then switch the route in
        one assignment.  In-flight requests finish against the artifact
        they were pinned to; a preload failure on any worker leaves the
        route unchanged.
        """
        manifest = self.session.store.manifest(artifact)
        family = family or manifest["family"]
        if manifest["family"] != family:
            raise ValueError(
                f"artifact {artifact!r} is family "
                f"{manifest['family']!r}, not {family!r}"
            )
        self.start()
        acks = [
            self.dispatcher.control(
                wid, {"op": "swap", "family": family, "artifact": artifact}
            )
            for wid in self.dispatcher.alive_workers()
        ]
        for ack in acks:
            ack.result(timeout=timeout_s)  # raises -> route unchanged
        with self._lock:
            previous = self._routes.get(family)
            self._routes[family] = artifact
        return {
            "family": family, "artifact": artifact,
            "previous": previous, "workers": len(acks),
        }

    # -- fault injection / introspection ----------------------------------
    def kill_worker(self, worker_id: int | None = None) -> int:
        """SIGKILL one worker (default: lowest alive id) — chaos hook.

        Returns the killed worker's id.  Recovery is automatic: the
        pipe reader sees EOF, the dispatcher fails over the worker's
        requests, and a replacement spawns.
        """
        with self._lock:
            if worker_id is None:
                if not self._procs:
                    raise RuntimeError("no workers to kill")
                worker_id = min(self._procs)
            proc = self._procs[worker_id]
        proc.kill()
        return worker_id

    def stats(self, worker_timeout_s: float = 2.0) -> dict:
        with self._lock:
            pids = {
                str(wid): proc.pid for wid, proc in sorted(self._procs.items())
            }
            routes = dict(self._routes)
        return {
            **self.dispatcher.stats(),
            "worker_pids": pids,
            "routes": routes,
            "worker_stats": self._collect_worker_stats(worker_timeout_s),
        }

    def worker_metrics(self, timeout_s: float = 2.0) -> dict:
        """Per-worker metrics snapshots keyed by worker id.

        Fans the ``metrics`` control op out to every live worker; a
        worker that dies or stalls is simply absent from the result —
        ``/v1/metrics`` renders whatever answered.
        """
        if not self._started:
            return {}
        acks = [
            (wid, self.dispatcher.control(wid, {"op": "metrics"}))
            for wid in self.dispatcher.alive_workers()
        ]
        collected: dict = {}
        for wid, ack in acks:
            try:
                collected[wid] = ack.result(timeout=timeout_s)
            except Exception:  # noqa: BLE001 - scrape is best-effort
                continue
        return collected

    def _collect_worker_stats(self, timeout_s: float) -> dict:
        """Best-effort per-worker service counters (jit activity included).

        Control round-trips fan out to every live worker in parallel; a
        worker that dies or stalls contributes an ``error`` entry instead
        of failing the whole stats call.
        """
        if not self._started:
            return {}
        acks = [
            (wid, self.dispatcher.control(wid, {"op": "stats"}))
            for wid in self.dispatcher.alive_workers()
        ]
        collected: dict = {}
        for wid, ack in acks:
            try:
                collected[str(wid)] = ack.result(timeout=timeout_s)
            except Exception as exc:
                collected[str(wid)] = {
                    "error": f"{type(exc).__name__}: {exc}"
                }
        return collected

    # -- internals --------------------------------------------------------
    def _spawn_worker(self) -> int:
        from repro.runtime.workers import WorkerProcess

        proc = WorkerProcess(
            _worker_main, args=(self._options,), name="repro-serve-worker"
        )
        worker_id = self.dispatcher.add_worker(_PipeLink(proc))
        reader = threading.Thread(
            target=self._read_loop, args=(worker_id, proc),
            name=f"repro-cluster-reader-{worker_id}", daemon=True,
        )
        with self._lock:
            self._procs[worker_id] = proc
            self._readers[worker_id] = reader
        reader.start()
        return worker_id

    def _read_loop(self, worker_id: int, proc) -> None:
        while True:
            try:
                message = proc.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "ok":
                self.dispatcher.complete(
                    message[1], ServeResult.from_dict(message[2])
                )
            elif kind == "err":
                _, rid, ekind, text = message
                self.dispatcher.fail(
                    rid,
                    WorkerError(
                        ekind, text, ERROR_STATUS.get(ekind, 500)
                    ),
                )
            elif kind == "ctl-ok":
                self.dispatcher.control_reply(message[1], True, message[2])
            elif kind == "ctl-err":
                self.dispatcher.control_reply(message[1], False, message[2])
        if not self._closing:
            self.dispatcher.worker_lost(worker_id)

    def _on_worker_lost(self, worker_id: int) -> None:
        with self._lock:
            if self._closing:
                return
            proc = self._procs.pop(worker_id, None)
            self._readers.pop(worker_id, None)
        if proc is not None:
            proc.stop(timeout_s=1.0)  # reap the corpse
        if not self._closing:
            self._spawn_worker()


__all__ = ["ERROR_STATUS", "PredictionCluster"]
