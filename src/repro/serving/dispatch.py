"""Front-end request dispatcher: shard, bound, hedge, fail over.

The :class:`Dispatcher` is the traffic-control half of the prediction
cluster (:mod:`repro.serving.cluster` owns the processes).  It is
transport-agnostic: workers appear as :class:`WorkerLink` objects that
can ship request batches and control messages somewhere, and whatever
owns the transport feeds replies back through :meth:`Dispatcher.complete`
/ :meth:`Dispatcher.fail` / :meth:`Dispatcher.worker_lost`.  That makes
every policy below unit-testable with in-process fake workers — no
subprocesses required.

Policies (one :class:`DispatchPolicy`):

* **bounded queues** — each worker has a lane bounded at
  ``queue_depth`` outstanding requests.  A request that finds every
  candidate lane full is rejected *immediately* with :class:`QueueFull`
  (a 503, not a hang); a request that waits past ``queue_timeout_s``
  without an answer — queued or in flight — is failed with
  :class:`RequestTimeout`.  Backpressure therefore costs bounded memory
  and bounded client latency, never an unbounded queue.
* **per-model routing** — requests are routed by model key (family,
  artifact) with rendezvous hashing over the alive workers, restricted
  to ``replicas`` candidates per key, least-loaded first.  One model's
  traffic concentrates on a few workers, so worker-side model LRUs stay
  hot instead of thrashing.
* **LRU admission** — at most ``admission`` distinct model keys are
  admitted concurrently; a key beyond that evicts the least-recently
  used *idle* key or is rejected with :class:`QueueFull`, protecting
  workers from model-cache thrash under adversarial key mixes.
* **hedging** — when ``hedge_after_s`` is set, a request still
  unanswered after that long is duplicated onto the next-best worker;
  the first reply wins and the loser is discarded.  Tail latency then
  tracks the *fastest* of two workers instead of a straggler.
* **fail-over** — when a worker dies (transport EOF), every request
  queued on or in flight to it is transparently re-dispatched to a
  surviving worker; requests are lost only when no workers remain.

The lane sender threads micro-batch: up to ``max_batch`` queued
requests ship as one message, and a new batch is sent only when the
previous one has drained, so a slow worker holds at most one batch in
flight while the bounded lane absorbs (or rejects) the backlog.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.obs.metrics import REGISTRY, SIZE_BUCKETS


class ServingUnavailable(RuntimeError):
    """The cluster cannot answer right now — retry later (HTTP 503)."""

    #: Hint for the HTTP frontend's ``Retry-After`` header.
    retry_after_s: float = 1.0


class QueueFull(ServingUnavailable):
    """Every candidate worker lane is at its bound (or admission is)."""


class RequestTimeout(ServingUnavailable):
    """The request aged past ``queue_timeout_s`` without an answer."""


class NoWorkersAvailable(ServingUnavailable):
    """No alive workers (all crashed, or the cluster is stopping)."""


class WorkerError(RuntimeError):
    """An error raised *inside* a worker, reconstructed at the frontend.

    ``kind`` is the worker's error classification (see
    :mod:`repro.serving.cluster`); ``status`` the HTTP status it maps
    to.
    """

    def __init__(self, kind: str, message: str, status: int = 500):
        super().__init__(message)
        self.kind = kind
        self.status = status


@dataclass(frozen=True)
class DispatchPolicy:
    """Tuning knobs for the dispatcher (defaults favour correctness)."""

    #: Max outstanding (queued + in-flight) requests per worker lane.
    queue_depth: int = 64
    #: A request unanswered for this long fails with RequestTimeout.
    queue_timeout_s: float = 30.0
    #: Duplicate a request to a second worker after this long (None: off).
    hedge_after_s: float | None = None
    #: Workers eligible per model key (rendezvous top-k).
    replicas: int = 2
    #: Requests shipped to a worker as one message.
    max_batch: int = 16
    #: Distinct model keys admitted concurrently (LRU beyond that).
    admission: int = 8
    #: Watchdog scan interval (timeouts + hedging resolution).
    watchdog_interval_s: float = 0.005


class WorkerLink:
    """Transport protocol a worker must offer the dispatcher.

    Implementations ship messages to the worker; replies come back
    through whatever reader the owner runs, which must call
    :meth:`Dispatcher.complete` / :meth:`Dispatcher.fail` /
    :meth:`Dispatcher.control_reply` / :meth:`Dispatcher.worker_lost`.
    Send methods are only ever called from the worker's single lane
    sender thread, so they need no locking of their own.  A raised
    ``OSError``/``EOFError`` marks the worker lost.
    """

    def send_requests(self, items: list) -> None:  # [(rid, payload), ...]
        raise NotImplementedError

    def send_control(self, cid: int, payload: dict) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - transport-specific
        pass


class _Entry:
    """One submitted request and its resolution state."""

    __slots__ = (
        "payload", "key", "future", "deadline", "rids", "sent_at",
        "hedged", "resolved", "created_at",
    )

    def __init__(self, payload, key, deadline):
        self.payload = payload
        self.key = key
        self.future: Future = Future()
        self.deadline = deadline
        self.rids: list[int] = []
        self.sent_at: float | None = None
        self.hedged = False
        self.resolved = False
        self.created_at = time.monotonic()


class _Lane:
    """One worker's bounded outbound queue plus its sender thread."""

    def __init__(self, worker_id: int, link: WorkerLink, dispatcher):
        self.worker_id = worker_id
        self.link = link
        self.dispatcher = dispatcher
        self.queue: deque = deque()  # (rid, _Entry)
        self.control: deque = deque()  # (cid, payload)
        self.inflight: set[int] = set()
        self.alive = True
        self.served = 0
        self.cond = threading.Condition()
        self.sender = threading.Thread(
            target=self._send_loop, name=f"repro-lane-{worker_id}",
            daemon=True,
        )
        self.sender.start()

    # load = everything this lane is responsible for right now
    def load(self) -> int:
        return len(self.queue) + len(self.inflight)

    def kill(self) -> None:
        with self.cond:
            self.alive = False
            self.cond.notify_all()

    def mark_done(self, rid: int) -> None:
        with self.cond:
            self.inflight.discard(rid)
            self.cond.notify_all()

    def _send_loop(self) -> None:
        while True:
            ctl = None
            batch: list[tuple[int, _Entry]] = []
            with self.cond:
                while self.alive:
                    if self.control:
                        ctl = self.control.popleft()
                        break
                    if self.queue and not self.inflight:
                        limit = self.dispatcher.policy.max_batch
                        while self.queue and len(batch) < limit:
                            batch.append(self.queue.popleft())
                        break
                    self.cond.wait(timeout=0.05)
                if not self.alive:
                    return
            try:
                if ctl is not None:
                    self.link.send_control(*ctl)
                    continue
                self._send_batch(batch)
            except (OSError, EOFError, BrokenPipeError):
                self.dispatcher.worker_lost(self.worker_id)
                return

    def _send_batch(self, batch: list[tuple[int, _Entry]]) -> None:
        now = time.monotonic()
        items = []
        live: list[tuple[int, _Entry]] = []
        for rid, entry in batch:
            if entry.resolved:
                self.dispatcher._drop_rid(rid)
                continue
            if now > entry.deadline:
                self.dispatcher._timeout_entry(entry)
                self.dispatcher._drop_rid(rid)
                continue
            items.append((rid, entry.payload))
            live.append((rid, entry))
        if not items:
            return
        with self.cond:
            for rid, _ in live:
                self.inflight.add(rid)
        for _, entry in live:
            if entry.sent_at is None:
                entry.sent_at = now
        self.dispatcher._batch_size.observe(len(items))
        self.link.send_requests(items)


class Dispatcher:
    """Shard requests across worker lanes under one
    :class:`DispatchPolicy` (see the module docstring for the policies).
    """

    def __init__(
        self,
        policy: DispatchPolicy | None = None,
        on_worker_lost: Callable[[int], None] | None = None,
    ):
        self.policy = policy or DispatchPolicy()
        self.on_worker_lost = on_worker_lost
        self._lock = threading.RLock()
        self._lanes: dict[int, _Lane] = {}
        self._pending: dict[int, _Entry] = {}  # rid -> entry
        self._controls: dict[int, Future] = {}  # cid -> future
        self._rid_lane: dict[int, int] = {}  # rid -> worker id
        self._next_id = 0
        self._next_worker = 0
        self._admitted: dict = {}  # model key -> outstanding count (LRU order)
        self._closing = False
        self.stats_counters = {
            "submitted": 0, "completed": 0, "failed": 0, "rejected": 0,
            "timed_out": 0, "hedged": 0, "failovers": 0,
        }
        self._event_counters = {
            kind: REGISTRY.counter(
                "repro_dispatch_events_total",
                "Dispatcher request lifecycle events by kind.",
                kind=kind,
            )
            for kind in self.stats_counters
        }
        self._latency = REGISTRY.histogram(
            "repro_dispatch_latency_seconds",
            "Request latency from submission to resolution.",
        )
        self._batch_size = REGISTRY.histogram(
            "repro_dispatch_batch_size",
            "Requests shipped to a worker per lane batch.",
            buckets=SIZE_BUCKETS,
        )
        self._pending_gauge = REGISTRY.gauge(
            "repro_dispatch_pending",
            "Requests queued or in flight right now.",
        )
        self._watchdog = threading.Thread(
            target=self._watch_loop, name="repro-dispatch-watchdog",
            daemon=True,
        )
        self._watchdog.start()

    # -- worker membership ------------------------------------------------
    def add_worker(self, link: WorkerLink, worker_id: int | None = None) -> int:
        with self._lock:
            if worker_id is None:
                worker_id = self._next_worker
            self._next_worker = max(self._next_worker, worker_id + 1)
            self._lanes[worker_id] = _Lane(worker_id, link, self)
            return worker_id

    def alive_workers(self) -> list[int]:
        with self._lock:
            return sorted(
                wid for wid, lane in self._lanes.items() if lane.alive
            )

    # -- submission -------------------------------------------------------
    def submit(self, payload, key=None) -> Future:
        """Dispatch one request payload; returns its future.

        ``key`` is the model-routing key (hashable); requests sharing a
        key concentrate on the same ``replicas`` workers.
        """
        now = time.monotonic()
        with self._lock:
            if self._closing:
                raise NoWorkersAvailable("dispatcher is shutting down")
            lanes = [lane for lane in self._lanes.values() if lane.alive]
            if not lanes:
                self._bump("rejected")
                raise NoWorkersAvailable("no alive workers")
            self._admit(key)
            entry = _Entry(payload, key, now + self.policy.queue_timeout_s)
            lane = self._pick_lane(key, lanes)
            if lane is None:
                self._unadmit(key)
                self._bump("rejected")
                raise QueueFull(
                    f"every candidate worker is at queue depth "
                    f"{self.policy.queue_depth}; retry later"
                )
            self._bump("submitted")
            self._enqueue(lane, entry)
        return entry.future

    def control(self, worker_id: int, payload: dict) -> Future:
        """Ship a control message to one worker; resolves with its reply.

        Control messages ride the worker's lane (so they serialize with
        request sends) but bypass the queue bound and never time out —
        they are the hot-swap/health channel, not client traffic.
        """
        with self._lock:
            lane = self._lanes.get(worker_id)
            if lane is None or not lane.alive:
                raise NoWorkersAvailable(f"worker {worker_id} is not alive")
            cid = self._new_id()
            future: Future = Future()
            self._controls[cid] = future
        with lane.cond:
            lane.control.append((cid, payload))
            lane.cond.notify_all()
        return future

    # -- transport callbacks ---------------------------------------------
    def complete(self, rid: int, result) -> None:
        """A worker answered request ``rid``."""
        self._finish_rid(rid, result=result)

    def fail(self, rid: int, exc: Exception) -> None:
        """A worker failed request ``rid``."""
        self._finish_rid(rid, exc=exc)

    def control_reply(self, cid: int, ok: bool, payload) -> None:
        with self._lock:
            future = self._controls.pop(cid, None)
        if future is None:
            return
        if ok:
            future.set_result(payload)
        else:
            future.set_exception(WorkerError("control", str(payload)))

    def worker_lost(self, worker_id: int) -> None:
        """Transport EOF: fail over everything assigned to the worker."""
        with self._lock:
            lane = self._lanes.get(worker_id)
            if lane is None or not lane.alive:
                return
            lane.kill()
            orphans: list[_Entry] = []
            for rid, entry in list(lane.queue):
                self._rid_lane.pop(rid, None)
                self._pending.pop(rid, None)
                if not entry.resolved:
                    orphans.append(entry)
            lane.queue.clear()
            for rid in list(lane.inflight):
                wid = self._rid_lane.pop(rid, None)
                entry = self._pending.pop(rid, None)
                if wid is not None and entry is not None and not entry.resolved:
                    orphans.append(entry)
            lane.inflight.clear()
            for cid, _payload in list(lane.control):
                future = self._controls.pop(cid, None)
                if future is not None:
                    future.set_exception(
                        NoWorkersAvailable(f"worker {worker_id} died")
                    )
            lane.control.clear()
            survivors = [
                ln for ln in self._lanes.values()
                if ln.alive and ln.worker_id != worker_id
            ]
            for entry in orphans:
                # hedged twins may still be alive on another lane
                if any(rid in self._pending for rid in entry.rids):
                    continue
                if not survivors:
                    self._resolve(
                        entry,
                        exc=NoWorkersAvailable(
                            "last worker died with requests in flight"
                        ),
                    )
                    continue
                target = min(survivors, key=_Lane.load)
                self._bump("failovers")
                self._enqueue(target, entry, allow_overflow=True)
        if self.on_worker_lost is not None:
            self.on_worker_lost(worker_id)

    # -- introspection ----------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            workers = {
                str(wid): {
                    "alive": lane.alive,
                    "queued": len(lane.queue),
                    "inflight": len(lane.inflight),
                    "served": lane.served,
                }
                for wid, lane in sorted(self._lanes.items())
            }
            return {
                **self.stats_counters,
                "pending": len(self._pending),
                "admitted_models": len(self._admitted),
                "workers": workers,
            }

    def close(self) -> None:
        """Stop lanes and fail everything still pending (503)."""
        with self._lock:
            self._closing = True
            entries = {
                id(entry): entry for entry in self._pending.values()
            }
            self._pending.clear()
            self._rid_lane.clear()
            for lane in self._lanes.values():
                for _rid, entry in lane.queue:
                    entries.setdefault(id(entry), entry)
                lane.kill()
            controls = list(self._controls.values())
            self._controls.clear()
        for entry in entries.values():
            self._resolve(
                entry, exc=NoWorkersAvailable("dispatcher closed")
            )
        for future in controls:
            if not future.done():
                future.set_exception(NoWorkersAvailable("dispatcher closed"))

    # -- internals --------------------------------------------------------
    def _bump(self, kind: str) -> None:
        """One lifecycle event: the legacy stats dict and the registry."""
        self.stats_counters[kind] += 1
        self._event_counters[kind].inc()

    def _new_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _admit(self, key) -> None:
        """Per-model LRU admission (see the module docstring)."""
        if key is None:
            return
        admitted = self._admitted
        if key in admitted:
            admitted[key] = admitted.pop(key) + 1  # refresh LRU position
            return
        if len(admitted) >= self.policy.admission:
            for stale, outstanding in list(admitted.items()):
                if outstanding == 0:
                    del admitted[stale]
                    break
            else:
                self._bump("rejected")
                raise QueueFull(
                    f"model admission is full "
                    f"({self.policy.admission} active models); retry later"
                )
        admitted[key] = 1

    def _unadmit(self, key) -> None:
        if key is not None and key in self._admitted:
            self._admitted[key] = max(0, self._admitted[key] - 1)

    def _pick_lane(self, key, lanes: list[_Lane]) -> _Lane | None:
        candidates = self._candidates(key, lanes)
        open_lanes = [
            lane for lane in candidates
            if lane.load() < self.policy.queue_depth
        ]
        if not open_lanes:
            return None
        return min(open_lanes, key=_Lane.load)

    def _candidates(self, key, lanes: Iterable[_Lane]) -> list[_Lane]:
        """Rendezvous top-``replicas`` lanes for a model key."""
        def score(lane: _Lane) -> int:
            return zlib.crc32(f"{key}|{lane.worker_id}".encode())

        ranked = sorted(lanes, key=score)
        return ranked[: max(1, self.policy.replicas)]

    def _enqueue(
        self, lane: _Lane, entry: _Entry, allow_overflow: bool = False
    ) -> None:
        """Register a rid for ``entry`` on ``lane`` (caller holds lock)."""
        rid = self._new_id()
        entry.rids.append(rid)
        self._pending[rid] = entry
        self._rid_lane[rid] = lane.worker_id
        self._pending_gauge.set(len(self._pending))
        with lane.cond:
            lane.queue.append((rid, entry))
            lane.cond.notify_all()

    def _drop_rid(self, rid: int) -> None:
        with self._lock:
            self._pending.pop(rid, None)
            self._rid_lane.pop(rid, None)

    def _finish_rid(self, rid: int, result=None, exc=None) -> None:
        with self._lock:
            entry = self._pending.pop(rid, None)
            wid = self._rid_lane.pop(rid, None)
            lane = self._lanes.get(wid) if wid is not None else None
        if lane is not None:
            lane.mark_done(rid)
            if entry is not None and exc is None:
                lane.served += 1
        if entry is None:
            return  # late reply for a timed-out/hedge-resolved request
        self._resolve(entry, result=result, exc=exc)

    def _timeout_entry(self, entry: _Entry) -> None:
        self._bump("timed_out")
        self._resolve(
            entry,
            exc=RequestTimeout(
                f"request unanswered after "
                f"{self.policy.queue_timeout_s:.3g}s (queue timeout)"
            ),
        )

    def _resolve(self, entry: _Entry, result=None, exc=None) -> None:
        with self._lock:
            if entry.resolved:
                return
            entry.resolved = True
            for rid in entry.rids:
                self._pending.pop(rid, None)
                wid = self._rid_lane.pop(rid, None)
                lane = self._lanes.get(wid) if wid is not None else None
                if lane is not None:
                    lane.mark_done(rid)
            self._unadmit(entry.key)
            self._pending_gauge.set(len(self._pending))
            if exc is None:
                self._bump("completed")
            else:
                self._bump("failed")
            self._latency.observe(time.monotonic() - entry.created_at)
        if exc is None:
            entry.future.set_result(result)
        else:
            entry.future.set_exception(exc)

    def _watch_loop(self) -> None:
        while True:
            time.sleep(self.policy.watchdog_interval_s)
            with self._lock:
                if self._closing:
                    return
                entries = {
                    id(entry): entry for entry in self._pending.values()
                }
            now = time.monotonic()
            for entry in entries.values():
                if entry.resolved:
                    continue
                if now > entry.deadline:
                    self._timeout_entry(entry)
                    continue
                self._maybe_hedge(entry, now)

    def _maybe_hedge(self, entry: _Entry, now: float) -> None:
        hedge_after = self.policy.hedge_after_s
        if (
            hedge_after is None or entry.hedged
            or entry.sent_at is None or now - entry.sent_at < hedge_after
        ):
            return
        with self._lock:
            if entry.resolved or entry.hedged:
                return
            used = {self._rid_lane.get(rid) for rid in entry.rids}
            lanes = [
                lane for lane in self._lanes.values()
                if lane.alive and lane.worker_id not in used
            ]
            if not lanes:
                return
            candidates = [
                lane for lane in self._candidates(entry.key, lanes)
                if lane.load() < self.policy.queue_depth
            ] or [min(lanes, key=_Lane.load)]
            entry.hedged = True
            self._bump("hedged")
            self._enqueue(candidates[0], entry, allow_overflow=True)


__all__ = [
    "DispatchPolicy",
    "Dispatcher",
    "NoWorkersAvailable",
    "QueueFull",
    "RequestTimeout",
    "ServingUnavailable",
    "WorkerError",
    "WorkerLink",
]
