"""Stdlib-only HTTP/JSON frontend over a prediction backend.

The backend is either a single-process
:class:`~repro.serving.service.PredictionService` or a multi-worker
:class:`~repro.serving.cluster.PredictionCluster` — both expose the
same ``submit``/``start``/``stop``/``session`` surface, so the handler
does not care which it is serving.

Endpoints::

    GET  /healthz      -> {"status": "ok", "scale": ..., "models": N,
                           "workers": N or 0}
    GET  /v1/models    -> {"models": [manifest, ...]}
    GET  /v1/stats     -> dispatcher/worker counters (cluster; a plain
                          service answers a minimal payload)
    POST /v1/predict   -> single:  {"benchmark": "505.mcf", ...}
                          batched: {"requests": [{...}, {...}]}
    POST /v1/swap      -> {"artifact": "<id>", "family": optional}
                          (cluster only: atomic model hot-swap)

Each POSTed prediction request accepts the fields of
:class:`~repro.serving.service.ServeRequest` (``benchmark`` required).
Responses mirror ``Session.predict``: ``{"times": {config: ticks}}``
per request, plus the artifact id that served it.

Error mapping: bad JSON / unknown fields -> 400; unknown benchmark,
family or artifact -> 404; overload (queue full / timeout / no
workers — the :class:`~repro.serving.dispatch.ServingUnavailable`
family) -> 503 with a ``Retry-After`` header; worker-side errors carry
their own status; everything else -> 500 with the exception text.
"""

from __future__ import annotations

import json
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro import obs
from repro.obs.metrics import REGISTRY, render_prometheus
from repro.core.errors import PredictionError, UnknownBenchmarkError
from repro.models import StoreError
from repro.serving.dispatch import ServingUnavailable, WorkerError
from repro.serving.service import ServeRequest

#: Largest accepted request body (bytes) — predict payloads are tiny.
MAX_BODY = 1 << 20

#: Header carrying the per-request id (client-supplied or assigned here).
REQUEST_ID_HEADER = "X-Request-Id"


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/2"

    #: Assigned at ingress for every request; echoed on every reply.
    request_id: str = ""

    @property
    def service(self):
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _assign_request_id(self) -> str:
        """Ingress id: honour a client-supplied header, else mint one.

        Every response — success, 400, 503-with-Retry-After — echoes it
        back (header always, body on errors), so a client can correlate
        a shed request with server logs and traces.
        """
        supplied = (self.headers.get(REQUEST_ID_HEADER) or "").strip()
        self.request_id = supplied[:128] or uuid.uuid4().hex[:16]
        return self.request_id

    # -- plumbing ---------------------------------------------------------
    def _reply(
        self, status: int, payload: dict, headers: dict | None = None
    ) -> None:
        body = json.dumps(payload).encode()
        self._send_head(status, "application/json", len(body), headers)
        self.wfile.write(body)

    def _reply_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode()
        self._send_head(status, content_type, len(body), None)
        self.wfile.write(body)

    def _send_head(
        self, status: int, content_type: str, length: int,
        headers: dict | None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(length))
        if self.request_id:
            self.send_header(REQUEST_ID_HEADER, self.request_id)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        REGISTRY.counter(
            "repro_http_responses_total",
            "HTTP responses by status code.",
            status=str(status),
        ).inc()

    def _error(self, status: int, message: str, **headers) -> None:
        payload = {"error": message}
        if self.request_id:
            payload["request_id"] = self.request_id
        self._reply(status, payload, headers=headers or None)

    def _fail(self, exc: Exception) -> None:
        """One exception -> one HTTP error reply (see module docstring)."""
        if isinstance(exc, ServingUnavailable):
            self._error(
                503, str(exc),
                **{"Retry-After": f"{exc.retry_after_s:g}"},
            )
        elif isinstance(exc, WorkerError):
            self._error(exc.status, str(exc))
        elif isinstance(exc, (UnknownBenchmarkError, StoreError, KeyError)):
            self._error(404, str(exc))
        elif isinstance(exc, (PredictionError, TypeError, ValueError)):
            self._error(400, str(exc))
        else:
            self._error(500, f"{type(exc).__name__}: {exc}")

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length > MAX_BODY:
            raise ValueError("request body too large")
        return json.loads(self.rfile.read(length) or b"{}")

    # -- GET --------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        self._assign_request_id()
        if self.path == "/v1/metrics":
            self._get_metrics()
        elif self.path == "/healthz":
            dispatcher = getattr(self.service, "dispatcher", None)
            self._reply(200, {
                "status": "ok",
                "scale": self.service.session.scale.name,
                "models": len(self.service.session.models()),
                "workers": (
                    len(dispatcher.alive_workers()) if dispatcher else 0
                ),
            })
        elif self.path == "/v1/models":
            self._reply(200, {"models": self.service.session.models()})
        elif self.path == "/v1/stats":
            stats = getattr(self.service, "stats", None)
            self._reply(200, stats() if stats else {"workers": {}})
        else:
            self._error(404, f"no such endpoint: {self.path}")

    def _get_metrics(self) -> None:
        """Prometheus text over this process plus every cluster worker."""
        snapshots = [({}, obs.metrics_snapshot())]
        worker_metrics = getattr(self.service, "worker_metrics", None)
        if worker_metrics is not None:
            try:
                for wid, snap in sorted(worker_metrics().items()):
                    snapshots.append(({"worker": str(wid)}, snap))
            except Exception:  # noqa: BLE001 - scrape must not 500
                pass  # a dying worker shouldn't fail the whole scrape
        self._reply_text(
            200, render_prometheus(snapshots),
            "text/plain; version=0.0.4",
        )

    # -- POST -------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        self._assign_request_id()
        if self.path == "/v1/predict":
            self._post_predict()
        elif self.path == "/v1/swap":
            self._post_swap()
        else:
            self._error(404, f"no such endpoint: {self.path}")

    def _post_predict(self) -> None:
        try:
            payload = self._body()
            if "requests" in payload:
                requests = [
                    ServeRequest.from_dict(item)
                    for item in payload["requests"]
                ]
                batched = True
            else:
                requests = [ServeRequest.from_dict(payload)]
                batched = False
        except (ValueError, TypeError) as exc:
            self._error(400, f"bad request: {exc}")
            return
        started = time.perf_counter()
        error: Exception | None = None
        with obs.span(
            "http.predict", request_id=self.request_id,
            requests=len(requests),
        ) as sp:
            try:
                # service: micro-batch queue; cluster: dispatcher lanes —
                # either way concurrent clients share batched engine passes
                futures = [self.service.submit(r) for r in requests]
                results = [f.result() for f in futures]
            except Exception as exc:
                error = exc
                sp.set("error", f"{type(exc).__name__}: {exc}")
        if error is not None:
            # dump after the span closed so it is in the flight ring
            self._fail(error)
            obs.dump_flight(
                f"failed-{self.request_id}",
                extra={"request_id": self.request_id, "error": str(error)},
            )
            return
        elapsed = time.perf_counter() - started
        slow_after = obs.slow_threshold_s()
        if slow_after is not None and elapsed > slow_after:
            obs.dump_flight(
                f"slow-{self.request_id}",
                extra={"request_id": self.request_id,
                       "elapsed_s": elapsed},
            )
        if batched:
            self._reply(
                200, {"results": [r.to_dict() for r in results]}
            )
        else:
            self._reply(200, results[0].to_dict())

    def _post_swap(self) -> None:
        swap = getattr(self.service, "swap", None)
        if swap is None:
            self._error(
                400,
                "model hot-swap needs the worker cluster; "
                "restart with `repro serve --workers N`",
            )
            return
        try:
            payload = self._body()
            artifact = payload["artifact"]
        except (ValueError, TypeError, KeyError) as exc:
            self._error(400, f"bad request: {exc}")
            return
        try:
            outcome = swap(artifact, family=payload.get("family"))
        except Exception as exc:
            self._fail(exc)
            return
        self._reply(200, outcome)


def make_server(
    service, host: str = "127.0.0.1", port: int = 0, verbose: bool = False,
) -> ThreadingHTTPServer:
    """Build (and bind) the HTTP server; ``port=0`` picks a free port.

    ``service`` is a :class:`PredictionService` or
    :class:`PredictionCluster`.  The caller runs ``serve_forever()``
    (or spins it in a thread — the round-trip tests do) and
    ``shutdown()`` when done.
    """
    server = ThreadingHTTPServer((host, port), _Handler)
    server.service = service  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    service.start()
    return server


def run_server(
    service, host: str = "127.0.0.1", port: int = 8080, verbose: bool = True,
) -> None:
    """Blocking serve loop (the ``repro serve`` entry point)."""
    server = make_server(service, host, port, verbose=verbose)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.stop()
