"""Stdlib-only HTTP/JSON frontend over :class:`PredictionService`.

Endpoints::

    GET  /healthz      -> {"status": "ok", "scale": ..., "models": N}
    GET  /v1/models    -> {"models": [manifest, ...]}
    POST /v1/predict   -> single:  {"benchmark": "505.mcf", ...}
                          batched: {"requests": [{...}, {...}]}

Each POSTed request accepts ``benchmark`` (required), ``family``,
``artifact`` and ``config`` — the fields of
:class:`~repro.serving.service.ServeRequest`.  Responses mirror
``Session.predict``: ``{"times": {config name: predicted ticks}}`` per
request, plus the artifact id that served it.

The server threads per connection (``ThreadingHTTPServer``) and every
request goes through the service's micro-batching queue, so concurrent
clients share batched no-grad inference passes.

Error mapping: bad JSON / unknown fields -> 400; unknown benchmark,
family or artifact -> 404; everything else -> 500 with the exception
text.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.core.errors import PredictionError, UnknownBenchmarkError
from repro.models import StoreError
from repro.serving.service import PredictionService, ServeRequest

#: Largest accepted request body (bytes) — predict payloads are tiny.
MAX_BODY = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"

    @property
    def service(self) -> PredictionService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # -- plumbing ---------------------------------------------------------
    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._reply(status, {"error": message})

    # -- GET --------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        if self.path == "/healthz":
            self._reply(200, {
                "status": "ok",
                "scale": self.service.session.scale.name,
                "models": len(self.service.session.models()),
            })
        elif self.path == "/v1/models":
            self._reply(200, {"models": self.service.session.models()})
        else:
            self._error(404, f"no such endpoint: {self.path}")

    # -- POST -------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        if self.path != "/v1/predict":
            self._error(404, f"no such endpoint: {self.path}")
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            if length > MAX_BODY:
                self._error(400, "request body too large")
                return
            payload = json.loads(self.rfile.read(length) or b"{}")
            if "requests" in payload:
                requests = [
                    ServeRequest.from_dict(item)
                    for item in payload["requests"]
                ]
                batched = True
            else:
                requests = [ServeRequest.from_dict(payload)]
                batched = False
        except (ValueError, TypeError) as exc:
            self._error(400, f"bad request: {exc}")
            return
        try:
            # the micro-batch queue coalesces concurrent client requests
            futures = [self.service.submit(r) for r in requests]
            results = [f.result() for f in futures]
        except (UnknownBenchmarkError, StoreError, KeyError) as exc:
            self._error(404, str(exc))
            return
        except (PredictionError, TypeError, ValueError) as exc:
            self._error(400, str(exc))
            return
        except Exception as exc:  # pragma: no cover - defensive
            self._error(500, f"{type(exc).__name__}: {exc}")
            return
        if batched:
            self._reply(
                200, {"results": [r.to_dict() for r in results]}
            )
        else:
            self._reply(200, results[0].to_dict())


def make_server(
    service: PredictionService, host: str = "127.0.0.1", port: int = 0,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """Build (and bind) the HTTP server; ``port=0`` picks a free port.

    The caller runs ``serve_forever()`` (or spins it in a thread — the
    round-trip test does) and ``shutdown()`` when done.
    """
    server = ThreadingHTTPServer((host, port), _Handler)
    server.service = service  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    service.start()
    return server


def run_server(
    service: PredictionService, host: str = "127.0.0.1", port: int = 8080,
    verbose: bool = True,
) -> None:
    """Blocking serve loop (the ``repro serve`` entry point)."""
    server = make_server(service, host, port, verbose=verbose)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.stop()
