"""The prediction service: hot models, hot features, micro-batched requests.

``Session.predict`` is a one-shot path: it resolves and loads the model
artifact on every call.  A serving process answering sustained traffic
wants the opposite trade-off, which is what :class:`PredictionService`
provides:

* **model LRU** — recently served artifacts stay deserialized in memory,
  keyed by resolved artifact id (with ``mmap=True`` the weight arrays
  are read-only views over a shared page-cache mapping, so N worker
  processes serving the same artifact hold **one** physical copy);
* **feature LRU** — recently served benchmarks keep their encoded
  ``[n, 51]`` streams (backed by the on-disk content-addressed feature
  cache for cold entries);
* **micro-batching** — :meth:`submit` enqueues a request and returns a
  future; a collector thread drains the queue, groups requests by model
  and answers each group through one batched no-grad engine pass.  The
  single-process HTTP frontend submits every request here, so concurrent
  clients batch together automatically.  Partial batches flush on the
  batching-window deadline even when no follow-up traffic arrives.

:meth:`predict` / :meth:`predict_batch` are the same path called
synchronously (no queue) — useful in scripts and tests, and the inner
loop of every :mod:`repro.serving.cluster` worker process.

All six model families serve: each family's
:attr:`~repro.models.base.PerformanceModel.serve_inputs` names what a
request must carry (feature stream, trace length, signature times), and
:meth:`repro.api.Session.serve_request` assembles it.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Sequence

from repro import obs
from repro.api import Session
from repro.core.errors import PredictionError
from repro.models import PerformanceModel
from repro.obs.metrics import REGISTRY, SIZE_BUCKETS

#: Request fields accepted over the wire.
_REQUEST_FIELDS = {"benchmark", "family", "artifact", "config",
                   "signature_times"}


@dataclass(frozen=True)
class ServeRequest:
    """One client prediction request."""

    benchmark: str
    family: str = "perfvec"
    artifact: str | None = None  # None: newest of family at service scale
    config: str | None = None  # None: every config the model knows
    #: Measured times on the signature configurations — required by the
    #: ``cross_program`` family only.
    signature_times: tuple[float, ...] | None = None

    def to_dict(self) -> dict:
        payload = {
            "benchmark": self.benchmark, "family": self.family,
            "artifact": self.artifact, "config": self.config,
        }
        if self.signature_times is not None:
            payload["signature_times"] = list(self.signature_times)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ServeRequest":
        try:
            benchmark = payload["benchmark"]
        except (TypeError, KeyError):
            raise ValueError("request must carry a 'benchmark' field")
        unknown = set(payload) - _REQUEST_FIELDS
        if unknown:
            raise ValueError(f"unknown request fields: {sorted(unknown)}")
        signature_times = payload.get("signature_times")
        if signature_times is not None:
            signature_times = tuple(float(t) for t in signature_times)
        return cls(
            benchmark=benchmark,
            family=payload.get("family") or "perfvec",
            artifact=payload.get("artifact"),
            config=payload.get("config"),
            signature_times=signature_times,
        )


@dataclass(frozen=True)
class ServeResult:
    """Prediction for one request: ticks per microarchitecture."""

    benchmark: str
    artifact: str
    times: dict[str, float]

    def to_dict(self) -> dict:
        return {
            "benchmark": self.benchmark, "artifact": self.artifact,
            "times": self.times,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ServeResult":
        return cls(
            benchmark=payload["benchmark"], artifact=payload["artifact"],
            times=dict(payload["times"]),
        )


class _LRU:
    """A tiny thread-unsafe LRU (callers hold the service lock)."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("LRU capacity must be positive")
        self.capacity = capacity
        self._items: dict = {}

    def get(self, key):
        value = self._items.pop(key, None)
        if value is not None:
            self._items[key] = value  # re-insert: most recently used
        return value

    def put(self, key, value) -> None:
        self._items.pop(key, None)
        self._items[key] = value
        while len(self._items) > self.capacity:
            self._items.pop(next(iter(self._items)))

    def __len__(self) -> int:
        return len(self._items)


class PredictionService:
    """Serve stored models with caching and micro-batched inference."""

    def __init__(
        self,
        session: Session | None = None,
        scale: str = "bench",
        cache_dir: str | None = None,
        model_cache: int = 4,
        feature_cache: int = 64,
        max_batch: int = 64,
        batch_window_s: float = 0.002,
        mmap: bool = False,
        jit: bool | None = None,
        frontend: str | None = None,
    ):
        self.session = session or Session(
            scale=scale, cache_dir=cache_dir, jit=jit,
            **({"frontend": frontend} if frontend else {}),
        )
        self.max_batch = max_batch
        self.batch_window_s = batch_window_s
        self.mmap = mmap
        self._models = _LRU(model_cache)
        self._features = _LRU(feature_cache)
        self._lock = threading.Lock()
        self._queue: queue.Queue = queue.Queue()
        self._collector: threading.Thread | None = None
        self._stopping = threading.Event()
        self._batch_size_hist = REGISTRY.histogram(
            "repro_microbatch_size",
            "Requests answered per micro-batch flush.",
            buckets=SIZE_BUCKETS,
        )
        self._flush_hist = REGISTRY.histogram(
            "repro_microbatch_flush_seconds",
            "Wall time to answer one micro-batch.",
        )
        self._cache_events = {
            (cache, outcome): REGISTRY.counter(
                "repro_serving_cache_total",
                "Serving LRU lookups by cache and outcome.",
                cache=cache, outcome=outcome,
            )
            for cache in ("model", "feature")
            for outcome in ("hit", "miss")
        }

    # -- caches -----------------------------------------------------------
    def model(
        self, family: str = "perfvec", artifact: str | None = None
    ) -> tuple[str, PerformanceModel]:
        """(resolved artifact id, deserialized model), LRU-cached.

        With ``mmap=True`` cold loads map the stored weights read-only
        instead of copying them into private memory.
        """
        artifact_id = self.session.resolve_artifact(family, artifact)
        with self._lock:
            model = self._models.get(artifact_id)
        if model is None:
            self._cache_events[("model", "miss")].inc()
            with obs.span("service.model_load", artifact=artifact_id):
                model = self.session.store.load(
                    artifact_id, mmap=self.mmap
                )
            with self._lock:
                self._models.put(artifact_id, model)
        else:
            self._cache_events[("model", "hit")].inc()
        return artifact_id, model

    def features(self, benchmark: str):
        """The benchmark's encoded stream, LRU over the on-disk cache.

        ``memo=False`` keeps the session's unbounded memo out of the
        loop: this LRU is the only in-memory copy, so eviction really
        frees the stream.
        """
        with self._lock:
            stream = self._features.get(benchmark)
        if stream is None:
            self._cache_events[("feature", "miss")].inc()
            with obs.span("service.feature_load", benchmark=benchmark):
                stream = self.session.features(benchmark, memo=False)
            with self._lock:
                self._features.put(benchmark, stream)
        else:
            self._cache_events[("feature", "hit")].inc()
        return stream

    # -- synchronous path -------------------------------------------------
    def predict(self, request: ServeRequest) -> ServeResult:
        """Answer one request (a batch of one)."""
        return self.predict_batch([request])[0]

    def predict_batch(
        self, requests: Sequence[ServeRequest]
    ) -> list[ServeResult]:
        """Answer a batch: requests group by model, each group runs one
        batched engine pass; results return in request order."""
        requests = list(requests)
        groups: dict[tuple[str, str | None], list[int]] = {}
        for i, request in enumerate(requests):
            groups.setdefault(
                (request.family, request.artifact), []
            ).append(i)
        results: list[ServeResult | None] = [None] * len(requests)
        for (family, artifact), indices in groups.items():
            artifact_id, model = self.model(family, artifact)
            needs_features = "features" in model.serve_inputs
            batch = [
                self.session.serve_request(
                    model,
                    requests[i].benchmark,
                    features=(
                        self.features(requests[i].benchmark)
                        if needs_features else None
                    ),
                    signature_times=requests[i].signature_times,
                )
                for i in indices
            ]
            with self.session._jit_scope():
                batch_times = model.predict_batch(batch)
            for i, times in zip(indices, batch_times):
                named = dict(zip(model.config_names, times.tolist()))
                config = requests[i].config
                if config is not None:
                    if config not in named:
                        raise PredictionError(
                            f"unknown config {config!r} for artifact "
                            f"{artifact_id}; known: {list(named)}"
                        )
                    named = {config: named[config]}
                results[i] = ServeResult(
                    benchmark=requests[i].benchmark,
                    artifact=artifact_id,
                    times=named,
                )
        return results  # type: ignore[return-value]

    def predict_each(
        self, requests: Sequence[ServeRequest]
    ) -> list[ServeResult | Exception]:
        """Like :meth:`predict_batch`, but a bad request poisons only its
        own slot: on a batch failure every request retries alone, and
        failures come back as exception objects in request order."""
        requests = list(requests)
        try:
            return list(self.predict_batch(requests))
        except Exception:
            if len(requests) == 1:
                try:
                    return [self.predict(requests[0])]
                except Exception as exc:
                    return [exc]
            out: list[ServeResult | Exception] = []
            for request in requests:
                out.extend(self.predict_each([request]))
            return out

    # -- introspection ----------------------------------------------------
    def stats(self) -> dict:
        """Service counters for ``GET /v1/stats`` (single-process mode).

        The ``jit`` section is this process's compiled-kernel activity —
        compile counts, registry/disk hits, per-signature timings — taken
        under the session's jit scope so ``enabled`` reflects what the
        engine passes actually see.
        """
        from repro import jit

        with self._lock:
            payload = {
                "scale": self.session.scale.name,
                "frontend": self.session.frontend,
                "models_cached": len(self._models),
                "features_cached": len(self._features),
            }
        with self.session._jit_scope():
            payload["jit"] = jit.stats()
        return payload

    # -- micro-batching queue --------------------------------------------
    def submit(self, request: ServeRequest) -> Future:
        """Enqueue a request; the collector thread batches and answers it.

        Starts the collector lazily on first use.
        """
        future: Future = Future()
        self.start()
        self._queue.put((request, future))
        return future

    def start(self) -> None:
        """Start the micro-batch collector thread (idempotent)."""
        with self._lock:
            if self._collector is not None and self._collector.is_alive():
                return
            self._stopping.clear()
            self._collector = threading.Thread(
                target=self._collect_loop, name="repro-serving", daemon=True
            )
            self._collector.start()

    def stop(self) -> None:
        """Stop the collector; queued requests are answered first."""
        collector = self._collector
        if collector is None:
            return
        self._stopping.set()
        collector.join()
        self._collector = None

    def _collect_loop(self) -> None:
        while True:
            batch = self._drain()
            if batch:
                self._answer(batch)
            elif self._stopping.is_set():
                return

    def _drain(self) -> list[tuple[ServeRequest, Future]]:
        """One micro-batch: the first request plus whatever arrives within
        the batching window, capped at ``max_batch``.

        The deadline is absolute: a partial batch flushes when the window
        expires even if no follow-up request ever arrives."""
        batch: list[tuple[ServeRequest, Future]] = []
        try:
            batch.append(self._queue.get(timeout=0.05))
        except queue.Empty:
            return batch
        deadline = time.monotonic() + self.batch_window_s
        while len(batch) < self.max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                batch.append(self._queue.get(timeout=remaining))
            except queue.Empty:
                break
        return batch

    def _answer(self, batch: list[tuple[ServeRequest, Future]]) -> None:
        started = time.perf_counter()
        with obs.span("service.microbatch", size=len(batch)):
            outcomes = self.predict_each(
                [request for request, _ in batch]
            )
        self._batch_size_hist.observe(len(batch))
        self._flush_hist.observe(time.perf_counter() - started)
        for (_, future), outcome in zip(batch, outcomes):
            if isinstance(outcome, Exception):
                future.set_exception(outcome)
            else:
                future.set_result(outcome)
