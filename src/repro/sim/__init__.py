"""Trace-driven cycle-level CPU timing simulator (the gem5 substitute).

Given a microarchitecture-independent dynamic trace (:mod:`repro.vm`) and a
:class:`~repro.uarch.config.MicroarchConfig`, the simulator computes per-
instruction retire times on that microarchitecture — and from them the
*incremental latencies* PerfVec trains on (Sec. III-B of the paper: the time
an instruction stays active after all predecessors exit).

Components: set-associative LRU caches with optional L2 exclusivity, a DRAM
latency/bandwidth model, direction predictors (static/bimodal/gshare/
tournament) with BTB + return-address stack, and in-order/out-of-order
scoreboard timing models.
"""

from repro.sim.cache import Cache, CacheHierarchy
from repro.sim.memory import DRAMModel
from repro.sim.branch import (
    BimodalPredictor,
    BranchUnit,
    GSharePredictor,
    StaticPredictor,
    TournamentPredictor,
    make_direction_predictor,
)
from repro.sim.cpu import CPUSimulator, SimResult, simulate

__all__ = [
    "Cache",
    "CacheHierarchy",
    "DRAMModel",
    "BimodalPredictor",
    "BranchUnit",
    "GSharePredictor",
    "StaticPredictor",
    "TournamentPredictor",
    "make_direction_predictor",
    "CPUSimulator",
    "SimResult",
    "simulate",
]
