"""Branch prediction: direction predictors, BTB and return-address stack.

Direction predictors follow the classic designs the paper's sampler
varies: static (backward-taken/forward-not-taken), bimodal 2-bit counters,
gshare (global history XOR pc) and a tournament chooser between the two.
Indirect branches are predicted through a direct-mapped BTB; returns through
a bounded return-address stack (``call`` pushes, ``ret`` pops).
"""

from __future__ import annotations

from repro.uarch.config import BranchPredictorConfig, PredictorKind

_WEAKLY_TAKEN = 2  # 2-bit counter init: 0,1 predict not-taken; 2,3 taken


class StaticPredictor:
    """Backward taken / forward not-taken; no state."""

    __slots__ = ()

    def predict(self, pc: int, target: int) -> bool:
        return target <= pc

    def update(self, pc: int, target: int, taken: bool) -> None:
        pass


class BimodalPredictor:
    """PC-indexed table of 2-bit saturating counters."""

    __slots__ = ("mask", "table")

    def __init__(self, table_bits: int):
        size = 1 << table_bits
        self.mask = size - 1
        self.table = [_WEAKLY_TAKEN] * size

    def predict(self, pc: int, target: int) -> bool:
        return self.table[(pc >> 2) & self.mask] >= 2

    def update(self, pc: int, target: int, taken: bool) -> None:
        idx = (pc >> 2) & self.mask
        ctr = self.table[idx]
        if taken:
            if ctr < 3:
                self.table[idx] = ctr + 1
        elif ctr > 0:
            self.table[idx] = ctr - 1


class GSharePredictor:
    """Global-history XOR pc indexed 2-bit counters."""

    __slots__ = ("mask", "table", "history", "hist_mask")

    def __init__(self, table_bits: int, history_bits: int):
        size = 1 << table_bits
        self.mask = size - 1
        self.table = [_WEAKLY_TAKEN] * size
        self.history = 0
        self.hist_mask = (1 << history_bits) - 1 if history_bits else 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self.history) & self.mask

    def predict(self, pc: int, target: int) -> bool:
        return self.table[self._index(pc)] >= 2

    def update(self, pc: int, target: int, taken: bool) -> None:
        idx = self._index(pc)
        ctr = self.table[idx]
        if taken:
            if ctr < 3:
                self.table[idx] = ctr + 1
        elif ctr > 0:
            self.table[idx] = ctr - 1
        self.history = ((self.history << 1) | int(taken)) & self.hist_mask


class TournamentPredictor:
    """Bimodal vs gshare with a pc-indexed 2-bit chooser."""

    __slots__ = ("bimodal", "gshare", "chooser", "mask")

    def __init__(self, table_bits: int, history_bits: int):
        self.bimodal = BimodalPredictor(table_bits)
        self.gshare = GSharePredictor(table_bits, history_bits)
        size = 1 << table_bits
        self.mask = size - 1
        self.chooser = [_WEAKLY_TAKEN] * size  # >=2 prefers gshare

    def predict(self, pc: int, target: int) -> bool:
        if self.chooser[(pc >> 2) & self.mask] >= 2:
            return self.gshare.predict(pc, target)
        return self.bimodal.predict(pc, target)

    def update(self, pc: int, target: int, taken: bool) -> None:
        b_correct = self.bimodal.predict(pc, target) == taken
        g_correct = self.gshare.predict(pc, target) == taken
        idx = (pc >> 2) & self.mask
        ctr = self.chooser[idx]
        if g_correct and not b_correct and ctr < 3:
            self.chooser[idx] = ctr + 1
        elif b_correct and not g_correct and ctr > 0:
            self.chooser[idx] = ctr - 1
        self.bimodal.update(pc, target, taken)
        self.gshare.update(pc, target, taken)


def make_direction_predictor(config: BranchPredictorConfig):
    """Instantiate the configured direction predictor."""
    if config.kind is PredictorKind.STATIC:
        return StaticPredictor()
    if config.kind is PredictorKind.BIMODAL:
        return BimodalPredictor(config.table_bits)
    if config.kind is PredictorKind.GSHARE:
        return GSharePredictor(config.table_bits, config.history_bits)
    if config.kind is PredictorKind.TOURNAMENT:
        return TournamentPredictor(config.table_bits, config.history_bits)
    raise ValueError(f"unknown predictor kind {config.kind}")


class BranchUnit:
    """Full front-end branch machinery: direction + BTB + RAS.

    ``resolve_*`` methods return ``True`` when the branch *mispredicts*
    (forcing a fetch redirect) and update all predictor state in program
    order, which is the standard trace-driven approximation.
    """

    __slots__ = ("direction", "btb_mask", "btb_tags", "btb_targets", "ras",
                 "ras_depth", "mispredicts", "branches")

    def __init__(self, config: BranchPredictorConfig):
        self.direction = make_direction_predictor(config)
        size = 1 << config.btb_bits
        self.btb_mask = size - 1
        self.btb_tags = [-1] * size
        self.btb_targets = [0] * size
        self.ras: list[int] = []
        self.ras_depth = config.ras_entries
        self.mispredicts = 0
        self.branches = 0

    # -- BTB ------------------------------------------------------------
    def _btb_lookup(self, pc: int) -> int | None:
        idx = (pc >> 2) & self.btb_mask
        if self.btb_tags[idx] == pc:
            return self.btb_targets[idx]
        return None

    def _btb_update(self, pc: int, target: int) -> None:
        idx = (pc >> 2) & self.btb_mask
        self.btb_tags[idx] = pc
        self.btb_targets[idx] = target

    # -- resolution -----------------------------------------------------
    def resolve_conditional(self, pc: int, target: int, taken: bool) -> bool:
        self.branches += 1
        predicted = self.direction.predict(pc, target)
        self.direction.update(pc, target, taken)
        if taken:
            self._btb_update(pc, target)
        if predicted != taken:
            self.mispredicts += 1
            return True
        return False

    def resolve_direct_jump(self, pc: int, target: int) -> bool:
        """Unconditional direct jumps are known at decode: never redirect."""
        self.branches += 1
        return False

    def resolve_call(self, pc: int, target: int) -> bool:
        self.branches += 1
        if self.ras_depth:
            if len(self.ras) >= self.ras_depth:
                self.ras.pop(0)
            self.ras.append(pc + 4)
        return False

    def resolve_return(self, pc: int, target: int) -> bool:
        self.branches += 1
        predicted = self.ras.pop() if self.ras else None
        if predicted != target:
            self.mispredicts += 1
            return True
        return False

    def resolve_indirect(self, pc: int, target: int) -> bool:
        self.branches += 1
        predicted = self._btb_lookup(pc)
        self._btb_update(pc, target)
        if predicted != target:
            self.mispredicts += 1
            return True
        return False
