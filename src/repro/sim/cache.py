"""Set-associative caches and the three-level hierarchy.

Each set is an insertion-ordered dict used as an LRU list: a hit re-inserts
the tag (moving it to the MRU end), a miss evicts the first (LRU) key.  This
keeps every operation O(1) in pure Python, which matters — cache simulation
is the hot path of the whole reproduction.

The hierarchy supports the paper's "exclusivity" cache knob: with an
exclusive L2, an L2 hit *moves* the line into L1 and L1 victims are demoted
into L2 (AMD-style victim cache); otherwise lines are installed in both
levels (mostly-inclusive, gem5's default behaviour).
"""

from __future__ import annotations

from repro.sim.memory import DRAMModel
from repro.uarch.config import CacheConfig, MicroarchConfig

#: Hit-level codes returned by the hierarchy (index into latency stats).
L1_HIT, L2_HIT, MEM_HIT = 1, 2, 3


class Cache:
    """One set-associative LRU cache level."""

    __slots__ = ("config", "ways", "set_mask", "_sets", "hits", "misses")

    def __init__(self, config: CacheConfig):
        self.config = config
        self.ways = config.assoc
        num_sets = config.num_sets
        if num_sets & (num_sets - 1):
            raise ValueError("number of sets must be a power of two")
        self.set_mask = num_sets - 1
        self._sets: list[dict[int, None]] = [dict() for _ in range(num_sets)]
        self.hits = 0
        self.misses = 0

    def lookup(self, line: int) -> bool:
        """Probe (and on hit, touch) ``line``.  Returns hit/miss."""
        s = self._sets[line & self.set_mask]
        if line in s:
            del s[line]
            s[line] = None  # move to MRU position
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, line: int) -> int | None:
        """Install ``line``; returns the evicted line, if any."""
        s = self._sets[line & self.set_mask]
        if line in s:
            del s[line]
            s[line] = None
            return None
        victim = None
        if len(s) >= self.ways:
            victim = next(iter(s))
            del s[victim]
        s[line] = None
        return victim

    def remove(self, line: int) -> None:
        """Invalidate ``line`` if present (exclusive-mode promotion)."""
        s = self._sets[line & self.set_mask]
        s.pop(line, None)

    def contains(self, line: int) -> bool:
        """Non-touching presence probe (no LRU update, no stats)."""
        return line in self._sets[line & self.set_mask]

    @property
    def accesses(self) -> int:
        return self.hits + self.misses


class CacheHierarchy:
    """L1I + L1D + unified L2 backed by DRAM."""

    __slots__ = (
        "l1i", "l1d", "l2", "exclusive", "dram",
        "_l1i_lat", "_l1d_lat", "_l2_lat", "_shift",
    )

    def __init__(self, config: MicroarchConfig):
        self.l1i = Cache(config.l1i)
        self.l1d = Cache(config.l1d)
        self.l2 = Cache(config.l2)
        self.exclusive = config.l2_exclusive
        self.dram = DRAMModel(config.memory, config.core.freq_ghz)
        self._l1i_lat = config.l1i.latency
        self._l1d_lat = config.l1d.latency
        self._l2_lat = config.l2.latency
        line = config.l1d.line_bytes
        self._shift = line.bit_length() - 1

    def line_of(self, addr: int) -> int:
        return addr >> self._shift

    # ------------------------------------------------------------------
    def probe_data(self, addr: int) -> int:
        """Data-side state update: probe/fill caches, return the hit level.

        Timing is intentionally separate (see :meth:`data_latency`): the
        core model must settle structural constraints (MSHR availability)
        *before* asking the DRAM for queueing-aware latency, otherwise
        queueing delay measured from a stale timestamp double-counts.
        """
        line = addr >> self._shift
        if self.l1d.lookup(line):
            return L1_HIT
        if self.l2.lookup(line):
            if self.exclusive:
                self.l2.remove(line)
            victim = self.l1d.insert(line)
            if self.exclusive and victim is not None:
                self.l2.insert(victim)
            return L2_HIT
        victim = self.l1d.insert(line)
        if self.exclusive:
            if victim is not None:
                self.l2.insert(victim)
        else:
            self.l2.insert(line)
        return MEM_HIT

    def data_latency(self, level: int, now: int) -> int:
        """Latency (cycles) of a data access that hit at ``level``,
        issued around cycle ``now`` (DRAM bandwidth queueing applies)."""
        if level == L1_HIT:
            return self._l1d_lat
        if level == L2_HIT:
            return self._l1d_lat + self._l2_lat
        return self._l1d_lat + self._l2_lat + self.dram.access(now)

    def access_data(self, addr: int, now: int) -> tuple[int, int]:
        """Probe + latency in one call (for callers without MSHR settling)."""
        level = self.probe_data(addr)
        return self.data_latency(level, now), level

    # ------------------------------------------------------------------
    def access_ifetch(self, addr: int, now: int) -> tuple[int, int]:
        """Instruction-side access; L1I is never exclusive with L2."""
        line = addr >> self._shift
        if self.l1i.lookup(line):
            return self._l1i_lat, L1_HIT
        if self.l2.lookup(line):
            self.l1i.insert(line)
            return self._l1i_lat + self._l2_lat, L2_HIT
        latency = self._l1i_lat + self._l2_lat + self.dram.access(now)
        self.l1i.insert(line)
        self.l2.insert(line)
        return latency, MEM_HIT

    def stats(self) -> dict[str, int]:
        return {
            "l1i_hits": self.l1i.hits,
            "l1i_misses": self.l1i.misses,
            "l1d_hits": self.l1d.hits,
            "l1d_misses": self.l1d.misses,
            "l2_hits": self.l2.hits,
            "l2_misses": self.l2.misses,
            "mem_accesses": self.dram.accesses,
        }
