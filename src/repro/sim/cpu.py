"""In-order / out-of-order CPU timing models.

The simulator is a scoreboard-style O(n) timing model: one pass over the
trace computes, per instruction, its fetch, issue, completion and retire
cycles under the configured resources.  Modelled effects:

* front-end: fetch width, L1I/L2/memory instruction fetch misses, redirect
  bubbles after taken branches, mispredict penalties after resolution;
* dependencies: register-ready scoreboard (renaming abstracts WAW/WAR);
* back-end: issue width, per-class functional-unit pools (pipelined or
  not), memory ports, a finite instruction window (ROB) for OoO cores and
  strict program-order issue for in-order cores;
* memory: cache hierarchy with miss-status-holding registers bounding
  memory-level parallelism, DRAM bandwidth queueing;
* barriers: ``fence`` waits for all older instructions and orders younger
  memory operations;
* in-order retirement bounded by commit width.

Retire times are the quantity PerfVec consumes: the paper's *incremental
latency* of instruction ``i`` is ``retire[i] - retire[i-1]`` (zero when an
instruction retires in the same cycle bundle as its predecessor), reported
in the paper's unit of 0.1 ns.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.isa.opcodes import OPCODE_BY_ID, OPCODE_IDS, OpClass
from repro.sim.branch import BranchUnit
from repro.sim.cache import CacheHierarchy, L1_HIT
from repro.uarch.config import CoreKind, MicroarchConfig
from repro.vm.trace import Trace

#: Map op classes to functional-unit group indices (-1: no FU needed).
_FU_GROUP = {
    OpClass.INT_ALU: 0,
    OpClass.INT_MUL: 1,
    OpClass.INT_DIV: 2,
    OpClass.FP_ADD: 3,
    OpClass.FP_MUL: 4,
    OpClass.FP_DIV: 5,
    OpClass.LOAD: -1,
    OpClass.STORE: -1,
    OpClass.BRANCH: 0,  # compare on an ALU
    OpClass.JUMP: 0,
    OpClass.JUMP_IND: 0,
    OpClass.CALL: 0,
    OpClass.BARRIER: -1,
    OpClass.NOP: -1,
    OpClass.HALT: -1,
}

_RET_ID = OPCODE_IDS["ret"]


@dataclass(frozen=True)
class SimResult:
    """Timing outcome of one (trace, microarchitecture) simulation."""

    config_name: str
    freq_ghz: float
    retire_cycles: np.ndarray  # int64 [n], nondecreasing
    stats: dict[str, int | float]

    def __len__(self) -> int:
        return len(self.retire_cycles)

    @property
    def total_cycles(self) -> int:
        return int(self.retire_cycles[-1])

    @property
    def total_time_ns(self) -> float:
        return self.total_cycles / self.freq_ghz

    @property
    def ipc(self) -> float:
        return len(self) / max(self.total_cycles, 1)

    @cached_property
    def retire_times_ns(self) -> np.ndarray:
        return self.retire_cycles.astype(np.float64) / self.freq_ghz

    @cached_property
    def incremental_latencies(self) -> np.ndarray:
        """Per-instruction incremental latency in 0.1 ns ticks (float32).

        ``t_i = retire_i - retire_{i-1}`` with ``retire_0`` measured from
        time zero; by construction ``sum(t) == total_time``.
        """
        ns = self.retire_times_ns
        ticks = np.empty(len(ns), dtype=np.float32)
        ticks[0] = ns[0] * 10.0
        np.multiply(np.diff(ns), 10.0, out=ticks[1:], casting="unsafe")
        return ticks


class CPUSimulator:
    """Reusable simulator facade bound to one microarchitecture."""

    def __init__(self, config: MicroarchConfig):
        self.config = config

    # ------------------------------------------------------------------
    def run(self, trace: Trace) -> SimResult:
        """Time ``trace`` on this microarchitecture."""
        cfg = self.config
        core = cfg.core
        ooo = core.kind is CoreKind.OUT_OF_ORDER
        n = len(trace)
        if n == 0:
            raise ValueError("empty trace")

        hierarchy = CacheHierarchy(cfg)
        access_ifetch = hierarchy.access_ifetch
        line_shift = cfg.l1d.line_bytes.bit_length() - 1
        l1i_lat = cfg.l1i.latency
        branch_unit = BranchUnit(cfg.branch)

        # --- static opcode tables (plain lists for speed) ---------------
        opclasses = [int(spec.opclass) for spec in OPCODE_BY_ID]
        fu_group = [_FU_GROUP[spec.opclass] for spec in OPCODE_BY_ID]
        is_cond = [spec.is_conditional for spec in OPCODE_BY_ID]
        is_jump = [spec.opclass is OpClass.JUMP for spec in OPCODE_BY_ID]
        is_call = [spec.opclass is OpClass.CALL for spec in OPCODE_BY_ID]
        is_ind = [spec.is_indirect for spec in OPCODE_BY_ID]

        # --- trace columns as plain Python lists -------------------------
        opids = trace.opid.tolist()
        pcs = trace.pc.tolist()
        srcs = trace.src_slots.tolist()
        dsts = trace.dst_slots.tolist()
        addrs = trace.mem_addr.tolist()
        takens = trace.branch_taken.tolist()
        targets = trace.branch_target.tolist()

        # --- resources ----------------------------------------------------
        # Bandwidth-limited resources (issue slots, pipelined FU pools,
        # memory ports) are modelled as per-cycle usage counters: an
        # instruction takes the first cycle >= its ready time with spare
        # capacity.  This preserves out-of-order overlap — a late-issuing
        # chain instruction must not block independent younger work, which
        # any "next-free-time" pool model gets wrong.  Occupancy-limited
        # resources (unpipelined dividers, MSHRs) keep busy-until pools:
        # they are held for a duration, not a cycle.
        groups = (core.int_alu, core.int_mul, core.int_div,
                  core.fp_add, core.fp_mul, core.fp_div)
        fu_counts: list[dict[int, int]] = [{} for _ in groups]
        fu_cap = [g.count for g in groups]
        fu_lat = [g.latency for g in groups]
        fu_pipe = [g.pipelined for g in groups]
        fu_busy: list[list[int]] = [[0] * g.count for g in groups]
        port_counts: dict[int, int] = {}
        port_cap = core.mem_ports
        mshrs = [0] * core.mshrs
        issue_counts: dict[int, int] = {}
        iw_cap = core.issue_width

        reg_ready = [0] * 64
        retire = [0] * n
        prev_issue = 0

        fw = core.fetch_width
        fe_depth = core.frontend_depth
        iw = core.issue_width
        cw = core.commit_width
        rob = core.rob_size
        penalty = cfg.branch.mispredict_penalty

        LOAD = int(OpClass.LOAD)
        STORE = int(OpClass.STORE)
        BARRIER = int(OpClass.BARRIER)

        fetch_cycle = 0
        fetched = 0
        cur_line = -1
        redirect = 0
        max_complete = 0
        fence_ready = 0

        for i in range(n):
            pc = pcs[i]
            opid = opids[i]
            oc = opclasses[opid]

            # ---- fetch ------------------------------------------------
            if fetch_cycle < redirect:
                fetch_cycle = redirect
                fetched = 0
                cur_line = -1
            line = pc >> line_shift
            if line != cur_line:
                ilat, ilvl = access_ifetch(pc, fetch_cycle)
                if ilvl != L1_HIT:
                    fetch_cycle += ilat - l1i_lat
                    fetched = 0
                cur_line = line
            ft = fetch_cycle
            fetched += 1
            if fetched >= fw:
                fetch_cycle = ft + 1
                fetched = 0

            # ---- dispatch / window -------------------------------------
            t = ft + fe_depth
            if ooo:
                if i >= rob:
                    r = retire[i - rob]
                    if r > t:
                        t = r
            elif prev_issue > t:
                t = prev_issue

            # ---- operand readiness -------------------------------------
            for s in srcs[i]:
                if s < 0:
                    break
                r = reg_ready[s]
                if r > t:
                    t = r
            if oc == BARRIER:
                if max_complete > t:
                    t = max_complete
            elif (oc == LOAD or oc == STORE) and fence_ready > t:
                t = fence_ready

            # ---- structural hazards / bandwidth ---------------------------
            g = fu_group[opid]
            is_mem = oc == LOAD or oc == STORE
            if g >= 0 and not fu_pipe[g]:
                # unpipelined unit (divider): held for the whole operation
                units = fu_busy[g]
                best = 0
                bt = units[0]
                for u in range(1, len(units)):
                    if units[u] < bt:
                        bt = units[u]
                        best = u
                if bt > t:
                    t = bt
            # per-cycle capacity walk: issue slots and (if needed) FU/port
            # bandwidth must all have room in the same cycle
            while True:
                if issue_counts.get(t, 0) >= iw_cap:
                    t += 1
                    continue
                if g >= 0 and fu_pipe[g] and fu_counts[g].get(t, 0) >= fu_cap[g]:
                    t += 1
                    continue
                if is_mem and port_counts.get(t, 0) >= port_cap:
                    t += 1
                    continue
                break

            # ---- execution ----------------------------------------------
            if oc == LOAD:
                mlvl = hierarchy.probe_data(addrs[i])
                if mlvl != 1:
                    # an MSHR must be free before the miss can go out;
                    # DRAM queueing is measured from the settled time
                    mbest = 0
                    mt = mshrs[0]
                    for u in range(1, len(mshrs)):
                        if mshrs[u] < mt:
                            mt = mshrs[u]
                            mbest = u
                    if mt > t:
                        t = mt
                    complete = t + hierarchy.data_latency(mlvl, t)
                    mshrs[mbest] = complete
                else:
                    complete = t + hierarchy.data_latency(mlvl, t)
            elif oc == STORE:
                # state update + bandwidth consumption; the write buffer
                # hides store latency from the pipeline
                slvl = hierarchy.probe_data(addrs[i])
                if slvl == 3:
                    hierarchy.dram.access(t)
                complete = t + 1
            elif g >= 0:
                complete = t + fu_lat[g]
                if not fu_pipe[g]:
                    fu_busy[g][best] = complete
            else:
                complete = t + 1

            # book the consumed bandwidth at the chosen cycle
            issue_counts[t] = issue_counts.get(t, 0) + 1
            if g >= 0 and fu_pipe[g]:
                fu_counts[g][t] = fu_counts[g].get(t, 0) + 1
            if is_mem:
                port_counts[t] = port_counts.get(t, 0) + 1

            # ---- control resolution --------------------------------------
            if is_cond[opid]:
                mis = branch_unit.resolve_conditional(pc, targets[i], takens[i] == 1)
                if mis:
                    redirect = complete + penalty
                elif takens[i] == 1 and fetch_cycle <= ft:
                    fetch_cycle = ft + 1
                    fetched = 0
                    cur_line = -1
            elif is_jump[opid]:
                branch_unit.resolve_direct_jump(pc, targets[i])
                if fetch_cycle <= ft:
                    fetch_cycle = ft + 1
                    fetched = 0
                    cur_line = -1
            elif is_call[opid]:
                branch_unit.resolve_call(pc, targets[i])
                if fetch_cycle <= ft:
                    fetch_cycle = ft + 1
                    fetched = 0
                    cur_line = -1
            elif is_ind[opid]:
                if opid == _RET_ID:
                    mis = branch_unit.resolve_return(pc, targets[i])
                else:
                    mis = branch_unit.resolve_indirect(pc, targets[i])
                if mis:
                    redirect = complete + penalty
                elif fetch_cycle <= ft:
                    fetch_cycle = ft + 1
                    fetched = 0
                    cur_line = -1

            # ---- writeback -----------------------------------------------
            for d in dsts[i]:
                if d < 0:
                    break
                reg_ready[d] = complete
            if complete > max_complete:
                max_complete = complete
            if oc == BARRIER:
                fence_ready = complete

            # ---- retire ---------------------------------------------------
            rt = complete + 1
            if i:
                p = retire[i - 1]
                if p > rt:
                    rt = p
            if i >= cw:
                c = retire[i - cw] + 1
                if c > rt:
                    rt = c
            retire[i] = rt
            prev_issue = t

        stats: dict[str, int | float] = {
            "instructions": n,
            "cycles": retire[-1],
            "ipc": n / max(retire[-1], 1),
            "branches": branch_unit.branches,
            "mispredicts": branch_unit.mispredicts,
        }
        stats.update(hierarchy.stats())
        return SimResult(
            config_name=cfg.name,
            freq_ghz=core.freq_ghz,
            retire_cycles=np.asarray(retire, dtype=np.int64),
            stats=stats,
        )


def simulate(trace: Trace, config: MicroarchConfig) -> SimResult:
    """One-shot simulation of ``trace`` on ``config``."""
    return CPUSimulator(config).run(trace)
