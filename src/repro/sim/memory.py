"""DRAM latency/bandwidth model.

Each cache-line fill pays the technology's base latency plus queueing
behind earlier transfers on the single channel; the channel is busy for
``line_bytes / bandwidth`` per fill.  This reproduces the first-order
behaviour the paper's memory knobs (type, bandwidth, frequency) control:
latency-bound pointer chasing sees the base latency, streaming kernels
saturate the channel and see queueing delay grow.
"""

from __future__ import annotations

from repro.uarch.config import MemoryConfig


class DRAMModel:
    """Single-channel DRAM with base latency and finite bandwidth."""

    __slots__ = ("latency_cycles", "transfer_cycles", "busy_until", "accesses")

    def __init__(self, config: MemoryConfig, freq_ghz: float, line_bytes: int = 64):
        # cycles = ns * GHz
        self.latency_cycles = max(1, round(config.latency_ns * freq_ghz))
        # transfer time of one line in cycles: bytes / (GB/s) = ns
        self.transfer_cycles = max(1, round(line_bytes / config.bandwidth_gbps * freq_ghz))
        self.busy_until = 0
        self.accesses = 0

    def access(self, now: int) -> int:
        """Latency (cycles) of a line fill issued around cycle ``now``."""
        self.accesses += 1
        start = now if now > self.busy_until else self.busy_until
        self.busy_until = start + self.transfer_cycles
        return (start - now) + self.latency_cycles + self.transfer_cycles
