"""Microarchitecture configuration space.

The paper samples 70 random gem5 configurations (60 out-of-order, 10
in-order) plus 7 predefined ones, varying processor, cache and memory
parameters (Sec. IV-C).  This package provides the equivalent:
:class:`MicroarchConfig` dataclasses with validity rules, a seeded random
sampler, the seven presets (including the ARM Cortex-A7-like in-order core
used by the paper's Figs. 7-8), and the parameter-vector encoding consumed
by the microarchitecture representation model in DSE.
"""

from repro.uarch.config import (
    BranchPredictorConfig,
    CacheConfig,
    CoreConfig,
    FUConfig,
    MemoryConfig,
    MicroarchConfig,
)
from repro.uarch.presets import PRESETS, cortex_a7_like, preset
from repro.uarch.sampling import sample_config, sample_configs

__all__ = [
    "BranchPredictorConfig",
    "CacheConfig",
    "CoreConfig",
    "FUConfig",
    "MemoryConfig",
    "MicroarchConfig",
    "PRESETS",
    "cortex_a7_like",
    "preset",
    "sample_config",
    "sample_configs",
]
