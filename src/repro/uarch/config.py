"""Microarchitecture configuration dataclasses.

A :class:`MicroarchConfig` fully determines the timing simulator's behaviour:
core kind and widths, functional units, branch predictor, the three-level
cache hierarchy (L1I, L1D, unified L2 with optional exclusivity) and the
memory system.  ``to_feature_vector`` produces the normalized parameter
vector the microarchitecture representation model consumes during design
space exploration (paper Sec. VI-A trains an MLP from such parameters).
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass, field, replace

import numpy as np

from repro.isa.opcodes import OpClass


class CoreKind(str, enum.Enum):
    IN_ORDER = "inorder"
    OUT_OF_ORDER = "ooo"


class PredictorKind(str, enum.Enum):
    STATIC = "static"  # backward taken / forward not-taken
    BIMODAL = "bimodal"
    GSHARE = "gshare"
    TOURNAMENT = "tournament"


class MemoryKind(str, enum.Enum):
    DDR4 = "DDR4"
    LPDDR5 = "LPDDR5"
    GDDR5 = "GDDR5"
    HBM = "HBM"


#: Typical (latency_ns, bandwidth_GBps) per memory technology, used as the
#: sampler's anchor points; samples jitter around these.
MEMORY_BASELINES: dict[MemoryKind, tuple[float, float]] = {
    MemoryKind.DDR4: (70.0, 25.0),
    MemoryKind.LPDDR5: (90.0, 40.0),
    MemoryKind.GDDR5: (60.0, 80.0),
    MemoryKind.HBM: (50.0, 250.0),
}


@dataclass(frozen=True)
class FUConfig:
    """A pool of functional units of one kind."""

    count: int
    latency: int
    pipelined: bool = True

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("functional unit count must be >= 1")
        if self.latency < 1:
            raise ValueError("functional unit latency must be >= 1")


@dataclass(frozen=True)
class CoreConfig:
    """Pipeline shape and execution resources."""

    kind: CoreKind
    freq_ghz: float
    fetch_width: int
    frontend_depth: int  # cycles between fetch and earliest issue
    issue_width: int
    commit_width: int
    rob_size: int  # instruction window (ignored for in-order cores)
    int_alu: FUConfig
    int_mul: FUConfig
    int_div: FUConfig
    fp_add: FUConfig
    fp_mul: FUConfig
    fp_div: FUConfig
    mem_ports: int
    mshrs: int  # outstanding cache misses (memory-level parallelism)

    def __post_init__(self) -> None:
        if not 0.5 <= self.freq_ghz <= 6.0:
            raise ValueError(f"unrealistic frequency {self.freq_ghz} GHz")
        for name in ("fetch_width", "issue_width", "commit_width"):
            width = getattr(self, name)
            if not 1 <= width <= 16:
                raise ValueError(f"{name} must be in [1, 16], got {width}")
        if self.kind is CoreKind.OUT_OF_ORDER and not 8 <= self.rob_size <= 1024:
            raise ValueError("rob_size must be in [8, 1024] for OoO cores")
        if not 1 <= self.frontend_depth <= 20:
            raise ValueError("frontend_depth must be in [1, 20]")
        if not 1 <= self.mem_ports <= 8:
            raise ValueError("mem_ports must be in [1, 8]")
        if not 1 <= self.mshrs <= 64:
            raise ValueError("mshrs must be in [1, 64]")

    def fu_for(self, opclass: OpClass) -> FUConfig:
        """Functional-unit pool responsible for ``opclass``."""
        table = {
            OpClass.INT_ALU: self.int_alu,
            OpClass.INT_MUL: self.int_mul,
            OpClass.INT_DIV: self.int_div,
            OpClass.FP_ADD: self.fp_add,
            OpClass.FP_MUL: self.fp_mul,
            OpClass.FP_DIV: self.fp_div,
        }
        return table.get(opclass, self.int_alu)


@dataclass(frozen=True)
class BranchPredictorConfig:
    kind: PredictorKind
    table_bits: int  # log2 of counter-table entries
    history_bits: int  # global-history length (gshare/tournament)
    btb_bits: int  # log2 of BTB entries
    ras_entries: int  # return-address-stack depth
    mispredict_penalty: int  # redirect cycles after resolution

    def __post_init__(self) -> None:
        if not 4 <= self.table_bits <= 20:
            raise ValueError("table_bits must be in [4, 20]")
        if not 0 <= self.history_bits <= 20:
            raise ValueError("history_bits must be in [0, 20]")
        if not 4 <= self.btb_bits <= 16:
            raise ValueError("btb_bits must be in [4, 16]")
        if not 0 <= self.ras_entries <= 64:
            raise ValueError("ras_entries must be in [0, 64]")
        if not 1 <= self.mispredict_penalty <= 40:
            raise ValueError("mispredict_penalty must be in [1, 40]")


@dataclass(frozen=True)
class CacheConfig:
    size_kb: int
    assoc: int
    latency: int  # access cycles
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_kb < 1 or self.size_kb & (self.size_kb - 1):
            raise ValueError("cache size (kB) must be a positive power of two")
        if self.assoc < 1 or self.assoc & (self.assoc - 1):
            raise ValueError("associativity must be a positive power of two")
        if self.line_bytes not in (32, 64, 128):
            raise ValueError("line size must be 32, 64 or 128 bytes")
        if not 1 <= self.latency <= 100:
            raise ValueError("cache latency must be in [1, 100] cycles")
        if self.num_sets < 1:
            raise ValueError("associativity exceeds cache capacity")

    @property
    def num_lines(self) -> int:
        return self.size_kb * 1024 // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.assoc


@dataclass(frozen=True)
class MemoryConfig:
    kind: MemoryKind
    latency_ns: float
    bandwidth_gbps: float

    def __post_init__(self) -> None:
        if not 10.0 <= self.latency_ns <= 500.0:
            raise ValueError("memory latency must be in [10, 500] ns")
        if not 1.0 <= self.bandwidth_gbps <= 2000.0:
            raise ValueError("memory bandwidth must be in [1, 2000] GB/s")


@dataclass(frozen=True)
class MicroarchConfig:
    """A complete microarchitecture."""

    name: str
    core: CoreConfig
    branch: BranchPredictorConfig
    l1i: CacheConfig
    l1d: CacheConfig
    l2: CacheConfig
    memory: MemoryConfig
    l2_exclusive: bool = False

    def __post_init__(self) -> None:
        if self.l2.size_kb < max(self.l1i.size_kb, self.l1d.size_kb):
            raise ValueError("L2 must be at least as large as each L1")
        if not (self.l1i.line_bytes == self.l1d.line_bytes == self.l2.line_bytes):
            raise ValueError("all cache levels must share a line size")

    def with_cache_sizes(
        self, l1d_kb: int | None = None, l2_kb: int | None = None,
        name: str | None = None,
    ) -> "MicroarchConfig":
        """Clone with different L1D/L2 capacities (the Fig. 7 DSE knobs)."""
        l1d = replace(self.l1d, size_kb=l1d_kb) if l1d_kb else self.l1d
        l2 = replace(self.l2, size_kb=l2_kb) if l2_kb else self.l2
        new_name = name or f"{self.name}_l1d{l1d.size_kb}k_l2{l2.size_kb}k"
        return replace(self, name=new_name, l1d=l1d, l2=l2)

    # ------------------------------------------------------------------
    # JSON round-trip (model artifacts store the configs they were
    # trained against; see repro.models.store)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable description; inverse of :func:`config_from_dict`."""
        data = asdict(self)
        data["core"]["kind"] = self.core.kind.value
        data["branch"]["kind"] = self.branch.kind.value
        data["memory"]["kind"] = self.memory.kind.value
        return data

    # ------------------------------------------------------------------
    # parameter-vector encoding for the microarchitecture representation
    # model (log scales for capacities, one-hots for categoricals)
    # ------------------------------------------------------------------
    @staticmethod
    def feature_names() -> list[str]:
        names = [
            "is_ooo",
            "freq_ghz",
            "fetch_width",
            "frontend_depth",
            "issue_width",
            "commit_width",
            "log2_rob",
            "int_alu_count", "int_alu_lat",
            "int_mul_count", "int_mul_lat",
            "int_div_count", "int_div_lat",
            "fp_add_count", "fp_add_lat",
            "fp_mul_count", "fp_mul_lat",
            "fp_div_count", "fp_div_lat",
            "mem_ports",
            "log2_mshrs",
        ]
        names += [f"bp_{k.value}" for k in PredictorKind]
        names += [
            "bp_table_bits",
            "bp_history_bits",
            "bp_btb_bits",
            "bp_ras",
            "bp_penalty",
            "log2_l1i_kb", "log2_l1i_assoc", "l1i_lat",
            "log2_l1d_kb", "log2_l1d_assoc", "l1d_lat",
            "log2_l2_kb", "log2_l2_assoc", "l2_lat",
            "l2_exclusive",
        ]
        names += [f"mem_{k.value}" for k in MemoryKind]
        names += ["mem_latency_ns", "log2_mem_bw"]
        return names

    def to_feature_vector(self) -> np.ndarray:
        """Normalized parameter vector (float32) for the uarch model."""
        c, b = self.core, self.branch
        values = [
            1.0 if c.kind is CoreKind.OUT_OF_ORDER else 0.0,
            c.freq_ghz / 6.0,
            c.fetch_width / 16.0,
            c.frontend_depth / 20.0,
            c.issue_width / 16.0,
            c.commit_width / 16.0,
            (np.log2(c.rob_size) / 10.0
             if c.kind is CoreKind.OUT_OF_ORDER else 0.0),
        ]
        for fu in (c.int_alu, c.int_mul, c.int_div, c.fp_add, c.fp_mul, c.fp_div):
            values += [fu.count / 8.0, fu.latency / 40.0]
        values += [c.mem_ports / 8.0, np.log2(c.mshrs) / 6.0]
        values += [1.0 if b.kind is k else 0.0 for k in PredictorKind]
        values += [
            b.table_bits / 20.0,
            b.history_bits / 20.0,
            b.btb_bits / 16.0,
            b.ras_entries / 64.0,
            b.mispredict_penalty / 40.0,
        ]
        for cache in (self.l1i, self.l1d, self.l2):
            values += [
                np.log2(cache.size_kb) / 14.0,
                np.log2(cache.assoc) / 5.0,
                cache.latency / 100.0,
            ]
        values.append(1.0 if self.l2_exclusive else 0.0)
        values += [1.0 if self.memory.kind is k else 0.0 for k in MemoryKind]
        values += [
            self.memory.latency_ns / 500.0,
            np.log2(self.memory.bandwidth_gbps) / 11.0,
        ]
        vec = np.asarray(values, dtype=np.float32)
        assert len(vec) == len(self.feature_names())
        return vec


def config_from_dict(data: dict) -> MicroarchConfig:
    """Rebuild a :class:`MicroarchConfig` from :meth:`MicroarchConfig.to_dict`."""
    core = dict(data["core"])
    core["kind"] = CoreKind(core["kind"])
    for fu_name in ("int_alu", "int_mul", "int_div", "fp_add", "fp_mul", "fp_div"):
        core[fu_name] = FUConfig(**core[fu_name])
    branch = dict(data["branch"])
    branch["kind"] = PredictorKind(branch["kind"])
    memory = dict(data["memory"])
    memory["kind"] = MemoryKind(memory["kind"])
    return MicroarchConfig(
        name=data["name"],
        core=CoreConfig(**core),
        branch=BranchPredictorConfig(**branch),
        l1i=CacheConfig(**data["l1i"]),
        l1d=CacheConfig(**data["l1d"]),
        l2=CacheConfig(**data["l2"]),
        memory=MemoryConfig(**memory),
        l2_exclusive=data["l2_exclusive"],
    )
