"""Predefined microarchitectures.

The paper complements its 70 random samples with "seven predefined
configurations in gem5 (four out-of-order and three in-order)".  These seven
presets play the same role; ``cortex-a7-like`` is the in-order core the
paper fixes for the cache-size DSE (Fig. 7) and loop-tiling (Fig. 8) studies.
"""

from __future__ import annotations

from repro.uarch.config import (
    BranchPredictorConfig,
    CacheConfig,
    CoreConfig,
    CoreKind,
    FUConfig,
    MemoryConfig,
    MemoryKind,
    MicroarchConfig,
    PredictorKind,
)


def _core(kind, freq, fetch, depth, issue, commit, rob, mem_ports, mshrs,
          alu, mul, div, fadd, fmul, fdiv) -> CoreConfig:
    return CoreConfig(
        kind=kind, freq_ghz=freq, fetch_width=fetch, frontend_depth=depth,
        issue_width=issue, commit_width=commit, rob_size=rob,
        int_alu=alu, int_mul=mul, int_div=div,
        fp_add=fadd, fp_mul=fmul, fp_div=fdiv,
        mem_ports=mem_ports, mshrs=mshrs,
    )


def cortex_a7_like() -> MicroarchConfig:
    """Small dual-issue in-order core (the paper's DSE/tiling baseline)."""
    return MicroarchConfig(
        name="cortex-a7-like",
        core=_core(
            CoreKind.IN_ORDER, 1.4, 2, 5, 2, 2, 8, 1, 4,
            alu=FUConfig(2, 1), mul=FUConfig(1, 4),
            div=FUConfig(1, 20, pipelined=False),
            fadd=FUConfig(1, 4), fmul=FUConfig(1, 5),
            fdiv=FUConfig(1, 25, pipelined=False),
        ),
        branch=BranchPredictorConfig(
            PredictorKind.BIMODAL, table_bits=9, history_bits=0,
            btb_bits=8, ras_entries=8, mispredict_penalty=8,
        ),
        l1i=CacheConfig(32, 2, 2),
        l1d=CacheConfig(32, 4, 3),
        l2=CacheConfig(512, 8, 12),
        memory=MemoryConfig(MemoryKind.DDR4, 80.0, 12.0),
    )


def cortex_a55_like() -> MicroarchConfig:
    """Modern little in-order core with a gshare predictor."""
    return MicroarchConfig(
        name="cortex-a55-like",
        core=_core(
            CoreKind.IN_ORDER, 2.0, 2, 6, 2, 2, 8, 1, 6,
            alu=FUConfig(2, 1), mul=FUConfig(1, 3),
            div=FUConfig(1, 16, pipelined=False),
            fadd=FUConfig(2, 3), fmul=FUConfig(1, 4),
            fdiv=FUConfig(1, 18, pipelined=False),
        ),
        branch=BranchPredictorConfig(
            PredictorKind.GSHARE, table_bits=11, history_bits=8,
            btb_bits=9, ras_entries=8, mispredict_penalty=9,
        ),
        l1i=CacheConfig(32, 4, 2),
        l1d=CacheConfig(64, 4, 3),
        l2=CacheConfig(256, 4, 10),
        memory=MemoryConfig(MemoryKind.LPDDR5, 95.0, 30.0),
    )


def microcontroller_like() -> MicroarchConfig:
    """Single-issue in-order core with a static predictor and tiny caches."""
    return MicroarchConfig(
        name="microcontroller-like",
        core=_core(
            CoreKind.IN_ORDER, 0.8, 1, 3, 1, 1, 8, 1, 1,
            alu=FUConfig(1, 1), mul=FUConfig(1, 6),
            div=FUConfig(1, 34, pipelined=False),
            fadd=FUConfig(1, 6), fmul=FUConfig(1, 8),
            fdiv=FUConfig(1, 34, pipelined=False),
        ),
        branch=BranchPredictorConfig(
            PredictorKind.STATIC, table_bits=4, history_bits=0,
            btb_bits=4, ras_entries=0, mispredict_penalty=4,
        ),
        l1i=CacheConfig(8, 2, 1),
        l1d=CacheConfig(8, 2, 2),
        l2=CacheConfig(64, 4, 9),
        memory=MemoryConfig(MemoryKind.DDR4, 110.0, 6.0),
    )


def cortex_a72_like() -> MicroarchConfig:
    """Mid-size 3-wide out-of-order core."""
    return MicroarchConfig(
        name="cortex-a72-like",
        core=_core(
            CoreKind.OUT_OF_ORDER, 2.2, 3, 8, 3, 3, 128, 2, 10,
            alu=FUConfig(2, 1), mul=FUConfig(1, 3),
            div=FUConfig(1, 18, pipelined=False),
            fadd=FUConfig(2, 3), fmul=FUConfig(2, 4),
            fdiv=FUConfig(1, 16, pipelined=False),
        ),
        branch=BranchPredictorConfig(
            PredictorKind.TOURNAMENT, table_bits=12, history_bits=11,
            btb_bits=11, ras_entries=16, mispredict_penalty=12,
        ),
        l1i=CacheConfig(32, 4, 2),
        l1d=CacheConfig(32, 4, 4),
        l2=CacheConfig(1024, 16, 15),
        memory=MemoryConfig(MemoryKind.DDR4, 75.0, 20.0),
    )


def skylake_like() -> MicroarchConfig:
    """Big 4-wide out-of-order desktop core."""
    return MicroarchConfig(
        name="skylake-like",
        core=_core(
            CoreKind.OUT_OF_ORDER, 3.6, 4, 10, 6, 4, 224, 3, 16,
            alu=FUConfig(4, 1), mul=FUConfig(1, 3),
            div=FUConfig(1, 21, pipelined=False),
            fadd=FUConfig(2, 4), fmul=FUConfig(2, 4),
            fdiv=FUConfig(1, 13, pipelined=False),
        ),
        branch=BranchPredictorConfig(
            PredictorKind.TOURNAMENT, table_bits=14, history_bits=14,
            btb_bits=12, ras_entries=32, mispredict_penalty=16,
        ),
        l1i=CacheConfig(32, 8, 3),
        l1d=CacheConfig(32, 8, 4),
        l2=CacheConfig(1024, 16, 14),
        memory=MemoryConfig(MemoryKind.DDR4, 70.0, 40.0),
    )


def zen_like() -> MicroarchConfig:
    """Wide out-of-order core with an exclusive L2."""
    return MicroarchConfig(
        name="zen-like",
        core=_core(
            CoreKind.OUT_OF_ORDER, 3.4, 4, 9, 5, 4, 192, 2, 12,
            alu=FUConfig(4, 1), mul=FUConfig(1, 3),
            div=FUConfig(1, 25, pipelined=False),
            fadd=FUConfig(2, 3), fmul=FUConfig(2, 4),
            fdiv=FUConfig(1, 15, pipelined=False),
        ),
        branch=BranchPredictorConfig(
            PredictorKind.TOURNAMENT, table_bits=13, history_bits=12,
            btb_bits=12, ras_entries=31, mispredict_penalty=14,
        ),
        l1i=CacheConfig(64, 4, 3),
        l1d=CacheConfig(32, 8, 4),
        l2=CacheConfig(512, 8, 12),
        memory=MemoryConfig(MemoryKind.DDR4, 72.0, 35.0),
        l2_exclusive=True,
    )


def server_like() -> MicroarchConfig:
    """High-frequency server core with HBM-class memory."""
    return MicroarchConfig(
        name="server-like",
        core=_core(
            CoreKind.OUT_OF_ORDER, 3.0, 5, 11, 6, 5, 256, 3, 24,
            alu=FUConfig(4, 1), mul=FUConfig(2, 3),
            div=FUConfig(1, 20, pipelined=False),
            fadd=FUConfig(3, 3), fmul=FUConfig(2, 4),
            fdiv=FUConfig(1, 14, pipelined=False),
        ),
        branch=BranchPredictorConfig(
            PredictorKind.TOURNAMENT, table_bits=15, history_bits=14,
            btb_bits=13, ras_entries=48, mispredict_penalty=15,
        ),
        l1i=CacheConfig(64, 8, 3),
        l1d=CacheConfig(64, 8, 4),
        l2=CacheConfig(2048, 16, 16),
        memory=MemoryConfig(MemoryKind.HBM, 55.0, 250.0),
    )


#: The seven predefined configurations (4 OoO + 3 in-order, as in the paper).
PRESETS: dict[str, MicroarchConfig] = {
    cfg.name: cfg
    for cfg in (
        cortex_a7_like(),
        cortex_a55_like(),
        microcontroller_like(),
        cortex_a72_like(),
        skylake_like(),
        zen_like(),
        server_like(),
    )
}


def preset(name: str) -> MicroarchConfig:
    """Look up a preset by name."""
    if name not in PRESETS:
        raise KeyError(f"unknown preset {name!r}; known: {sorted(PRESETS)}")
    return PRESETS[name]
