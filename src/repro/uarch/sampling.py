"""Random sampling of valid microarchitecture configurations.

Mirrors the paper's configuration-sampling tool (Sec. IV-C): "it can alter
processor, cache, and memory configurations ... randomly select cache sizes,
associativities, latencies, and exclusivity ... change the memory type,
bandwidth, and frequency."  Sampling is seeded and deterministic; the default
mix is 60 out-of-order + 10 in-order random configs plus the 7 presets,
yielding the paper's 77 training microarchitectures.
"""

from __future__ import annotations

import numpy as np

from repro.uarch.config import (
    BranchPredictorConfig,
    CacheConfig,
    CoreConfig,
    CoreKind,
    FUConfig,
    MemoryConfig,
    MEMORY_BASELINES,
    MemoryKind,
    MicroarchConfig,
    PredictorKind,
)
from repro.uarch.presets import PRESETS


def _choice(rng: np.random.Generator, options):
    return options[int(rng.integers(len(options)))]


def _sample_core(rng: np.random.Generator, kind: CoreKind) -> CoreConfig:
    ooo = kind is CoreKind.OUT_OF_ORDER
    issue_width = int(_choice(rng, [2, 3, 4, 6] if ooo else [1, 1, 2, 2]))
    return CoreConfig(
        kind=kind,
        freq_ghz=float(np.round(rng.uniform(1.0, 4.0 if ooo else 2.4), 2)),
        fetch_width=int(_choice(rng, [2, 3, 4, 6, 8] if ooo else [1, 2])),
        frontend_depth=int(rng.integers(4, 13 if ooo else 8)),
        issue_width=issue_width,
        commit_width=min(issue_width, int(_choice(rng, [2, 3, 4, 6] if ooo else [1, 2]))),
        rob_size=int(_choice(rng, [32, 64, 96, 128, 192, 256, 384])) if ooo else 8,
        int_alu=FUConfig(int(_choice(rng, [1, 2, 3, 4])), 1),
        int_mul=FUConfig(int(_choice(rng, [1, 2])), int(rng.integers(3, 7))),
        int_div=FUConfig(1, int(rng.integers(12, 36)), pipelined=False),
        fp_add=FUConfig(int(_choice(rng, [1, 2, 3])), int(rng.integers(2, 6))),
        fp_mul=FUConfig(int(_choice(rng, [1, 2])), int(rng.integers(3, 7))),
        fp_div=FUConfig(1, int(rng.integers(10, 30)), pipelined=False),
        mem_ports=int(_choice(rng, [1, 2, 3])),
        mshrs=int(_choice(rng, [2, 4, 8, 16, 32])) if ooo else int(_choice(rng, [1, 2, 4])),
    )


def _sample_branch(rng: np.random.Generator, kind: CoreKind) -> BranchPredictorConfig:
    ooo = kind is CoreKind.OUT_OF_ORDER
    pk = _choice(
        rng,
        [PredictorKind.GSHARE, PredictorKind.TOURNAMENT, PredictorKind.BIMODAL]
        if ooo
        else [PredictorKind.STATIC, PredictorKind.BIMODAL, PredictorKind.GSHARE],
    )
    table_bits = int(rng.integers(8, 16))
    return BranchPredictorConfig(
        kind=pk,
        table_bits=table_bits,
        history_bits=0 if pk in (PredictorKind.STATIC, PredictorKind.BIMODAL)
        else int(rng.integers(4, min(table_bits, 14))),
        btb_bits=int(rng.integers(6, 13)),
        ras_entries=int(_choice(rng, [0, 8, 16, 32])),
        mispredict_penalty=int(rng.integers(6, 20 if ooo else 12)),
    )


def _sample_cache(
    rng: np.random.Generator, sizes_kb, assocs, lat_range
) -> CacheConfig:
    size = int(_choice(rng, sizes_kb))
    assoc = int(_choice(rng, assocs))
    # keep at least one set
    while assoc > size * 1024 // 64:
        assoc //= 2
    return CacheConfig(
        size_kb=size, assoc=max(assoc, 1),
        latency=int(rng.integers(lat_range[0], lat_range[1] + 1)),
    )


def _sample_memory(rng: np.random.Generator) -> MemoryConfig:
    kind = _choice(rng, list(MemoryKind))
    base_lat, base_bw = MEMORY_BASELINES[kind]
    return MemoryConfig(
        kind=kind,
        latency_ns=float(np.round(base_lat * rng.uniform(0.7, 1.4), 1)),
        bandwidth_gbps=float(np.round(base_bw * rng.uniform(0.6, 1.5), 1)),
    )


def sample_config(
    rng: np.random.Generator, kind: CoreKind | None = None, name: str | None = None
) -> MicroarchConfig:
    """Sample one valid random microarchitecture."""
    if kind is None:
        kind = CoreKind.OUT_OF_ORDER if rng.random() < 6 / 7 else CoreKind.IN_ORDER
    core = _sample_core(rng, kind)
    l1i = _sample_cache(rng, [8, 16, 32, 64], [1, 2, 4, 8], (1, 3))
    l1d = _sample_cache(rng, [4, 8, 16, 32, 64, 128], [1, 2, 4, 8], (2, 5))
    min_l2 = max(l1i.size_kb, l1d.size_kb)
    l2_sizes = [s for s in [128, 256, 512, 1024, 2048, 4096, 8192] if s >= min_l2]
    l2 = _sample_cache(rng, l2_sizes, [4, 8, 16], (8, 25))
    return MicroarchConfig(
        name=name or f"random-{kind.value}",
        core=core,
        branch=_sample_branch(rng, kind),
        l1i=l1i,
        l1d=l1d,
        l2=l2,
        memory=_sample_memory(rng),
        l2_exclusive=bool(rng.random() < 0.25),
    )


def sample_configs(
    n_ooo: int = 60,
    n_inorder: int = 10,
    seed: int = 0,
    include_presets: bool = True,
) -> list[MicroarchConfig]:
    """The paper's recipe: random OoO + random in-order + the 7 presets.

    Defaults produce 77 configurations, matching Sec. IV-C.
    """
    if n_ooo < 0 or n_inorder < 0:
        raise ValueError("sample counts must be non-negative")
    rng = np.random.default_rng(seed)
    configs: list[MicroarchConfig] = []
    for i in range(n_ooo):
        configs.append(
            sample_config(rng, CoreKind.OUT_OF_ORDER, name=f"rand-ooo-{i:02d}")
        )
    for i in range(n_inorder):
        configs.append(
            sample_config(rng, CoreKind.IN_ORDER, name=f"rand-io-{i:02d}")
        )
    if include_presets:
        configs.extend(PRESETS.values())
    return configs
