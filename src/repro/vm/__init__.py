"""Functional virtual machine.

Executes assembled :class:`~repro.isa.program.Program` objects and records
the dynamic instruction trace.  The trace is *microarchitecture independent*
— the fact PerfVec's representation-reuse training optimization relies on
(Sec. IV-B of the paper): the same trace is timed on every sampled
microarchitecture by :mod:`repro.sim` without re-executing the program.
"""

from repro.vm.errors import VMError
from repro.vm.memory import Memory
from repro.vm.trace import Trace, TraceBuilder
from repro.vm.machine import Machine, run_program

__all__ = ["VMError", "Memory", "Trace", "TraceBuilder", "Machine", "run_program"]
