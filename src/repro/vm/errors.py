"""VM error types."""


class VMError(RuntimeError):
    """Unrecoverable execution error (bad pc, corrupt control flow, ...).

    Recoverable events — divide by zero, misaligned accesses — do *not*
    raise; they set the per-instruction fault flag recorded in the trace,
    mirroring how gem5 traces fault bits for the paper's Table I features.
    """
