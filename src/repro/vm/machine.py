"""The functional interpreter.

Each static instruction is compiled once into a Python closure ("threaded
code"); the run loop then dispatches through precompiled handlers, which is
what makes tracing 10^5-10^6 instruction workloads practical in pure Python.

Handlers return ``(next_index, mem_addr, taken, target, fault)``:

* ``next_index`` — code index to execute next (-1 stops the machine),
* ``mem_addr``   — effective byte address for loads/stores, else -1,
* ``taken``      — 1/0 for branches, -1 otherwise,
* ``target``     — resolved target pc for control transfers, else -1,
* ``fault``      — recoverable fault flag (divide by zero, misalignment,
  fp-domain errors); mirrors the "execution fault" feature of Table I.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.isa.instructions import Instruction
from repro.isa.program import INST_BYTES, Program, STACK_TOP
from repro.isa.registers import LR, SP
from repro.vm.errors import VMError
from repro.vm.memory import Memory, wrap_i64
from repro.vm.trace import Trace, TraceBuilder

_Handler = Callable[[], tuple[int, int, int, int, bool]]

_INT_BIN = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << (b & 63),
    "shr": lambda a, b: a >> (b & 63),
    "slt": lambda a, b: int(a < b),
    "seq": lambda a, b: int(a == b),
    "min": min,
    "max": max,
    "mul": lambda a, b: a * b,
}

_INT_IMM = {
    "addi": _INT_BIN["add"],
    "subi": _INT_BIN["sub"],
    "andi": _INT_BIN["and"],
    "ori": _INT_BIN["or"],
    "xori": _INT_BIN["xor"],
    "shli": _INT_BIN["shl"],
    "shri": _INT_BIN["shr"],
    "slti": _INT_BIN["slt"],
    "muli": _INT_BIN["mul"],
}

_FP_BIN = {
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fmin": min,
    "fmax": max,
}

_COND = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "ge": lambda a, b: a >= b,
}

#: Largest float magnitude convertible to int64 without clamping.
_FTOI_LIMIT = float(1 << 62)


class Machine:
    """Functional mini-ASM interpreter producing dynamic traces."""

    def __init__(self) -> None:
        self.regs: list[int] = [0] * 32
        self.fregs: list[float] = [0.0] * 32
        self.memory = Memory()
        self.halted = False

    # ------------------------------------------------------------------
    def reset(self, program: Program) -> None:
        self.regs = [0] * 32
        self.fregs = [0.0] * 32
        self.regs[SP] = STACK_TOP
        self.memory = Memory()
        self.memory.load_image(program.data)
        self.halted = False

    # ------------------------------------------------------------------
    def _compile(self, inst: Instruction, index: int, program: Program) -> _Handler:
        op = inst.op
        m = op.mnemonic
        regs = self.regs
        fregs = self.fregs
        memory = self.memory
        nxt = index + 1

        # ---- integer ALU ----------------------------------------------
        if m in _INT_BIN:
            fn = _INT_BIN[m]
            d = inst.dsts[0]
            a, b = inst.srcs

            def h_int_bin() -> tuple[int, int, int, int, bool]:
                if d:
                    regs[d] = wrap_i64(fn(regs[a], regs[b]))
                return nxt, -1, -1, -1, False

            return h_int_bin
        if m in _INT_IMM:
            fn = _INT_IMM[m]
            d = inst.dsts[0]
            a = inst.srcs[0]
            imm = int(inst.imm)

            def h_int_imm() -> tuple[int, int, int, int, bool]:
                if d:
                    regs[d] = wrap_i64(fn(regs[a], imm))
                return nxt, -1, -1, -1, False

            return h_int_imm
        if m == "mov":
            d = inst.dsts[0]
            a = inst.srcs[0]

            def h_mov() -> tuple[int, int, int, int, bool]:
                if d:
                    regs[d] = regs[a]
                return nxt, -1, -1, -1, False

            return h_mov
        if m == "movi":
            d = inst.dsts[0]
            imm = wrap_i64(int(inst.imm))

            def h_movi() -> tuple[int, int, int, int, bool]:
                if d:
                    regs[d] = imm
                return nxt, -1, -1, -1, False

            return h_movi
        if m in ("div", "rem"):
            d = inst.dsts[0]
            a, b = inst.srcs
            want_rem = m == "rem"

            def h_div() -> tuple[int, int, int, int, bool]:
                denom = regs[b]
                if denom == 0:
                    if d:
                        regs[d] = 0
                    return nxt, -1, -1, -1, True
                numer = regs[a]
                quot = abs(numer) // abs(denom)
                if (numer < 0) != (denom < 0):
                    quot = -quot
                if d:
                    regs[d] = wrap_i64(numer - quot * denom if want_rem else quot)
                return nxt, -1, -1, -1, False

            return h_div

        # ---- floating point ---------------------------------------------
        if m in _FP_BIN:
            fn = _FP_BIN[m]
            d = inst.dsts[0] - 32
            a, b = (s - 32 for s in inst.srcs)

            def h_fp_bin() -> tuple[int, int, int, int, bool]:
                fregs[d] = fn(fregs[a], fregs[b])
                return nxt, -1, -1, -1, False

            return h_fp_bin
        if m == "fdiv":
            d = inst.dsts[0] - 32
            a, b = (s - 32 for s in inst.srcs)

            def h_fdiv() -> tuple[int, int, int, int, bool]:
                denom = fregs[b]
                if denom == 0.0:
                    fregs[d] = math.copysign(math.inf, fregs[a]) if fregs[a] else 0.0
                    return nxt, -1, -1, -1, True
                fregs[d] = fregs[a] / denom
                return nxt, -1, -1, -1, False

            return h_fdiv
        if m == "fsqrt":
            d = inst.dsts[0] - 32
            a = inst.srcs[0] - 32

            def h_fsqrt() -> tuple[int, int, int, int, bool]:
                value = fregs[a]
                if value < 0.0:
                    fregs[d] = 0.0
                    return nxt, -1, -1, -1, True
                fregs[d] = math.sqrt(value)
                return nxt, -1, -1, -1, False

            return h_fsqrt
        if m in ("fneg", "fabs", "fmov"):
            d = inst.dsts[0] - 32
            a = inst.srcs[0] - 32
            fn = {"fneg": lambda x: -x, "fabs": abs, "fmov": lambda x: x}[m]

            def h_fp_un() -> tuple[int, int, int, int, bool]:
                fregs[d] = fn(fregs[a])
                return nxt, -1, -1, -1, False

            return h_fp_un
        if m == "fma":
            d = inst.dsts[0] - 32
            a, b, c = (s - 32 for s in inst.srcs)

            def h_fma() -> tuple[int, int, int, int, bool]:
                fregs[d] = fregs[a] * fregs[b] + fregs[c]
                return nxt, -1, -1, -1, False

            return h_fma
        if m == "itof":
            d = inst.dsts[0] - 32
            a = inst.srcs[0]

            def h_itof() -> tuple[int, int, int, int, bool]:
                fregs[d] = float(regs[a])
                return nxt, -1, -1, -1, False

            return h_itof
        if m == "ftoi":
            d = inst.dsts[0]
            a = inst.srcs[0] - 32

            def h_ftoi() -> tuple[int, int, int, int, bool]:
                value = fregs[a]
                if value != value:  # NaN
                    if d:
                        regs[d] = 0
                    return nxt, -1, -1, -1, True
                if abs(value) > _FTOI_LIMIT:
                    if d:
                        regs[d] = (1 << 62) if value > 0 else -(1 << 62)
                    return nxt, -1, -1, -1, True
                if d:
                    regs[d] = int(value)
                return nxt, -1, -1, -1, False

            return h_ftoi
        if m == "fcmplt":
            d = inst.dsts[0]
            a, b = (s - 32 for s in inst.srcs)

            def h_fcmplt() -> tuple[int, int, int, int, bool]:
                if d:
                    regs[d] = int(fregs[a] < fregs[b])
                return nxt, -1, -1, -1, False

            return h_fcmplt
        if m == "fmovi":
            d = inst.dsts[0] - 32
            imm = float(inst.imm)

            def h_fmovi() -> tuple[int, int, int, int, bool]:
                fregs[d] = imm
                return nxt, -1, -1, -1, False

            return h_fmovi

        # ---- memory ------------------------------------------------------
        if op.is_mem:
            mem = inst.mem
            base = mem.base
            idx_reg = mem.index
            scale = mem.scale
            offset = mem.offset
            has_index = idx_reg >= 0
            is_load = op.is_load
            fp_data = op.fp_data
            reg = (inst.dsts[0] if is_load else inst.srcs[0])
            if fp_data:
                reg -= 32

            def h_mem() -> tuple[int, int, int, int, bool]:
                addr = regs[base] + offset
                if has_index:
                    addr += regs[idx_reg] * scale
                fault = False
                if addr & 7:
                    addr &= ~7
                    fault = True
                if addr < 0:
                    addr = 0
                    fault = True
                if is_load:
                    if fp_data:
                        fregs[reg] = memory.read_float(addr)
                    elif reg:
                        regs[reg] = memory.read_word(addr)
                else:
                    if fp_data:
                        memory.write_float(addr, fregs[reg])
                    else:
                        memory.write_word(addr, regs[reg])
                return nxt, addr, -1, -1, fault

            return h_mem

        # ---- control -----------------------------------------------------
        if op.is_conditional:
            target_pc = int(inst.target)
            target_idx = program.index_of(target_pc)
            if op.cond in ("eqz", "nez"):
                a = inst.srcs[0]
                want_zero = op.cond == "eqz"

                def h_brz() -> tuple[int, int, int, int, bool]:
                    taken = (regs[a] == 0) == want_zero
                    return (
                        target_idx if taken else nxt,
                        -1,
                        int(taken),
                        target_pc,
                        False,
                    )

                return h_brz
            cond = _COND[op.cond]
            a, b = inst.srcs

            def h_br() -> tuple[int, int, int, int, bool]:
                taken = cond(regs[a], regs[b])
                return (
                    target_idx if taken else nxt,
                    -1,
                    int(taken),
                    target_pc,
                    False,
                )

            return h_br
        if m == "jmp":
            target_pc = int(inst.target)
            target_idx = program.index_of(target_pc)

            def h_jmp() -> tuple[int, int, int, int, bool]:
                return target_idx, -1, 1, target_pc, False

            return h_jmp
        if m == "call":
            target_pc = int(inst.target)
            target_idx = program.index_of(target_pc)
            return_pc = program.pc_of(index) + INST_BYTES

            def h_call() -> tuple[int, int, int, int, bool]:
                regs[LR] = return_pc
                return target_idx, -1, 1, target_pc, False

            return h_call
        if m in ("jr", "ret"):
            a = LR if m == "ret" else inst.srcs[0]

            def h_jr() -> tuple[int, int, int, int, bool]:
                pc = regs[a]
                try:
                    target_idx = program.index_of(pc)
                except ValueError as exc:
                    raise VMError(f"indirect jump to bad pc {pc:#x}") from exc
                return target_idx, -1, 1, pc, False

            return h_jr
        if m in ("fence", "nop"):

            def h_nop() -> tuple[int, int, int, int, bool]:
                return nxt, -1, -1, -1, False

            return h_nop
        if m == "halt":

            def h_halt() -> tuple[int, int, int, int, bool]:
                return -1, -1, -1, -1, False

            return h_halt

        raise VMError(f"no handler for opcode {m!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    def run(
        self,
        program: Program,
        max_instructions: int = 1_000_000,
        name: str | None = None,
    ) -> Trace:
        """Execute ``program``, returning its dynamic trace.

        Execution stops at ``halt`` or after ``max_instructions`` dynamic
        instructions (the analogue of the paper's 100M-instruction gem5
        simulation cap).
        """
        if max_instructions <= 0:
            raise ValueError("max_instructions must be positive")
        self.reset(program)
        handlers = [
            self._compile(inst, i, program) for i, inst in enumerate(program.code)
        ]
        code = program.code
        pcs = [program.pc_of(i) for i in range(len(code))]
        builder = TraceBuilder(name or program.name)
        append = builder.append
        idx = program.index_of(program.entry)
        count = 0
        while count < max_instructions:
            inst = code[idx]
            nxt, mem_addr, taken, target, fault = handlers[idx]()
            append(
                pcs[idx],
                inst.op.opid,
                inst.src_slots,
                inst.dst_slots,
                mem_addr,
                taken,
                target,
                fault,
            )
            count += 1
            if nxt < 0:
                self.halted = True
                break
            if nxt >= len(code):
                raise VMError("execution fell off the end of the code segment")
            idx = nxt
        return builder.finalize()


def run_program(
    program: Program, max_instructions: int = 1_000_000, name: str | None = None
) -> Trace:
    """Run ``program`` on a fresh machine and return its trace."""
    return Machine().run(program, max_instructions=max_instructions, name=name)
