"""Sparse paged word-addressed memory.

Memory is a dictionary of 4 KiB pages, each a NumPy ``int64`` array of 512
words.  Floating-point values are stored bit-cast into the same words, as on
real hardware.  All accesses are 8-byte words; the VM records sub-word
semantics at the ISA level (there are none — the mini-ASM is word-oriented,
which keeps the timing simulator's cache model exact).
"""

from __future__ import annotations

import struct

import numpy as np

PAGE_SHIFT = 12
PAGE_BYTES = 1 << PAGE_SHIFT
PAGE_WORDS = PAGE_BYTES // 8

_U64 = (1 << 64) - 1
_S64_SIGN = 1 << 63


def wrap_i64(value: int) -> int:
    """Wrap a Python int to signed 64-bit two's-complement."""
    value &= _U64
    return value - (1 << 64) if value >= _S64_SIGN else value


def float_to_bits(value: float) -> int:
    """Bit-cast a float64 to its signed 64-bit integer representation."""
    return wrap_i64(struct.unpack("<q", struct.pack("<d", value))[0])


def bits_to_float(value: int) -> float:
    """Bit-cast a signed 64-bit integer back to float64."""
    return struct.unpack("<d", struct.pack("<q", wrap_i64(value)))[0]


class Memory:
    """Sparse paged memory; unmapped reads return zero."""

    __slots__ = ("_pages",)

    def __init__(self) -> None:
        self._pages: dict[int, np.ndarray] = {}

    def _page_for_write(self, addr: int) -> np.ndarray:
        key = addr >> PAGE_SHIFT
        page = self._pages.get(key)
        if page is None:
            page = np.zeros(PAGE_WORDS, dtype=np.int64)
            self._pages[key] = page
        return page

    def read_word(self, addr: int) -> int:
        """Read the signed 64-bit word at byte address ``addr`` (8-aligned)."""
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            return 0
        return int(page[(addr & (PAGE_BYTES - 1)) >> 3])

    def write_word(self, addr: int, value: int) -> None:
        """Write a signed 64-bit word at byte address ``addr`` (8-aligned)."""
        page = self._page_for_write(addr)
        page[(addr & (PAGE_BYTES - 1)) >> 3] = wrap_i64(value)

    def read_float(self, addr: int) -> float:
        return bits_to_float(self.read_word(addr))

    def write_float(self, addr: int, value: float) -> None:
        self.write_word(addr, float_to_bits(value))

    def load_image(self, image: dict[int, int | float]) -> None:
        """Install a program's initial data image."""
        for addr, value in image.items():
            if isinstance(value, float):
                self.write_float(addr, value)
            else:
                self.write_word(addr, value)

    @property
    def mapped_bytes(self) -> int:
        """Total bytes of mapped pages (footprint diagnostic)."""
        return len(self._pages) * PAGE_BYTES
