"""Dynamic instruction trace as a structure of arrays.

A :class:`Trace` holds everything downstream consumers need:

* the timing simulator (:mod:`repro.sim`) reads pcs, op classes, operand
  slots, memory addresses and resolved branch targets;
* the feature encoder (:mod:`repro.features`) additionally reads the
  branch-taken bits and fault flags (Table I "execution behaviour").

Per-opcode property lookup tables (``OP_*``) let consumers derive boolean
masks (is-load, is-conditional-branch, ...) with a single fancy-indexing
operation instead of storing redundant columns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.isa.instructions import MAX_DST_SLOTS, MAX_SRC_SLOTS
from repro.isa.opcodes import OPCODE_BY_ID, OpClass


def _op_table(predicate) -> np.ndarray:
    return np.array([predicate(spec) for spec in OPCODE_BY_ID], dtype=bool)


#: Per-opcode-id property tables (index with ``trace.opid``).
OP_CLASS = np.array([spec.opclass for spec in OPCODE_BY_ID], dtype=np.int8)
OP_IS_BRANCH = _op_table(lambda s: s.is_branch)
OP_IS_COND = _op_table(lambda s: s.is_conditional)
OP_IS_DIRECT = _op_table(lambda s: s.is_direct)
OP_IS_INDIRECT = _op_table(lambda s: s.is_indirect)
OP_IS_LOAD = _op_table(lambda s: s.is_load)
OP_IS_STORE = _op_table(lambda s: s.is_store)
OP_IS_MEM = _op_table(lambda s: s.is_mem)
OP_IS_BARRIER = _op_table(lambda s: s.opclass is OpClass.BARRIER)
OP_FP_DATA = _op_table(lambda s: s.fp_data)


@dataclass(frozen=True)
class Trace:
    """Immutable dynamic execution trace (structure of arrays)."""

    name: str
    pc: np.ndarray  # int64 [n]
    opid: np.ndarray  # int16 [n]
    src_slots: np.ndarray  # int16 [n, 8], REG_NONE padded
    dst_slots: np.ndarray  # int16 [n, 6], REG_NONE padded
    mem_addr: np.ndarray  # int64 [n], -1 where not a memory op
    branch_taken: np.ndarray  # int8 [n], -1 non-branch / 0 / 1
    branch_target: np.ndarray  # int64 [n], -1 where unknown/not a branch
    fault: np.ndarray  # bool [n]

    def __post_init__(self) -> None:
        n = len(self.pc)
        for field_name in (
            "opid", "mem_addr", "branch_taken", "branch_target", "fault",
        ):
            if len(getattr(self, field_name)) != n:
                raise ValueError(f"trace field {field_name} length mismatch")
        if self.src_slots.shape != (n, MAX_SRC_SLOTS):
            raise ValueError("src_slots shape mismatch")
        if self.dst_slots.shape != (n, MAX_DST_SLOTS):
            raise ValueError("dst_slots shape mismatch")

    def __len__(self) -> int:
        return len(self.pc)

    # ---- derived masks -------------------------------------------------
    @property
    def opclass(self) -> np.ndarray:
        return OP_CLASS[self.opid]

    @property
    def is_branch(self) -> np.ndarray:
        return OP_IS_BRANCH[self.opid]

    @property
    def is_cond_branch(self) -> np.ndarray:
        return OP_IS_COND[self.opid]

    @property
    def is_load(self) -> np.ndarray:
        return OP_IS_LOAD[self.opid]

    @property
    def is_store(self) -> np.ndarray:
        return OP_IS_STORE[self.opid]

    @property
    def is_mem(self) -> np.ndarray:
        return OP_IS_MEM[self.opid]

    def head(self, n: int) -> "Trace":
        """First ``n`` instructions as a new trace (a view, not a copy)."""
        return Trace(
            name=self.name,
            pc=self.pc[:n],
            opid=self.opid[:n],
            src_slots=self.src_slots[:n],
            dst_slots=self.dst_slots[:n],
            mem_addr=self.mem_addr[:n],
            branch_taken=self.branch_taken[:n],
            branch_target=self.branch_target[:n],
            fault=self.fault[:n],
        )

    def summary(self) -> dict[str, float]:
        """Aggregate mix statistics (useful in tests and workload docs)."""
        n = max(len(self), 1)
        branches = self.is_cond_branch
        taken = self.branch_taken == 1
        return {
            "instructions": float(len(self)),
            "load_frac": float(self.is_load.sum()) / n,
            "store_frac": float(self.is_store.sum()) / n,
            "branch_frac": float(branches.sum()) / n,
            "taken_frac": float((branches & taken).sum()) / max(int(branches.sum()), 1),
            "fp_frac": float(np.isin(self.opclass, (3, 4, 5)).sum()) / n,
            "fault_frac": float(self.fault.sum()) / n,
        }


class TraceBuilder:
    """Accumulates per-instruction records and finalizes into a Trace."""

    def __init__(self, name: str = "trace") -> None:
        self.name = name
        self._pc: list[int] = []
        self._opid: list[int] = []
        self._src: list[tuple[int, ...]] = []
        self._dst: list[tuple[int, ...]] = []
        self._mem: list[int] = []
        self._taken: list[int] = []
        self._target: list[int] = []
        self._fault: list[bool] = []

    def __len__(self) -> int:
        return len(self._pc)

    def append(
        self,
        pc: int,
        opid: int,
        src_slots: tuple[int, ...],
        dst_slots: tuple[int, ...],
        mem_addr: int = -1,
        taken: int = -1,
        target: int = -1,
        fault: bool = False,
    ) -> None:
        self._pc.append(pc)
        self._opid.append(opid)
        self._src.append(src_slots)
        self._dst.append(dst_slots)
        self._mem.append(mem_addr)
        self._taken.append(taken)
        self._target.append(target)
        self._fault.append(fault)

    def finalize(self) -> Trace:
        n = len(self._pc)
        if n == 0:
            raise ValueError("empty trace")
        return Trace(
            name=self.name,
            pc=np.asarray(self._pc, dtype=np.int64),
            opid=np.asarray(self._opid, dtype=np.int16),
            src_slots=np.asarray(self._src, dtype=np.int16).reshape(n, MAX_SRC_SLOTS),
            dst_slots=np.asarray(self._dst, dtype=np.int16).reshape(n, MAX_DST_SLOTS),
            mem_addr=np.asarray(self._mem, dtype=np.int64),
            branch_taken=np.asarray(self._taken, dtype=np.int8),
            branch_target=np.asarray(self._target, dtype=np.int64),
            fault=np.asarray(self._fault, dtype=bool),
        )
