"""Workload suite.

The paper trains and tests PerfVec on 17 SPEC CPU2017 benchmarks compiled to
ARMv8 (Table II).  SPEC binaries cannot ship offline, so each benchmark is
re-created as a mini-ASM kernel whose *dominant execution behaviour* matches
its SPEC counterpart (pointer chasing for ``505.mcf``, lattice streaming for
``519.lbm``, indirect-branch state machines for ``502.gcc``, ...).  The suite
keeps the paper's exact train/test split.
"""

from repro.workloads.suite import (
    ALL_BENCHMARKS,
    BENCHMARKS,
    TEST_BENCHMARKS,
    TRAIN_BENCHMARKS,
    WorkloadSpec,
    build_program,
    get_trace,
    trace_benchmark,
)

__all__ = [
    "ALL_BENCHMARKS",
    "BENCHMARKS",
    "TEST_BENCHMARKS",
    "TRAIN_BENCHMARKS",
    "WorkloadSpec",
    "build_program",
    "get_trace",
    "trace_benchmark",
]
