"""Shared assembly-construction helpers for workload kernels.

Kernels are written as f-string templates over these snippets.  Register
conventions used throughout the kernel modules:

* ``r20``-``r27`` — kernel parameters (sizes, bases) set once in the prologue,
* ``r1``-``r9``   — loop counters and addresses,
* ``r10``-``r19`` — temporaries,
* ``r30``         — LCG state for pseudo-random data,
* ``f1``-``f15``  — floating-point temporaries.
"""

from __future__ import annotations

import itertools

#: Knuth's MMIX LCG constants; multiplication wraps mod 2^64 in the VM.
LCG_A = 6364136223846793005
LCG_C = 1442695040888963407

_label_counter = itertools.count()


def fresh_label(stem: str) -> str:
    """Globally unique label (kernels may be concatenated into one program)."""
    return f"{stem}_{next(_label_counter)}"


def lcg_step(dst: str, state: str = "r30") -> str:
    """Advance the LCG in ``state`` and leave a positive 31-bit value in ``dst``.

    ``dst`` and ``state`` must differ unless the caller only needs the raw
    64-bit state.
    """
    return f"""
    muli {state}, {state}, {LCG_A}
    addi {state}, {state}, {LCG_C}
    shri {dst}, {state}, 33
    andi {dst}, {dst}, 0x7fffffff
    """


def init_int_array(base_reg: str, count_reg: str, mod: int, state: str = "r30") -> str:
    """Fill ``count_reg`` words at ``base_reg`` with LCG values in [0, mod).

    Clobbers r14, r15, r16 and the LCG state.
    """
    loop = fresh_label("init_i")
    return f"""
    movi r14, 0
{loop}:
    {lcg_step("r15", state)}
    movi r16, {mod}
    rem  r15, r15, r16
    st   r15, [{base_reg} + r14*8]
    addi r14, r14, 1
    blt  r14, {count_reg}, {loop}
    """


def init_fp_array(base_reg: str, count_reg: str, scale: float = 1.0,
                  state: str = "r30") -> str:
    """Fill ``count_reg`` doubles at ``base_reg`` with values in [0, scale).

    Clobbers r14, r15, f14, f15 and the LCG state.
    """
    loop = fresh_label("init_f")
    return f"""
    movi r14, 0
    fmovi f15, {scale / float(1 << 31)!r}
{loop}:
    {lcg_step("r15", state)}
    itof f14, r15
    fmul f14, f14, f15
    fst  f14, [{base_reg} + r14*8]
    addi r14, r14, 1
    blt  r14, {count_reg}, {loop}
    """


def py_lcg(seed: int, count: int, mod: int | None = None) -> list[int]:
    """Python replica of the ASM LCG stream (same constants, same shifts).

    Returns ``count`` values in ``[0, 2^31)``, reduced mod ``mod`` if given.
    Used to pre-initialize data segments so kernels start executing their
    hot loops immediately instead of spending the trace budget on init
    loops.
    """
    mask64 = (1 << 64) - 1
    x = seed & mask64
    out = []
    for _ in range(count):
        x = (x * LCG_A + LCG_C) & mask64
        value = (x >> 33) & 0x7FFFFFFF
        out.append(value % mod if mod else value)
    return out


def data_int(label: str, values: list[int], per_line: int = 16) -> str:
    """``.word`` data-segment block holding ``values`` under ``label``."""
    lines = [f"{label}:"]
    for i in range(0, len(values), per_line):
        chunk = ", ".join(str(v) for v in values[i : i + per_line])
        lines.append(f"    .word {chunk}")
    return "\n".join(lines)


def data_fp(label: str, values: list[float], per_line: int = 8) -> str:
    """``.double`` data-segment block holding ``values`` under ``label``."""
    lines = [f"{label}:"]
    for i in range(0, len(values), per_line):
        chunk = ", ".join(repr(float(v)) for v in values[i : i + per_line])
        lines.append(f"    .double {chunk}")
    return "\n".join(lines)


def random_fp(seed: int, count: int, scale: float = 1.0) -> list[float]:
    """``count`` floats in ``[0, scale)`` from the shared LCG stream."""
    return [v * scale / float(1 << 31) for v in py_lcg(seed, count)]


def outer_repeat(body: str, reps_reg: str = "r27", counter: str = "r29") -> str:
    """Wrap ``body`` in an outer repetition loop so traces reach any length.

    The counter register must not be touched by the body.
    """
    loop = fresh_label("repeat")
    return f"""
    movi {counter}, 0
{loop}:
{body}
    addi {counter}, {counter}, 1
    blt  {counter}, {reps_reg}, {loop}
    """
