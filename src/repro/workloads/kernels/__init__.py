"""Workload kernels, one module per behaviour family.

Each kernel function returns an assembled :class:`~repro.isa.program.Program`
parameterized by problem size, tiling, repetition count and RNG seed.  The
``reps`` parameter wraps the kernel body in an outer loop so traces can be cut
at any instruction budget (the analogue of the paper's 100M-instruction gem5
window); kernels used for functional correctness tests run with ``reps=1``.
"""

from repro.workloads.kernels import (  # noqa: F401
    compress,
    graph,
    linear_algebra,
    media,
    physics,
    random_gen,
    sort_search,
    stencil,
    strings,
)

__all__ = [
    "compress",
    "graph",
    "linear_algebra",
    "media",
    "physics",
    "random_gen",
    "sort_search",
    "stencil",
    "strings",
]
