"""Compression kernel (``557.xz``).

LZ77-style match finding: a hash of the next two symbols selects a candidate
position from a hash-head table, a byte-compare loop measures the match
length, and the table is updated — mixing hashing arithmetic, dependent
loads and two nested data-dependent loops, like the xz match finder.
"""

from __future__ import annotations

from repro.isa import Program, assemble
from repro.workloads.builders import data_int, fresh_label, outer_repeat, py_lcg


def xz(
    n: int = 4096,
    hash_bits: int = 10,
    max_match: int = 16,
    alphabet: int = 12,
    reps: int = 1,
    seed: int = 57005,
) -> Program:
    """LZ match-finding sweep over a small-alphabet symbol buffer."""
    if n < 8 or not 4 <= hash_bits <= 16 or max_match < 2:
        raise ValueError("bad xz parameters")
    table_size = 1 << hash_bits
    mask = table_size - 1
    loop, have_cand, matchloop, matchdone, nextpos = (
        fresh_label("xz"),
        fresh_label("xz_cand"),
        fresh_label("xz_m"),
        fresh_label("xz_md"),
        fresh_label("xz_next"),
    )
    body = f"""
    movi r1, 1
    movi r3, 0
{loop}:
    ; h = (sym[pos]*33 + sym[pos+1]) & mask
    ld   r10, [r7 + r1*8]
    muli r10, r10, 33
    addi r12, r1, 1
    ld   r11, [r7 + r12*8]
    add  r10, r10, r11
    andi r10, r10, {mask}
    ; candidate from head table, then update head
    ld   r2, [r8 + r10*8]
    st   r1, [r8 + r10*8]
    beqz r2, {nextpos}
    bge  r2, r1, {nextpos}
{have_cand}:
    ; match length loop
    movi r4, 0
{matchloop}:
    add  r12, r1, r4
    bge  r12, r22, {matchdone}
    add  r13, r2, r4
    ld   r10, [r7 + r12*8]
    ld   r11, [r7 + r13*8]
    bne  r10, r11, {matchdone}
    addi r4, r4, 1
    blt  r4, r21, {matchloop}
{matchdone}:
    add  r3, r3, r4
{nextpos}:
    addi r1, r1, 1
    blt  r1, r23, {loop}
    st   r3, [r9]
"""
    syms = py_lcg(seed, n, alphabet)
    text = f"""
.data
{data_int("xz_syms", syms)}
xz_head: .space {8 * table_size}
xz_out:  .space 8
.text
main:
    movi r21, {max_match}
    movi r22, {n - 1}
    movi r23, {n - 2}
    movi r7, xz_syms
    movi r8, xz_head
    movi r9, xz_out
    movi r27, {reps}
    {outer_repeat(body)}
    halt
"""
    return assemble(text, name=f"xz_n{n}")
