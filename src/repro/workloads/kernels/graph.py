"""Irregular-memory kernels (the ``505.mcf`` family).

``mcf`` performs arc relaxations over randomly wired endpoints — scattered
dependent loads and a data-dependent store, the classic minimum-cost-flow
inner loop.  ``pointer_chase`` walks an affine permutation linked list, the
canonical latency-bound access pattern.  ``xalancbmk`` is a DOM-style tree
walk.  All input arrays live in the data segment so traces start hot.
"""

from __future__ import annotations

from repro.isa import Program, assemble
from repro.workloads.builders import data_int, fresh_label, outer_repeat, py_lcg


def mcf(
    n_nodes: int = 2048, n_arcs: int = 6144, reps: int = 1, seed: int = 31337
) -> Program:
    """Bellman-Ford-style arc relaxation sweep over a random graph."""
    if n_nodes <= 1 or n_arcs <= 0:
        raise ValueError("need at least 2 nodes and 1 arc")
    loop, skip = fresh_label("mcf"), fresh_label("mcf_skip")
    body = f"""
    movi r1, 0
{loop}:
    ld   r10, [r7 + r1*8]
    ld   r11, [r8 + r1*8]
    ld   r12, [r13 + r10*8]
    ld   r16, [r9 + r1*8]
    add  r12, r12, r16
    ld   r17, [r13 + r11*8]
    bge  r12, r17, {skip}
    st   r12, [r13 + r11*8]
{skip}:
    addi r1, r1, 1
    blt  r1, r21, {loop}
"""
    stream = py_lcg(seed, 3 * n_arcs)
    src = [v % n_nodes for v in stream[:n_arcs]]
    dst = [v % n_nodes for v in stream[n_arcs : 2 * n_arcs]]
    cost = [v % 255 + 1 for v in stream[2 * n_arcs :]]
    dist = [0] + [1 << 40] * (n_nodes - 1)
    text = f"""
.data
{data_int("mcf_src", src)}
{data_int("mcf_dst", dst)}
{data_int("mcf_cost", cost)}
{data_int("mcf_dist", dist)}
.text
main:
    movi r20, {n_nodes}
    movi r21, {n_arcs}
    movi r7, mcf_src
    movi r8, mcf_dst
    movi r9, mcf_cost
    movi r13, mcf_dist
    movi r27, {reps}
    {outer_repeat(body)}
    halt
"""
    return assemble(text, name=f"mcf_n{n_nodes}_a{n_arcs}")


def pointer_chase(
    n: int = 4096, steps: int = 4096, reps: int = 1, seed: int = 4242
) -> Program:
    """Chase an affine-permutation linked list, accumulating payloads.

    ``n`` must be a power of two; the successor function ``next[i] =
    (a*i + c) mod n`` with odd ``a`` is a bijection, so the walk visits a
    full cycle with near-zero spatial locality.
    """
    if n & (n - 1) or n <= 1:
        raise ValueError("n must be a power of two > 1")
    if steps <= 0:
        raise ValueError("steps must be positive")
    loop = fresh_label("pc")
    body = f"""
    movi r2, 0
    movi r1, 0
{loop}:
    ld   r2, [r7 + r2*8]
    ld   r10, [r8 + r2*8]
    add  r3, r3, r10
    addi r1, r1, 1
    blt  r1, r24, {loop}
"""
    nxt = [(2654435761 * i + 97) & (n - 1) for i in range(n)]
    val = [v % 1023 for v in py_lcg(seed, n)]
    text = f"""
.data
{data_int("pc_next", nxt)}
{data_int("pc_val", val)}
.text
main:
    movi r24, {steps}
    movi r7, pc_next
    movi r8, pc_val
    movi r3, 0
    movi r27, {reps}
    {outer_repeat(body)}
    halt
"""
    return assemble(text, name=f"pointer_chase_n{n}")


def xalancbmk(
    n_nodes: int = 4096, fanout: int = 4, reps: int = 1, seed: int = 555
) -> Program:
    """DOM-style tree walk (``523.xalancbmk``).

    A complete ``fanout``-ary tree is laid out in implicit heap order; a DFS
    with an explicit stack visits every node, accumulating a transform of its
    payload.  Mixed pointer-ish loads, short branchy inner loops.
    """
    if n_nodes <= 1 or fanout < 2:
        raise ValueError("need n_nodes > 1 and fanout >= 2")
    loop, kids, push_done, done = (
        fresh_label("xa"),
        fresh_label("xa_kids"),
        fresh_label("xa_pd"),
        fresh_label("xa_done"),
    )
    body = f"""
    ; stack := [root]
    movi r1, 1
    st   r0, [r9]
    movi r3, 0
{loop}:
    beqz r1, {done}
    subi r1, r1, 1
    ld   r2, [r9 + r1*8]
    ; visit: acc += (val[node] ^ salt)
    ld   r10, [r8 + r2*8]
    xori r10, r10, 0x5a
    add  r3, r3, r10
    ; push children fanout*node + k for k = 1..fanout while < n
    muli r11, r2, {fanout}
    movi r12, 1
{kids}:
    add  r13, r11, r12
    bge  r13, r20, {push_done}
    st   r13, [r9 + r1*8]
    addi r1, r1, 1
    addi r12, r12, 1
    bge  r12, r21, {push_done}
    jmp  {kids}
{push_done}:
    jmp  {loop}
{done}:
    st   r3, [r16]
"""
    val = [v % 65536 for v in py_lcg(seed, n_nodes)]
    text = f"""
.data
{data_int("xa_val", val)}
xa_stack: .space {8 * (n_nodes + fanout + 2)}
xa_out:   .space 8
.text
main:
    movi r20, {n_nodes}
    movi r21, {fanout + 1}
    movi r8, xa_val
    movi r9, xa_stack
    movi r16, xa_out
    movi r27, {reps}
    {outer_repeat(body)}
    halt
"""
    return assemble(text, name=f"xalancbmk_n{n_nodes}")
