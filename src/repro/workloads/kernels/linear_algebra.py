"""Dense linear-algebra kernels.

``matmul`` is the loop-tiling subject of the paper's Fig. 8; ``dot``,
``axpy`` and ``matvec`` are smaller kernels used by examples and tests.
Input arrays are materialized in the data segment (generated with the same
LCG the ASM-side helpers use) so traces start inside the hot loops.
"""

from __future__ import annotations

from repro.isa import Program, assemble
from repro.workloads.builders import data_fp, fresh_label, outer_repeat, random_fp


def matmul(n: int = 24, tile: int = 8, reps: int = 1, seed: int = 12345) -> Program:
    """Tiled matrix multiply ``C += A @ B`` on ``n x n`` float64 matrices.

    ``tile`` blocks all three loops uniformly, exactly as in Sec. VI-B of the
    paper ("a uniform tile size is adopted for simplicity").  ``tile`` must
    divide ``n``.
    """
    if n <= 0 or tile <= 0:
        raise ValueError("n and tile must be positive")
    if n % tile:
        raise ValueError(f"tile {tile} must divide n {n}")
    lii, ljj, lkk = fresh_label("mm_ii"), fresh_label("mm_jj"), fresh_label("mm_kk")
    li, lj, lk = fresh_label("mm_i"), fresh_label("mm_j"), fresh_label("mm_k")
    body = f"""
    movi r1, 0
{lii}:
    add  r17, r1, r21
    movi r2, 0
{ljj}:
    add  r18, r2, r21
    movi r3, 0
{lkk}:
    add  r19, r3, r21
    mov  r4, r1
{li}:
    mov  r5, r2
{lj}:
    mul  r12, r4, r20
    add  r12, r12, r5
    fld  f3, [r9 + r12*8]
    mov  r6, r3
{lk}:
    mul  r10, r4, r20
    add  r10, r10, r6
    fld  f1, [r7 + r10*8]
    mul  r11, r6, r20
    add  r11, r11, r5
    fld  f2, [r8 + r11*8]
    fma  f3, f1, f2, f3
    addi r6, r6, 1
    blt  r6, r19, {lk}
    fst  f3, [r9 + r12*8]
    addi r5, r5, 1
    blt  r5, r18, {lj}
    addi r4, r4, 1
    blt  r4, r17, {li}
    add  r3, r3, r21
    blt  r3, r20, {lkk}
    add  r2, r2, r21
    blt  r2, r20, {ljj}
    add  r1, r1, r21
    blt  r1, r20, {lii}
"""
    stream = random_fp(seed, 2 * n * n)
    text = f"""
.data
{data_fp("mm_a", stream[: n * n])}
{data_fp("mm_b", stream[n * n :])}
mm_c: .space {8 * n * n}
.text
main:
    movi r20, {n}
    movi r21, {tile}
    movi r7, mm_a
    movi r8, mm_b
    movi r9, mm_c
    movi r27, {reps}
    {outer_repeat(body)}
    halt
"""
    return assemble(text, name=f"matmul_n{n}_t{tile}")


def dot(n: int = 4096, reps: int = 1, seed: int = 777) -> Program:
    """Dot product of two length-``n`` vectors (fma-dominated streaming)."""
    if n <= 0:
        raise ValueError("n must be positive")
    loop = fresh_label("dot")
    body = f"""
    movi r1, 0
    fmovi f3, 0.0
{loop}:
    fld  f1, [r7 + r1*8]
    fld  f2, [r8 + r1*8]
    fma  f3, f1, f2, f3
    addi r1, r1, 1
    blt  r1, r22, {loop}
    fst  f3, [r9]
"""
    stream = random_fp(seed, 2 * n)
    text = f"""
.data
{data_fp("dot_x", stream[:n])}
{data_fp("dot_y", stream[n:])}
dot_out: .space 8
.text
main:
    movi r22, {n}
    movi r7, dot_x
    movi r8, dot_y
    movi r9, dot_out
    movi r27, {reps}
    {outer_repeat(body)}
    halt
"""
    return assemble(text, name=f"dot_n{n}")


def axpy(n: int = 4096, alpha: float = 1.5, reps: int = 1, seed: int = 778) -> Program:
    """``y += alpha * x`` (load/store streaming with one fma per element)."""
    if n <= 0:
        raise ValueError("n must be positive")
    loop = fresh_label("axpy")
    body = f"""
    movi r1, 0
    fmovi f4, {alpha!r}
{loop}:
    fld  f1, [r7 + r1*8]
    fld  f2, [r8 + r1*8]
    fma  f2, f4, f1, f2
    fst  f2, [r8 + r1*8]
    addi r1, r1, 1
    blt  r1, r22, {loop}
"""
    stream = random_fp(seed, 2 * n)
    text = f"""
.data
{data_fp("axpy_x", stream[:n])}
{data_fp("axpy_y", stream[n:])}
.text
main:
    movi r22, {n}
    movi r7, axpy_x
    movi r8, axpy_y
    movi r27, {reps}
    {outer_repeat(body)}
    halt
"""
    return assemble(text, name=f"axpy_n{n}")


def matvec(n: int = 96, reps: int = 1, seed: int = 779) -> Program:
    """Dense matrix-vector product ``y = A x`` (row-major streaming)."""
    if n <= 0:
        raise ValueError("n must be positive")
    li, lj = fresh_label("mv_i"), fresh_label("mv_j")
    body = f"""
    movi r1, 0
{li}:
    fmovi f3, 0.0
    mul  r10, r1, r20
    movi r2, 0
{lj}:
    add  r11, r10, r2
    fld  f1, [r7 + r11*8]
    fld  f2, [r8 + r2*8]
    fma  f3, f1, f2, f3
    addi r2, r2, 1
    blt  r2, r20, {lj}
    fst  f3, [r9 + r1*8]
    addi r1, r1, 1
    blt  r1, r20, {li}
"""
    stream = random_fp(seed, n * n + n)
    text = f"""
.data
{data_fp("mv_a", stream[: n * n])}
{data_fp("mv_x", stream[n * n :])}
mv_y: .space {8 * n}
.text
main:
    movi r20, {n}
    movi r7, mv_a
    movi r8, mv_x
    movi r9, mv_y
    movi r27, {reps}
    {outer_repeat(body)}
    halt
"""
    return assemble(text, name=f"matvec_n{n}")
