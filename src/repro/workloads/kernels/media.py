"""Media-processing kernels.

``x264`` is an 8x8 sum-of-absolute-differences motion search over a small
reference frame (integer-dominated, tight inner loops, a running minimum),
``imagick`` a 3x3 floating-point convolution with output clamping.
"""

from __future__ import annotations

from repro.isa import Program, assemble
from repro.workloads.builders import (
    data_fp,
    data_int,
    fresh_label,
    outer_repeat,
    py_lcg,
    random_fp,
)


def x264(
    frame: int = 48, block: int = 8, search: int = 4, reps: int = 1, seed: int = 264
) -> Program:
    """SAD motion search of one block over a ``(2*search+1)^2`` window."""
    if frame < block + 2 * search + 2:
        raise ValueError("frame too small for block + search window")
    ldy, ldx, li, lj = (
        fresh_label("x264_dy"),
        fresh_label("x264_dx"),
        fresh_label("x264_i"),
        fresh_label("x264_j"),
    )
    better = fresh_label("x264_bet")
    noswap = fresh_label("x264_ns")
    # r20=frame, r21=block, r22=search span (2*search+1), r23=origin offset
    body = f"""
    movi r3, {1 << 40}
    movi r1, 0
{ldy}:
    movi r2, 0
{ldx}:
    movi r4, 0
    movi r5, 0
{li}:
    ; row bases: cur row = (origin+i)*frame + origin ; ref row = (i+dy)*frame + dx
    add  r10, r5, r24
    mul  r10, r10, r20
    add  r10, r10, r24
    add  r11, r5, r1
    mul  r11, r11, r20
    add  r11, r11, r2
    movi r6, 0
{lj}:
    add  r12, r10, r6
    ld   r13, [r7 + r12*8]
    add  r12, r11, r6
    ld   r14, [r8 + r12*8]
    sub  r13, r13, r14
    sub  r14, r0, r13
    max  r13, r13, r14
    add  r4, r4, r13
    addi r6, r6, 1
    blt  r6, r21, {lj}
    addi r5, r5, 1
    blt  r5, r21, {li}
    blt  r4, r3, {better}
    jmp  {noswap}
{better}:
    mov  r3, r4
{noswap}:
    addi r2, r2, 1
    blt  r2, r22, {ldx}
    addi r1, r1, 1
    blt  r1, r22, {ldy}
    st   r3, [r9]
"""
    pixels = frame * frame
    stream = py_lcg(seed, 2 * pixels, 256)
    text = f"""
.data
{data_int("x264_cur", stream[:pixels])}
{data_int("x264_ref", stream[pixels:])}
x264_out: .space 8
.text
main:
    movi r20, {frame}
    movi r21, {block}
    movi r22, {2 * search + 1}
    movi r24, {search + 1}
    movi r7, x264_cur
    movi r8, x264_ref
    movi r9, x264_out
    movi r27, {reps}
    {outer_repeat(body)}
    halt
"""
    return assemble(text, name=f"x264_f{frame}")


def imagick(w: int = 40, h: int = 40, reps: int = 1, seed: int = 538) -> Program:
    """3x3 box-ish convolution with clamping to [0, 1] (fmin/fmax)."""
    if w < 3 or h < 3:
        raise ValueError("image must be at least 3x3")
    li, lj = fresh_label("im_i"), fresh_label("im_j")
    body = f"""
    movi r1, 1
{li}:
    mul  r10, r1, r21
    movi r2, 1
{lj}:
    add  r11, r10, r2
    ; 3x3 neighbourhood, kernel = [.05 .1 .05 / .1 .4 .1 / .05 .1 .05]
    fld  f1, [r7 + r11*8]
    fmul f6, f1, f10
    subi r12, r11, 1
    fld  f2, [r7 + r12*8]
    addi r12, r11, 1
    fld  f3, [r7 + r12*8]
    sub  r12, r11, r21
    fld  f4, [r7 + r12*8]
    add  r12, r11, r21
    fld  f5, [r7 + r12*8]
    fadd f2, f2, f3
    fadd f4, f4, f5
    fadd f2, f2, f4
    fma  f6, f2, f11, f6
    sub  r12, r11, r21
    subi r12, r12, 1
    fld  f2, [r7 + r12*8]
    addi r12, r12, 2
    fld  f3, [r7 + r12*8]
    add  r12, r11, r21
    subi r12, r12, 1
    fld  f4, [r7 + r12*8]
    addi r12, r12, 2
    fld  f5, [r7 + r12*8]
    fadd f2, f2, f3
    fadd f4, f4, f5
    fadd f2, f2, f4
    fma  f6, f2, f12, f6
    fmax f6, f6, f8
    fmin f6, f6, f9
    fst  f6, [r8 + r11*8]
    addi r2, r2, 1
    blt  r2, r23, {lj}
    addi r1, r1, 1
    blt  r1, r22, {li}
    mov  r12, r7
    mov  r7, r8
    mov  r8, r12
"""
    pixels = w * h
    text = f"""
.data
{data_fp("im_a", random_fp(seed, pixels))}
im_b: .space {8 * pixels}
.text
main:
    movi r20, {w}
    movi r21, {h}
    movi r22, {w - 1}
    movi r23, {h - 1}
    movi r7, im_a
    movi r8, im_b
    fmovi f8, 0.0
    fmovi f9, 1.0
    fmovi f10, 0.4
    fmovi f11, 0.1
    fmovi f12, 0.05
    movi r27, {reps}
    {outer_repeat(body)}
    halt
"""
    return assemble(text, name=f"imagick_{w}x{h}")
