"""Scientific-computing kernels (the FP side of Table II).

``namd``/``nab`` are pairwise-force n-body loops (divide/sqrt-heavy, with a
cutoff branch for ``namd``), ``cam4`` a column-physics update with clamping
conditionals, and ``cactubssn`` a long straight-line FP expression chain per
grid point (high FP instruction-level parallelism, few branches).
"""

from __future__ import annotations

from repro.isa import Program, assemble
from repro.workloads.builders import data_fp, fresh_label, outer_repeat, random_fp


def namd(n_atoms: int = 64, cutoff: float = 0.25, reps: int = 1, seed: int = 508) -> Program:
    """Pairwise force accumulation with a squared-distance cutoff branch."""
    if n_atoms < 4:
        raise ValueError("need at least 4 atoms")
    li, lj, skip = fresh_label("nd_i"), fresh_label("nd_j"), fresh_label("nd_skip")
    body = f"""
    movi r1, 0
{li}:
    fld  f1, [r7 + r1*8]
    fld  f2, [r8 + r1*8]
    fld  f3, [r9 + r1*8]
    addi r2, r1, 1
{lj}:
    fld  f4, [r7 + r2*8]
    fld  f5, [r8 + r2*8]
    fld  f6, [r9 + r2*8]
    fsub f4, f4, f1
    fsub f5, f5, f2
    fsub f6, f6, f3
    fmul f7, f4, f4
    fma  f7, f5, f5, f7
    fma  f7, f6, f6, f7
    fcmplt r10, f10, f7
    bnez r10, {skip}
    ; inside cutoff: r = sqrt(r2); w = 1 / (r2 * r); accumulate force
    fsqrt f8, f7
    fmul f8, f8, f7
    fdiv f8, f11, f8
    fmul f13, f8, f4
    fld  f9, [r13 + r1*8]
    fadd f9, f9, f13
    fst  f9, [r13 + r1*8]
    fld  f9, [r13 + r2*8]
    fsub f9, f9, f13
    fst  f9, [r13 + r2*8]
{skip}:
    addi r2, r2, 1
    blt  r2, r20, {lj}
    addi r1, r1, 1
    blt  r1, r21, {li}
"""
    stream = random_fp(seed, 3 * n_atoms)
    text = f"""
.data
{data_fp("nd_x", stream[:n_atoms])}
{data_fp("nd_y", stream[n_atoms : 2 * n_atoms])}
{data_fp("nd_z", stream[2 * n_atoms :])}
nd_f: .space {8 * n_atoms}
.text
main:
    movi r20, {n_atoms}
    movi r21, {n_atoms - 1}
    movi r7, nd_x
    movi r8, nd_y
    movi r9, nd_z
    movi r13, nd_f
    fmovi f10, {cutoff!r}
    fmovi f11, 1.0
    movi r27, {reps}
    {outer_repeat(body)}
    halt
"""
    return assemble(text, name=f"namd_n{n_atoms}")


def nab(n_atoms: int = 48, reps: int = 1, seed: int = 544) -> Program:
    """Full O(n^2) pairwise energy (no cutoff): every pair pays sqrt+div."""
    if n_atoms < 4:
        raise ValueError("need at least 4 atoms")
    li, lj = fresh_label("nb_i"), fresh_label("nb_j")
    body = f"""
    fmovi f12, 0.0
    movi r1, 0
{li}:
    fld  f1, [r7 + r1*8]
    fld  f2, [r8 + r1*8]
    addi r2, r1, 1
{lj}:
    fld  f4, [r7 + r2*8]
    fld  f5, [r8 + r2*8]
    fsub f4, f4, f1
    fsub f5, f5, f2
    fmul f7, f4, f4
    fma  f7, f5, f5, f7
    fadd f7, f7, f11
    fsqrt f8, f7
    fdiv f9, f10, f8
    fadd f12, f12, f9
    addi r2, r2, 1
    blt  r2, r20, {lj}
    addi r1, r1, 1
    blt  r1, r21, {li}
    fst  f12, [r9]
"""
    stream = random_fp(seed, 2 * n_atoms)
    text = f"""
.data
{data_fp("nb_x", stream[:n_atoms])}
{data_fp("nb_y", stream[n_atoms:])}
nb_e: .space 8
.text
main:
    movi r20, {n_atoms}
    movi r21, {n_atoms - 1}
    movi r7, nb_x
    movi r8, nb_y
    movi r9, nb_e
    fmovi f10, 1.0
    fmovi f11, 0.01
    movi r27, {reps}
    {outer_repeat(body)}
    halt
"""
    return assemble(text, name=f"nab_n{n_atoms}")


def cam4(
    n_cols: int = 48, n_levs: int = 26, reps: int = 1, seed: int = 527
) -> Program:
    """Column-physics update: per-level FP recurrence with clamping branches.

    Every fourth level pays a divide (saturation adjustment), and negative
    moisture is clamped to zero through a branch — the mix of cheap FP and
    occasional expensive ops with data-dependent control that characterizes
    atmosphere physics packages.
    """
    if n_cols < 1 or n_levs < 4:
        raise ValueError("bad cam4 parameters")
    lc, ll, nodiv, noclamp = (
        fresh_label("cam_c"),
        fresh_label("cam_l"),
        fresh_label("cam_nd"),
        fresh_label("cam_nc"),
    )
    body = f"""
    movi r1, 0
{lc}:
    mul  r10, r1, r21
    movi r2, 0
{ll}:
    add  r11, r10, r2
    fld  f1, [r7 + r11*8]
    fld  f2, [r8 + r11*8]
    ; q' = q + dt * (a*t - b*q*q)
    fmul f3, f1, f1
    fmul f3, f3, f11
    fma  f4, f2, f10, f3
    fsub f4, f4, f3
    fsub f4, f4, f3
    fma  f1, f4, f12, f1
    ; every 4th level: divide by (1 + q*q)
    andi r12, r2, 3
    bnez r12, {nodiv}
    fmul f5, f1, f1
    fadd f5, f5, f13
    fdiv f1, f1, f5
{nodiv}:
    ; clamp negative moisture
    fcmplt r12, f1, f14
    beqz r12, {noclamp}
    fmov f1, f14
{noclamp}:
    fst  f1, [r7 + r11*8]
    addi r2, r2, 1
    blt  r2, r21, {ll}
    addi r1, r1, 1
    blt  r1, r20, {lc}
"""
    cells = n_cols * n_levs
    stream = random_fp(seed, 2 * cells)
    text = f"""
.data
{data_fp("cam_q", stream[:cells])}
{data_fp("cam_t", stream[cells:])}
.text
main:
    movi r20, {n_cols}
    movi r21, {n_levs}
    movi r7, cam_q
    movi r8, cam_t
    fmovi f10, 0.3
    fmovi f11, 0.2
    fmovi f12, 0.05
    fmovi f13, 1.0
    fmovi f14, 0.0
    movi r27, {reps}
    {outer_repeat(body)}
    halt
"""
    return assemble(text, name=f"cam4_{n_cols}x{n_levs}")


def cactubssn(n: int = 512, reps: int = 1, seed: int = 507) -> Program:
    """Long straight-line FP chain per point (BSSN-like update, high FP ILP)."""
    if n < 8:
        raise ValueError("n must be >= 8")
    loop = fresh_label("cb")
    body = f"""
    movi r1, 1
{loop}:
    subi r12, r1, 1
    fld  f1, [r7 + r12*8]
    fld  f2, [r7 + r1*8]
    addi r12, r1, 1
    fld  f3, [r7 + r12*8]
    ; a dense, mostly-independent FP expression tree
    fadd f4, f1, f3
    fsub f5, f3, f1
    fmul f6, f2, f2
    fmul f7, f4, f10
    fmul f8, f5, f5
    fma  f9, f6, f11, f7
    fma  f9, f8, f12, f9
    fmul f4, f4, f4
    fma  f9, f4, f13, f9
    fsub f5, f9, f2
    fmul f5, f5, f14
    fadd f2, f2, f5
    fmul f6, f2, f10
    fma  f2, f6, f12, f2
    fst  f2, [r8 + r1*8]
    fadd f3, f9, f8
    fmul f3, f3, f11
    fst  f3, [r9 + r1*8]
    addi r1, r1, 1
    blt  r1, r21, {loop}
    mov  r12, r7
    mov  r7, r8
    mov  r8, r12
"""
    text = f"""
.data
{data_fp("cb_a", random_fp(seed, n))}
cb_b: .space {8 * n}
cb_k: .space {8 * n}
.text
main:
    movi r21, {n - 1}
    movi r7, cb_a
    movi r8, cb_b
    movi r9, cb_k
    fmovi f10, 0.5
    fmovi f11, 0.25
    fmovi f12, 0.125
    fmovi f13, 0.0625
    fmovi f14, 0.1
    movi r27, {reps}
    {outer_repeat(body)}
    halt
"""
    return assemble(text, name=f"cactubssn_n{n}")


def wrf_physics(nx: int = 32, ny: int = 32, reps: int = 1, seed: int = 521) -> Program:
    """Alias kept close to the stencil family; see :func:`repro.workloads.kernels.stencil.wrf`."""
    from repro.workloads.kernels.stencil import wrf

    return wrf(nx=nx, ny=ny, reps=reps, seed=seed)
