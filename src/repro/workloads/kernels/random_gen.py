"""Pseudo-random number generation kernel (``999.specrand``).

A tight LCG loop storing draws to a buffer with a parity branch — nearly
pure integer ALU with a single predictable store stream, the simplest
behaviour point in the suite (exactly the role 999.specrand plays in SPEC).
"""

from __future__ import annotations

from repro.isa import Program, assemble
from repro.workloads.builders import fresh_label, lcg_step, outer_repeat


def specrand(n: int = 4096, reps: int = 1, seed: int = 999) -> Program:
    """Generate ``n`` pseudo-random words per repetition, counting odd draws."""
    if n <= 0:
        raise ValueError("n must be positive")
    loop, even = fresh_label("sr"), fresh_label("sr_even")
    body = f"""
    movi r1, 0
    movi r3, 0
{loop}:
    {lcg_step("r10")}
    st   r10, [r7 + r1*8]
    andi r11, r10, 1
    beqz r11, {even}
    addi r3, r3, 1
{even}:
    addi r1, r1, 1
    blt  r1, r20, {loop}
    st   r3, [r9]
"""
    text = f"""
.data
sr_buf: .space {8 * n}
sr_out: .space 8
.text
main:
    movi r30, {seed}
    movi r20, {n}
    movi r7, sr_buf
    movi r9, sr_out
    movi r27, {reps}
    {outer_repeat(body)}
    halt
"""
    return assemble(text, name=f"specrand_n{n}")
